"""Macro-task coarsening via Sarkar's algorithm (paper SS7.3).

Verilator partitions the netlist DAG into *macro-tasks*: initially every
DAG node is its own task; tasks sharing an edge merge when the merge
yields the smallest increase in critical-path length, until a granularity
threshold is reached.  The resulting graph is statically assigned to a
thread pool (see :mod:`repro.baseline.threads`).

Merging two DAG nodes is only legal when it cannot create a cycle; we
restrict candidate edges to the provably safe cases (sole successor /
sole predecessor), which covers the chain-contraction behaviour that
dominates in practice, then allow general edges guarded by an explicit
reachability check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlist.dag import CircuitDag
from ..netlist.ir import Circuit
from .serial import op_cost


@dataclass
class MacroTaskGraph:
    """Coarsened DAG: ``costs`` in x86-instruction units."""

    costs: list[float]
    preds: list[set[int]]
    succs: list[set[int]]
    alive: list[bool]
    #: (absorbed, into) pairs, in merge order - lets clients recover
    #: which original node ended up in which surviving task.
    merge_log: list[tuple[int, int]] = field(default_factory=list)

    @property
    def num_tasks(self) -> int:
        return sum(self.alive)

    def task_ids(self) -> list[int]:
        return [i for i, a in enumerate(self.alive) if a]

    def total_cost(self) -> float:
        return sum(self.costs[i] for i in self.task_ids())

    # ------------------------------------------------------------------
    def top_levels(self) -> dict[int, float]:
        """Longest cost-weighted path *into* each task (excl. own cost)."""
        order = self._topo()
        top: dict[int, float] = {}
        for i in order:
            top[i] = max((top[p] + self.costs[p] for p in self.preds[i]),
                         default=0.0)
        return top

    def bottom_levels(self) -> dict[int, float]:
        """Longest cost-weighted path from each task (incl. own cost)."""
        order = self._topo()
        bottom: dict[int, float] = {}
        for i in reversed(order):
            bottom[i] = self.costs[i] + max(
                (bottom[s] for s in self.succs[i]), default=0.0)
        return bottom

    def critical_path(self) -> float:
        bottoms = self.bottom_levels()
        return max(bottoms.values(), default=0.0)

    def _topo(self) -> list[int]:
        ids = self.task_ids()
        indeg = {i: len(self.preds[i]) for i in ids}
        ready = [i for i in ids if indeg[i] == 0]
        order = []
        while ready:
            i = ready.pop()
            order.append(i)
            for s in self.succs[i]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(ids):
            raise ValueError("macro-task graph became cyclic")
        return order

    def _reaches(self, src: int, dst: int, skip_direct: bool) -> bool:
        """Is there a path src -> dst (optionally ignoring the direct
        edge)?  Bounded DFS; used to validate general merges."""
        stack = []
        for s in self.succs[src]:
            if s == dst and skip_direct:
                continue
            stack.append(s)
        seen = set()
        while stack:
            i = stack.pop()
            if i == dst:
                return True
            if i in seen:
                continue
            seen.add(i)
            stack.extend(self.succs[i])
        return False

    def merge(self, u: int, v: int) -> None:
        """Contract v into u (u keeps its id)."""
        self.costs[u] += self.costs[v]
        self.alive[v] = False
        self.merge_log.append((v, u))
        for p in self.preds[v]:
            self.succs[p].discard(v)
            if p != u:
                self.succs[p].add(u)
                self.preds[u].add(p)
        for s in self.succs[v]:
            self.preds[s].discard(v)
            if s != u:
                self.preds[s].add(u)
                self.succs[u].add(s)
        self.succs[u].discard(u)
        self.preds[u].discard(u)


def build_macrotask_graph(circuit: Circuit) -> MacroTaskGraph:
    """One macro-task per netlist op (Verilator's starting point)."""
    dag = CircuitDag.from_circuit(circuit)
    names = [op.result.name for op in circuit.ops]
    index = {name: i for i, name in enumerate(names)}
    n = len(names)
    costs = [op_cost(op) for op in circuit.ops]
    preds: list[set[int]] = [set() for _ in range(n)]
    succs: list[set[int]] = [set() for _ in range(n)]
    for name, consumers in dag.consumers.items():
        for consumer in consumers:
            u, v = index[name], index[consumer]
            succs[u].add(v)
            preds[v].add(u)
    return MacroTaskGraph(costs, preds, succs, [True] * n)


def coarsen(graph: MacroTaskGraph, min_task_cost: float = 200.0,
            max_tasks: int | None = None,
            refresh_every: int = 64) -> MacroTaskGraph:
    """Sarkar-style coarsening: merge the edge with the smallest
    critical-path increase until every task reaches ``min_task_cost``
    (Verilator's granularity threshold) or ``max_tasks``."""
    top = graph.top_levels()
    bottom = graph.bottom_levels()
    merges_since_refresh = 0

    def path_through(u: int, v: int) -> float:
        """Critical path through the merged (u, v) node (the Sarkar
        merge score - lower is better)."""
        return (top.get(u, 0.0) + graph.costs[u] + graph.costs[v]
                + bottom.get(v, 0.0) - graph.costs[v])

    while True:
        ids = graph.task_ids()
        if max_tasks is not None and len(ids) <= max_tasks:
            break
        small = [i for i in ids if graph.costs[i] < min_task_cost]
        if not small and max_tasks is None:
            break
        best = None
        best_score = None
        # Candidate edges touching a too-small task.
        pool = small if small else ids
        for u in pool:
            for v in graph.succs[u]:
                safe = (len(graph.succs[u]) == 1
                        or len(graph.preds[v]) == 1
                        or not graph._reaches(u, v, skip_direct=True))
                if not safe:
                    continue
                score = path_through(u, v)
                if best_score is None or score < best_score:
                    best, best_score = (u, v), score
            for p in graph.preds[u]:
                safe = (len(graph.succs[p]) == 1
                        or len(graph.preds[u]) == 1
                        or not graph._reaches(p, u, skip_direct=True))
                if not safe:
                    continue
                score = path_through(p, u)
                if best_score is None or score < best_score:
                    best, best_score = (p, u), score
        if best is None:
            if max_tasks is not None and len(ids) > max_tasks:
                # Disconnected components with no mergeable edges left:
                # fuse the two cheapest independent tasks (always safe).
                a, b = sorted(ids, key=lambda i: graph.costs[i])[:2]
                if graph._reaches(a, b, skip_direct=False):
                    break
                graph.merge(a, b)
                merges_since_refresh += 1
                continue
            break
        graph.merge(*best)
        merges_since_refresh += 1
        if merges_since_refresh >= refresh_every:
            top = graph.top_levels()
            bottom = graph.bottom_levels()
            merges_since_refresh = 0
    return graph


def macrotasks_for(circuit: Circuit, min_task_cost: float = 200.0,
                   ) -> MacroTaskGraph:
    """Convenience: build + coarsen in one call."""
    return coarsen(build_macrotask_graph(circuit),
                   min_task_cost=min_task_cost)
