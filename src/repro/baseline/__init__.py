"""The Verilator-like software baseline: serial full-cycle simulation,
Sarkar macro-task coarsening, and a calibrated multithreaded cost model."""

from .essent import ActivityStats, EssentSimulator
from .sarkar import MacroTaskGraph, build_macrotask_graph, coarsen, macrotasks_for
from .serial import (
    MeasuredRate,
    SerialSimulator,
    instruction_estimate,
    modeled_serial_rate_khz,
)
from .threads import (
    MTResult,
    assign_static,
    best_mt_rate_khz,
    scaling,
    simulate_multithreaded,
)

__all__ = [
    "ActivityStats", "EssentSimulator",
    "MTResult", "MacroTaskGraph", "MeasuredRate", "SerialSimulator",
    "assign_static", "best_mt_rate_khz", "build_macrotask_graph", "coarsen",
    "instruction_estimate", "macrotasks_for", "modeled_serial_rate_khz",
    "scaling", "simulate_multithreaded",
]
