"""The Verilator-like baseline, serial flavor (paper SS7.3).

Verilator compiles the netlist into optimized C++ executed in topological
order - a full-cycle simulator.  Our substitute has two faces:

* :class:`SerialSimulator` - an *executable* full-cycle simulator built on
  the golden interpreter, used for correctness and for honest wall-clock
  measurements (documented caveat: interpreted Python, not compiled C++);
* :func:`instruction_estimate` - a static estimate of the x86 instructions
  a Verilator-compiled model would execute per RTL cycle (the "# instr."
  row of Table 3), used by the calibrated performance models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..netlist.interp import NetlistInterpreter
from ..netlist.ir import Circuit, OpKind

#: x86 instructions per netlist op, per 16-bit limb of result width
#: (load operands + compute + store, Verilator-style flat code).
_OP_COST = {
    OpKind.CONST: 0.0,
    OpKind.AND: 4.0, OpKind.OR: 4.0, OpKind.XOR: 4.0, OpKind.NOT: 3.0,
    OpKind.ADD: 4.0, OpKind.SUB: 4.0, OpKind.MUL: 6.0,
    OpKind.EQ: 4.0, OpKind.NE: 4.0, OpKind.LTU: 4.0, OpKind.LTS: 5.0,
    OpKind.SHL: 5.0, OpKind.LSHR: 5.0, OpKind.ASHR: 6.0,
    OpKind.MUX: 4.0, OpKind.CONCAT: 3.0, OpKind.SLICE: 3.0,
    OpKind.MEMRD: 7.0,
    OpKind.REDOR: 3.0, OpKind.REDAND: 3.0, OpKind.REDXOR: 5.0,
}


def op_cost(op) -> float:
    """x86-instruction estimate for one netlist op."""
    limbs = (op.result.width + 31) // 32  # Verilator uses 32/64-bit words
    return _OP_COST[op.kind] * max(1, limbs)


def instruction_estimate(circuit: Circuit) -> int:
    """Estimated x86 instructions to simulate one RTL cycle."""
    total = sum(op_cost(op) for op in circuit.ops)
    for reg in circuit.registers.values():
        total += 2.0 * max(1, (reg.width + 31) // 32)  # state commit
    for memory in circuit.memories.values():
        total += 8.0 * len(memory.writes)
    total += 6.0 * len(circuit.effects)
    return int(total)


@dataclass
class MeasuredRate:
    cycles: int
    seconds: float

    @property
    def rate_khz(self) -> float:
        return self.cycles / self.seconds / 1e3 if self.seconds else 0.0


class SerialSimulator:
    """Executable serial full-cycle simulator over a closed circuit.

    Defaults to the interpreter's compiled ``fast`` engine - the closest
    interpreted-Python analogue of Verilator's specialized C++, and the
    honest choice when this baseline's wall clock is compared against the
    machine model's own fast path.  Pass ``engine="strict"`` to measure
    the reference dispatch loop instead.
    """

    def __init__(self, circuit: Circuit, engine: str = "fast") -> None:
        self.circuit = circuit
        self.interp = NetlistInterpreter(circuit, engine=engine)

    def run(self, cycles: int):
        return self.interp.run(cycles)

    def measure(self, cycles: int) -> MeasuredRate:
        """Wall-clock simulation rate over ``cycles`` RTL cycles."""
        start = time.perf_counter()
        self.interp.run(self.interp.cycle + cycles)
        return MeasuredRate(cycles, time.perf_counter() - start)


def modeled_serial_rate_khz(circuit: Circuit, platform,
                            icache: bool = True) -> float:
    """Serial Verilator rate from the calibrated platform model."""
    from ..perfmodel.bsp_model import simulation_rate_khz
    n = instruction_estimate(circuit)
    return simulation_rate_khz(n, 1, platform, icache=icache)
