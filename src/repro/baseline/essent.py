"""An ESSENT-style conditional-evaluation simulator (paper SS9.3).

ESSENT [6, 7] accelerates *sequential* RTL simulation by exploiting low
activity factors: the netlist is coarsened into partitions, and a
partition is re-evaluated only when one of its inputs changed - the
"coarsened, conditional, singular, static (CCSS)" execution model. The
paper contrasts it with Manticore: "Manticore's performance is
independent of a design's activity factor"; this module exists to make
that comparison executable (see ``benchmarks/test_activity_factor.py``).

Implementation: partitions come from the same Sarkar coarsening used by
the Verilator-like baseline; each partition caches the last values of its
input wires and is skipped when they are unchanged. Memories make a
partition always-active when written (conservative). The simulator is
semantically exact (validated against the golden interpreter) and
reports the measured *activity factor* - the fraction of partition
evaluations actually performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlist.interp import format_display
from ..netlist.ir import (
    AssertEffect,
    Circuit,
    Display,
    Finish,
    OpKind,
    evaluate_op,
    mask,
    topological_order,
)
from .sarkar import build_macrotask_graph, coarsen
from .serial import op_cost


@dataclass
class _Partition:
    """A coarsened group of ops evaluated as a unit."""

    index: int
    ops: list = field(default_factory=list)          # topological order
    input_wires: list[str] = field(default_factory=list)
    output_wires: set[str] = field(default_factory=set)
    touches_memory: bool = False
    cost: float = 0.0
    last_inputs: tuple | None = None


@dataclass
class ActivityStats:
    cycles: int = 0
    partition_evals: int = 0
    partition_skips: int = 0
    instr_executed: float = 0.0
    instr_total: float = 0.0

    @property
    def activity_factor(self) -> float:
        total = self.partition_evals + self.partition_skips
        return self.partition_evals / total if total else 1.0

    @property
    def work_factor(self) -> float:
        return self.instr_executed / self.instr_total \
            if self.instr_total else 1.0


class EssentSimulator:
    """Conditional full-cycle simulation over coarsened partitions."""

    def __init__(self, circuit: Circuit, min_task_cost: float = 40.0,
                 ) -> None:
        circuit.validate()
        self.circuit = circuit
        self._build_partitions(min_task_cost)
        self.values: dict[str, int] = dict()
        self.registers = {name: reg.init
                          for name, reg in circuit.registers.items()}
        self.memories = {
            name: list(memory.init) + [0] * (memory.depth
                                             - len(memory.init))
            for name, memory in circuit.memories.items()
        }
        self.stats = ActivityStats()
        self.displays: list[str] = []
        self.finished = False
        self.cycle = 0
        # Effect wires must always be fresh.
        self._effect_wires = {w.name for w in circuit.effect_wires()}

    # ------------------------------------------------------------------
    def _build_partitions(self, min_task_cost: float) -> None:
        circuit = self.circuit
        graph = coarsen(build_macrotask_graph(circuit),
                        min_task_cost=min_task_cost)
        # Graph node i corresponds to circuit.ops[i]; the merge log
        # tells us which surviving task absorbed each original op.
        op_list = circuit.ops
        membership = self._recover_membership(graph, len(op_list))
        topo = topological_order(circuit)
        order_of = {op.result.name: i for i, op in enumerate(topo)}

        partitions: dict[int, _Partition] = {}
        for op_index, task in enumerate(membership):
            op = op_list[op_index]
            part = partitions.setdefault(task, _Partition(task))
            part.ops.append(op)
            part.cost += op_cost(op)
            part.output_wires.add(op.result.name)
            if op.kind is OpKind.MEMRD:
                part.touches_memory = True
        for part in partitions.values():
            part.ops.sort(key=lambda op: order_of[op.result.name])
            inputs: set[str] = set()
            for op in part.ops:
                for arg in op.args:
                    if arg.name not in part.output_wires:
                        inputs.add(arg.name)
            part.input_wires = sorted(inputs)
        # Evaluate partitions in topological order of the coarsened task
        # graph (tasks are convex, so whole-partition evaluation in task
        # order respects every cross-partition dependence).
        task_order = {task: i for i, task in enumerate(graph._topo())}
        self.partitions = sorted(partitions.values(),
                                 key=lambda p: task_order[p.index])
        self.total_cost = sum(p.cost for p in self.partitions)

    @staticmethod
    def _recover_membership(graph, n_ops: int) -> list[int]:
        """Map original op index -> surviving task id using the merge
        trace recorded by MacroTaskGraph."""
        parent = list(range(n_ops))
        for absorbed, into in graph.merge_log:
            parent[absorbed] = into

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        return [find(i) for i in range(n_ops)]

    # ------------------------------------------------------------------
    def step(self) -> None:
        if self.finished:
            return
        circuit = self.circuit
        values = self.values
        for name, value in self.registers.items():
            values[name] = value

        for part in self.partitions:
            snapshot = tuple(values.get(w, 0) for w in part.input_wires)
            dirty = (part.last_inputs != snapshot or part.touches_memory
                     or self.cycle == 0)
            if dirty:
                for op in part.ops:
                    values[op.result.name] = evaluate_op(
                        op, values, self.memories)
                part.last_inputs = snapshot
                self.stats.partition_evals += 1
                self.stats.instr_executed += part.cost
            else:
                self.stats.partition_skips += 1
            self.stats.instr_total += part.cost

        for eff in circuit.effects:
            if not values[eff.enable.name]:
                continue
            if isinstance(eff, Display):
                self.displays.append(format_display(
                    eff.fmt, [values[a.name] for a in eff.args]))
            elif isinstance(eff, AssertEffect):
                if not values[eff.cond.name]:
                    raise AssertionError(
                        f"cycle {self.cycle}: {eff.message}")
            elif isinstance(eff, Finish):
                self.finished = True

        next_regs = {
            name: values[reg.next_value.name] & mask(reg.width)
            for name, reg in circuit.registers.items()
        }
        for name, memory in circuit.memories.items():
            contents = self.memories[name]
            for wr in memory.writes:
                if values[wr.enable.name]:
                    addr = values[wr.addr.name] % memory.depth
                    contents[addr] = values[wr.data.name] & \
                        mask(memory.width)
        self.registers = next_regs
        self.cycle += 1
        self.stats.cycles += 1

    def run(self, max_cycles: int) -> ActivityStats:
        while not self.finished and self.cycle < max_cycles:
            self.step()
        return self.stats

    # ------------------------------------------------------------------
    def modeled_rate_khz(self, platform, overhead_per_partition: float
                         = 12.0) -> float:
        """CCSS rate model: executed work + a per-partition check cost."""
        if not self.stats.cycles:
            raise RuntimeError("run() first")
        checks = (self.stats.partition_evals + self.stats.partition_skips)
        instr_per_cycle = (
            self.stats.instr_executed / self.stats.cycles
            + overhead_per_partition * checks / self.stats.cycles
        )
        return platform.instr_rate / instr_per_cycle / 1e3
