"""Deterministic simulated-time model of multithreaded Verilator
(paper SS7.3): macro-tasks statically assigned to a thread pool,
spin-lock synchronization between dependent tasks, and two barriers per
simulated cycle.

Python threads cannot exhibit real parallel scaling (the GIL), so - like
the paper's own SS7.1 study - multithreaded behaviour is evaluated on a
calibrated cost model rather than wall clock.  The model is exact given
its inputs: a macro-task graph with instruction costs, a platform
descriptor, and a thread count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perfmodel.bsp_model import BYTES_PER_INSTR
from ..perfmodel.platforms import Platform
from .sarkar import MacroTaskGraph


@dataclass
class MTResult:
    threads: int
    cycle_time_s: float
    makespan_s: float
    barrier_s: float
    rate_khz: float
    assignment: dict[int, int]      # task -> thread
    thread_busy_s: list[float]

    @property
    def efficiency(self) -> float:
        busy = sum(self.thread_busy_s)
        return busy / (self.threads * self.cycle_time_s) \
            if self.cycle_time_s else 0.0


def assign_static(graph: MacroTaskGraph, threads: int) -> dict[int, int]:
    """Verilator statically assigns macro-tasks to threads: list tasks by
    descending bottom level, place each on the least-loaded thread."""
    order = _priority_order(graph)
    loads = [0.0] * threads
    assignment: dict[int, int] = {}
    for task in order:
        thread = loads.index(min(loads))
        assignment[task] = thread
        loads[thread] += graph.costs[task]
    return assignment


def _priority_order(graph: MacroTaskGraph) -> list[int]:
    """Descending bottom level, ties broken topologically so per-thread
    queues are always executable in order (no self-deadlock)."""
    bottoms = graph.bottom_levels()
    topo_pos = {t: i for i, t in enumerate(graph._topo())}
    return sorted(graph.task_ids(),
                  key=lambda t: (-bottoms[t], topo_pos[t]))


def simulate_multithreaded(graph: MacroTaskGraph, platform: Platform,
                           threads: int, icache: bool = True) -> MTResult:
    """Event-driven simulation of one RTL cycle's macro-task execution."""
    assignment = assign_static(graph, threads)
    rate = platform.instr_rate

    # Per-thread i-cache penalty from its assigned instruction footprint.
    penalties = [1.0] * threads
    if icache:
        footprints = [0.0] * threads
        for task, thread in assignment.items():
            footprints[thread] += graph.costs[task] * BYTES_PER_INSTR
        penalties = [platform.icache_penalty(f) for f in footprints]

    overhead_s = platform.task_overhead_instrs / rate if threads > 1 else 0.0

    # Threads execute their queues in assigned (priority) order; a task
    # waits (spinning) until its predecessors finish.
    queues: dict[int, list[int]] = {t: [] for t in range(threads)}
    for task in _priority_order(graph):
        queues[assignment[task]].append(task)

    finish: dict[int, float] = {}
    thread_time = [0.0] * threads
    thread_busy = [0.0] * threads
    remaining = {t: list(q) for t, q in queues.items()}
    pending = sum(len(q) for q in queues.values())

    while pending:
        progressed = False
        for t in range(threads):
            queue = remaining[t]
            while queue:
                task = queue[0]
                preds_done = all(p in finish for p in graph.preds[task])
                if not preds_done:
                    break
                start = max(
                    thread_time[t],
                    max((finish[p] for p in graph.preds[task]),
                        default=0.0),
                ) + overhead_s
                duration = graph.costs[task] * penalties[t] / rate
                finish[task] = start + duration
                thread_time[t] = finish[task]
                thread_busy[t] += duration
                queue.pop(0)
                pending -= 1
                progressed = True
        if not progressed:
            # Head-of-queue tasks all blocked on cross-thread deps whose
            # producers are later in their own queues: advance the
            # earliest blocked thread past the stall by releasing the
            # globally-lowest unfinished dependency first.  With
            # bottom-level priority order this cannot happen; guard
            # against it to keep the model total.
            raise RuntimeError("multithread model deadlocked")

    makespan = max(finish.values(), default=0.0)
    barrier = 2.0 * platform.barrier_ns(threads) * 1e-9
    cycle_time = makespan + barrier
    return MTResult(
        threads=threads,
        cycle_time_s=cycle_time,
        makespan_s=makespan,
        barrier_s=barrier,
        rate_khz=1e-3 / cycle_time if cycle_time else 0.0,
        assignment=assignment,
        thread_busy_s=thread_busy,
    )


def scaling(graph: MacroTaskGraph, platform: Platform,
            thread_counts: list[int] | None = None,
            icache: bool = True) -> dict[int, float]:
    """Rate (kHz) per thread count - Fig. 6/11/12 material."""
    counts = thread_counts or [1, 2, 4, 8, 16]
    return {
        p: simulate_multithreaded(graph, platform, p, icache).rate_khz
        for p in counts if p <= platform.cores
    }


def best_mt_rate_khz(graph: MacroTaskGraph, platform: Platform,
                     icache: bool = True) -> tuple[int, float]:
    """(threads, rate) of the best multithreaded configuration."""
    rates = scaling(graph, platform,
                    [p for p in (2, 4, 8, 16, 32, 64)
                     if p <= platform.cores], icache)
    best = max(rates, key=lambda p: rates[p])
    return best, rates[best]
