"""x86 platform descriptors (paper Table 2) and their cost parameters.

The paper measured a desktop (Core i7-9700K), and two servers
(Xeon 8272CL, EPYC 7V73X).  The architectural facts (cores, clocks, SRAM,
dates) are the paper's; the microbenchmark-level cost parameters (IPC,
barrier latencies, i-cache penalty curve) are calibrated so the SS7.1
models reproduce the paper's Fig. 5 regimes:

* fine-grain (N ~ 3.5k instr/cycle): serial hits a few MHz, a steep drop
  from 1 -> 2 threads;
* medium (N ~ 35k-350k): modest speedups that peak and then decay;
* coarse (N ~ 3.5M): parallelism pays off, super-linear speedup possible
  once per-thread footprint drops back into cache (model 2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Platform:
    """One evaluation machine and its simulator cost model."""

    name: str
    cores: int
    freq_ghz: float           # sustained all-core clock
    ipc: float                # instructions per cycle on simulator code
    sram_mib: float           # total cache capacity (Table 2)
    release: str
    # Synchronization model: a full barrier costs
    # ``barrier_base_ns + barrier_per_thread_ns * P`` nanoseconds.
    barrier_base_ns: float
    barrier_per_thread_ns: float
    # Per-macro-task scheduling overhead (atomic fetch-and-add + checks),
    # in instructions (paper SS7.3: spin-locks synchronize macro-tasks).
    task_overhead_instrs: float
    # i-cache pressure model (model 2): per-thread instruction footprints
    # beyond l1i_kb slow execution, saturating at penalty_max when the
    # footprint exceeds l2_kb.
    l1i_kb: float
    l2_kb: float
    penalty_l2: float
    penalty_max: float

    @property
    def instr_rate(self) -> float:
        """Sustained instructions/second of one core."""
        return self.freq_ghz * 1e9 * self.ipc

    def barrier_ns(self, threads: int) -> float:
        if threads <= 1:
            return 0.0
        return self.barrier_base_ns + self.barrier_per_thread_ns * threads

    def icache_penalty(self, footprint_bytes: float) -> float:
        """Execution-time multiplier for a given instruction footprint."""
        l1 = self.l1i_kb * 1024
        l2 = self.l2_kb * 1024
        if footprint_bytes <= l1:
            return 1.0
        if footprint_bytes <= l2:
            # log-linear ramp between L1 and L2 capacity.
            import math
            frac = math.log(footprint_bytes / l1) / math.log(l2 / l1)
            return 1.0 + (self.penalty_l2 - 1.0) * frac
        import math
        frac = min(1.0, math.log(footprint_bytes / l2) / math.log(16))
        return self.penalty_l2 + (self.penalty_max - self.penalty_l2) * frac


#: Desktop: Intel Core i7-9700K, 8 cores, 4.6-4.9 GHz (Table 2).
I7_9700K = Platform(
    name="i7-9700K", cores=8, freq_ghz=4.7, ipc=2.0, sram_mib=14.5,
    release="Q4 2018",
    barrier_base_ns=450.0, barrier_per_thread_ns=60.0,
    task_overhead_instrs=60.0,
    l1i_kb=32.0, l2_kb=256.0, penalty_l2=2.2, penalty_max=4.5,
)

#: Server: Intel Xeon 8272CL, 32 cores (of a 2-socket cloud machine).
XEON_8272CL = Platform(
    name="Xeon 8272CL", cores=32, freq_ghz=2.9, ipc=1.9, sram_mib=105.5,
    release="Q4 2019",
    barrier_base_ns=700.0, barrier_per_thread_ns=55.0,
    task_overhead_instrs=70.0,
    l1i_kb=32.0, l2_kb=1024.0, penalty_l2=2.0, penalty_max=4.0,
)

#: Server: AMD EPYC 7V73X (Milan-X), 120 vCPU, huge V-Cache.
EPYC_7V73X = Platform(
    name="EPYC 7V73X", cores=120, freq_ghz=2.8, ipc=2.0, sram_mib=259.6,
    release="Q1 2022",
    barrier_base_ns=900.0, barrier_per_thread_ns=40.0,
    task_overhead_instrs=65.0,
    l1i_kb=32.0, l2_kb=512.0, penalty_l2=1.8, penalty_max=3.2,
)

PLATFORMS = {p.name: p for p in (I7_9700K, XEON_8272CL, EPYC_7V73X)}

#: Paper Table 2 rows for reference output.
TABLE2 = [
    ("i7-9700K", 8, "4.6-4.9", 14.5, "Q4 2018"),
    ("Xeon 8272CL", 32, "2.5-3.4", 105.5, "Q4 2019"),
    ("EPYC 7V73X", 120, "2.2-3.5", 259.6, "Q1 2022"),
    ("Alveo U200 (Manticore)", 225, "0.475", 18.45, "-"),
]
