"""Analytical models of fine-grained parallel RTL simulation (paper SS7.1)
and the evaluated hardware platforms (Table 2)."""

from .bsp_model import (
    BYTES_PER_INSTR,
    FIG5_SIZES,
    ScalingCurve,
    cycle_time_s,
    fig5_curves,
    scaling_curve,
    simulation_rate_khz,
    speedup_table,
)
from .platforms import EPYC_7V73X, I7_9700K, PLATFORMS, TABLE2, XEON_8272CL, Platform

__all__ = [
    "BYTES_PER_INSTR", "EPYC_7V73X", "FIG5_SIZES", "I7_9700K", "PLATFORMS",
    "Platform", "ScalingCurve", "TABLE2", "XEON_8272CL", "cycle_time_s",
    "fig5_curves", "scaling_curve", "simulation_rate_khz", "speedup_table",
]
