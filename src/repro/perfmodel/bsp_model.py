"""The SS7.1 models of fine-grained parallel RTL simulation (Fig. 5/15).

Model 1 (Listing 1): each RTL cycle executes N independent instructions
split over P threads, with two barriers per cycle (end of computation,
end of communication).  Model 2 adds i-cache pressure: the per-thread
instruction footprint is N/P x bytes-per-instruction, and execution slows
by the platform's i-cache penalty curve.

These are *upper bounds* on any software simulator (the paper's argument):
they ignore data transfer entirely and assume perfectly balanced work.
"""

from __future__ import annotations

from dataclasses import dataclass

from .platforms import Platform

#: x86 code bytes per simulator instruction (model 2 footprint).
BYTES_PER_INSTR = 4.0

#: Instruction counts per simulated cycle studied by Fig. 5.
FIG5_SIZES = (3_500, 35_000, 350_000, 3_500_000)


def cycle_time_s(n_instrs: int, threads: int, platform: Platform,
                 icache: bool) -> float:
    """Seconds to simulate one RTL cycle."""
    work = n_instrs / max(1, threads)
    rate = platform.instr_rate
    if icache:
        footprint = work * BYTES_PER_INSTR
        rate /= platform.icache_penalty(footprint)
    return work / rate + 2.0 * platform.barrier_ns(threads) * 1e-9


def simulation_rate_khz(n_instrs: int, threads: int, platform: Platform,
                        icache: bool = False) -> float:
    """Simulated kHz for the given working set and thread count."""
    return 1e-3 / cycle_time_s(n_instrs, threads, platform, icache)


@dataclass
class ScalingCurve:
    """One curve of Fig. 5: rate vs thread count."""

    platform: str
    n_instrs: int
    model: int                       # 1 (sync only) or 2 (+ i-cache)
    threads: list[int]
    rates_khz: list[float]

    @property
    def max_speedup(self) -> float:
        base = self.rates_khz[0]
        return max(r / base for r in self.rates_khz)

    @property
    def best_threads(self) -> int:
        best = max(range(len(self.rates_khz)),
                   key=lambda i: self.rates_khz[i])
        return self.threads[best]


def scaling_curve(platform: Platform, n_instrs: int, model: int,
                  max_threads: int | None = None) -> ScalingCurve:
    threads = list(range(1, (max_threads or platform.cores) + 1))
    rates = [
        simulation_rate_khz(n_instrs, p, platform, icache=(model == 2))
        for p in threads
    ]
    return ScalingCurve(platform.name, n_instrs, model, threads, rates)


def fig5_curves(platform: Platform,
                sizes: tuple[int, ...] = FIG5_SIZES) -> list[ScalingCurve]:
    """All Fig. 5 curves for one platform (both models, all sizes)."""
    out = []
    for n in sizes:
        for model in (1, 2):
            out.append(scaling_curve(platform, n, model))
    return out


def speedup_table(platforms: list[Platform],
                  sizes: tuple[int, ...] = FIG5_SIZES) -> list[dict]:
    """The Fig. 5 inset table: max speedup per (platform, N, model)."""
    rows = []
    for platform in platforms:
        for n in sizes:
            row = {"platform": platform.name, "n_instrs": n}
            for model in (1, 2):
                curve = scaling_curve(platform, n, model)
                row[f"model{model}_speedup"] = round(curve.max_speedup, 2)
                row[f"model{model}_best_threads"] = curve.best_threads
            rows.append(row)
    return rows
