"""Manticore reproduction: hardware-accelerated RTL simulation with
static bulk-synchronous parallelism (Emami et al., ASPLOS 2023).

Subpackages
-----------
``repro.netlist``
    RTL substrate: netlist IR, circuit builder, Verilog-subset frontend,
    and the golden reference interpreter.
``repro.isa``
    The Manticore instruction set, binary encoding, and the functional
    lower interpreter.
``repro.compiler``
    The full compiler: optimizations, 16-bit lowering, split/merge
    partitioning, custom-function synthesis, NoC-aware scheduling, and
    register allocation.
``repro.machine``
    Cycle-accurate machine model: cores, torus NoC, cache + global stall,
    bootloader format, host runtime.
``repro.baseline``
    The Verilator-like software baseline (serial + Sarkar macro-tasks +
    multithread cost model).
``repro.perfmodel`` / ``repro.fpga`` / ``repro.cost``
    The SS7.1 parallel-simulation models, the FPGA physical model
    (Tables 1/7), and the Azure cost analysis (Tables 5/6).
``repro.designs``
    The paper's nine RTL benchmarks plus the Fig. 8 microbenchmarks.

Quickstart
----------
>>> from repro import CircuitBuilder, simulate_on_manticore
>>> m = CircuitBuilder("counter")
>>> count = m.register("count", 8)
>>> count.next = (count + 1).trunc(8)
>>> m.display(count == 5, "done %d", count)
>>> m.finish(count == 5)
>>> simulate_on_manticore(m.build()).displays
['done 5']
"""

from .compiler import CompilerOptions, compile_circuit
from .machine import (
    PROTOTYPE,
    Machine,
    MachineConfig,
    SimulationRun,
    simulate_on_manticore,
)
from .netlist import CircuitBuilder, NetlistInterpreter, run_circuit
from .netlist.verilog import parse_verilog

__version__ = "0.1.0"

__all__ = [
    "CircuitBuilder", "CompilerOptions", "Machine", "MachineConfig",
    "NetlistInterpreter", "PROTOTYPE", "SimulationRun", "compile_circuit",
    "parse_verilog", "run_circuit", "simulate_on_manticore",
    "__version__",
]
