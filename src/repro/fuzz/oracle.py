"""Multi-oracle differential harness.

Every oracle is one way of executing a circuit that must agree with the
golden strict interpreter bit-for-bit: the interpreter's own compiled
engine, the Verilator-like serial baseline, and the Manticore toolchain
(compile + machine model) under strict/permissive/fast/codegen engines and a
matrix of :class:`~repro.compiler.CompilerOptions` variants (merge
strategy, mem2reg, state coalescing, custom-function selector, parallel
``jobs``, compile cache on/off).

:func:`run_matrix` executes a circuit through a list of oracles and
reports each disagreement as a :class:`Divergence` naming the first
mismatching cycle and signal - parsed from the generator's per-cycle
``@<cycle> <name>=<hex> ...`` trace lines.  Compilations are shared
between oracles that differ only in machine engine, so the full matrix
costs one compile per *option* variant, not per oracle.
"""

from __future__ import annotations

import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..machine.config import MachineConfig
from ..netlist.ir import Circuit
from .faults import fault_context
from .generator import GeneratorParams, generate

#: Machine/compiler configuration used by the fuzzing harness: a small
#: grid keeps per-seed compiles fast while still forcing multi-core
#: schedules, sends, and the global-stall protocol.
FUZZ_CONFIG = MachineConfig(grid_x=3, grid_y=3, result_latency=6)


@dataclass(frozen=True)
class OracleSpec:
    """One execution strategy that must match the golden interpreter."""

    name: str
    kind: str                     # "interp" | "baseline" | "machine"
    engine: str = "strict"
    #: CompilerOptions overrides, as a hashable item tuple; oracles with
    #: equal ``options`` share one compilation per :func:`run_matrix`.
    options: tuple[tuple[str, object], ...] = ()
    #: Named fault from :mod:`repro.fuzz.faults` injected for the run
    #: (test-only oracles; never part of the standard matrices).
    fault: str | None = None
    #: Round-trip the compilation through a fresh compile cache and run
    #: the artifact the *cache* returned (catches serialization bugs).
    through_cache: bool = False
    #: Attach a :class:`repro.obs.Profiler` to the machine run and
    #: cross-check its counters against the machine's ``PerfCounters``.
    #: Any behaviour change or invariant violation becomes a divergence
    #: (observation must never perturb - tests/test_obs_perturbation.py).
    profiled: bool = False
    #: Snapshot the machine mid-run through the checkpoint wire format
    #: (encode -> decode -> restore into a fresh machine) and finish on
    #: the restored machine.  Any state the snapshot loses or distorts
    #: shows up as a divergence from the golden interpreter.
    checkpoint: bool = False
    #: Override ``MachineConfig.fastpath_verify_vcycles`` for the
    #: machine run (machine oracles only).  ``0`` makes a compiled
    #: engine trust its kernel from Vcycle one with no strict
    #: verification - the harshest differential test of emitted code.
    verify_vcycles: int | None = None
    #: Run on a K-way :class:`~repro.machine.shard.ShardedMachine`
    #: (in-process transport - the barrier protocol, rollback, and
    #: counter/display merge are what differentiate; the pipe transport
    #: is exercised by the shard equivalence tests and CI smoke).
    shards: int = 0
    #: Round-trip the circuit through the Verilog emitter and frontend
    #: (:mod:`repro.netlist.verilog_emit` -> ``parse_verilog``) before
    #: compiling, and check the re-parse reaches a structural fixed
    #: point - differential coverage for every emitted grammar form.
    verilog_roundtrip: bool = False

    def describe(self) -> str:
        parts = [self.kind, self.engine]
        parts += [f"{k}={v}" for k, v in self.options]
        if self.through_cache:
            parts.append("cached")
        if self.profiled:
            parts.append("profiled")
        if self.checkpoint:
            parts.append("checkpointed")
        if self.verify_vcycles is not None:
            parts.append(f"verify={self.verify_vcycles}")
        if self.shards:
            parts.append(f"shards={self.shards}")
        if self.verilog_roundtrip:
            parts.append("verilog-roundtrip")
        if self.fault:
            parts.append(f"fault={self.fault}")
        return f"{self.name} ({', '.join(parts)})"


def _machine(name: str, engine: str = "strict", fault: str | None = None,
             through_cache: bool = False, profiled: bool = False,
             checkpoint: bool = False, verify_vcycles: int | None = None,
             shards: int = 0, verilog_roundtrip: bool = False,
             **options) -> OracleSpec:
    return OracleSpec(name, "machine", engine,
                      tuple(sorted(options.items())), fault, through_cache,
                      profiled, checkpoint, verify_vcycles, shards,
                      verilog_roundtrip)


#: Registry of every known oracle.  ``golden`` (the strict interpreter)
#: is the implicit reference all of these are compared against.
ORACLES: dict[str, OracleSpec] = {
    spec.name: spec for spec in [
        OracleSpec("interp-fast", "interp", "fast"),
        OracleSpec("baseline-serial", "baseline", "fast"),
        _machine("machine-strict"),
        _machine("machine-permissive", engine="permissive"),
        _machine("machine-fast", engine="fast"),
        _machine("machine-strict-nomem2reg", mem2reg_max_words=0),
        _machine("machine-strict-nocoalesce", coalesce_state=False),
        _machine("machine-strict-lpt", merge_strategy="lpt"),
        _machine("machine-strict-greedy", custom_selector="greedy"),
        _machine("machine-strict-nocustom", enable_custom_functions=False),
        _machine("machine-strict-jobs2", jobs=2),
        _machine("machine-strict-cached", through_cache=True),
        _machine("machine-fast-nomem2reg", engine="fast",
                 mem2reg_max_words=0),
        _machine("machine-fast-profiled", engine="fast", profiled=True),
        _machine("machine-fast-ckpt", engine="fast", checkpoint=True),
        _machine("machine-codegen", engine="codegen"),
        _machine("machine-codegen-trust0", engine="codegen",
                 verify_vcycles=0),
        _machine("machine-codegen-ckpt", engine="codegen",
                 checkpoint=True),
        _machine("machine-sharded", engine="fast", shards=2),
        _machine("machine-sharded-strict", shards=3),
        _machine("machine-sharded-ckpt", engine="fast", shards=2,
                 checkpoint=True),
        _machine("machine-verilog-roundtrip", verilog_roundtrip=True),
        # Fault-injection oracles: deliberately wrong semantics used by
        # the self-tests and as live demos of a failing replay.
        OracleSpec("golden-buggy-sub", "interp", "strict",
                   fault="netlist-sub-conditional"),
        _machine("machine-buggy-xor", fault="alu-xor-sticky-bit"),
    ]
}

#: Named oracle matrices for ``repro fuzz --matrix``.
MATRICES: dict[str, tuple[str, ...]] = {
    "quick": ("interp-fast", "baseline-serial", "machine-strict"),
    "engines": ("interp-fast", "baseline-serial", "machine-strict",
                "machine-permissive", "machine-fast",
                "machine-fast-profiled", "machine-fast-ckpt",
                "machine-codegen", "machine-codegen-trust0",
                "machine-codegen-ckpt", "machine-sharded"),
    "full": ("interp-fast", "baseline-serial", "machine-strict",
             "machine-permissive", "machine-fast",
             "machine-strict-nomem2reg", "machine-strict-nocoalesce",
             "machine-strict-lpt", "machine-strict-greedy",
             "machine-strict-nocustom", "machine-strict-jobs2",
             "machine-strict-cached", "machine-fast-nomem2reg",
             "machine-fast-profiled", "machine-fast-ckpt",
             "machine-codegen", "machine-codegen-trust0",
             "machine-codegen-ckpt", "machine-sharded",
             "machine-sharded-strict", "machine-sharded-ckpt",
             "machine-verilog-roundtrip"),
}


def matrix_oracles(matrix: str) -> list[OracleSpec]:
    """Resolve a matrix name or comma-separated oracle list to specs."""
    names: tuple[str, ...] = ()
    for item in matrix.split(","):
        item = item.strip()
        if not item:
            continue
        # Preset names expand in place, so "quick,golden-buggy-sub"
        # appends a fault oracle to the quick matrix.
        expansion = MATRICES.get(item, (item,))
        names += tuple(n for n in expansion if n not in names)
    unknown = [n for n in names if n not in ORACLES]
    if unknown:
        raise OracleError(
            f"unknown oracle(s) {', '.join(unknown)}; known: "
            f"{', '.join(sorted(ORACLES))}; matrices: "
            f"{', '.join(sorted(MATRICES))}")
    return [ORACLES[n] for n in names]


class OracleError(Exception):
    """Raised for harness misconfiguration (not for divergences)."""


@dataclass
class OracleResult:
    """Observable outcome of one oracle run."""

    displays: list[str] = field(default_factory=list)
    cycles: int = 0
    finished: bool = False
    error: str | None = None


@dataclass
class Divergence:
    """First observed disagreement between an oracle and the reference."""

    oracle: str
    cycle: int | None
    signal: str | None
    expected: str
    actual: str
    line_index: int | None = None
    detail: str = ""

    def describe(self) -> str:
        where = []
        if self.cycle is not None:
            where.append(f"cycle {self.cycle}")
        if self.signal is not None:
            where.append(f"signal {self.signal}")
        loc = ", ".join(where) or "end of run"
        text = (f"{self.oracle}: first divergence at {loc}: "
                f"expected {self.expected}, got {self.actual}")
        if self.detail:
            text += f" [{self.detail}]"
        return text

    def as_dict(self) -> dict:
        return {
            "oracle": self.oracle, "cycle": self.cycle,
            "signal": self.signal, "expected": self.expected,
            "actual": self.actual, "line_index": self.line_index,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Divergence":
        return cls(**data)


# ---------------------------------------------------------------------------
# Trace-line parsing: "@<cycle> <name>=<hex> ..." (generator format).
# ---------------------------------------------------------------------------

def _parse_trace(line: str):
    cycle = None
    rest = line
    if line.startswith("@"):
        head, _, tail = line.partition(" ")
        try:
            cycle = int(head[1:])
            rest = tail
        except ValueError:
            pass
    tokens = []
    for piece in rest.split():
        name, eq, value = piece.partition("=")
        if not eq or not name:
            return cycle, []
        tokens.append((name, value))
    return cycle, tokens


def _line_divergence(oracle: str, index: int, expected_line: str,
                     actual_line: str) -> Divergence:
    ref_cycle, ref_tokens = _parse_trace(expected_line)
    obs_cycle, obs_tokens = _parse_trace(actual_line)
    cycle = ref_cycle if ref_cycle is not None else obs_cycle
    if ref_cycle == obs_cycle and ref_tokens and obs_tokens:
        for (rn, rv), (on, ov) in zip(ref_tokens, obs_tokens):
            if rn != on or rv != ov:
                return Divergence(
                    oracle, cycle, rn, f"{rn}={rv}",
                    f"{on}={ov}" if on == rn else f"{on}={ov} (token)",
                    line_index=index,
                    detail=f"line {index}: {actual_line!r}")
        # Same prefix but different token counts.
        return Divergence(oracle, cycle, "$display", expected_line,
                          actual_line, line_index=index)
    if ref_cycle is not None and obs_cycle is not None \
            and ref_cycle != obs_cycle:
        return Divergence(oracle, min(ref_cycle, obs_cycle), "$cycle",
                          f"@{ref_cycle}", f"@{obs_cycle}",
                          line_index=index)
    return Divergence(oracle, cycle, "$display", expected_line,
                      actual_line, line_index=index)


def compare_results(oracle: str, reference: OracleResult,
                    observed: OracleResult) -> Divergence | None:
    """First divergence between reference and observed runs, or None."""
    if observed.error is not None:
        return Divergence(oracle, None, "$error", "clean run",
                          observed.error)
    for i, (a, b) in enumerate(zip(reference.displays, observed.displays)):
        if a != b:
            return _line_divergence(oracle, i, a, b)
    if len(reference.displays) != len(observed.displays):
        longer = (reference.displays if len(reference.displays)
                  > len(observed.displays) else observed.displays)
        cut = min(len(reference.displays), len(observed.displays))
        cycle, _ = _parse_trace(longer[cut])
        return Divergence(
            oracle, cycle, "$display-stream",
            f"{len(reference.displays)} display lines",
            f"{len(observed.displays)} display lines", line_index=cut,
            detail=f"first unmatched: {longer[cut]!r}")
    if reference.cycles != observed.cycles \
            or reference.finished != observed.finished:
        return Divergence(
            oracle, min(reference.cycles, observed.cycles), "$finish",
            f"cycles={reference.cycles} finished={reference.finished}",
            f"cycles={observed.cycles} finished={observed.finished}")
    return None


# ---------------------------------------------------------------------------
# Oracle execution.
# ---------------------------------------------------------------------------

class _NullContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _context_for(spec: OracleSpec):
    if spec.fault is None:
        return _NullContext()
    from ..machine.grid import COMPILED_ENGINES
    if spec.engine in COMPILED_ENGINES:
        raise OracleError(
            f"oracle {spec.name}: faults require a strict engine "
            f"(compiled engines resolve semantics at construction)")
    return fault_context(spec.fault)


def _roundtrip_maker(make_circuit: Callable[[], Circuit],
                     ) -> Callable[[], Circuit]:
    """Wrap a circuit factory in an emit->parse Verilog round trip.

    The returned factory yields ``parse_verilog(emit_verilog(c))`` - so
    the machine oracle compiles and runs the *re-ingested* circuit
    against the original's golden reference.  It also asserts the
    round trip reaches a structural fixed point: a second emit/parse
    must reproduce the same fingerprint as a third (the first pass may
    normalize, after that the mapping must be stable).
    """
    def make() -> Circuit:
        from ..netlist.verilog import parse_verilog
        from ..netlist.verilog_emit import emit_verilog
        first = parse_verilog(emit_verilog(make_circuit()))
        second = parse_verilog(emit_verilog(first))
        third = parse_verilog(emit_verilog(second))
        if second.fingerprint() != third.fingerprint():
            # RuntimeError (not OracleError) so the failure surfaces as
            # a replayable divergence instead of aborting the matrix.
            raise RuntimeError(
                "verilog emit/parse round trip is not idempotent: "
                f"{second.fingerprint()[:16]} != "
                f"{third.fingerprint()[:16]}")
        return first
    return make


def run_reference(circuit: Circuit, cycles: int) -> OracleResult:
    """Golden strict-interpreter run (the reference side)."""
    from ..netlist.interp import NetlistInterpreter
    interp = NetlistInterpreter(circuit)
    res = interp.run(cycles)
    return OracleResult(list(res.displays), res.cycles, res.finished)


def _compile_for(spec: OracleSpec, circuit: Circuit, config: MachineConfig,
                 compiled: dict):
    """Compile (or reuse) the program for a machine oracle."""
    from ..compiler import CompilerOptions, compile_circuit
    from ..machine.boot import serialize

    # The round-tripped circuit is a different artifact: it must not
    # share a binary with same-option oracles running the original.
    key = (spec.options, spec.through_cache, spec.verilog_roundtrip)
    if key in compiled:
        return compiled[key]
    options = CompilerOptions(config=config,
                              **{k: v for k, v in spec.options})
    if not spec.through_cache:
        result = compile_circuit(circuit, options)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as d:
            options.cache_dir = d
            cold = compile_circuit(circuit, options)
            warm = compile_circuit(circuit, options)
            if warm.report.cache is None \
                    or warm.report.cache["status"] != "hit":
                raise OracleError(
                    f"compile cache did not hit on identical input "
                    f"(status={warm.report.cache})")
            if serialize(cold.program) != serialize(warm.program):
                raise OracleError(
                    "compile cache returned a different binary")
            result = warm
    compiled[key] = result
    return result


def check_profile_invariants(profiler, mres) -> str | None:
    """First violated profiler/machine counter invariant, or ``None``.

    The ``machine-fast-profiled`` oracle runs this after every fuzz
    seed: per-core counters must sum to the machine-wide
    ``PerfCounters``, link hops to the hop total, and the per-Vcycle
    samples to the run totals.
    """
    totals = profiler.totals()
    counters = mres.counters
    pairs = [
        ("instructions", totals["instructions"], counters.instructions),
        ("sends vs messages", totals["sends"], counters.messages),
        ("exceptions", totals["exceptions"], counters.exceptions),
        ("stall attribution", totals["stall_caused"],
         counters.stall_cycles),
        ("link hops", sum(profiler.links.values()), profiler.total_hops),
        ("sample vcycles", sum(s.width for s in profiler.samples),
         mres.vcycles),
        ("sample instructions",
         sum(s.instructions for s in profiler.samples),
         counters.instructions),
        ("sample messages", sum(s.messages for s in profiler.samples),
         counters.messages),
        ("stall causes", profiler.stall_causes.get("total", 0),
         counters.stall_cycles),
    ]
    for name, got, want in pairs:
        if got != want:
            return f"{name}: profiler={got} machine={want}"
    return None


def run_oracle(spec: OracleSpec, make_circuit: Callable[[], Circuit],
               cycles: int, config: MachineConfig = FUZZ_CONFIG,
               compiled: dict | None = None) -> OracleResult:
    """Run one oracle; never raises for behaviour differences - errors
    are captured in ``OracleResult.error`` and become divergences."""
    compiled = compiled if compiled is not None else {}
    if spec.verilog_roundtrip:
        make_circuit = _roundtrip_maker(make_circuit)
    try:
        with _context_for(spec):
            if spec.kind == "interp":
                from ..netlist.interp import NetlistInterpreter
                res = NetlistInterpreter(make_circuit(),
                                         engine=spec.engine).run(cycles)
                return OracleResult(list(res.displays), res.cycles,
                                    res.finished)
            if spec.kind == "baseline":
                from ..baseline.serial import SerialSimulator
                res = SerialSimulator(make_circuit(),
                                      engine=spec.engine).run(cycles)
                return OracleResult(list(res.displays), res.cycles,
                                    res.finished)
            if spec.kind == "machine":
                import dataclasses

                from ..machine import Machine
                result = _compile_for(spec, make_circuit(), config,
                                      compiled)
                profiler = None
                if spec.profiled:
                    from ..obs import Profiler
                    profiler = Profiler()
                if spec.verify_vcycles is not None:
                    # Machine-side override only: the compiled binary is
                    # shared with the other oracles for this option set.
                    config = dataclasses.replace(
                        config,
                        fastpath_verify_vcycles=spec.verify_vcycles)
                if spec.shards:
                    # In-process transport: the fuzzer hammers the
                    # barrier protocol itself (partition, rollback,
                    # merge); the pipe transport is covered by the
                    # shard equivalence suite and the CI smoke job.
                    from ..machine import ShardedMachine
                    machine = ShardedMachine(
                        result.program, config, shards=spec.shards,
                        engine=spec.engine, profiler=profiler,
                        transport="local")
                else:
                    machine = Machine(result.program, config,
                                      engine=spec.engine,
                                      profiler=profiler)
                if spec.checkpoint:
                    from .. import checkpoint as ckpt
                    machine.run(max(1, cycles // 2))
                    snap = ckpt.decode_snapshot(
                        ckpt.encode_snapshot(ckpt.capture(machine)))
                    machine = ckpt.restore(snap, program=result.program,
                                           config=config,
                                           profiler=profiler,
                                           shards=spec.shards,
                                           transport="local")
                mres = machine.run(cycles)
                if profiler is not None:
                    problem = check_profile_invariants(profiler, mres)
                    if problem is not None:
                        return OracleResult(
                            error=f"profiler invariant violated "
                                  f"({problem})")
                return OracleResult(list(mres.displays), mres.vcycles,
                                    mres.finished)
            raise OracleError(f"unknown oracle kind {spec.kind!r}")
    except OracleError:
        raise
    except Exception as exc:  # captured as a divergence, not a crash
        detail = traceback.format_exc(limit=3).strip().splitlines()[-1]
        return OracleResult(error=f"{type(exc).__name__}: {exc} "
                                  f"({detail})")


def run_matrix(make_circuit: Callable[[], Circuit],
               oracles: Sequence[OracleSpec], cycles: int,
               config: MachineConfig = FUZZ_CONFIG,
               ) -> tuple[OracleResult, list[Divergence]]:
    """Run the reference plus every oracle; return all divergences.

    Machine-oracle compilations are shared across specs with identical
    compiler options (engines reuse the same binary, as in production).
    """
    reference = run_reference(make_circuit(), cycles)
    compiled: dict = {}
    divergences: list[Divergence] = []
    for spec in oracles:
        observed = run_oracle(spec, make_circuit, cycles, config, compiled)
        div = compare_results(spec.name, reference, observed)
        if div is not None:
            divergences.append(div)
    return reference, divergences


# ---------------------------------------------------------------------------
# Seed-level driver.
# ---------------------------------------------------------------------------

@dataclass
class SeedReport:
    """Outcome of fuzzing one seed through one oracle matrix."""

    seed: int
    params: GeneratorParams
    oracles: tuple[str, ...]
    divergences: list[Divergence]
    cycles_run: int
    elapsed: float

    @property
    def ok(self) -> bool:
        return not self.divergences


def fuzz_seed(seed: int, params: GeneratorParams | None = None,
              matrix: str = "quick", cycles: int | None = None,
              config: MachineConfig = FUZZ_CONFIG) -> SeedReport:
    """Generate the circuit for ``seed`` and differential-test it."""
    params = params or GeneratorParams()
    oracles = matrix_oracles(matrix)
    budget = cycles if cycles is not None else params.cycles + 8
    start = time.perf_counter()
    reference, divergences = run_matrix(
        lambda: generate(seed, params), oracles, budget, config)
    return SeedReport(seed, params, tuple(s.name for s in oracles),
                      divergences, reference.cycles,
                      time.perf_counter() - start)


# ---------------------------------------------------------------------------
# Batched oracle: B stimuli of one seed in one machine pass.
# ---------------------------------------------------------------------------

@dataclass
class BatchSeedReport:
    """Outcome of batch-fuzzing one seed: ``width`` init variants of the
    seed's circuit, each checked against its own golden reference."""

    seed: int
    width: int
    params: GeneratorParams
    lanes: tuple[str, ...]
    divergences: list[Divergence]
    cycles_run: int
    elapsed: float
    #: Resolved batch lowering ("list"/"numpy"), or None when the
    #: runner's serial fallback executed the lanes.
    lowering: str | None
    #: True when the rebind self-check failed and every lane was
    #: compiled fresh instead (itself a signal worth watching: it means
    #: compilation observed a boot value).
    rebind_fallback: bool

    @property
    def ok(self) -> bool:
        return not self.divergences


def fuzz_seed_batch(seed: int, width: int = 8,
                    params: GeneratorParams | None = None,
                    cycles: int | None = None,
                    config: MachineConfig = FUZZ_CONFIG,
                    engine: str = "codegen",
                    lowering: str = "auto") -> BatchSeedReport:
    """Differential-test ``width`` stimuli of ``seed``'s circuit in one
    batched machine pass.

    Lane 0 is the seed's own circuit; lanes 1..B-1 rebind the generated
    data registers to fresh per-lane boot values
    (:func:`~repro.fuzz.generator.lane_init_overrides`).  Each lane is
    compared - displays, cycle count, finish status - against its own
    golden strict-interpreter run, so one pass checks B seeds' worth of
    stimulus for the price of one compile plus one batched simulation.

    The compile is shared across lanes via :func:`~repro.machine.batch.
    rebind_reg_inits`; one rebound lane is byte-compared against a
    fresh compile of its variant circuit, and on any mismatch every
    lane falls back to its own fresh compile (recorded in
    ``rebind_fallback``).
    """
    from ..compiler import CompilerOptions, compile_circuit
    from ..machine.batch import BatchRunner, rebind_reg_inits
    from ..machine.boot import serialize
    from .generator import lane_init_overrides, variant_circuit

    params = params or GeneratorParams()
    budget = cycles if cycles is not None else params.cycles + 8
    start = time.perf_counter()

    base = generate(seed, params)
    overrides = [lane_init_overrides(base, seed, lane)
                 for lane in range(width)]
    goldens = [
        run_reference(variant_circuit(generate(seed, params), ov), budget)
        for ov in overrides]

    options = CompilerOptions(config=config)
    result = compile_circuit(base, options)
    rebind_fallback = False
    programs = [rebind_reg_inits(result, ov) if ov else result.program
                for ov in overrides]
    check = next((lane for lane, ov in enumerate(overrides) if ov), None)
    if check is not None:
        fresh = compile_circuit(
            variant_circuit(generate(seed, params), overrides[check]),
            options)
        if serialize(programs[check]) != serialize(fresh.program):
            rebind_fallback = True
            programs = [
                compile_circuit(
                    variant_circuit(generate(seed, params), ov),
                    options).program if ov else result.program
                for ov in overrides]

    runner = BatchRunner(programs, config, engine=engine,
                         lowering=lowering)
    outs = runner.run(budget)
    lane_names = []
    divergences: list[Divergence] = []
    for lane, (golden, out) in enumerate(zip(goldens, outs)):
        name = f"machine-{engine}-batch{width}[lane {lane}]"
        lane_names.append(name)
        if runner.errors[lane] is not None:
            observed = OracleResult(error=runner.errors[lane])
        else:
            observed = OracleResult(list(out.displays), out.vcycles,
                                    out.finished)
        div = compare_results(name, golden, observed)
        if div is not None:
            divergences.append(div)
    return BatchSeedReport(seed, width, params, tuple(lane_names),
                           divergences, goldens[0].cycles,
                           time.perf_counter() - start,
                           runner.lowering_used, rebind_fallback)
