"""Seeded fault injection: deliberately-wrong semantics for harness tests.

A differential fuzzer that has never caught a bug proves nothing.  This
module plants *known* bugs - a netlist op or an ISA ALU entry whose copied
semantics are subtly wrong - behind context managers, so the test suite
can assert the oracle harness detects the divergence, names the first bad
cycle and signal, and shrinks the trigger circuit to a minimal repro.

Faults are registered by name so corpus files recorded against a faulty
oracle replay deterministically (``repro fuzz --replay``): the corpus
entry stores the oracle name (e.g. ``golden-buggy-sub``), and the replay
re-applies the same named fault.

Patching is scoped and call-time only: the strict netlist interpreter
looks up ``evaluate_op`` per op and the strict machine engine looks up
``ALU_OPS`` per instruction, so only simulations *inside* the context
manager see the fault.  (The compiled ``fast`` engines resolve semantics
at construction time - faulty oracles therefore always run strict.)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from ..netlist.ir import Op, OpKind


@contextmanager
def patched_netlist_op(kind: OpKind,
                       mutate: Callable[[Op, int], int]) -> Iterator[None]:
    """Wrap the golden interpreter's ``evaluate_op`` for ops of ``kind``.

    ``mutate(op, correct_result)`` returns the (wrong) result to use.
    Only strict-engine interpreters constructed *and run* inside the
    context observe the fault.
    """
    from ..netlist import interp as interp_mod
    original = interp_mod.evaluate_op

    def wrapper(op, values, memories=None):
        result = original(op, values, memories)
        if op.kind is kind:
            return mutate(op, result) & ((1 << op.result.width) - 1)
        return result

    interp_mod.evaluate_op = wrapper
    try:
        yield
    finally:
        interp_mod.evaluate_op = original


@contextmanager
def patched_alu_op(op_name: str,
                   mutate: Callable[[int, int, int], int]) -> Iterator[None]:
    """Wrap one entry of the ISA ALU table (:data:`repro.isa.semantics.
    ALU_OPS`).  ``mutate(a, b, correct_result)`` returns the wrong 16-bit
    result.  Machines must be constructed inside the context (the strict
    engine resolves the table per call; compiled bodies resolve it at
    construction)."""
    from ..isa import semantics
    original = semantics.ALU_OPS[op_name]
    semantics.ALU_OPS[op_name] = (
        lambda a, b: mutate(a, b, original(a, b)) & 0xFFFF)
    try:
        yield
    finally:
        semantics.ALU_OPS[op_name] = original


# ---------------------------------------------------------------------------
# Canned faults (name -> zero-arg context-manager factory).
# ---------------------------------------------------------------------------

def _netlist_sub_off_by_one():
    # SUB drops one when the subtrahend's low octal digit is 5: rare
    # enough that the fuzzer must hunt for a trigger, common enough that
    # a few hundred seeds always contain one.
    def mutate(op, result):
        return result - 1
    return patched_netlist_op(OpKind.SUB, mutate)


def _netlist_sub_conditional():
    def mutate(op, result):
        return result - 1 if (result & 0x7) == 5 else result
    return patched_netlist_op(OpKind.SUB, mutate)


def _alu_xor_sticky_bit():
    # ISA-level XOR wrongly sets bit 0 when the first operand's low
    # nibble is 3 - a "copied semantics table with one wrong row".
    def mutate(a, b, result):
        return result | 1 if (a & 0xF) == 0x3 else result
    return patched_alu_op("XOR", mutate)


FAULTS: dict[str, Callable[[], object]] = {
    "netlist-sub-off-by-one": _netlist_sub_off_by_one,
    "netlist-sub-conditional": _netlist_sub_conditional,
    "alu-xor-sticky-bit": _alu_xor_sticky_bit,
}


def fault_context(name: str):
    """Context manager applying the named canned fault."""
    try:
        return FAULTS[name]()
    except KeyError:
        raise ValueError(f"unknown fault {name!r}; known: "
                         f"{', '.join(sorted(FAULTS))}") from None
