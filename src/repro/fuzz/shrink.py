"""Delta-debugging minimizer for failing fuzz circuits.

Given a circuit and a *predicate* (a function that re-runs the failing
oracle and returns the :class:`~repro.fuzz.oracle.Divergence` if the
circuit still fails), :func:`shrink` greedily applies semantics-shrinking
rewrites until no rewrite preserves the failure:

* drop whole effects (``$finish``, extra displays) and display arguments;
* drop memories and registers, freezing them to observed values;
* replace combinational op cones with constants - chunked ddmin-style
  first (half, quarter, ... of all ops at once), then per-op.

The key trick making single-digit-op repros reachable is *value
freezing*: a replaced op becomes a ``CONST`` of the value the reference
interpreter observed on that wire at the divergence cycle, so data-
dependent bugs (wrong result only for particular operand values) keep
firing while their upstream logic evaporates.  Dead code is swept after
every accepted rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..netlist.interp import NetlistInterpreter
from ..netlist.ir import (
    Circuit,
    CircuitError,
    Display,
    Finish,
    Op,
    OpKind,
    Wire,
    mask,
)
from ..netlist.serialize import copy_circuit
from .oracle import Divergence

Predicate = Callable[[Circuit], "Divergence | None"]


# ---------------------------------------------------------------------------
# Dead-code elimination.
# ---------------------------------------------------------------------------

def dce(circuit: Circuit) -> Circuit:
    """Remove ops, registers, and memories unreachable from any effect,
    output, or live piece of state.  Returns a new circuit."""
    producers = {op.result.name: op for op in circuit.ops}
    live_ops: set[str] = set()
    live_regs: set[str] = set()
    live_mems: set[str] = set()

    worklist = [w.name for w in circuit.effect_wires()]
    worklist += [w.name for w in circuit.outputs.values()]
    while worklist:
        name = worklist.pop()
        op = producers.get(name)
        if op is not None:
            if name in live_ops:
                continue
            live_ops.add(name)
            worklist += [a.name for a in op.args]
            if op.kind is OpKind.MEMRD and op.memory not in live_mems:
                live_mems.add(op.memory)
                for wr in circuit.memories[op.memory].writes:
                    worklist += [wr.addr.name, wr.data.name, wr.enable.name]
        elif name in circuit.registers:
            if name in live_regs:
                continue
            live_regs.add(name)
            nxt = circuit.registers[name].next_value
            if nxt is not None:
                worklist.append(nxt.name)
        # else: input wire - nothing upstream.

    out = Circuit(circuit.name)
    out.ops = [op for op in circuit.ops if op.result.name in live_ops]
    out.registers = {n: r for n, r in circuit.registers.items()
                     if n in live_regs}
    out.memories = {n: m for n, m in circuit.memories.items()
                    if n in live_mems}
    out.inputs = dict(circuit.inputs)
    out.outputs = dict(circuit.outputs)
    out.effects = list(circuit.effects)
    return out


# ---------------------------------------------------------------------------
# Observed values at the divergence cycle (for value freezing).
# ---------------------------------------------------------------------------

def _observed_values(circuit: Circuit, cycle: int | None) -> dict[str, int]:
    """Reference wire values on ``cycle`` (default: the first cycle)."""
    target = max(0, cycle or 0)
    try:
        interp = NetlistInterpreter(copy_circuit(circuit))
        for _ in range(target + 1):
            if interp.finished:
                break
            interp.step()
        return dict(interp.trace)
    except Exception:
        return {}


# ---------------------------------------------------------------------------
# Rewrites.  Each candidate is a zero-arg callable producing a new
# Circuit (or None if inapplicable), so nothing is built until tried.
# ---------------------------------------------------------------------------

def _const_for(wire: Wire, values: dict[str, int]) -> Op:
    value = values.get(wire.name, 0) & mask(wire.width)
    return Op(Wire(wire.name, wire.width), OpKind.CONST,
              attrs={"value": value})


def _replace_ops_with_consts(circuit: Circuit, names: set[str],
                             values: dict[str, int]) -> Circuit:
    out = copy_circuit(circuit)
    out.ops = [
        _const_for(op.result, values) if op.result.name in names else op
        for op in out.ops
    ]
    return out


def _drop_effect(circuit: Circuit, index: int) -> Circuit:
    out = copy_circuit(circuit)
    del out.effects[index]
    return out


def _drop_register(circuit: Circuit, name: str,
                   values: dict[str, int]) -> Circuit:
    """Replace a register read with a CONST of its observed value."""
    out = copy_circuit(circuit)
    reg = out.registers.pop(name)
    frozen = values.get(name, reg.init)
    out.ops.append(Op(Wire(name, reg.width), OpKind.CONST,
                      attrs={"value": frozen & mask(reg.width)}))
    return out


def _drop_memory(circuit: Circuit, name: str,
                 values: dict[str, int]) -> Circuit:
    """Remove a memory, freezing each of its reads to observed values."""
    out = copy_circuit(circuit)
    out.memories.pop(name)
    out.ops = [
        _const_for(op.result, values)
        if op.kind is OpKind.MEMRD and op.memory == name else op
        for op in out.ops
    ]
    return out


def _substitute_wire(circuit: Circuit, old: str, new: Wire) -> Circuit:
    """Rewrite every use of wire ``old`` to ``new`` (same width)."""
    def sub(wire: Wire) -> Wire:
        return new if wire.name == old else wire

    out = Circuit(circuit.name)
    out.ops = [
        op if all(a.name != old for a in op.args)
        else Op(op.result, op.kind, tuple(sub(a) for a in op.args),
                dict(op.attrs))
        for op in circuit.ops
    ]
    for name, reg in circuit.registers.items():
        copy = type(reg)(reg.name, reg.width, reg.init, reg.next_value)
        if copy.next_value is not None:
            copy.next_value = sub(copy.next_value)
        out.registers[name] = copy
    for name, mem in circuit.memories.items():
        copy = type(mem)(mem.name, mem.width, mem.depth, tuple(mem.init),
                         global_hint=mem.global_hint,
                         sram_hint=mem.sram_hint)
        copy.writes = [type(wr)(sub(wr.addr), sub(wr.data), sub(wr.enable))
                       for wr in mem.writes]
        out.memories[name] = copy
    out.inputs = dict(circuit.inputs)
    out.outputs = {n: sub(w) for n, w in circuit.outputs.items()}
    for eff in circuit.effects:
        if isinstance(eff, Display):
            out.effects.append(Display(sub(eff.enable), eff.fmt,
                                       tuple(sub(a) for a in eff.args)))
        elif isinstance(eff, Finish):
            out.effects.append(Finish(sub(eff.enable)))
        else:
            out.effects.append(type(eff)(sub(eff.enable), sub(eff.cond),
                                         eff.message))
    return out


def _forward_op(circuit: Circuit, index: int, arg: Wire) -> Circuit:
    """Delete op ``index``, rewiring its uses to one same-width arg."""
    op = circuit.ops[index]
    out = _substitute_wire(circuit, op.result.name, arg)
    out.ops = [o for o in out.ops if o.result.name != op.result.name]
    return out


def _register_passthrough(circuit: Circuit, name: str) -> Circuit | None:
    """Replace a register read with its next-value wire (drops one cycle
    of latency; invalid candidates - combinational cycles - are rejected
    by the predicate run)."""
    reg = circuit.registers[name]
    if reg.next_value is None or reg.next_value.name == name:
        return None
    out = _substitute_wire(circuit, name, reg.next_value)
    del out.registers[name]
    return out


def _fmt_units(fmt: str) -> list[tuple[str, str | None]]:
    """Split a display format into (literal, conversion) units; the final
    unit's conversion is None.  ``%%`` stays inside literals."""
    units: list[tuple[str, str | None]] = []
    lit = ""
    i = 0
    while i < len(fmt):
        if fmt[i] != "%":
            lit += fmt[i]
            i += 1
            continue
        spec = "%"
        i += 1
        while i < len(fmt) and fmt[i] in "0123456789":
            spec += fmt[i]
            i += 1
        if i < len(fmt) and fmt[i] == "%":
            lit += "%%"
            i += 1
            continue
        if i < len(fmt):
            spec += fmt[i]
            i += 1
            units.append((lit, spec))
            lit = ""
    units.append((lit, None))
    return units


def _retarget_display_arg(circuit: Circuit, eff_index: int, arg_index: int,
                          new_wire: Wire) -> Circuit:
    out = copy_circuit(circuit)
    eff = out.effects[eff_index]
    args = tuple(new_wire if i == arg_index else a
                 for i, a in enumerate(eff.args))
    out.effects[eff_index] = Display(eff.enable, eff.fmt, args)
    return out


def _drop_display_arg(circuit: Circuit, eff_index: int,
                      arg_index: int) -> Circuit | None:
    out = copy_circuit(circuit)
    eff = out.effects[eff_index]
    if not isinstance(eff, Display) or len(eff.args) <= 1:
        return None
    units = _fmt_units(eff.fmt)
    if len(units) - 1 != len(eff.args):  # conversions != args: bail out
        return None
    kept = [u for i, u in enumerate(units[:-1]) if i != arg_index]
    fmt = "".join(lit + conv for lit, conv in kept) + units[-1][0]
    args = tuple(a for i, a in enumerate(eff.args) if i != arg_index)
    out.effects[eff_index] = Display(eff.enable, fmt, args)
    return out


def _chunks(items: list, size: int) -> Iterator[list]:
    for i in range(0, len(items), size):
        yield items[i:i + size]


def _candidates(circuit: Circuit,
                values: dict[str, int]) -> Iterator[Circuit | None]:
    """Most-aggressive-first stream of mutated copies of ``circuit``."""
    # 1. Whole effects (keep at least one - the observation channel).
    if len(circuit.effects) > 1:
        for i in range(len(circuit.effects) - 1, -1, -1):
            yield _drop_effect(circuit, i)
    else:
        # A lone Finish can still go (the runner bounds cycles anyway).
        if circuit.effects and isinstance(circuit.effects[0], Finish):
            yield _drop_effect(circuit, 0)

    # 2. Memories and registers, frozen to observed values.
    for name in list(circuit.memories):
        yield _drop_memory(circuit, name, values)
    for name in list(circuit.registers):
        yield _drop_register(circuit, name, values)

    # 3. Op cones -> constants, ddmin-style: big chunks first.
    replaceable = [op.result.name for op in circuit.ops
                   if op.kind is not OpKind.CONST]
    size = max(1, len(replaceable) // 2)
    while size >= 1:
        for chunk in _chunks(replaceable, size):
            yield _replace_ops_with_consts(circuit, set(chunk), values)
        if size == 1:
            break
        size //= 2

    # 4. Retarget display arguments one producer-step upstream (display
    #    renders any width, so width-adjustment chains between the bug
    #    site and the observation can be stepped over and then DCE'd).
    producers = {op.result.name: op for op in circuit.ops}
    for ei, eff in enumerate(circuit.effects):
        if not isinstance(eff, Display):
            continue
        for ai, arg in enumerate(eff.args):
            source = producers.get(arg.name)
            if source is None and arg.name in circuit.registers:
                source_next = circuit.registers[arg.name].next_value
                if source_next is not None:
                    source = producers.get(source_next.name)
            for upstream in (source.args if source is not None else ()):
                yield _retarget_display_arg(circuit, ei, ai, upstream)

    # 5. Forwarding: delete an op by rewiring uses to a same-width arg
    #    (collapses mux/select chains), and register passthroughs.
    for i in range(len(circuit.ops) - 1, -1, -1):
        op = circuit.ops[i]
        for arg in op.args:
            if arg.width == op.result.width:
                yield _forward_op(circuit, i, arg)
    for name in list(circuit.registers):
        yield _register_passthrough(circuit, name)

    # 6. Individual display arguments.
    for ei, eff in enumerate(circuit.effects):
        if isinstance(eff, Display):
            for ai in range(len(eff.args) - 1, -1, -1):
                yield _drop_display_arg(circuit, ei, ai)


# ---------------------------------------------------------------------------
# The shrink loop.
# ---------------------------------------------------------------------------

@dataclass
class ShrinkResult:
    """Outcome of :func:`shrink`."""

    circuit: Circuit
    divergence: Divergence
    initial_ops: int
    final_ops: int
    tests: int          # predicate evaluations spent
    accepted: int       # rewrites that kept the failure

    def summary(self) -> str:
        return (f"shrunk {self.initial_ops} -> {self.final_ops} IR ops "
                f"({self.accepted} rewrites, {self.tests} oracle runs); "
                f"{self.divergence.describe()}")


def shrink(circuit: Circuit, predicate: Predicate,
           max_tests: int = 800) -> ShrinkResult:
    """Minimize ``circuit`` while ``predicate`` keeps reporting a
    divergence.  Greedy first-improvement search with a hard budget of
    ``max_tests`` predicate evaluations."""
    initial_ops = len(circuit.ops)
    base = dce(copy_circuit(circuit))
    divergence = predicate(base)
    if divergence is None:
        raise ValueError("circuit does not reproduce the divergence "
                         "(predicate returned None on the input)")
    tests = 1
    accepted = 0
    improved = True
    while improved and tests < max_tests:
        improved = False
        # Freeze values at the divergence cycle; once shrinking has
        # dropped the @cycle display field, the line index (one display
        # per cycle in generated circuits) is the best remaining proxy.
        freeze_at = (divergence.cycle if divergence.cycle is not None
                     else divergence.line_index)
        values = _observed_values(base, freeze_at)
        for candidate in _candidates(base, values):
            if tests >= max_tests:
                break
            if candidate is None:
                continue
            try:
                candidate.validate()
            except CircuitError:
                continue
            tests += 1
            try:
                div = predicate(candidate)
            except Exception:
                continue
            if div is not None:
                base = dce(candidate)
                divergence = div
                accepted += 1
                improved = True
                break
    return ShrinkResult(base, divergence, initial_ops, len(base.ops),
                        tests, accepted)


def oracle_predicate(oracle_name: str, cycles: int,
                     config=None) -> Predicate:
    """Predicate re-running one registry oracle against the reference."""
    from .oracle import FUZZ_CONFIG, ORACLES, compare_results, run_oracle
    from .oracle import run_reference
    spec = ORACLES[oracle_name]
    config = config or FUZZ_CONFIG

    def predicate(circuit: Circuit) -> Divergence | None:
        reference = run_reference(circuit, cycles)
        observed = run_oracle(spec, lambda: circuit, cycles, config, {})
        return compare_results(spec.name, reference, observed)

    return predicate
