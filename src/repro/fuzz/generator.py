"""Seeded random-circuit generation for differential fuzzing.

Two generations of generators live here:

* :func:`generate` + :class:`GeneratorParams` - the fuzzing subsystem's
  full-surface generator.  One seed deterministically produces one closed
  circuit exercising every netlist IR construct the compiler must get
  right: registers of odd widths, memories with read/write ports, dynamic
  shifts, wide arithmetic with explicit trunc/zext/sext, mux trees, and
  the dense bitwise clusters that custom-function synthesis fuses.  Every
  cycle the circuit displays ``@<cycle> <name>=<hex> ...`` for all
  architectural state, so two simulators agree iff their display streams
  agree - and the oracle harness can name the first mismatching cycle and
  signal straight from the streams.

* the legacy helpers (:func:`random_circuit`,
  :func:`random_memory_circuit`, and the small named designs) - grown in
  ``tests/util_circuits.py`` and ``tests/test_fuzz_compiler.py``, folded
  in here so library code and tests share one implementation.  Their
  per-seed output is unchanged.
"""

from __future__ import annotations

import random
import re
from dataclasses import asdict, dataclass, replace

from ..netlist import CircuitBuilder, Signal
from ..netlist.ir import Circuit


# ---------------------------------------------------------------------------
# Small named designs (test fixtures).
# ---------------------------------------------------------------------------

def counter_circuit(limit=9, width=8, display=True) -> Circuit:
    m = CircuitBuilder("counter")
    count = m.register("count", width)
    count.next = (count + 1).trunc(width)
    if display:
        m.display(~count[0], "%d is an even number", count)
        m.display(count[0], "%d is an odd number", count)
    m.finish(count == limit)
    return m.build()


def accumulator_circuit(width=32, limit=50) -> Circuit:
    """Wide arithmetic: exercises carry chains and multi-limb compare."""
    m = CircuitBuilder("accumulator")
    cyc = m.register("cyc", 16)
    acc = m.register("acc", width)
    cyc.next = (cyc + 1).trunc(16)
    acc.next = (acc + cyc.zext(width) * 3).trunc(width)
    done = cyc == limit
    m.display(done, "acc=%d", acc)
    m.finish(done)
    return m.build()


def memory_circuit(depth=16, cycles=40) -> Circuit:
    """Scratchpad traffic: write then read back with assertion."""
    m = CircuitBuilder("memtest")
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)
    mem = m.memory("buf", width=16, depth=depth)
    addr = cyc.trunc(4) if depth == 16 else cyc.trunc(8)
    mem.write(addr, (cyc * 7).trunc(16), enable=m.const(1, 1))
    rd = mem.read(addr)
    # Value read this cycle is what was written `depth` cycles ago.
    expected = ((cyc - depth) * 7).trunc(16)
    valid = cyc.geu(depth)
    m.check(valid, rd == expected, "memory readback mismatch")
    m.finish(cyc == cycles)
    return m.build()


def logic_heavy_circuit(stages=6, limit=30) -> Circuit:
    """Long bitwise chains: custom-function synthesis fodder."""
    m = CircuitBuilder("logic_heavy")
    cyc = m.register("cyc", 16)
    state = m.register("state", 16, init=0xACE1)
    cyc.next = (cyc + 1).trunc(16)
    x = state
    for i in range(stages):
        x = ((x & m.const(0xF0F0 >> (i % 4), 16))
             | (x ^ m.const(0x1234 + i, 16)))
    # LFSR-ish mixing to keep the state changing.
    state.next = (x ^ (state >> 1)).trunc(16)
    m.display(cyc == limit, "state=%x", state)
    m.finish(cyc == limit)
    return m.build()


# ---------------------------------------------------------------------------
# Legacy seeded generators (per-seed output preserved).
# ---------------------------------------------------------------------------

_BIN_OPS = ["add", "sub", "and", "or", "xor", "mul", "eq", "ltu", "lts",
            "mux", "cat", "shl_const", "shr_const"]


def random_circuit(seed, n_ops=30, n_regs=4, max_width=36,
                   cycles=None) -> Circuit:
    """Seeded random closed circuit with a per-cycle state display.

    The display of every register value each cycle makes interpreter
    comparisons exhaustive: two simulators agree iff their display streams
    agree.
    """
    rng = random.Random(seed)
    m = CircuitBuilder(f"random_{seed}")
    regs = []
    for i in range(n_regs):
        width = rng.randint(1, max_width)
        regs.append(m.register(f"r{i}", width,
                               init=rng.getrandbits(width)))
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)

    pool = list(regs) + [cyc]
    for _ in range(n_ops):
        op = rng.choice(_BIN_OPS)
        a = rng.choice(pool)
        b = rng.choice(pool)
        try:
            if op == "add":
                value = a + b
            elif op == "sub":
                value = a - b
            elif op == "and":
                value = a & b
            elif op == "or":
                value = a | b
            elif op == "xor":
                value = a ^ b
            elif op == "mul":
                value = (a.mul_wide(b)).trunc(
                    min(a.width + b.width, max_width))
            elif op == "eq":
                value = a == b
            elif op == "ltu":
                value = a.ltu(b)
            elif op == "lts":
                value = a.lts(b)
            elif op == "mux":
                sel = rng.choice(pool)
                value = m.mux(sel[0], a, b.zext(max(a.width, b.width))
                              if b.width < a.width else b.trunc(a.width)
                              if b.width > a.width else b)
            elif op == "cat":
                value = m.cat(a, b)
                if value.width > max_width:
                    value = value.trunc(max_width)
            elif op == "shl_const":
                value = a << rng.randint(0, max(0, a.width - 1))
            else:
                value = a >> rng.randint(0, max(0, a.width - 1))
        except Exception:
            continue
        pool.append(value)

    # Bind each register's next value to a random same-width expression.
    for reg in regs:
        cands = [p for p in pool if p is not reg]
        src = rng.choice(cands)
        if src.width > reg.width:
            reg.next = src.trunc(reg.width)
        elif src.width < reg.width:
            reg.next = src.zext(reg.width)
        else:
            reg.next = src

    always = m.const(1, 1)
    m.display(always, "trace " + " ".join(["%x"] * len(regs)), *regs)
    m.finish(cyc == (cycles or 8))
    return m.build()


def random_memory_circuit(seed, n_regs=3, n_ops=12, mem_depth=8,
                          cycles=10) -> Circuit:
    """Random circuit plus a read/write memory in the loop."""
    rng = random.Random(seed)
    m = CircuitBuilder(f"fuzzmem_{seed}")
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)
    regs = [m.register(f"r{i}", 16, init=rng.getrandbits(16))
            for i in range(n_regs)]
    mem = m.memory("mem", 16, mem_depth,
                   init=[rng.getrandbits(16) for _ in range(mem_depth)])

    abits = (mem_depth - 1).bit_length()
    pool = list(regs) + [cyc]
    for _ in range(n_ops):
        a, b = rng.choice(pool), rng.choice(pool)
        pool.append(rng.choice([
            lambda: (a + b).trunc(16),
            lambda: a ^ b,
            lambda: (a * 3).trunc(16),
            lambda: m.mux(a[0], a, b),
            lambda: a >> b.trunc(3),
        ])())
    rd = mem.read(rng.choice(pool).trunc(abits))
    pool.append(rd)
    mem.write(rng.choice(pool).trunc(abits), rng.choice(pool),
              enable=rng.choice(pool)[0])
    for reg in regs:
        reg.next = rng.choice(pool).trunc(16)

    m.display(m.const(1, 1), "t %x %x %x %x", *regs, rd)
    m.finish(cyc == cycles)
    return m.build()


# ---------------------------------------------------------------------------
# Full-surface fuzzing generator.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GeneratorParams:
    """Knobs of :func:`generate`; serialized verbatim into corpus files."""

    n_regs: int = 4
    n_ops: int = 40
    max_width: int = 48
    n_mems: int = 1
    mem_depth: int = 8          # must be a power of two
    cycles: int = 16
    # Feature toggles (all on by default; the CLI exposes them for
    # bisecting which construct class triggers a divergence).
    wide_arith: bool = True
    dynamic_shifts: bool = True
    mux_trees: bool = True
    bitwise_clusters: bool = True
    memories: bool = True

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GeneratorParams":
        return cls(**data)

    def scaled(self, **overrides) -> "GeneratorParams":
        return replace(self, **overrides)


_LANE_REG = re.compile(r"^r\d+$")


def lane_init_overrides(circuit: Circuit, seed: int,
                        lane: int) -> dict[str, int]:
    """Deterministic per-lane stimulus for batched fuzzing: new boot
    values for ``circuit``'s generated data registers (``r<i>``).

    Lane 0 keeps the seed's own inits (so the batch always contains the
    exact single-run circuit); other lanes draw fresh width-masked
    values from a stream keyed on ``(seed, lane)``.  The cycle counter
    is deliberately left alone: all lanes of a fuzz batch then share
    the same ``$finish`` Vcycle, which keeps divergence masking a
    corner case rather than the common path (it has its own dedicated
    tests).
    """
    if lane == 0:
        return {}
    rng = random.Random((seed * 0x9E3779B1 + lane) & 0xFFFFFFFF)
    overrides: dict[str, int] = {}
    for name in sorted(circuit.registers):
        if _LANE_REG.match(name):
            overrides[name] = rng.getrandbits(
                circuit.registers[name].width)
    return overrides


def variant_circuit(circuit: Circuit, overrides: dict[str, int]) -> Circuit:
    """Rewrite register boot values in place (structure untouched) and
    return ``circuit``.  Callers pass a freshly generated circuit; the
    result is what a fuzz lane's golden reference simulates."""
    for name, init in overrides.items():
        reg = circuit.registers.get(name)
        if reg is not None:
            reg.init = init & ((1 << reg.width) - 1)
    return circuit


def _fit(rng: random.Random, sig: Signal, width: int) -> Signal:
    """Resize ``sig`` to ``width`` (random zext/sext choice on widening)."""
    if sig.width > width:
        return sig.trunc(width)
    if sig.width < width:
        return sig.sext(width) if rng.random() < 0.3 else sig.zext(width)
    return sig


def generate(seed: int, params: GeneratorParams | None = None) -> Circuit:
    """Deterministically generate one closed fuzz circuit for ``seed``.

    The circuit is self-stimulating (no inputs): a 16-bit cycle counter,
    ``n_regs`` registers of random widths, and ``n_mems`` memories evolve
    under a soup of ``n_ops`` random expression clusters drawn from the
    whole IR surface.  Every cycle one display line reports the cycle
    number and all observable state; ``$finish`` fires at
    ``params.cycles``.
    """
    params = params or GeneratorParams()
    if params.mem_depth & (params.mem_depth - 1):
        raise ValueError("mem_depth must be a power of two")
    rng = random.Random(seed)
    m = CircuitBuilder(f"fuzz_{seed}")

    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)
    regs = []
    for i in range(params.n_regs):
        width = rng.randint(1, params.max_width)
        regs.append(m.register(f"r{i}", width, init=rng.getrandbits(width)))

    mems = []
    if params.memories:
        for i in range(params.n_mems):
            width = rng.randint(4, 24)
            mems.append(m.memory(
                f"m{i}", width, params.mem_depth,
                init=[rng.getrandbits(width)
                      for _ in range(params.mem_depth)]))

    pool: list[Signal] = list(regs) + [cyc]
    max_width = params.max_width

    def pick() -> Signal:
        return rng.choice(pool)

    def emit_arith() -> Signal:
        a, b = pick(), pick()
        choice = rng.randrange(5)
        if choice == 0:
            return (a + b).trunc(min(max(a.width, b.width), max_width))
        if choice == 1:
            return (a - b).trunc(min(max(a.width, b.width), max_width))
        if choice == 2 and params.wide_arith:
            # Full-width product, resized back with explicit trunc/sext.
            wide = a.mul_wide(b)
            target = rng.randint(1, min(wide.width, max_width))
            return _fit(rng, wide, target)
        if choice == 3 and params.wide_arith:
            # Carry-preserving addition across a width boundary.
            return _fit(rng, a.add_wide(b),
                        rng.randint(1, min(a.width + 1, max_width)))
        return (a * b).trunc(min(max(a.width, b.width), max_width))

    def emit_bitwise_cluster() -> Signal:
        # A dense same-width logic cone: custom-function fusion fodder.
        w = rng.randint(2, min(20, max_width))
        sigs = [_fit(rng, pick(), w) for _ in range(rng.randint(3, 4))]
        acc = sigs[0]
        for _ in range(rng.randint(3, 7)):
            other = rng.choice(sigs)
            acc = rng.choice([
                lambda: acc & other,
                lambda: acc | other,
                lambda: acc ^ other,
                lambda: ~acc,
            ])()
        return acc

    def emit_shift() -> Signal:
        a = pick()
        if params.dynamic_shifts and rng.random() < 0.7:
            amt = _fit(rng, pick(), min(5, max(1, a.width.bit_length())))
            kind = rng.randrange(3)
            if kind == 0:
                return (a << amt).trunc(a.width)
            if kind == 1:
                return a >> amt
            return a.ashr(amt)
        return a >> rng.randint(0, max(0, a.width - 1))

    def emit_compare() -> Signal:
        a, b = pick(), pick()
        return rng.choice([
            lambda: a == b,
            lambda: a != b,
            lambda: a.ltu(b),
            lambda: a.lts(b),
        ])()

    def emit_mux_tree() -> Signal:
        n = rng.randint(3, 6)
        choices = [pick() for _ in range(n)]
        index = _fit(rng, pick(), max(2, (n - 1).bit_length()))
        return m.select(index, choices)

    def emit_structural() -> Signal:
        a = pick()
        choice = rng.randrange(4)
        if choice == 0:
            value = m.cat(a, pick())
            return (value.trunc(max_width) if value.width > max_width
                    else value)
        if choice == 1 and a.width > 1:
            off = rng.randint(0, a.width - 1)
            return a.bits(off, rng.randint(1, a.width - off))
        if choice == 2:
            return rng.choice([a.any, a.all, a.parity])()
        return m.mux(pick()[0], a, _fit(rng, pick(), a.width))

    def emit_memrd() -> Signal:
        mem = rng.choice(mems)
        abits = (mem.depth - 1).bit_length()
        return mem.read(_fit(rng, pick(), abits))

    emitters = [emit_arith, emit_shift, emit_compare, emit_structural]
    if params.bitwise_clusters:
        emitters.append(emit_bitwise_cluster)
    if params.mux_trees:
        emitters.append(emit_mux_tree)
    if mems:
        emitters.append(emit_memrd)

    for _ in range(params.n_ops):
        pool.append(rng.choice(emitters)())

    # Memory write ports: 1-2 per memory, operands from the pool.  Port
    # order is semantic (later ports win conflicts) - deliberately
    # exercised by occasionally writing twice.
    observed: list[tuple[str, Signal]] = []
    for mem in mems:
        abits = (mem.depth - 1).bit_length()
        for _ in range(rng.randint(1, 2)):
            mem.write(_fit(rng, pick(), abits),
                      _fit(rng, pick(), mem.width),
                      enable=pick()[0])
        observed.append((mem.name, mem.read(_fit(rng, pick(), abits))))

    # Bind every register's next value to a random pool expression.
    for reg in regs:
        src = rng.choice([p for p in pool if p is not reg])
        reg.next = _fit(rng, src, reg.width)

    # Exhaustive observation: cycle number plus all registers and one
    # read port per memory, named so divergences localize to a signal.
    names = [f"r{i}" for i in range(len(regs))] + [n for n, _ in observed]
    values = list(regs) + [s for _, s in observed]
    fmt = "@%d " + " ".join(f"{name}=%x" for name in names)
    m.display(m.const(1, 1), fmt, cyc, *values)
    m.finish(cyc == params.cycles)
    return m.build()
