"""Replayable fuzz corpus: one JSON file per (minimized) circuit.

A corpus entry is self-contained: it stores the seed and generator
parameters that produced the original circuit *and* the reduced IR
itself, so replay needs neither the generator version that found the bug
nor the shrinker - ``repro fuzz --replay <file>`` deserializes the IR
and re-runs the recorded oracle (or any matrix) against the golden
interpreter, deterministically reproducing the recorded divergence.

Clean entries (``divergence: null``) double as regression seeds: the
tier-1 suite replays everything under ``tests/corpus/`` against the full
oracle matrix on every run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from ..netlist.ir import Circuit
from ..netlist.serialize import circuit_from_dict, circuit_to_dict
from .generator import GeneratorParams
from .oracle import Divergence

FORMAT = "repro-fuzz-corpus/v1"


@dataclass
class CorpusEntry:
    """Everything needed to reproduce one fuzzing outcome."""

    circuit: Circuit
    cycles: int                       # run budget the finding used
    seed: int | None = None           # generator seed (None: hand-made)
    params: GeneratorParams | None = None
    matrix: str = "quick"             # matrix the finding ran against
    oracle: str | None = None         # the diverging oracle, if any
    divergence: Divergence | None = None
    note: str = ""

    @property
    def name(self) -> str:
        return f"{self.circuit.name}-{self.circuit.fingerprint()[:12]}"

    def replay_command(self, path: str) -> str:
        return f"python -m repro fuzz --replay {path}"

    def as_dict(self) -> dict:
        return {
            "format": FORMAT,
            "seed": self.seed,
            "params": None if self.params is None else self.params.as_dict(),
            "cycles": self.cycles,
            "matrix": self.matrix,
            "oracle": self.oracle,
            "divergence": (None if self.divergence is None
                           else self.divergence.as_dict()),
            "note": self.note,
            "fingerprint": self.circuit.fingerprint(),
            "circuit": circuit_to_dict(self.circuit),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        if data.get("format") != FORMAT:
            raise ValueError(
                f"unsupported corpus format {data.get('format')!r} "
                f"(expected {FORMAT!r})")
        circuit = circuit_from_dict(data["circuit"])
        recorded = data.get("fingerprint")
        if recorded and circuit.fingerprint() != recorded:
            raise ValueError(
                f"corpus fingerprint mismatch: file says {recorded[:12]}, "
                f"rebuilt circuit is {circuit.fingerprint()[:12]} "
                f"(corrupt or hand-edited entry)")
        return cls(
            circuit=circuit,
            cycles=int(data["cycles"]),
            seed=data.get("seed"),
            params=(None if data.get("params") is None
                    else GeneratorParams.from_dict(data["params"])),
            matrix=data.get("matrix", "quick"),
            oracle=data.get("oracle"),
            divergence=(None if data.get("divergence") is None
                        else Divergence.from_dict(data["divergence"])),
            note=data.get("note", ""),
        )


def save_entry(entry: CorpusEntry, corpus_dir: str) -> str:
    """Write ``entry`` into ``corpus_dir`` (created if missing); the
    filename is content-addressed so identical repros dedup."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, f"{entry.name}.json")
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(entry.as_dict(), f, indent=1, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    return path


def load_entry(path: str) -> CorpusEntry:
    with open(path) as f:
        return CorpusEntry.from_dict(json.load(f))


def replay_entry(entry: CorpusEntry, matrix: str | None = None,
                 config=None):
    """Re-run a corpus entry; returns (reference, divergences).

    By default the entry replays against the oracle that originally
    diverged (falling back to its recorded matrix for clean entries);
    pass ``matrix`` to override - e.g. ``"full"`` for regression sweeps.
    """
    from .oracle import FUZZ_CONFIG, matrix_oracles, run_matrix
    chosen = matrix if matrix is not None else (entry.oracle
                                                or entry.matrix)
    oracles = matrix_oracles(chosen)
    return run_matrix(lambda: circuit_from_dict(
        circuit_to_dict(entry.circuit)), oracles, entry.cycles,
        config or FUZZ_CONFIG)
