"""Differential fuzzing subsystem: the correctness backstop.

Manticore's value proposition is that the compiler produces bit-identical
behaviour to the RTL semantics across every engine and compiler
configuration.  This package turns the ad-hoc differential tests that
guarded that claim into a first-class tool:

* :mod:`repro.fuzz.generator` - seeded random circuits covering the full
  netlist IR surface (registers, memories, dynamic shifts, wide
  arithmetic, mux trees, custom-function-eligible bitwise clusters);
* :mod:`repro.fuzz.oracle` - a differential harness running each circuit
  through a configurable matrix of oracles (golden interpreter, serial
  baseline, the Manticore machine under strict/permissive/fast/codegen engines x
  compiler-option variants) and reporting the first divergence with its
  cycle number and signal name;
* :mod:`repro.fuzz.shrink` - a delta-debugging minimizer reducing a
  failing circuit to a minimal repro;
* :mod:`repro.fuzz.corpus` - replayable corpus files (seed + generator
  params + reduced IR) behind ``python -m repro fuzz --replay``;
* :mod:`repro.fuzz.faults` - fault injection used to prove the harness
  catches real semantic divergences.

Everyday entry point: ``python -m repro fuzz --seeds 0:200``.
"""

from .corpus import CorpusEntry, load_entry, replay_entry, save_entry
from .generator import (
    GeneratorParams,
    accumulator_circuit,
    counter_circuit,
    generate,
    lane_init_overrides,
    logic_heavy_circuit,
    memory_circuit,
    random_circuit,
    random_memory_circuit,
    variant_circuit,
)
from .oracle import (
    BatchSeedReport,
    Divergence,
    FUZZ_CONFIG,
    MATRICES,
    OracleError,
    OracleSpec,
    SeedReport,
    fuzz_seed,
    fuzz_seed_batch,
    matrix_oracles,
    run_matrix,
)
from .shrink import ShrinkResult, shrink

__all__ = [
    "BatchSeedReport",
    "CorpusEntry",
    "Divergence",
    "FUZZ_CONFIG",
    "GeneratorParams",
    "MATRICES",
    "OracleError",
    "OracleSpec",
    "SeedReport",
    "ShrinkResult",
    "accumulator_circuit",
    "counter_circuit",
    "fuzz_seed",
    "fuzz_seed_batch",
    "generate",
    "lane_init_overrides",
    "load_entry",
    "logic_heavy_circuit",
    "matrix_oracles",
    "memory_circuit",
    "random_circuit",
    "random_memory_circuit",
    "replay_entry",
    "run_matrix",
    "save_entry",
    "shrink",
    "variant_circuit",
]
