"""Scale-trajectory benchmark over the workload registry.

One *row* of the trajectory is a (grid, scale tier) operating point:
all nine design families are built at that tier, compiled for that
grid, and machine-run to ``$finish`` on every row engine; the
engine-independent :func:`~repro.serve.jobs.state_digest` must agree
across the row's engines for every design.  The default trajectory
walks the machine from today's CI grid to the paper's 225-core machine
and a forward-looking 32x32 point::

    8x8 / small      strict + fast + codegen
    15x15 / paper    strict + fast + codegen   (the paper's machine)
    32x32 / stretch  strict + fast             (codegen source-emit at
                                                1024 cores is minutes
                                                per design; two engines
                                                still cross-check)

``benchmarks/bench_workloads.py`` runs the whole trajectory plus a
registry pin sweep and writes ``BENCH_workloads.json``; ``repro
workloads bench`` runs a single row interactively.
"""

from __future__ import annotations

import time
from typing import Iterable

from ..machine.config import MachineConfig
from ..machine.grid import Machine
from ..serve.jobs import state_digest
from .registry import (DEFAULT_GRID, Workload, WorkloadError, grid_key,
                       load_workloads, run_workload)

#: (grid, designs scale tier, engines) rows of the default trajectory.
TRAJECTORY: tuple[dict, ...] = (
    {"grid": (8, 8), "scale": "small",
     "engines": ("strict", "fast", "codegen")},
    {"grid": (15, 15), "scale": "paper",
     "engines": ("strict", "fast", "codegen")},
    {"grid": (32, 32), "scale": "stretch", "engines": ("strict", "fast")},
)

#: Scale tier implied by a grid when the caller does not pick one.
SCALE_FOR_GRID = {(8, 8): "small", (15, 15): "paper", (32, 32): "stretch"}


def default_scale(grid: tuple[int, int]) -> str:
    return SCALE_FOR_GRID.get(grid, "paper")


def bench_row(grid: tuple[int, int], scale: str,
              engines: Iterable[str] = ("strict", "fast", "codegen"),
              designs: Iterable[str] | None = None,
              progress=None) -> dict:
    """Bench all design families at one (grid, scale) operating point.

    Every design must finish within its tier budget and digest
    identically on every engine; violations raise
    :class:`WorkloadError` (the bench is also a correctness gate).
    """
    from ..compiler.driver import CompilerOptions, compile_circuit
    from ..designs import DESIGNS
    engines = tuple(engines)
    config = MachineConfig(grid_x=grid[0], grid_y=grid[1])
    chosen = tuple(designs) if designs else tuple(DESIGNS)
    rows: dict[str, dict] = {}
    for name in chosen:
        info = DESIGNS[name]
        circuit = info.build_at(scale)
        budget = info.cycles_at(scale)
        t0 = time.perf_counter()
        compiled = compile_circuit(circuit, CompilerOptions(config=config))
        compile_s = time.perf_counter() - t0
        per_engine: dict[str, dict] = {}
        digests: dict[str, str] = {}
        vcycles = None
        for engine in engines:
            machine = Machine(compiled.program, config, engine=engine)
            t0 = time.perf_counter()
            result = machine.run(budget)
            run_s = time.perf_counter() - t0
            if not result.finished:
                raise WorkloadError(
                    f"{name}@{scale} did not finish within {budget} "
                    f"Vcycles on {engine} at {grid_key(grid)}")
            digests[engine] = state_digest(machine)
            vcycles = result.vcycles
            per_engine[engine] = {
                "run_s": round(run_s, 3),
                "vcycles_per_s": (round(result.vcycles / run_s, 1)
                                  if run_s > 0 else 0.0),
            }
        if len(set(digests.values())) != 1:
            detail = ", ".join(f"{e}={d[:12]}" for e, d in digests.items())
            raise WorkloadError(
                f"{name}@{scale}: engines disagree at {grid_key(grid)}: "
                f"{detail}")
        rows[name] = {
            "ops": len(circuit.ops),
            "budget": budget,
            "vcycles": vcycles,
            "compile_s": round(compile_s, 3),
            "state_digest": next(iter(digests.values())),
            "engines": per_engine,
        }
        if progress is not None:
            progress(f"{grid_key(grid)}/{scale} {name}: "
                     f"{rows[name]['ops']} ops, {vcycles} Vcycles, "
                     f"compile {compile_s:.1f}s")
    return {"grid": grid_key(grid), "scale": scale, "engines": engines,
            "designs": rows, "digests_agree": True}


def verify_registry(grid: tuple[int, int] = DEFAULT_GRID,
                    engine: str | None = None,
                    workloads: dict[str, Workload] | None = None,
                    progress=None) -> dict:
    """Run every registry entry once and check its pins.

    Returns a summary dict; raises :class:`WorkloadError` if any entry
    fails to finish or misses a pinned fingerprint/digest.
    """
    from .registry import PIN_ENGINE
    engine = engine or PIN_ENGINE
    workloads = workloads or load_workloads()
    entries: dict[str, dict] = {}
    for name, workload in workloads.items():
        run = run_workload(workload, grid, engine)
        if not run.ok:
            raise WorkloadError(
                f"registry entry {name} failed on {engine} at "
                f"{grid_key(grid)}: finished={run.finished} "
                f"digest_ok={run.digest_ok} "
                f"fingerprint_ok={run.fingerprint_ok}")
        entries[name] = {
            "kind": workload.kind,
            "vcycles": run.vcycles,
            "digest_ok": run.digest_ok,
            "fingerprint_ok": run.fingerprint_ok,
        }
        if progress is not None:
            progress(f"registry {name}: ok ({run.vcycles} Vcycles)")
    return {"grid": grid_key(grid), "engine": engine, "entries": entries,
            "all_ok": True}
