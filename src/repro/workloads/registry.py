"""Workload manifest loading, execution, and digest pinning.

The manifest is data, not code: ``manifest.json`` sits next to this
module and ``repro workloads pin`` rewrites it, so promoting a new
workload or refreshing expectations after a deliberate toolchain change
is a reviewable one-file diff.  Digests are pinned with the ``codegen``
engine (:data:`PIN_ENGINE`) purely for speed - :func:`state_digest` is
engine-independent by construction, and ``verify``/CI cross-check the
pin against ``strict`` and ``fast`` runs.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Mapping

from ..machine.config import MachineConfig
from ..machine.grid import Machine
from ..netlist.ir import Circuit
from ..serve.jobs import state_digest

#: Grid the manifest pins digests for (state_digest depends on the
#: placement, hence on the grid; other grids are cross-engine-checked
#: but not pinned).
DEFAULT_GRID = (8, 8)

#: Engine used to (re)compute pinned digests.
PIN_ENGINE = "codegen"

_KINDS = ("builtin", "verilog", "corpus")

#: Repository root (manifest-relative source paths resolve against it).
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))

_PKG_DIR = os.path.dirname(os.path.abspath(__file__))


class WorkloadError(RuntimeError):
    """A workload failed to load, build, or meet a pinned expectation."""


@dataclass(frozen=True)
class Workload:
    """One named entry of the workload registry."""

    name: str
    kind: str                     # "builtin" | "verilog" | "corpus"
    source: str                   # design@scale | repo-relative .v path
                                  # | corpus/<entry>.json
    cycles: int                   # driver-complete Vcycle budget
    description: str = ""
    wrap: int | None = None       # driver-wrapper cycles for ported tops
    fingerprint: str = ""         # pinned circuit content identity
    #: grid key ("8x8") -> pinned engine-independent state digest
    digests: Mapping[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        d = {"name": self.name, "kind": self.kind, "source": self.source,
             "cycles": self.cycles, "description": self.description,
             "fingerprint": self.fingerprint,
             "digests": dict(sorted(self.digests.items()))}
        if self.wrap is not None:
            d["wrap"] = self.wrap
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Workload":
        if d.get("kind") not in _KINDS:
            raise WorkloadError(
                f"workload {d.get('name')!r}: unknown kind "
                f"{d.get('kind')!r} (expected one of {', '.join(_KINDS)})")
        return cls(name=d["name"], kind=d["kind"], source=d["source"],
                   cycles=int(d["cycles"]),
                   description=d.get("description", ""),
                   wrap=d.get("wrap"),
                   fingerprint=d.get("fingerprint", ""),
                   digests=dict(d.get("digests", {})))


@dataclass
class WorkloadRun:
    """Outcome of one compiled machine execution of a workload."""

    workload: str
    grid: tuple[int, int]
    engine: str
    vcycles: int
    finished: bool
    digest: str
    fingerprint: str
    compile_s: float
    run_s: float
    #: pin check outcomes: True/False, or None when nothing is pinned
    #: for this aspect (unpinned grid, blank fingerprint).
    digest_ok: bool | None = None
    fingerprint_ok: bool | None = None

    @property
    def ok(self) -> bool:
        return (self.finished and self.digest_ok is not False
                and self.fingerprint_ok is not False)


def manifest_path() -> str:
    return os.path.join(_PKG_DIR, "manifest.json")


def grid_key(grid: tuple[int, int]) -> str:
    return f"{grid[0]}x{grid[1]}"


def parse_grid(text: str) -> tuple[int, int]:
    """``"15x15"`` -> ``(15, 15)``."""
    try:
        x, _, y = text.partition("x")
        return (int(x), int(y))
    except ValueError:
        raise WorkloadError(f"bad grid {text!r} (expected e.g. 15x15)")


def load_workloads(path: str | None = None) -> dict[str, Workload]:
    """Load the manifest; returns name -> :class:`Workload` in manifest
    order."""
    path = path or manifest_path()
    with open(path) as f:
        data = json.load(f)
    if data.get("format") != "repro-workloads/v1":
        raise WorkloadError(
            f"unsupported manifest format {data.get('format')!r}")
    out: dict[str, Workload] = {}
    for entry in data["workloads"]:
        w = Workload.from_dict(entry)
        if w.name in out:
            raise WorkloadError(f"duplicate workload name {w.name!r}")
        out[w.name] = w
    return out


def save_workloads(workloads: dict[str, Workload],
                   path: str | None = None) -> str:
    path = path or manifest_path()
    blob = {"format": "repro-workloads/v1",
            "pin_engine": PIN_ENGINE,
            "pin_grid": grid_key(DEFAULT_GRID),
            "workloads": [w.as_dict() for w in workloads.values()]}
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(blob, f, indent=1, sort_keys=False)
        f.write("\n")
    os.replace(tmp, path)
    return path


def build_workload(workload: Workload) -> Circuit:
    """Construct the workload's circuit from its source reference."""
    if workload.kind == "builtin":
        from ..designs import DESIGNS
        design, _, scale = workload.source.partition("@")
        if design not in DESIGNS:
            raise WorkloadError(f"workload {workload.name!r}: unknown "
                                f"design {design!r}")
        return DESIGNS[design].build_at(scale or "small")
    if workload.kind == "verilog":
        from ..netlist.verilog import parse_verilog
        path = os.path.join(_REPO_ROOT, workload.source)
        if not os.path.exists(path):
            raise WorkloadError(f"workload {workload.name!r}: missing "
                                f"source file {workload.source!r}")
        with open(path) as f:
            return parse_verilog(f.read(), wrap=workload.wrap)
    if workload.kind == "corpus":
        from ..fuzz.corpus import load_entry
        path = os.path.join(_PKG_DIR, workload.source)
        if not os.path.exists(path):
            raise WorkloadError(f"workload {workload.name!r}: missing "
                                f"corpus entry {workload.source!r}")
        return load_entry(path).circuit
    raise WorkloadError(f"unknown workload kind {workload.kind!r}")


def run_workload(workload: Workload, grid: tuple[int, int] = DEFAULT_GRID,
                 engine: str = "fast",
                 circuit: Circuit | None = None) -> WorkloadRun:
    """Compile + machine-run a workload; digest the final state and
    check it against the manifest's pins (when this grid is pinned)."""
    from ..compiler.driver import CompilerOptions, compile_circuit
    circuit = circuit if circuit is not None else build_workload(workload)
    fingerprint = circuit.fingerprint()
    config = MachineConfig(grid_x=grid[0], grid_y=grid[1])
    t0 = time.perf_counter()
    compiled = compile_circuit(circuit, CompilerOptions(config=config))
    t1 = time.perf_counter()
    machine = Machine(compiled.program, config, engine=engine)
    result = machine.run(workload.cycles)
    t2 = time.perf_counter()
    digest = state_digest(machine)

    pinned = workload.digests.get(grid_key(grid))
    return WorkloadRun(
        workload=workload.name, grid=grid, engine=engine,
        vcycles=result.vcycles, finished=result.finished, digest=digest,
        fingerprint=fingerprint, compile_s=t1 - t0, run_s=t2 - t1,
        digest_ok=None if pinned is None else digest == pinned,
        fingerprint_ok=(None if not workload.fingerprint
                        else fingerprint == workload.fingerprint))


def verify_workload(workload: Workload,
                    grid: tuple[int, int] = DEFAULT_GRID,
                    engines: tuple[str, ...] = ("strict", "fast",
                                                "codegen"),
                    ) -> list[WorkloadRun]:
    """Run a workload on several engines; all runs must finish, agree
    on the digest, and match the pin.  Raises :class:`WorkloadError`
    on the first violation, returns the runs otherwise."""
    circuit = build_workload(workload)
    runs = [run_workload(workload, grid, engine, circuit=circuit)
            for engine in engines]
    for run in runs:
        if not run.finished:
            raise WorkloadError(
                f"{workload.name} did not finish within {workload.cycles} "
                f"Vcycles on {run.engine} at {grid_key(grid)}")
        if run.fingerprint_ok is False:
            raise WorkloadError(
                f"{workload.name}: circuit fingerprint drifted "
                f"(pinned {workload.fingerprint[:12]}, built "
                f"{run.fingerprint[:12]}); repin if intentional")
        if run.digest_ok is False:
            raise WorkloadError(
                f"{workload.name}: state digest mismatch on {run.engine} "
                f"at {grid_key(grid)} (pinned "
                f"{workload.digests[grid_key(grid)][:12]}, got "
                f"{run.digest[:12]}); repin if intentional")
    digests = {run.digest for run in runs}
    if len(digests) != 1:
        detail = ", ".join(f"{r.engine}={r.digest[:12]}" for r in runs)
        raise WorkloadError(
            f"{workload.name}: engines disagree at {grid_key(grid)}: "
            f"{detail}")
    return runs


def pin_workloads(workloads: dict[str, Workload],
                  grids: tuple[tuple[int, int], ...] = (DEFAULT_GRID,),
                  engine: str = PIN_ENGINE) -> dict[str, Workload]:
    """Recompute every workload's fingerprint and per-grid digests.

    Returns a new mapping; the caller decides whether to
    :func:`save_workloads` it (the CLI's ``pin`` does).
    """
    pinned: dict[str, Workload] = {}
    for name, workload in workloads.items():
        circuit = build_workload(workload)
        digests = dict(workload.digests)
        for grid in grids:
            run = run_workload(workload, grid, engine, circuit=circuit)
            if not run.finished:
                raise WorkloadError(
                    f"cannot pin {name}: did not finish within "
                    f"{workload.cycles} Vcycles at {grid_key(grid)}")
            digests[grid_key(grid)] = run.digest
        pinned[name] = replace(workload, fingerprint=circuit.fingerprint(),
                               digests=digests)
    return pinned
