"""Named-workload registry: the paper-scale benchmark surface.

One manifest (``manifest.json``) names every circuit the project treats
as a *workload* - something with a stable identity, a cycle budget, and
pinned correctness expectations - regardless of where it came from:

* ``builtin`` - a :mod:`repro.designs` family at a named scale tier
  (``vta@paper``);
* ``verilog`` - an external ``.v`` file ingested through the
  :mod:`repro.netlist.verilog` frontend (optionally auto-wrapped in a
  generated test driver);
* ``corpus`` - a fuzz-corpus circuit promoted into the regression set
  (``src/repro/workloads/corpus/``).

Each entry pins the circuit :meth:`~repro.netlist.ir.Circuit.fingerprint`
(content identity: the build is still producing the same netlist) and
per-grid :func:`repro.serve.jobs.state_digest` values (behavioral
identity: a machine run still ends in the same architectural state on
every engine).  ``python -m repro workloads list/run/bench/verify/pin``
is the CLI surface; :mod:`benchmarks.bench_workloads` drives the same
registry for the scale-trajectory bench.
"""

from .registry import (DEFAULT_GRID, PIN_ENGINE, Workload, WorkloadError,
                       WorkloadRun, build_workload, load_workloads,
                       manifest_path, pin_workloads, run_workload,
                       verify_workload)

__all__ = ["DEFAULT_GRID", "PIN_ENGINE", "Workload", "WorkloadError",
           "WorkloadRun", "build_workload", "load_workloads",
           "manifest_path", "pin_workloads", "run_workload",
           "verify_workload"]
