"""Tiny ASCII plotting for figure regeneration.

The benchmark suite regenerates the paper's *figures* as well as tables;
without a plotting stack we render compact ASCII charts so a terminal run
of ``pytest benchmarks/ -s`` shows the curve shapes (Fig. 5's three
regions, Fig. 7's plateaus, Fig. 8's bars) directly.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def line_plot(series: Mapping[str, Sequence[tuple[float, float]]],
              width: int = 64, height: int = 16, logy: bool = False,
              title: str = "") -> str:
    """Render one or more (x, y) series as an ASCII chart.

    Each series gets a marker character; x positions are mapped linearly
    (or by rank if x values are irregular), y linearly or in log10.
    """
    markers = "*o+x@#%&"
    points: list[tuple[float, float, str]] = []
    for (name, data), marker in zip(series.items(), markers):
        for x, y in data:
            points.append((float(x), float(y), marker))
    if not points:
        return "(empty plot)"

    ys = [p[1] for p in points]
    xs = [p[0] for p in points]
    if logy:
        floor = min(y for y in ys if y > 0)
        ys = [math.log10(max(y, floor)) for y in ys]
        points = [(x, math.log10(max(y, floor)), m)
                  for x, y, m in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    legend = "  ".join(f"{marker}={name}" for (name, _), marker
                       in zip(series.items(), markers))
    scale = "log10(y)" if logy else "y"
    lines.append(f"  x: {x_lo:g}..{x_hi:g}   {scale}: "
                 f"{min(p[1] for p in points):.3g}.."
                 f"{max(p[1] for p in points):.3g}   {legend}")
    return "\n".join(lines)


#: Shade ramp for :func:`heatmap`, low to high.
HEAT_RAMP = " .:-=+*#%@"


def heatmap(rows: Sequence[Sequence[float]], title: str = "",
            unit: str = "", cell_width: int = 2) -> str:
    """Render a 2D value grid as an ASCII shade heatmap.

    Used by the observability report for torus-link utilization: row 0
    is y=0 (top), each cell is shaded against the grid's maximum with
    :data:`HEAT_RAMP`.  A zero-max grid renders all-blank with the same
    frame, so empty runs still produce a readable chart.
    """
    if not rows or not any(len(r) for r in rows):
        return "(empty heatmap)"
    peak = max((v for row in rows for v in row), default=0.0)
    lines = [title] if title else []
    width = max(len(row) for row in rows)
    lines.append("    +" + "-" * (width * cell_width) + "+")
    for y, row in enumerate(rows):
        cells = []
        for value in row:
            if peak <= 0:
                shade = HEAT_RAMP[0]
            else:
                level = int(value / peak * (len(HEAT_RAMP) - 1))
                shade = HEAT_RAMP[max(0, min(level, len(HEAT_RAMP) - 1))]
            cells.append(shade * cell_width)
        lines.append(f"{y:3d} |" + "".join(cells) + "|")
    lines.append("    +" + "-" * (width * cell_width) + "+")
    lines.append(f"    scale: ' '=0 .. '@'={peak:g}{unit}   "
                 f"(x: 0..{width - 1} left to right)")
    return "\n".join(lines)


def bar_chart(bars: Mapping[str, float], width: int = 48,
              title: str = "", unit: str = "") -> str:
    """Horizontal ASCII bars, scaled to the longest."""
    if not bars:
        return "(empty chart)"
    peak = max(bars.values()) or 1.0
    label_w = max(len(str(k)) for k in bars)
    lines = [title] if title else []
    for name, value in bars.items():
        n = int(round(value / peak * width))
        lines.append(f"  {str(name):>{label_w}} |{'#' * n:<{width}}| "
                     f"{value:g}{unit}")
    return "\n".join(lines)
