"""The privileged core's cache and DRAM model (paper SS5.3).

A 128 KiB direct-mapped, write-allocate, write-back cache in front of a
word-addressed DRAM.  Every access - hit or miss - stalls the whole
compute domain for a configurable number of cycles ("we conservatively
stall the execution on every access"), which is what Fig. 8 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import MachineConfig


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    accesses: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writebacks": self.writebacks, "accesses": self.accesses}

    def load_dict(self, data: dict) -> None:
        self.hits = int(data["hits"])
        self.misses = int(data["misses"])
        self.writebacks = int(data["writebacks"])
        self.accesses = int(data["accesses"])


class _Line:
    __slots__ = ("tag", "dirty", "data")

    def __init__(self, tag: int, data: list[int]) -> None:
        self.tag = tag
        self.dirty = False
        self.data = data


class Cache:
    """Direct-mapped write-back cache over a sparse DRAM dict."""

    def __init__(self, config: MachineConfig,
                 dram: dict[int, int] | None = None) -> None:
        self.config = config
        self.dram: dict[int, int] = dram if dram is not None else {}
        self.line_words = config.cache_line_words
        self.num_lines = config.cache_words // self.line_words
        self.lines: dict[int, _Line] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _locate(self, addr: int) -> tuple[_Line, int, int]:
        """Return (line, word offset, stall cycles); fills on miss."""
        line_addr = addr // self.line_words
        index = line_addr % self.num_lines
        tag = line_addr // self.num_lines
        offset = addr % self.line_words
        line = self.lines.get(index)
        stall = self.config.cache_hit_stall
        if line is None or line.tag != tag:
            self.stats.misses += 1
            stall = self.config.cache_miss_stall
            if line is not None and line.dirty:
                self.stats.writebacks += 1
                stall += self.config.cache_writeback_stall
                base = (line.tag * self.num_lines + index) * self.line_words
                for i, word in enumerate(line.data):
                    self.dram[base + i] = word
            base = line_addr * self.line_words
            data = [self.dram.get(base + i, 0)
                    for i in range(self.line_words)]
            line = _Line(tag, data)
            self.lines[index] = line
        else:
            self.stats.hits += 1
        return line, offset, stall

    def read(self, addr: int) -> tuple[int, int]:
        """Return (value, stall cycles)."""
        self.stats.accesses += 1
        line, offset, stall = self._locate(addr)
        return line.data[offset], stall

    def write(self, addr: int, value: int) -> int:
        """Write-allocate store; returns stall cycles."""
        self.stats.accesses += 1
        line, offset, stall = self._locate(addr)
        line.data[offset] = value & 0xFFFF
        line.dirty = True
        return stall

    def flush(self) -> None:
        """Write all dirty lines back (host does this before reading DRAM
        to service an exception, paper SSA.3.2)."""
        for index, line in self.lines.items():
            if line.dirty:
                base = (line.tag * self.num_lines + index) * self.line_words
                for i, word in enumerate(line.data):
                    self.dram[base + i] = word
                line.dirty = False

    def occupancy(self) -> dict[str, int]:
        """Line-usage snapshot for observability reports: how much of
        the cache a run actually touched, and how much is dirty."""
        dirty = sum(1 for line in self.lines.values() if line.dirty)
        return {
            "lines_used": len(self.lines),
            "num_lines": self.num_lines,
            "dirty_lines": dirty,
            "dram_words": len(self.dram),
        }

    # -- checkpoint hooks ------------------------------------------------
    def state_dict(self) -> dict:
        """Full cache + DRAM state as plain JSON data: every resident
        line with its tag, dirty bit, and word image, plus the sparse
        DRAM contents and the access statistics."""
        from ..netlist.serialize import pack_pairs, pack_words
        return {
            "lines": [[index, line.tag, int(line.dirty),
                       pack_words(line.data, strip_zeros=True)]
                      for index, line in sorted(self.lines.items())],
            "dram": pack_pairs(self.dram.items()),
            "stats": self.stats.as_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Inject a :meth:`state_dict` image (dirty lines stay dirty, so
        a restored run writes back exactly what the original would)."""
        from ..netlist.serialize import unpack_pairs, unpack_words
        lines: dict[int, _Line] = {}
        for index, tag, dirty, packed in state["lines"]:
            data = unpack_words(packed)
            if len(data) > self.line_words:
                raise ValueError(
                    f"cache line {index}: snapshot has {len(data)} words,"
                    f" config says {self.line_words}")
            data += [0] * (self.line_words - len(data))
            line = _Line(int(tag), data)
            line.dirty = bool(dirty)
            lines[int(index)] = line
        self.lines = lines
        self.dram.clear()
        self.dram.update(unpack_pairs(state["dram"]))
        self.stats.load_dict(state["stats"])

    def peek(self, addr: int) -> int:
        """Coherent read without timing effects (host-side)."""
        line_addr = addr // self.line_words
        index = line_addr % self.num_lines
        tag = line_addr // self.num_lines
        line = self.lines.get(index)
        if line is not None and line.tag == tag:
            return line.data[addr % self.line_words]
        return self.dram.get(addr, 0)
