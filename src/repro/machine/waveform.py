"""Out-of-band waveform collection (paper SS8: "We have an initial design
of hardware support for out-of-band waveform collection, but we leave its
evaluation for future work" - here it is, implemented on the model).

A :class:`WaveformCollector` snapshots selected machine registers at
every Vcycle boundary - without perturbing timing, exactly what an
out-of-band hardware collector would do - and writes an IEEE 1364 VCD
file any waveform viewer (GTKWave etc.) can open.

To trace *RTL-level* registers rather than raw machine registers, use
:func:`trace_map_for`, which recovers the RTL-register -> (core, machine
register) mapping from a compilation result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import IO

from .grid import Machine


@dataclass(frozen=True)
class Probe:
    """One traced signal: a machine register on one core."""

    label: str
    core: int
    reg: int
    width: int = 16


@dataclass
class WaveformCollector:
    """Samples probes each Vcycle; dumps VCD."""

    machine: Machine
    probes: list[Probe]
    samples: list[tuple[int, dict[str, int]]] = field(default_factory=list)
    #: True when this collector continues an earlier dump (see
    #: :meth:`resumed_from`): suppresses the initial-values record and
    #: the VCD header so the output *appends* to the previous segment.
    resumed: bool = False
    _last: dict[str, int] = field(default_factory=dict)

    @classmethod
    def resumed_from(cls, machine: Machine,
                     probes: list[Probe]) -> "WaveformCollector":
        """A collector that continues a dump interrupted at ``machine``'s
        current Vcycle (e.g. restored from a checkpoint).

        The probes' *current* values prime the change detector, so the
        boundary Vcycle - already emitted by the interrupted segment -
        is not re-emitted, and only genuine post-resume changes appear.
        Concatenating the old dump with this collector's
        ``write_vcd(out, header=False)`` output yields the same VCD an
        uninterrupted run would have written.
        """
        collector = cls(machine, probes, resumed=True)
        for probe in probes:
            collector._last[probe.label] = machine.peek_reg(
                probe.core, probe.reg)
        return collector

    def sample(self) -> None:
        """Record the current value of every probe (call once per
        Vcycle, e.g. from :meth:`run`)."""
        t = self.machine.counters.vcycles
        changed = {}
        for probe in self.probes:
            value = self.machine.peek_reg(probe.core, probe.reg)
            if self._last.get(probe.label) != value:
                changed[probe.label] = value
                self._last[probe.label] = value
        if changed or (not self.samples and not self.resumed):
            self.samples.append((t, dict(changed)))

    def run(self, max_vcycles: int):
        """Drive the machine Vcycle by Vcycle, sampling after each."""
        self.sample()  # initial values
        while not self.machine.finished and \
                self.machine.counters.vcycles < max_vcycles:
            self.machine.step_vcycle()
            self.sample()
        return self.machine.run(0)  # package a MachineResult

    # ------------------------------------------------------------------
    def write_vcd(self, out: IO[str], timescale: str = "1ns",
                  header: bool = True) -> None:
        """Emit the collected samples as a VCD document.

        ``header=False`` emits only the value-change body - what a
        resumed collector appends to an existing dump (the identifier
        codes are positional over the same probe list, so they match the
        original header)."""
        ids = {probe.label: _vcd_id(i)
               for i, probe in enumerate(self.probes)}
        if header:
            out.write(f"$timescale {timescale} $end\n")
            out.write("$scope module manticore $end\n")
            for probe in self.probes:
                out.write(f"$var wire {probe.width} {ids[probe.label]} "
                          f"{probe.label} $end\n")
            out.write("$upscope $end\n$enddefinitions $end\n")
        for t, changes in self.samples:
            out.write(f"#{t}\n")
            for label, value in changes.items():
                probe = next(p for p in self.probes if p.label == label)
                out.write(f"b{value:0{probe.width}b} {ids[label]}\n")

    def vcd_text(self) -> str:
        import io
        buf = io.StringIO()
        self.write_vcd(buf)
        return buf.getvalue()


def _vcd_id(index: int) -> str:
    """Printable short VCD identifier codes (!, ", #, ... then pairs)."""
    chars = [chr(c) for c in range(33, 127)]
    if index < len(chars):
        return chars[index]
    hi, lo = divmod(index, len(chars))
    return chars[hi - 1] + chars[lo]


def trace_map_for(compile_result, names: list[str] | None = None,
                  ) -> list[Probe]:
    """Probes for RTL state registers of a compilation result.

    Recovers where each RTL register limb (``name#k``) was placed: which
    core owns its committed value and which machine register holds it.
    ``names`` filters by RTL register name prefix (default: all
    non-internal registers).
    """
    scheduled = compile_result.scheduled
    probes: list[Probe] = []
    program = compile_result.program

    for core_id, core in scheduled.cores.items():
        pid = core.pid
        proc = scheduled.image.processes[pid]
        persistent = sorted(
            set(proc.reg_init)
            | set(scheduled.image.receive_regs.get(pid, ())), key=str)
        needs_zero = any(type(i).__name__ == "Mov" for _, i in core.items)
        if needs_zero and "$c0000" not in persistent:
            persistent.append("$c0000")
        pmap = {reg: i for i, reg in enumerate(persistent)}
        owned = {cur for cur, _ in _owned_commits(scheduled, core_id)}
        for reg, machine_reg in pmap.items():
            if not isinstance(reg, str) or "#" not in reg:
                continue
            rtl_name = reg.split("#")[0]
            if rtl_name.startswith(("_", "%", "$")):
                continue
            if names is not None and not any(
                    rtl_name == n or rtl_name.startswith(n)
                    for n in names):
                continue
            if reg not in owned:
                continue  # trace the owning copy only
            probes.append(Probe(label=reg.replace("#", "_"),
                                core=core_id, reg=machine_reg))
    return sorted(probes, key=lambda p: p.label)


def _owned_commits(scheduled, core_id):
    """(cur, next) pairs committed by this core: recovered from the
    scheduled items (Movs and coalescing renames)."""
    core = scheduled.cores[core_id]
    out = []
    for nxt, cur in core.rename.items():
        out.append((cur, nxt))
    for _t, instr in core.items:
        if type(instr).__name__ == "Mov":
            out.append((instr.rd, instr.rs))
    return out
