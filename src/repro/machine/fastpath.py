"""Verified fast-path execution engine: the static Vcycle schedule
compiled into per-core kernels.

The whole point of Manticore's static BSP model is that *when* everything
happens is resolved at compile time: issue order, NoC routing, writeback
timing, and receive-slot matching are all data-independent in a
branch-free program.  Only the *values* flowing through the schedule are
dynamic.  The strict engine (:meth:`repro.machine.grid.Machine.
_step_vcycle_strict`) nevertheless re-pays the dynamic costs every cycle:
type dispatch per instruction, an O(pending) hazard scan per register
read, (link, cycle) reservation bookkeeping per Send, and a priority-queue
pop per receive slot.

This module exploits the static-schedule guarantee with a
**verify-once-then-trust** protocol (selected with ``engine="fast"``):

1. The machine runs ``config.fastpath_verify_vcycles`` Vcycles (default
   one, plus one after every exception) under the strict engine, with all
   hazard, NoC-collision, and receive-matching checks live.  A clean
   strict Vcycle proves the schedule for *every* Vcycle, because the
   checked quantities never depend on data.
2. The grid-wide event list is then flattened once into a list of
   specialized closures - operator tables instead of string/isinstance
   dispatch, operands pre-resolved to register-file indices, ALU ops
   bound to concrete functions - and subsequent Vcycles just run the
   flat trace.

Three dynamic mechanisms are replaced by static plans:

* **Hazard scans** - the verified schedule has no read of an in-flight
  register, so the delayed-writeback ``pending`` list degenerates to
  immediate register writes.  The one observable exception - a receive
  slot landing on a register *inside* a write's latency window, where the
  strict engine's later commit would overwrite the received value - is
  detected statically and those (rare to nonexistent) writes go through a
  precomputed **commit plan**: the value parks in a side slot and a
  commit thunk placed at the exact strict commit position applies it.
* **Receive-queue sorting** - message arrival order is static, so each
  Send writes straight into an arrival-ordered per-core **inbox ring**
  slot and each receive slot is a precompiled register copy.
* **NoC reservations** - collision-checked during verification, elided
  afterwards.

Everything observable stays bit-identical with the strict engine:
registers, scratchpads, displays, and every counter (vcycles, compute and
stall cycles, instructions, messages, exceptions, cache statistics) -
``tests/test_engine_equivalence.py`` enforces this over all nine designs.
Exceptions (``Expect``) still fire dynamically through the shared
:meth:`Machine.service_exception`, and any Vcycle after an exception is
re-verified strictly.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import TYPE_CHECKING, Callable

from ..isa import instructions as isa
from ..isa.semantics import ALU_OPS, eval_custom
from ..isa.instructions import WORD_MASK, WORD_WIDTH

if TYPE_CHECKING:  # pragma: no cover
    from .grid import Machine, _Core


class FastpathUnsupported(RuntimeError):
    """The program's schedule cannot be compiled to the fast path; the
    machine silently keeps the strict engine (correctness first)."""


#: Batched multi-run execution: the fast engine has *no* vectorized
#: multi-lane kernel.  Its compiled form is per-core closures whose free
#: variables are scalar register cells - adding a lane axis would mean
#: a per-closure loop over lanes, i.e. exactly the per-event Python call
#: overhead the batch axis is meant to amortize away.  The codegen
#: engine re-emits its source with per-lane vector slots instead (see
#: ``repro.machine.batch_codegen``), so ``grid.BATCH_KERNEL_ENGINES``
#: lists only ``"codegen"``; batches on ``engine="fast"`` run through
#: ``repro.machine.batch.BatchRunner``'s per-lane serial fallback.
BATCH_KERNEL = None


class _VcycleAbort(Exception):
    """Raised by an ``Expect`` closure when the host finishes the
    simulation mid-Vcycle; carries the exact strict-engine counter
    deltas up to (and including) the finishing instruction, plus the
    per-core prefix counts an attached profiler needs to attribute the
    partial Vcycle (snapshotted at compile time - the abort position is
    static, so the prefix is too)."""

    __slots__ = ("instrs", "messages", "core_instr", "core_sends",
                 "core_recvs")

    def __init__(self, instrs: int, messages: int,
                 core_instr: dict | None = None,
                 core_sends: dict | None = None,
                 core_recvs: dict | None = None) -> None:
        super().__init__()
        self.instrs = instrs
        self.messages = messages
        self.core_instr = core_instr or {}
        self.core_sends = core_sends or {}
        self.core_recvs = core_recvs or {}


# ---------------------------------------------------------------------------
# Closure factories.  Each binds a core's register file (a plain list),
# pre-resolved operand indices, and concrete operator functions.  The
# closures are the *kernels*: one call per scheduled event, no dispatch.
# ---------------------------------------------------------------------------
def _c_set(regs, rd, imm):
    def ev():
        regs[rd] = imm
    return ev


def _c_alu(regs, fn, rd, a, b):
    def ev():
        regs[rd] = fn(regs[a], regs[b])
    return ev


def _c_mux(regs, rd, sel, rf, rt):
    def ev():
        regs[rd] = regs[rt] if regs[sel] & 1 else regs[rf]
    return ev


def _c_slice(regs, rd, rs, off, m):
    def ev():
        regs[rd] = (regs[rs] >> off) & m
    return ev


def _c_addcarry(regs, core, rd, a, b):
    def ev():
        total = regs[a] + regs[b] + core.carry
        regs[rd] = total & WORD_MASK
        core.carry = total >> WORD_WIDTH
    return ev


def _c_setcarry(core, imm):
    def ev():
        core.carry = imm
    return ev


def _c_custom(regs, rd, config, r0, r1, r2, r3):
    def ev():
        regs[rd] = eval_custom(config, regs[r0], regs[r1], regs[r2],
                               regs[r3])
    return ev


def _c_send(regs, rs, inbox, k):
    # The (link, cycle) reservations were verified strictly; delivery is
    # just a store into the target's arrival-ordered inbox slot.
    def ev():
        inbox[k] = regs[rs]
    return ev


def _c_recv(regs, rd, inbox, j):
    def ev():
        regs[rd] = inbox[j]
    return ev


def _c_local_load(regs, rd, rb, off, scratch, n):
    def ev():
        regs[rd] = scratch[((regs[rb] + off) & WORD_MASK) % n]
    return ev


def _c_local_store(regs, core, rs, rb, off, scratch, n):
    def ev():
        if core.predicate:
            scratch[((regs[rb] + off) & WORD_MASK) % n] = regs[rs]
    return ev


def _c_predicate(regs, core, rs):
    def ev():
        core.predicate = regs[rs] & 1
    return ev


def _c_global_load(regs, machine, cid, rd, hi, mid, lo):
    # Global services stay on the machine: privilege enforcement, cache
    # timing, and stall counters must match the strict engine exactly.
    def ev():
        regs[rd] = machine.global_read(
            cid, (regs[hi] << 32) | (regs[mid] << 16) | regs[lo]) & WORD_MASK
    return ev


def _c_global_store(regs, core, machine, cid, rs, hi, mid, lo):
    def ev():
        if core.predicate:
            machine.global_write(
                cid, (regs[hi] << 32) | (regs[mid] << 16) | regs[lo],
                regs[rs])
    return ev


def _c_expect(regs, machine, cid, a, b, eid, abort):
    def ev():
        if regs[a] != regs[b]:
            machine.service_exception(cid, eid)
            if machine.finished:
                raise abort
    return ev


def _c_commit(regs, defer, k, rd):
    """Apply a parked (commit-plan) writeback at its strict position."""
    def ev():
        regs[rd] = defer[k]
        defer[k] = None
    return ev


def _c_defer(compute, defer, k):
    """Park a conflicting write's value until its commit thunk."""
    def ev():
        defer[k] = compute()
    return ev


def _value_fn(instr, core: "_Core", machine: "Machine", cid: int):
    """Value-producing closure for a write that must go through the
    commit plan (side effects - carry, cache timing - still happen at
    issue, exactly as the strict engine's ``execute`` does)."""
    regs = core.regs
    t = type(instr)
    if t is isa.Set:
        imm = instr.imm & WORD_MASK
        return lambda: imm
    if t is isa.Alu:
        fn = ALU_OPS[instr.op]
        a, b = instr.rs1, instr.rs2
        return lambda: fn(regs[a], regs[b])
    if t is isa.Mux:
        sel, rf, rt = instr.sel, instr.rfalse, instr.rtrue
        return lambda: regs[rt] if regs[sel] & 1 else regs[rf]
    if t is isa.Slice:
        rs, off, m = instr.rs, instr.offset, (1 << instr.length) - 1
        return lambda: (regs[rs] >> off) & m
    if t is isa.AddCarry:
        a, b = instr.rs1, instr.rs2

        def _addc():
            total = regs[a] + regs[b] + core.carry
            core.carry = total >> WORD_WIDTH
            return total & WORD_MASK

        return _addc
    if t is isa.Custom:
        config = core.binary.cfu[instr.index]
        r0, r1, r2, r3 = instr.rs
        return lambda: eval_custom(config, regs[r0], regs[r1], regs[r2],
                                   regs[r3])
    if t is isa.LocalLoad:
        scratch = core.scratch
        if scratch is None:
            raise FastpathUnsupported(f"core {cid}: LLD without scratchpad")
        rb, off, n = instr.rbase, instr.offset, len(scratch)
        return lambda: scratch[((regs[rb] + off) & WORD_MASK) % n]
    if t is isa.GlobalLoad:
        hi, mid, lo = instr.addr
        return lambda: machine.global_read(
            cid, (regs[hi] << 32) | (regs[mid] << 16) | regs[lo]) & WORD_MASK
    raise FastpathUnsupported(
        f"cannot defer {type(instr).__name__} writeback")


class FastEngine:
    """The compiled engine for one :class:`Machine`.

    Built once (after strict verification); :meth:`run_vcycle` executes
    the flattened grid-wide trace.  Register files, scratchpads, carry
    and predicate bits are shared *by object identity* with the strict
    engine's cores, so the machine can switch engines between Vcycles.
    """

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        machine = self.machine
        cfg = machine.config
        cores = machine.cores
        events = machine._vcycle_events
        vcpl = machine.program.vcpl
        latency = cfg.result_latency

        # -- static message plan: who fills which inbox slot ------------
        per_target: dict[int, list] = {cid: [] for cid in cores}
        recv_slots: dict[int, list[int]] = {cid: [] for cid in cores}
        seq = 0
        for idx, (cycle, cid, item) in enumerate(events):
            if item == "recv":
                recv_slots[cid].append(cycle)
            elif isinstance(item, isa.Send):
                if item.target not in cores:
                    raise FastpathUnsupported(
                        f"Send to unmapped core {item.target}")
                hops = len(cfg.route(cid, item.target))
                arrival = (cycle + cfg.noc_inject_latency + hops
                           + cfg.noc_eject_latency)
                per_target[item.target].append((arrival, seq, item.rd, idx))
                seq += 1
        inbox_slot: dict[int, int] = {}     # send event index -> slot
        recv_rd: dict[int, list[int]] = {}  # cid -> rd per receive slot
        for cid in cores:
            msgs = sorted(per_target[cid], key=lambda m: (m[0], m[1]))
            slots = recv_slots[cid]
            if len(msgs) != len(slots):
                raise FastpathUnsupported(
                    f"core {cid}: {len(msgs)} messages for {len(slots)} "
                    "receive slots")
            recv_rd[cid] = []
            for j, (arrival, _seq, rd, sidx) in enumerate(msgs):
                if arrival > slots[j]:
                    raise FastpathUnsupported(
                        f"core {cid}: arrival {arrival} after receive "
                        f"slot {slots[j]}")
                inbox_slot[sidx] = j
                recv_rd[cid].append(rd)

        # -- commit plan: which writes cannot commit immediately --------
        # A write at cycle t (strict commit at t+latency) is unobservably
        # reorderable to immediate commit - the verified schedule has no
        # read inside the window - unless a receive slot writes the same
        # register inside (t, t+latency).  Defer every write to such a
        # register so relative commit order stays exact.
        deferred_regs: dict[int, set[int]] = {}
        for cid, core in cores.items():
            conflicts: set[int] = set()
            pairs = list(zip(recv_slots[cid], recv_rd[cid]))
            if pairs:
                for cycle, instr in core.events:
                    ws = instr.writes()
                    if not ws:
                        continue
                    for s, rrd in pairs:
                        if rrd == ws[0] and cycle < s < cycle + latency:
                            conflicts.add(ws[0])
                            break
            deferred_regs[cid] = conflicts

        # -- flatten the grid-wide trace --------------------------------
        inboxes = {cid: [0] * len(recv_slots[cid]) for cid in cores}
        defers: dict[int, list] = {cid: [] for cid in cores}
        defer_meta: dict[int, list[tuple[int, int]]] = {
            cid: [] for cid in cores}
        commit_q: dict[int, deque] = {cid: deque() for cid in cores}
        recv_seen = {cid: 0 for cid in cores}
        trace: list[Callable[[], None]] = []
        n_instr = 0
        n_msgs = 0
        # Static profiler plan: the per-core and per-link counts of one
        # full Vcycle are data-independent, so an attached profiler gets
        # them as one bulk merge per Vcycle instead of per-event hooks.
        # The running prefixes are snapshotted into each Expect's abort
        # sentinel for exact attribution of a mid-Vcycle $finish.
        run_instr = {cid: 0 for cid in cores}
        run_sends = {cid: 0 for cid in cores}
        run_recvs = {cid: 0 for cid in cores}
        send_routes: list[tuple] = []
        for idx, (cycle, cid, item) in enumerate(events):
            core = cores[cid]
            regs = core.regs
            q = commit_q[cid]
            while q and q[0][0] <= cycle:
                _c, k, rd = q.popleft()
                trace.append(_c_commit(regs, defers[cid], k, rd))
            if item == "recv":
                j = recv_seen[cid]
                recv_seen[cid] = j + 1
                trace.append(_c_recv(regs, recv_rd[cid][j], inboxes[cid], j))
                run_recvs[cid] += 1
                continue
            n_instr += 1
            run_instr[cid] += 1
            ws = item.writes()
            if ws and cycle + latency > vcpl:
                raise FastpathUnsupported(
                    f"core {cid}: writeback at {cycle + latency} past "
                    f"VCPL {vcpl}")
            if ws and ws[0] in deferred_regs[cid]:
                k = len(defers[cid])
                defers[cid].append(None)
                defer_meta[cid].append((k, ws[0]))
                trace.append(_c_defer(_value_fn(item, core, machine, cid),
                                      defers[cid], k))
                q.append((cycle + latency, k, ws[0]))
                continue
            trace.append(self._compile_instr(
                item, core, cid, inboxes, inbox_slot, idx, n_instr, n_msgs,
                (run_instr, run_sends, run_recvs)))
            if type(item) is isa.Send:
                n_msgs += 1
                run_sends[cid] += 1
                send_routes.append(tuple(cfg.route(cid, item.target)))
        # End-of-Vcycle drain, in the strict engine's core order.
        for cid in cores:
            q = commit_q[cid]
            while q:
                _c, k, rd = q.popleft()
                trace.append(_c_commit(cores[cid].regs, defers[cid], k, rd))

        self._trace = trace
        self._n_instr = n_instr
        self._n_msgs = n_msgs
        self._defers = defers
        self._defer_meta = defer_meta
        self._core_instr = run_instr
        self._core_sends = run_sends
        self._core_recvs = run_recvs
        self._send_routes = send_routes
        link_hops: Counter = Counter()
        for route in send_routes:
            link_hops.update(route)
        self._link_hops = dict(link_hops)

    # An exception discovered mid-Vcycle sends the next Vcycle back to
    # the strict engine (the conservative original protocol); the
    # codegen engine services exceptions inline and overrides this.
    services_exceptions = False

    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Engine-protocol no-op: the fast path's closures share register
        storage with the cores by identity, so architectural state is
        always current (the codegen engine, which holds state in kernel
        frame locals, actually flushes here)."""

    def invalidate(self) -> None:
        """Engine-protocol no-op (see :meth:`sync`)."""

    # ------------------------------------------------------------------
    def _partial_link_hops(self, n_msgs: int) -> Counter:
        """Per-link hops of the first ``n_msgs`` Sends (abort paths)."""
        hops: Counter = Counter()
        for route in self._send_routes[:n_msgs]:
            hops.update(route)
        return hops

    # ------------------------------------------------------------------
    def _compile_instr(self, instr, core: "_Core", cid: int, inboxes,
                       inbox_slot, event_idx: int, n_instr: int,
                       n_msgs: int, running=None):
        machine = self.machine
        regs = core.regs
        t = type(instr)
        if t is isa.Set:
            return _c_set(regs, instr.rd, instr.imm & WORD_MASK)
        if t is isa.Alu:
            return _c_alu(regs, ALU_OPS[instr.op], instr.rd, instr.rs1,
                          instr.rs2)
        if t is isa.Mux:
            return _c_mux(regs, instr.rd, instr.sel, instr.rfalse,
                          instr.rtrue)
        if t is isa.Slice:
            return _c_slice(regs, instr.rd, instr.rs, instr.offset,
                            (1 << instr.length) - 1)
        if t is isa.AddCarry:
            return _c_addcarry(regs, core, instr.rd, instr.rs1, instr.rs2)
        if t is isa.SetCarry:
            return _c_setcarry(core, instr.imm)
        if t is isa.Custom:
            try:
                config = core.binary.cfu[instr.index]
            except IndexError:
                raise FastpathUnsupported(
                    f"core {cid}: CFU index {instr.index} unconfigured")
            r0, r1, r2, r3 = instr.rs
            return _c_custom(regs, instr.rd, config, r0, r1, r2, r3)
        if t is isa.Send:
            return _c_send(regs, instr.rs, inboxes[instr.target],
                           inbox_slot[event_idx])
        if t is isa.LocalLoad or t is isa.LocalStore:
            scratch = core.scratch
            if scratch is None:
                raise FastpathUnsupported(
                    f"core {cid}: local access without scratchpad")
            if t is isa.LocalLoad:
                return _c_local_load(regs, instr.rd, instr.rbase,
                                     instr.offset, scratch, len(scratch))
            return _c_local_store(regs, core, instr.rs, instr.rbase,
                                  instr.offset, scratch, len(scratch))
        if t is isa.Predicate:
            return _c_predicate(regs, core, instr.rs)
        if t is isa.GlobalLoad:
            hi, mid, lo = instr.addr
            return _c_global_load(regs, machine, cid, instr.rd, hi, mid, lo)
        if t is isa.GlobalStore:
            hi, mid, lo = instr.addr
            return _c_global_store(regs, core, machine, cid, instr.rs,
                                   hi, mid, lo)
        if t is isa.Expect:
            # Preallocate the abort sentinel with the exact counter
            # deltas as of this trace position (the Expect included).
            run_instr, run_sends, run_recvs = running or ({}, {}, {})
            abort = _VcycleAbort(n_instr, n_msgs, dict(run_instr),
                                 dict(run_sends), dict(run_recvs))
            return _c_expect(regs, machine, cid, instr.rs1, instr.rs2,
                             instr.eid, abort)
        raise FastpathUnsupported(
            f"cannot specialize {type(instr).__name__}")

    # ------------------------------------------------------------------
    def _flush_deferred(self) -> None:
        """Mirror the strict engine's end-of-Vcycle pending drain after a
        mid-Vcycle ``$finish``: apply every parked, uncommitted write in
        core order, then issue order."""
        cores = self.machine.cores
        for cid, meta in self._defer_meta.items():
            defer = self._defers[cid]
            regs = cores[cid].regs
            for k, rd in meta:
                value = defer[k]
                if value is not None:
                    regs[rd] = value
                    defer[k] = None

    def run_vcycle(self) -> None:
        """Execute one full Vcycle through the compiled trace."""
        machine = self.machine
        counters = machine.counters
        prof = machine.profiler
        try:
            for fn in self._trace:
                fn()
        except _VcycleAbort as abort:
            counters.instructions += abort.instrs
            counters.messages += abort.messages
            self._flush_deferred()
            if prof is not None:
                prof.add_vcycle_bulk(abort.core_instr, abort.core_sends,
                                     abort.core_recvs,
                                     self._partial_link_hops(abort.messages))
        else:
            counters.instructions += self._n_instr
            counters.messages += self._n_msgs
            if prof is not None:
                prof.add_vcycle_bulk(self._core_instr, self._core_sends,
                                     self._core_recvs, self._link_hops)
        counters.vcycles += 1
        counters.compute_cycles += machine.program.vcpl
        machine.now = 0


def compile_fastpath(machine: "Machine") -> FastEngine:
    """Compile ``machine``'s program into a :class:`FastEngine`.

    Raises :class:`FastpathUnsupported` when the static plan cannot be
    proven (the machine then stays on the strict engine).
    """
    return FastEngine(machine)
