"""Host runtime (paper SSA.3): the top-level "simulate this design on
Manticore" entry points tying compiler, bootloader, and machine together.

This is the public API most users want::

    from repro import simulate_on_manticore
    result = simulate_on_manticore(circuit, max_vcycles=100_000)
    print(result.displays, result.machine.simulation_rate_khz(475.0))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..netlist.ir import Circuit

if TYPE_CHECKING:  # pragma: no cover - import cycle: compiler uses config
    from ..compiler.driver import CompileReport, CompilerOptions
from .boot import deserialize, serialize
from .config import MachineConfig
from .grid import Machine, MachineResult


@dataclass
class SimulationRun:
    """Everything produced by one compile-and-run."""

    report: "CompileReport"
    machine: MachineResult
    binary_bytes: int

    @property
    def displays(self) -> list[str]:
        return self.machine.displays

    @property
    def vcycles(self) -> int:
        return self.machine.vcycles

    def rate_khz(self, frequency_mhz: float | None = None) -> float:
        """Achieved simulation rate; defaults to the grid's frequency
        model estimate."""
        if frequency_mhz is None:
            from ..fpga.timing import frequency_mhz as fmodel
            # Use the guided-floorplan frequency for the compiled grid.
            grid = self.report.cores_used
            side = max(1, int(grid ** 0.5))
            frequency_mhz = fmodel(side, side).guided_mhz
        return self.machine.simulation_rate_khz(frequency_mhz)


def simulate_on_manticore(circuit: Circuit, max_vcycles: int = 1_000_000,
                          options: "CompilerOptions | None" = None,
                          through_bootloader: bool = True,
                          strict: bool = True,
                          engine: str | None = None,
                          cache_dir: str | None = None,
                          jobs: int | None = None,
                          profiler=None) -> SimulationRun:
    """Compile a circuit, (optionally) round-trip it through the
    bootloader binary format, and execute it on the machine model.

    ``engine`` selects the execution engine (``"strict"``,
    ``"permissive"``, ``"fast"``, or ``"codegen"`` - the latter two are
    verify-once-then-trust compiled engines, bit-identical to strict
    but much faster on long runs, with ``"codegen"`` the fastest); when
    ``None`` the legacy ``strict`` flag decides.

    ``cache_dir`` and ``jobs`` override the corresponding
    :class:`~repro.compiler.driver.CompilerOptions` knobs: with a cache
    directory set, repeated simulations of the same circuit skip
    compilation entirely (content-addressed compile cache); ``jobs > 1``
    fans the parallel compiler phases over worker processes.  Both are
    output-invariant.

    ``profiler`` attaches a :class:`repro.obs.Profiler` to the machine;
    observation only - the result is bit-identical with and without one.
    """
    import dataclasses

    from ..compiler.driver import CompilerOptions, compile_circuit

    if cache_dir is not None or jobs is not None:
        options = options or CompilerOptions()
        overrides: dict = {}
        if cache_dir is not None:
            overrides["cache_dir"] = cache_dir
        if jobs is not None:
            overrides["jobs"] = jobs
        options = dataclasses.replace(options, **overrides)

    result = compile_circuit(circuit, options)
    program = result.program
    binary_bytes = 0
    if through_bootloader:
        stream = serialize(program)
        binary_bytes = len(stream)
        program = deserialize(stream)
    config = (options.config if options else None) or MachineConfig(
        grid_x=program.grid[0], grid_y=program.grid[1])
    machine = Machine(program, config, strict=strict, engine=engine,
                      profiler=profiler)
    mres = machine.run(max_vcycles)
    return SimulationRun(result.report, mres, binary_bytes)
