"""Execution tracing for debugging compiled programs.

``TraceRecorder`` hooks a :class:`~repro.machine.grid.Machine` and logs
every issued instruction as ``(vcycle, cycle, core, asm)`` lines - the
software analogue of an ILA capture.  Filters keep traces usable:
by core, by mnemonic, and by Vcycle window.

    machine = Machine(program, config)
    trace = TraceRecorder(machine, cores={0}, last_vcycles=2)
    machine.run(100)
    print(trace.render())
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..isa.asm import format_instruction
from .grid import Machine


@dataclass(frozen=True)
class TraceEntry:
    vcycle: int
    cycle: int
    core: int
    text: str

    def __str__(self) -> str:
        return (f"v{self.vcycle:>6} c{self.cycle:>5} "
                f"core{self.core:>4}  {self.text}")


class TraceRecorder:
    """Wraps a machine's Vcycle event loop to record issued
    instructions."""

    def __init__(self, machine: Machine, cores: set[int] | None = None,
                 mnemonics: set[str] | None = None,
                 last_vcycles: int | None = None,
                 max_entries: int = 100_000) -> None:
        self.machine = machine
        self.cores = cores
        self.mnemonics = {m.upper() for m in mnemonics} if mnemonics \
            else None
        self.last_vcycles = last_vcycles
        self.entries: deque[TraceEntry] = deque(maxlen=max_entries)
        self._original_step = machine.step_vcycle
        machine.step_vcycle = self._step  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def _step(self) -> None:
        machine = self.machine
        vcycle = machine.counters.vcycles
        for cycle, cid, item in machine._vcycle_events:
            if self.cores is not None and cid not in self.cores:
                continue
            if item == "recv":
                text = "RECV (epilogue slot)"
                mnemonic = "RECV"
            else:
                try:
                    text = format_instruction(item)
                except Exception:
                    text = repr(item)
                mnemonic = text.split()[0]
            if self.mnemonics is not None and \
                    mnemonic not in self.mnemonics:
                continue
            self.entries.append(TraceEntry(vcycle, cycle, cid, text))
        if self.last_vcycles is not None:
            cutoff = vcycle - self.last_vcycles + 1
            while self.entries and self.entries[0].vcycle < cutoff:
                self.entries.popleft()
        self._original_step()

    def detach(self) -> None:
        self.machine.step_vcycle = self._original_step  # type: ignore

    def render(self, limit: int | None = None) -> str:
        entries = list(self.entries)
        if limit is not None:
            entries = entries[-limit:]
        return "\n".join(str(e) for e in entries)

    def count(self, mnemonic: str) -> int:
        m = mnemonic.upper()
        return sum(1 for e in self.entries if e.text.startswith(m))
