"""Batched multi-run execution: advance B independent runs of one
compiled design in lockstep, one Vcycle at a time.

Production traffic and fuzzing share a shape - many runs of the same
compiled artifact with different inputs - and the static BSP schedule
makes control flow identical across those runs, so a batch is pure data
parallelism.  :class:`BatchRunner` owns B per-lane :class:`~repro.
machine.grid.Machine` instances over (rebound variants of) one program
and drives them through a single *batched kernel* (:mod:`repro.machine.
batch_codegen`) in which every register slot holds a per-lane vector.

Semantics contract (enforced by ``tests/test_batch_equivalence.py``):
the observable state of every lane - displays, finish status, Vcycle
count, performance counters, cache stats, per-core registers and
scratchpads - is **bit-identical** to running that lane alone on the
same engine.  Divergence is handled by masking, not exiting:

* a lane whose privileged ``Expect`` reaches ``$finish`` mid-Vcycle is
  flushed at the exact abort point and settled through the scalar
  engine's stop-function replay (producing the exact strict-engine
  architectural state and counter deltas), then removed from the active
  set; surviving lanes keep running;
* a lane that dies on a fatal exception (a failed assertion) records the
  error and freezes; as with a single run that raised, its in-flight
  counters for the interrupted pass are not settled - the error string
  *is* the lane's observable outcome;
* serviced exceptions (``$display``) drain per-lane inside the Vcycle,
  so the codegen engine's trust retention applies batch-wide: one
  display on one lane does not stall or retire the other lanes.

Engines without a vectorized kernel (everything outside
``grid.BATCH_KERNEL_ENGINES``) run the batch as per-lane serial
execution - same API, same per-lane results, no lockstep speedup.
"""

from __future__ import annotations

import dataclasses
import re
from typing import TYPE_CHECKING

from ..isa.instructions import WORD_MASK, WORD_WIDTH
from ..isa.program import MachineProgram, SimulationFailure
from . import codegen as cg
from .batch_codegen import MAX_BATCH_WIDTH, compiled_batch_kernel
from .codegen import CodegenUnsupported
from .grid import BATCH_KERNEL_ENGINES, Machine, MachineResult

if TYPE_CHECKING:  # pragma: no cover
    from ..compiler.driver import CompileResult

_LIMB = re.compile(r"^(.*)#(\d+)$")


def rebind_reg_inits(result: "CompileResult",
                     overrides: dict[str, int]) -> MachineProgram:
    """A copy of ``result.program`` with named source registers booted
    to new values - the per-lane stimulus mechanism.

    Compilation is init-independent (the schedule, placement, and
    allocation never read boot values), so B stimuli of one design need
    one compile plus B cheap rebinds instead of B compiles.  This walks
    the register allocator's persistent-slot assignment exactly as
    ``repro.compiler.regalloc.allocate`` does and rewrites each core's
    ``reg_init`` image, patching every 16-bit limb (``name#i``) of every
    overridden register - including receive copies held by other cores,
    which share the source register's name.

    ``overrides`` maps *source-level* register names (e.g. ``"r3"``) to
    full-width integers; unknown names are ignored (a register can be
    optimized out of the schedule entirely).  Callers who need a hard
    guarantee compare ``boot.serialize`` output against a fresh compile
    of the variant circuit (``fuzz.oracle.fuzz_seed_batch`` does, with a
    per-lane fresh-compile fallback).
    """
    if not overrides:
        return result.program
    from ..compiler.lir import Mov
    from ..compiler.regalloc import ZERO_CONST, _persistent_regs

    scheduled = result.scheduled
    program = result.program
    cores: dict[int, object] = {}
    for core_id, core in scheduled.cores.items():
        binary = program.cores[core_id]
        # Mirror of allocate()'s phase 1: the persistent-slot numbering.
        regs = sorted(_persistent_regs(scheduled, core_id), key=str)
        needs_zero = any(isinstance(instr, Mov) for _, instr in core.items)
        if needs_zero and ZERO_CONST not in regs:
            regs.append(ZERO_CONST)
        pmap = {reg: i for i, reg in enumerate(regs)}
        proc = scheduled.image.processes[core.pid]
        reg_init: dict[int, int] = {}
        for reg, value in proc.reg_init.items():
            if reg not in pmap:
                continue
            m = _LIMB.match(str(reg))
            if m and m.group(1) in overrides:
                limb = int(m.group(2))
                value = (overrides[m.group(1)] >> (WORD_WIDTH * limb)) \
                    & WORD_MASK
            reg_init[pmap[reg]] = value
        if ZERO_CONST in pmap:
            reg_init.setdefault(pmap[ZERO_CONST], 0)
        cores[core_id] = dataclasses.replace(binary, reg_init=reg_init)
    return dataclasses.replace(program, cores=cores)


class BatchRunner:
    """Compile once, advance B independent runs per Vcycle.

    ``programs`` is either one :class:`MachineProgram` (replicated
    ``width`` times - a throughput harness over identical stimuli) or a
    list of per-lane programs that must share one schedule (typically
    :func:`rebind_reg_inits` variants of a single compile; structural
    identity is verified before the batched kernel engages).
    """

    def __init__(self, programs, config=None, *, width: int | None = None,
                 engine: str = "codegen", lowering: str = "auto",
                 exception_stall: int = 500) -> None:
        if isinstance(programs, MachineProgram):
            if width is None:
                raise ValueError(
                    "width is required when replicating one program")
            programs = [programs] * width
        else:
            programs = list(programs)
            if width is not None and width != len(programs):
                raise ValueError(
                    f"width {width} != {len(programs)} per-lane programs")
        if not 1 <= len(programs) <= MAX_BATCH_WIDTH:
            raise ValueError(
                f"batch width {len(programs)} out of range "
                f"[1, {MAX_BATCH_WIDTH}]")
        self.width = len(programs)
        self.engine = engine
        self.lowering = lowering
        #: Resolved lowering of the last batched pass ("list"/"numpy"),
        #: or None when the serial fallback ran.
        self.lowering_used: str | None = None
        self.machines = [
            Machine(p, config, engine=engine,
                    exception_stall=exception_stall)
            for p in programs]
        #: Per-lane fatal-error strings (a lane that raised is masked
        #: out with this as its observable outcome), else None.
        self.errors: list[str | None] = [None] * self.width

    # ------------------------------------------------------------------
    def run(self, max_vcycles: int) -> list[MachineResult]:
        """Advance every lane to ``$finish``, a fatal error, or the
        Vcycle budget; returns per-lane results (error lanes get their
        machine's last-settled state - read :attr:`errors` first)."""
        if self.engine in BATCH_KERNEL_ENGINES:
            self._run_batched(max_vcycles)
        else:
            self._run_fallback(max_vcycles)
        results = []
        for m in self.machines:
            m._sync_compiled()
            results.append(MachineResult(
                vcycles=m.counters.vcycles,
                finished=m.finished,
                displays=list(m.displays),
                counters=m.counters,
                cache=m.cache.stats,
            ))
        return results

    # ------------------------------------------------------------------
    def _live(self, budget: int) -> list[int]:
        return [i for i, m in enumerate(self.machines)
                if not m.finished and self.errors[i] is None
                and m.counters.vcycles < budget]

    def _run_batched(self, budget: int) -> None:
        # Phase 1: bring every live lane to a trusted, Vcycle-aligned
        # point under its own scalar engine (the verify-once-then-trust
        # protocol runs per lane, exactly as in a single run).
        while True:
            live = self._live(budget)
            if not live:
                return
            if any(self.machines[i]._fastpath_error is not None
                   for i in live):
                # The schedule cannot be compiled at all: per-lane
                # serial execution is the contract.
                self._run_fallback(budget)
                return
            untrusted = [i for i in live if not self.machines[i]._trusted]
            if not untrusted:
                break
            for i in untrusted:
                try:
                    self.machines[i].step_vcycle()
                except SimulationFailure as exc:
                    self.errors[i] = f"{type(exc).__name__}: {exc}"

        # Phase 2: one compiled batched kernel over all live lanes.
        # Lanes must share the schedule (init images may differ - the
        # content key strips them).
        live = self._live(budget)
        m0 = self.machines[live[0]]
        key0 = cg._content_key(m0, variant="scalar")
        for i in live[1:]:
            if cg._content_key(self.machines[i],
                               variant="scalar") != key0:
                raise ValueError(
                    f"lane {i} was compiled from a different schedule "
                    "than lane 0; a batch must share one program "
                    "structure")
        _ns, plan = cg._compiled_for(m0)
        try:
            make_kernel, plan, mode = compiled_batch_kernel(
                m0, self.width, self.lowering, plan=plan)
        except CodegenUnsupported:
            self._run_fallback(budget)
            return
        self.lowering_used = mode
        while True:
            live = self._live(budget)
            if not live:
                return
            for i in live:
                # Flush any scalar kernel state: the batched kernel
                # hydrates from architectural registers.
                self.machines[i]._sync_compiled()
            remaining = min(budget - self.machines[i].counters.vcycles
                            for i in live)
            self._batch_pass(live, remaining, make_kernel, plan)

    def _batch_pass(self, live: list[int], budget: int, make_kernel,
                    plan) -> None:
        machines = self.machines
        errors = self.errors
        act = list(live)
        aborts: list[tuple[int, int, list[int]]] = []

        def svc(lane: int, eid: int) -> bool:
            # Per-lane exception service inside the Vcycle.  True means
            # "mask this lane out" - a $finish, or a fatal assertion
            # (recorded, state frozen, batch keeps going).
            try:
                machines[lane].service_exception(plan.priv, eid)
            except SimulationFailure as exc:
                errors[lane] = f"{type(exc).__name__}: {exc}"
                return True
            return machines[lane].finished

        gen = make_kernel(machines, act, aborts, svc)()
        steps = 0
        try:
            while act and steps < budget:
                next(gen)
                steps += 1
                if aborts:
                    for lane, k, msgs in aborts:
                        if errors[lane] is None:
                            self._finish_abort_lane(lane, k, msgs, plan,
                                                    clean=steps - 1)
                    aborts.clear()
            if act and steps:
                try:
                    gen.send(True)  # flush surviving lanes
                except StopIteration:  # pragma: no cover
                    pass
                for lane in act:
                    self._settle(machines[lane], steps, plan)
        finally:
            gen.close()

    def _finish_abort_lane(self, lane: int, k: int, msgs: list[int],
                           plan, clean: int) -> None:
        """Mid-Vcycle ``$finish`` on one lane: the kernel already
        flushed the lane's vector slots at the abort point; replay the
        executed prefix and charge counters exactly as the scalar
        engine's abort arm does."""
        m = self.machines[lane]
        c = m.counters
        c.instructions += clean * plan.n_instr
        c.messages += clean * plan.n_msgs
        c.vcycles += clean + 1
        c.compute_cycles += (clean + 1) * m.program.vcpl
        eng = m._fastpath
        eng._msgs[:] = msgs
        eng._finish_abort(k)
        m.now = 0

    @staticmethod
    def _settle(m: Machine, steps: int, plan) -> None:
        c = m.counters
        c.instructions += steps * plan.n_instr
        c.messages += steps * plan.n_msgs
        c.vcycles += steps
        c.compute_cycles += steps * m.program.vcpl
        m.now = 0

    def _run_fallback(self, budget: int) -> None:
        """Per-lane serial execution: the observable-equivalence
        reference semantics, used for engines without a batched kernel
        and for schedules the batch emitter cannot compile."""
        self.lowering_used = None
        for i, m in enumerate(self.machines):
            if m.finished or self.errors[i] is not None:
                continue
            try:
                m.run(budget)
            except SimulationFailure as exc:
                self.errors[i] = f"{type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """Snapshot the whole batch (valid between :meth:`run` calls,
        which always leave lanes flushed to architectural state)."""
        return {
            "version": 1,
            "width": self.width,
            "engine": self.engine,
            "errors": list(self.errors),
            "lanes": [m.checkpoint_state() for m in self.machines],
        }

    def load_checkpoint_state(self, state: dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported batch checkpoint version "
                f"{state.get('version')!r}")
        if state["width"] != self.width or state["engine"] != self.engine:
            raise ValueError(
                f"checkpoint is for width={state['width']} "
                f"engine={state['engine']}, runner has "
                f"width={self.width} engine={self.engine}")
        self.errors = list(state["errors"])
        for m, lane_state in zip(self.machines, state["lanes"]):
            m.load_checkpoint_state(lane_state)


def run_batch(programs, max_vcycles: int, config=None, *,
              width: int | None = None, engine: str = "codegen",
              lowering: str = "auto") -> list[MachineResult]:
    """One-shot batched execution: build a :class:`BatchRunner`, run it
    to ``max_vcycles``, and return the per-lane results.  Raises
    :class:`~repro.isa.program.SimulationFailure` for the first errored
    lane, matching ``Machine.run``'s contract for a single run."""
    runner = BatchRunner(programs, config, width=width, engine=engine,
                         lowering=lowering)
    results = runner.run(max_vcycles)
    for i, err in enumerate(runner.errors):
        if err is not None:
            raise SimulationFailure(f"lane {i}: {err}")
    return results
