"""Codegen execution engine: the static Vcycle schedule emitted as
specialized Python source and ``exec``'d into straight-line kernels.

The fast engine (:mod:`repro.machine.fastpath`) already removes type
dispatch and operand resolution, but it still pays one Python *call* per
scheduled event per Vcycle - at an 8x8 grid that is ~10^4 closure
invocations per Vcycle, and the interpreter's frame setup/teardown
dominates the actual 16-bit arithmetic.  This module removes the calls
too (selected with ``engine="codegen"``): it walks the same verified
static schedule and **emits Python source** for the whole grid -

* one *generator function* holding every touched register of every core
  as a frame-local variable (``c{cid}_r{n}``), persisting across
  Vcycles in a ``while True:`` loop, so a register access is a single
  ``LOAD_FAST``/``STORE_FAST``;
* constants folded inline (a ``Set`` feeding an ``Alu`` becomes one
  masked literal expression), dead masks elided, ``Custom`` CFU configs
  lowered to Quine-McCluskey-minimized bitwise expressions instead of a
  16-iteration interpretation loop;
* the static Send schedule applied as plain local-to-local moves after
  all core bodies ran (messages never materialize unless an abort path
  needs them);
* per-``Expect`` abort sentinels with statically precomputed prefix
  counters, so a mid-Vcycle ``$finish`` produces the exact strict-engine
  architectural state and counter deltas.

The emitted module is cached under a content hash of the program binary
and machine config (in-process, plus an optional on-disk source cache at
``$REPRO_CODEGEN_CACHE`` / ``~/.cache/repro-codegen``), so warm runs
skip emission entirely.

Correctness rides the same rails as the fast engine: the
verify-once-then-trust protocol (strict Vcycles first, compiled trace
only after clean verification, re-verification after every exception),
the same :class:`CodegenUnsupported` static bail-out to the strict
engine, and bit-identical registers, scratchpads, displays, and counters
- ``tests/test_codegen_equivalence.py`` enforces this over all nine
designs, and the ``machine-codegen`` fuzz oracles cross-check it against
every other engine.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import os
import re
import tempfile
import weakref
from collections import Counter
from typing import TYPE_CHECKING

from ..isa import instructions as isa
from ..isa.instructions import WORD_MASK, WORD_WIDTH
from ..isa.semantics import ALU_OPS, eval_custom
from .fastpath import FastpathUnsupported

if TYPE_CHECKING:  # pragma: no cover
    from .grid import Machine

#: Bumped whenever the emitted source's semantics change; part of the
#: cache key so stale on-disk sources can never be exec'd.  v2: the key
#: hashes an init-stripped program image (register/scratch/DRAM boot
#: values and the design name excluded - the emitted source never
#: depends on them) and gained a variant tag separating scalar kernels
#: from batched ones (see :mod:`repro.machine.batch_codegen`).
CODEGEN_SCHEMA_VERSION = 2

#: Hard ceiling on emitted source size (lines); beyond this the compile
#: falls back to the strict engine rather than risk pathological
#: CPython compile times.
_MAX_SOURCE_LINES = 400_000

#: Emission counter (cache misses that actually ran the emitter) -
#: observability for tests and the profile CLI.
EMISSIONS = 0

#: In-process module cache: content hash -> exec'd module namespace.
#: Emitted modules are state-free (``make_kernel`` binds a machine at
#: call time), so one namespace serves any number of machines.
_MEMO: dict[str, dict] = {}


class CodegenUnsupported(FastpathUnsupported):
    """The program's schedule cannot be compiled to Python source; the
    machine silently keeps the strict engine (correctness first)."""


# ---------------------------------------------------------------------------
# Quine-McCluskey minimization for Custom (CFU) instructions.
#
# A CFU config packs 16 truth tables (one per bit position) of 16 rows
# each (row = a | b<<1 | c<<2 | d<<3).  Positions sharing a table are
# grouped under one mask, and each distinct table is lowered to a
# minimized sum-of-products over the four *word-wide* operands - the
# bitwise ops evaluate all 16 lanes at once, replacing eval_custom's
# 16-iteration per-call loop with a handful of ANDs and ORs.
# ---------------------------------------------------------------------------
def _qm_cover(minterms: frozenset[int]) -> list[tuple[int, int]]:
    """Prime-implicant cover of ``minterms`` over 4 variables.

    Returns implicants as ``(value, care_mask)`` pairs: a minterm ``m``
    is covered iff ``m & care_mask == value``.  Greedy set cover over
    the prime implicants (optimal size is irrelevant here - anything
    beats interpretation)."""
    if not minterms:
        return []
    groups = {(m, 0b1111) for m in minterms}
    primes: set[tuple[int, int]] = set()
    while groups:
        nxt: set[tuple[int, int]] = set()
        merged: set[tuple[int, int]] = set()
        glist = sorted(groups)
        for i, (v1, c1) in enumerate(glist):
            for v2, c2 in glist[i + 1:]:
                if c1 != c2:
                    continue
                diff = v1 ^ v2
                if diff.bit_count() == 1 and diff & c1:
                    nxt.add((min(v1, v2) & ~diff, c1 & ~diff))
                    merged.add((v1, c1))
                    merged.add((v2, c2))
        primes |= groups - merged
        groups = nxt
    # Greedy cover.
    cover: list[tuple[int, int]] = []
    remaining = set(minterms)
    candidates = sorted(primes, key=lambda p: p[1].bit_count())
    while remaining:
        best = max(candidates,
                   key=lambda p: (len([m for m in remaining
                                       if m & p[1] == p[0]]),
                                  -p[1].bit_count()))
        covered = {m for m in remaining if m & best[1] == best[0]}
        if not covered:  # pragma: no cover - cover always progresses
            raise CodegenUnsupported("CFU cover failed to converge")
        cover.append(best)
        remaining -= covered
    return cover


def _cover_cost(cover: list[tuple[int, int]]) -> int:
    """Literal count + negations: a cheap proxy for evaluation cost."""
    cost = 0
    for value, care in cover:
        for bit in range(4):
            if care & (1 << bit):
                cost += 1 if value & (1 << bit) else 2
    return cost


def _cover_expr(cover: list[tuple[int, int]], ops: list[str]) -> str:
    """Render a cover as a bitwise expression over operand strings."""
    terms = []
    for value, care in cover:
        lits = []
        for bit in range(4):
            if not care & (1 << bit):
                continue
            if value & (1 << bit):
                lits.append(ops[bit])
            else:
                lits.append(f"({ops[bit]} ^ {WORD_MASK})")
        terms.append(" & ".join(lits) if lits else str(WORD_MASK))
    return " | ".join(f"({t})" for t in terms)


# Bounded exact synthesis: sum-of-products is pathological for the
# XOR-shaped tables cryptographic designs feed the CFU (a 3-input
# parity has no mergeable implicants, so QM renders 12 literals for
# what is really two XORs).  A small library of cheap bitwise forms -
# polarity literals, XOR/AND/OR subsets, one pairwise combination
# round, final complements - is synthesized once and memoized; each
# truth table then takes the cheaper of its QM cover and its library
# entry.  Tables are 16-bit masks over rows ``a | b<<1 | c<<2 | d<<3``,
# so the operand tables are the usual 0xAAAA/0xCCCC/0xF0F0/0xFF00.
_SYNTH_LIB: dict[int, tuple[int, str]] | None = None


def _synth_lib() -> dict[int, tuple[int, str]]:
    global _SYNTH_LIB
    if _SYNTH_LIB is not None:
        return _SYNTH_LIB
    best: dict[int, tuple[int, str]] = {}

    def add(t: int, cost: int, tmpl: str) -> None:
        cur = best.get(t)
        if cur is None or cost < cur[0]:
            best[t] = (cost, tmpl)

    leaves = [(0xAAAA, "{0}"), (0xCCCC, "{1}"),
              (0xF0F0, "{2}"), (0xFF00, "{3}")]
    lits = []
    for t, e in leaves:
        add(t, 0, e)
        lits.append((t, 0, e))
        lits.append((t ^ 0xFFFF, 1, f"({e} ^ {WORD_MASK})"))
    for sym in ("^", "&", "|"):
        for r in (2, 3, 4):
            for combo in itertools.combinations(lits, r):
                t = combo[0][0]
                for u, _c, _e in combo[1:]:
                    t = (t ^ u if sym == "^" else
                         t & u if sym == "&" else t | u)
                cost = sum(c for _t, c, _e in combo) + r - 1
                tmpl = "(" + f" {sym} ".join(e for _t, _c, e in combo) + ")"
                add(t, cost, tmpl)
    entries = sorted(best.items(), key=lambda kv: kv[1][0])
    for t1, (c1, e1) in entries:
        for t2, (c2, e2) in entries:
            add(t1 & t2, c1 + c2 + 1, f"({e1} & {e2})")
            add(t1 | t2, c1 + c2 + 1, f"({e1} | {e2})")
            add(t1 ^ t2, c1 + c2 + 1, f"({e1} ^ {e2})")
    for t, (c, e) in list(best.items()):
        add(t ^ 0xFFFF, c + 1, f"({e} ^ {WORD_MASK})")
    _SYNTH_LIB = best
    return best


# config -> list of (positions_mask, cover, complemented, template) per
# distinct table; template (a _synth_lib hit that beat the QM cover) is
# formatted with the four operand strings, else the cover is rendered.
# Verified plans are memoized - CFU configs repeat heavily in a design.
_CFU_COVERS: dict[
    int, list[tuple[int, list[tuple[int, int]], bool, str | None]]] = {}


def _cfu_plan(config: int):
    plan = _CFU_COVERS.get(config)
    if plan is not None:
        return plan
    tables: dict[frozenset[int], int] = {}
    for pos in range(WORD_WIDTH):
        table = frozenset(
            row for row in range(16)
            if (config >> (pos * 16 + row)) & 1)
        tables[table] = tables.get(table, 0) | (1 << pos)
    plan = []
    lib = _synth_lib()
    for table, mask in sorted(tables.items(), key=lambda kv: kv[1]):
        if not table:
            continue
        direct = _qm_cover(table)
        comp = _qm_cover(frozenset(range(16)) - table)
        if comp and _cover_cost(comp) + 1 < _cover_cost(direct):
            cover, complemented = comp, True
        else:
            cover, complemented = direct, False
        # Op-count proxy for the rendered cover, comparable to the
        # library's cost metric.
        qm_ops = (_cover_cost(cover) + len(cover) - 1
                  + (2 if complemented else 0))
        hit = lib.get(sum(1 << row for row in table))
        tmpl = hit[1] if hit is not None and hit[0] < qm_ops else None
        plan.append((mask, cover, complemented, tmpl))
    _verify_cfu_plan(config, plan)
    _CFU_COVERS[config] = plan
    return plan


def _custom_expr(config: int, ops: list[str]) -> str:
    """Word-wide bitwise expression equivalent to
    ``eval_custom(config, a, b, c, d)`` for the operand strings."""
    parts = []
    for mask, cover, complemented, tmpl in _cfu_plan(config):
        if tmpl is not None:
            g = tmpl.format(*ops)
        elif len(cover) == 1 and cover[0][1] == 0 and not complemented:
            g = str(WORD_MASK)  # constant-true table
        else:
            g = _cover_expr(cover, ops)
            if complemented:
                g = f"{WORD_MASK} ^ ({g})"
        if mask == WORD_MASK:
            parts.append(f"({g})")
        else:
            parts.append(f"({mask} & ({g}))")
    return " | ".join(parts) if parts else "0"


def _verify_cfu_plan(config: int, plan) -> None:
    """Emission-time self-check: the lowered expression must agree with
    ``eval_custom`` on deterministic pseudo-random vectors (a last line
    of defense against minimizer bugs; failure falls back to strict)."""
    saved = _CFU_COVERS.get(config)
    _CFU_COVERS[config] = plan
    try:
        expr = _custom_expr(config, ["a", "b", "c", "d"])
    finally:
        if saved is None:
            _CFU_COVERS.pop(config, None)
        else:  # pragma: no cover - re-verification never happens
            _CFU_COVERS[config] = saved
    fn = eval(compile(f"lambda a, b, c, d: {expr}", "<cfu-check>", "eval"))
    x = (config ^ 0x5DEECE66D) & 0x7FFFFFFF
    for _ in range(32):
        vals = []
        for _v in range(4):
            x = (x * 1103515245 + 12345) & 0x7FFFFFFF
            vals.append(x & WORD_MASK)
        a, b, c, d = vals
        if fn(a, b, c, d) != eval_custom(config, a, b, c, d):
            raise CodegenUnsupported(
                f"CFU lowering mismatch for config {config:#x}")


# ---------------------------------------------------------------------------
# Scalar expression helpers.  Operands arrive as (expr_string, const)
# pairs; const is the known 16-bit value when the emitter proved one,
# else None.  Every helper returns the same pair shape so folds chain.
# ---------------------------------------------------------------------------
def _signed_expr(s: str, c: int | None) -> str:
    if c is not None:
        v = c - 0x10000 if c & 0x8000 else c
        return str(v)
    return f"({s} - 65536 if {s} & 32768 else {s})"


def _alu_expr(op: str, sa: str, ca: int | None, sb: str,
              cb: int | None) -> tuple[str, int | None]:
    if ca is not None and cb is not None:
        v = ALU_OPS[op](ca, cb)
        return str(v), v
    if op == "ADD":
        if ca == 0:
            return sb, cb
        if cb == 0:
            return sa, ca
        return f"({sa} + {sb}) & {WORD_MASK}", None
    if op == "SUB":
        if cb == 0:
            return sa, ca
        return f"({sa} - {sb}) & {WORD_MASK}", None
    if op == "AND":
        if ca == WORD_MASK:
            return sb, cb
        if cb == WORD_MASK:
            return sa, ca
        if ca == 0 or cb == 0:
            return "0", 0
        return f"{sa} & {sb}", None
    if op == "OR":
        if ca == 0:
            return sb, cb
        if cb == 0:
            return sa, ca
        return f"{sa} | {sb}", None
    if op == "XOR":
        if ca == 0:
            return sb, cb
        if cb == 0:
            return sa, ca
        return f"{sa} ^ {sb}", None
    if op == "MUL":
        if ca == 1:
            return sb, cb
        if cb == 1:
            return sa, ca
        if ca == 0 or cb == 0:
            return "0", 0
        return f"({sa} * {sb}) & {WORD_MASK}", None
    if op == "MULH":
        if ca == 0 or cb == 0:
            return "0", 0
        return f"({sa} * {sb}) >> {WORD_WIDTH} & {WORD_MASK}", None
    if op == "SLL":
        if cb is not None:
            if cb >= WORD_WIDTH:
                return "0", 0
            if cb == 0:
                return sa, ca
            return f"({sa} << {cb}) & {WORD_MASK}", None
        return (f"(({sa} << {sb}) & {WORD_MASK} "
                f"if {sb} < {WORD_WIDTH} else 0)"), None
    if op == "SRL":
        if cb is not None:
            if cb >= WORD_WIDTH:
                return "0", 0
            if cb == 0:
                return sa, ca
            return f"{sa} >> {cb}", None
        return f"({sa} >> {sb} if {sb} < {WORD_WIDTH} else 0)", None
    if op == "SRA":
        se = _signed_expr(sa, ca)
        if cb is not None:
            sh = min(cb, WORD_WIDTH - 1)
            if sh == 0:
                return sa, ca
            return f"({se} >> {sh}) & {WORD_MASK}", None
        return (f"({se} >> ({sb} if {sb} < {WORD_WIDTH - 1} "
                f"else {WORD_WIDTH - 1})) & {WORD_MASK}"), None
    if op == "SEQ":
        return f"(1 if {sa} == {sb} else 0)", None
    if op == "SLTU":
        return f"(1 if {sa} < {sb} else 0)", None
    if op == "SLTS":
        return (f"(1 if {_signed_expr(sa, ca)} < "
                f"{_signed_expr(sb, cb)} else 0)"), None
    raise CodegenUnsupported(f"unknown ALU op {op!r}")


def _scratch_index(base: str, cbase: int | None, off: int, n: int) -> str:
    """Index expression for a scratchpad access: the strict engine
    computes ``((base + off) & WORD_MASK) % n``; power-of-two sizes
    collapse both reductions into one mask."""
    if cbase is not None:
        return str(((cbase + off) & WORD_MASK) % n)
    inner = base if off == 0 else f"({base} + {off})"
    if n & (n - 1) == 0:  # power of two
        mask = min(WORD_MASK, n - 1)
        if mask == WORD_MASK and off == 0:
            return base
        return f"{inner} & {mask}"
    return f"({inner} & {WORD_MASK}) % {n}"


# ---------------------------------------------------------------------------
# Static analysis: everything the emitter and the driver need, computed
# once from the merged Vcycle event list.  Deterministic - a cached
# source file always matches a freshly computed plan.
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class _Sentinel:
    """Statically precomputed bookkeeping for one ``Expect`` abort
    position: strict-engine counter deltas up to (and including) the
    Expect, per-core profiler prefixes, and the deferred-write fixups
    the stop functions cannot decide locally."""

    n_instr: int
    n_msgs: int
    core_instr: dict[int, int]
    core_sends: dict[int, int]
    core_recvs: dict[int, int]
    fixups: list[tuple[int, int, int]]  # (cid, reg, park index)


class _Plan:
    """Output of :func:`_analyze` (plain attribute bag)."""


def _bisect(seq, value):
    lo, hi = 0, len(seq)
    while lo < hi:
        mid = (lo + hi) // 2
        if seq[mid] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


_SUPPORTED = (isa.Set, isa.Alu, isa.Mux, isa.Slice, isa.AddCarry,
              isa.SetCarry, isa.Custom, isa.Send, isa.LocalLoad,
              isa.LocalStore, isa.Predicate, isa.GlobalLoad,
              isa.GlobalStore, isa.Expect)


def _analyze(machine: "Machine") -> _Plan:
    cfg = machine.config
    cores = machine.cores
    events = machine._vcycle_events
    priv = machine.program.privileged_core
    vcpl = machine.program.vcpl
    latency = cfg.result_latency

    plan = _Plan()
    plan.priv = priv
    plan.vcpl = vcpl

    # -- per-core bodies and the static message plan --------------------
    body: dict[int, list] = {cid: [] for cid in cores}  # (cycle, instr, idx)
    recv_cycles: dict[int, list[int]] = {cid: [] for cid in cores}
    recv_idx: dict[int, list[int]] = {cid: [] for cid in cores}
    per_target: dict[int, list] = {cid: [] for cid in cores}
    sends_in_order: list[tuple] = []  # (idx, src, body_pos, rs, target)
    seq = 0
    for idx, (cycle, cid, item) in enumerate(events):
        if item == "recv":
            recv_cycles[cid].append(cycle)
            recv_idx[cid].append(idx)
            continue
        if getattr(item, "execute_on", None) is not None:
            raise CodegenUnsupported(
                f"core {cid}: pseudo-instruction "
                f"{type(item).__name__} in a machine program")
        if not isinstance(item, _SUPPORTED):
            raise CodegenUnsupported(
                f"cannot emit {type(item).__name__}")
        t = type(item)
        if t is isa.Expect and cid != priv:
            raise CodegenUnsupported(
                f"core {cid}: Expect outside the privileged core")
        if t in (isa.GlobalLoad, isa.GlobalStore) and cid != priv:
            raise CodegenUnsupported(
                f"core {cid}: global access outside the privileged core")
        if t in (isa.LocalLoad, isa.LocalStore) \
                and cores[cid].scratch is None:
            raise CodegenUnsupported(
                f"core {cid}: local access without scratchpad")
        if t is isa.Custom and item.index >= len(cores[cid].binary.cfu):
            raise CodegenUnsupported(
                f"core {cid}: CFU index {item.index} unconfigured")
        ws = item.writes()
        if ws and cycle + latency > vcpl:
            raise CodegenUnsupported(
                f"core {cid}: writeback at {cycle + latency} past "
                f"VCPL {vcpl}")
        if t is isa.Send:
            if item.target not in cores:
                raise CodegenUnsupported(
                    f"Send to unmapped core {item.target}")
            hops = len(cfg.route(cid, item.target))
            arrival = (cycle + cfg.noc_inject_latency + hops
                       + cfg.noc_eject_latency)
            per_target[item.target].append((arrival, seq, item.rd, idx))
            sends_in_order.append(
                (idx, cid, len(body[cid]), item.rs, item.target))
            seq += 1
        body[cid].append((cycle, item, idx))

    # Arrival-sorted receive matching; mid == global send order, so the
    # first n sends of the event list are exactly mids [0, n).
    idx_to_mid = {}
    for mid, (idx, _src, _pos, _rs, _tgt) in enumerate(sends_in_order):
        idx_to_mid[idx] = mid
    recv_rd: dict[int, list[int]] = {}
    recv_mid: dict[int, list[int]] = {}
    send_slot: dict[int, tuple[int, int]] = {}  # mid -> (target, slot j)
    for cid in cores:
        msgs = sorted(per_target[cid], key=lambda m: (m[0], m[1]))
        slots = recv_cycles[cid]
        if len(msgs) != len(slots):
            raise CodegenUnsupported(
                f"core {cid}: {len(msgs)} messages for {len(slots)} "
                "receive slots")
        recv_rd[cid] = []
        recv_mid[cid] = []
        for j, (arrival, sseq, rd, sidx) in enumerate(msgs):
            if arrival > slots[j]:
                raise CodegenUnsupported(
                    f"core {cid}: arrival {arrival} after receive "
                    f"slot {slots[j]}")
            recv_rd[cid].append(rd)
            recv_mid[cid].append(idx_to_mid[sidx])
            send_slot[idx_to_mid[sidx]] = (cid, j)

    plan.body = body
    plan.recv_cycles = recv_cycles
    plan.recv_rd = recv_rd
    plan.recv_mid = recv_mid
    plan.sends = sends_in_order
    plan.send_slot = send_slot
    plan.n_msgs = len(sends_in_order)
    plan.send_routes = [
        tuple(cfg.route(src, tgt))
        for _idx, src, _pos, _rs, tgt in sends_in_order]
    link_hops: Counter = Counter()
    for route in plan.send_routes:
        link_hops.update(route)
    plan.link_hops = dict(link_hops)

    # -- full-Vcycle counters and per-Expect sentinel snapshots ----------
    plan.core_instr = {cid: len(body[cid]) for cid in cores}
    plan.core_sends = {cid: 0 for cid in cores}
    plan.core_recvs = {cid: len(recv_cycles[cid]) for cid in cores}
    plan.n_instr = sum(plan.core_instr.values())
    sentinels: list[_Sentinel] = []
    expect_positions: list[int] = []  # global event idx per sentinel
    expect_sentinel: dict[int, int] = {}  # priv body pos -> sentinel id
    r_instr = r_msgs = 0
    run_instr = {cid: 0 for cid in cores}
    run_sends = {cid: 0 for cid in cores}
    run_recvs = {cid: 0 for cid in cores}
    body_seen = {cid: 0 for cid in cores}
    for idx, (cycle, cid, item) in enumerate(events):
        if item == "recv":
            run_recvs[cid] += 1
            continue
        r_instr += 1
        run_instr[cid] += 1
        if type(item) is isa.Send:
            plan.core_sends[cid] += 1
            run_sends[cid] += 1
            r_msgs += 1
        elif type(item) is isa.Expect:
            # n_instr includes the Expect itself; n_msgs counts sends
            # strictly before it (an Expect is never a Send, so the
            # running count is already right).
            expect_sentinel[body_seen[cid]] = len(sentinels)
            expect_positions.append(idx)
            sentinels.append(_Sentinel(
                r_instr, r_msgs, dict(run_instr), dict(run_sends),
                dict(run_recvs), []))
        body_seen[cid] += 1
    plan.sentinels = sentinels
    plan.expect_sentinel = expect_sentinel
    plan.expect_positions = expect_positions

    # -- stop-function thresholds (monotone guards) ----------------------
    plan.body_thresholds = {
        cid: [_bisect(expect_positions, e[2] + 1)
              for e in body[cid]]
        for cid in cores}
    plan.recv_thresholds = {
        cid: [_bisect(expect_positions, i + 1) for i in recv_idx[cid]]
        for cid in cores}
    # A sentinel's per-core executed-prefix lengths.
    body_idx = {cid: [e[2] for e in body[cid]] for cid in cores}
    plan.cut_body = {
        cid: [_bisect(body_idx[cid], p) for p in expect_positions]
        for cid in cores}
    plan.cut_recv = {
        cid: [_bisect(recv_idx[cid], p) for p in expect_positions]
        for cid in cores}

    # -- deferred-write conflicts and their static resolutions -----------
    # Same window rule as the fast path: a receive slot landing on a
    # register *inside* a write's latency window means immediate commit
    # would be observable.  Here nothing is parked at runtime on the
    # normal path - the winner is computed statically (last strict-order
    # commit moment wins) and the loser's assignments are simply omitted
    # from the emitted source.  Only the abort path parks values.
    plan.conflicted = {}
    plan.park_idx = {}
    plan.omit = set()       # (cid, slot j) receive moves to skip
    n_park = 0
    for cid in cores:
        pairs = list(zip(recv_cycles[cid], recv_rd[cid]))
        conflicts: set[int] = set()
        if pairs:
            for cycle, instr, _x in body[cid]:
                ws = instr.writes()
                if not ws:
                    continue
                for s, rrd in pairs:
                    if rrd == ws[0] and cycle < s < cycle + latency:
                        conflicts.add(ws[0])
                        break
        plan.conflicted[cid] = conflicts
        if not conflicts:
            continue
        nb = len(body[cid])
        # Own-order event cycles (body then receives - a core's receive
        # epilogue always follows its body); strictly increasing, so a
        # write at t commits right before the first own event at cycle
        # >= t + latency, or in the end-of-Vcycle drain (INF).
        own_cycles = [e[0] for e in body[cid]] + recv_cycles[cid]
        n_own = len(own_cycles)
        inf = n_own + 1
        writes: dict[int, list[tuple[int, int]]] = {R: [] for R in conflicts}
        for i, (cycle, instr, _x) in enumerate(body[cid]):
            ws = instr.writes()
            if ws and ws[0] in conflicts:
                writes[ws[0]].append(
                    (i, _bisect(own_cycles, cycle + latency)))
        recvs_of = {R: [j for j, rd in enumerate(recv_rd[cid]) if rd == R]
                    for R in conflicts}
        if cid != priv:
            for R in sorted(conflicts):
                for i, _p in writes[R]:
                    plan.park_idx[(cid, i)] = n_park
                    n_park += 1
        for R in sorted(conflicts):
            # Full-Vcycle winner; keys order strict commit moments
            # (commits run *before* the event at their position, so a
            # receive at the same position wins the tie).
            keys = [((p if p < n_own else inf), 0, i)
                    for i, p in writes[R]]
            keys += [(nb + j, 1, j) for j in recvs_of[R]]
            if max(keys)[1] == 0:   # a write outlives every receive
                plan.omit.update((cid, j) for j in recvs_of[R])
            if cid == priv:
                continue    # no priv receive ever precedes a priv Expect
            # Per-sentinel winners over the *executed* prefix: the stop
            # replay leaves the last executed receive's value, so patch
            # in the parked write value when a drain commit outlives it.
            for k in range(len(sentinels)):
                cb = plan.cut_body[cid][k]
                cr = plan.cut_recv[cid][k]
                exec_recvs = [j for j in recvs_of[R] if j < cr]
                if not exec_recvs:
                    continue
                cut_own = cb + cr
                wkeys = [((p if p < cut_own else inf), 0, i)
                         for i, p in writes[R] if i < cb]
                best = max(wkeys + [(nb + j, 1, j) for j in exec_recvs])
                if best[1] == 0:
                    sentinels[k].fixups.append(
                        (cid, R, plan.park_idx[(cid, best[2])]))
    plan.n_park = n_park

    # -- send-value captures ---------------------------------------------
    # A receive move reads its sender's local *after* every body ran; the
    # value must be snapshotted at the send position when the source
    # register is overwritten later in the sender's body, is itself a
    # receive destination, or feeds a privileged abort path (msgs[] for
    # the stop replay).
    has_expects = bool(sentinels)
    plan.capture = set()
    plan.unused = set()
    for mid, (idx, src, pos, rs, tgt) in enumerate(sends_in_order):
        tcid, j = send_slot[mid]
        priv_abort = src == priv and has_expects
        if (tcid, j) in plan.omit and not priv_abort:
            plan.unused.add(mid)
            continue
        overwritten = any(
            i > pos and instr.writes() and instr.writes()[0] == rs
            for i, (_c, instr, _x) in enumerate(body[src]))
        if overwritten or rs in set(recv_rd[src]) or priv_abort:
            plan.capture.add(mid)

    # -- touched registers, carry/predicate usage ------------------------
    plan.touched = {}
    plan.written = {}
    plan.has_carry = {}
    plan.has_pred = {}
    n_locals = 0
    for cid in cores:
        reads: set[int] = set()
        written: set[int] = set()
        carry = pred = False
        for _c, instr, _x in body[cid]:
            reads.update(instr.reads())
            ws = instr.writes()
            if ws:
                written.add(ws[0])
            t = type(instr)
            if t in (isa.AddCarry, isa.SetCarry):
                carry = True
            if t in (isa.Predicate, isa.LocalStore, isa.GlobalStore):
                pred = True
        written.update(recv_rd[cid])
        plan.written[cid] = written
        plan.touched[cid] = sorted(reads | written)
        plan.has_carry[cid] = carry
        plan.has_pred[cid] = pred
        n_locals += len(plan.touched[cid]) + 2
    if n_locals + plan.n_msgs > 60_000:
        raise CodegenUnsupported(
            f"{n_locals + plan.n_msgs} kernel locals exceed the "
            "emission budget")
    return plan


# ---------------------------------------------------------------------------
# Single-use copy propagation over the emitted Vcycle body.
# ---------------------------------------------------------------------------
_FUSE_ASSIGN = re.compile(r"^( *)(c\d+_(?:r\d+|cy|pr)|m\d+|_t) = (.*)$")
_FUSE_NAME = re.compile(r"c\d+_(?:r\d+|cy|pr)|m\d+|_t")
_FUSE_IDENT = re.compile(r"[A-Za-z_]\w*")
_FUSE_PURE_WORDS = frozenset(("if", "else"))
_FUSE_MAX_EXPR = 300


def _fuse(body: list[str]) -> list[str]:
    """Fold single-use register definitions into their use site.

    Netlist-derived schedules reuse register slots heavily, so most ALU
    results are written, read exactly once, and clobbered - a separate
    STORE_FAST/LOAD_FAST round trip per value.  This pass rewrites
    ``x = a + b; y = x & 7`` into ``y = ((a + b)) & 7`` when ``x`` is
    provably dead afterwards, which is worth ~25-40% of kernel time.

    The analysis is purely textual over the statement stream of one
    ``while True`` iteration.  A definition ``T = expr`` is fused iff

    * ``expr`` is pure: every identifier in it is another kernel local
      (no scratchpad/DRAM/``msgs`` access, whose ordering vs. stores
      must be preserved);
    * ``T`` is redefined later in the stream (so the fused value is
      never the value that survives into the next Vcycle or the final
      writeback - the writeback blocks mention every written local by
      name, which makes this check fall out of plain use counting);
    * between definition and redefinition ``T`` is used exactly once,
      and none of ``expr``'s operands are reassigned before that use.

    A definition whose window closes with *zero* uses is a dead store
    (a carry nobody reads before the next ``SetCarry``, a folded
    constant kept only for a writeback that a later write supersedes)
    and is deleted outright.  Deletions expose new single-use chains -
    notably ``_t``-based AddCarry triples collapsing to one statement
    once their carry-out proves dead - so the pass runs to a fixpoint.

    Values consumed inside the priv core's abort writeback blocks count
    as uses like any other line, so prefix semantics at a mid-Vcycle
    ``$finish`` are preserved without special cases.
    """
    n = len(body)
    indents: list[str | None] = [None] * n
    lhs: list[str | None] = [None] * n
    rhs: list[str] = [""] * n
    for idx, line in enumerate(body):
        m = _FUSE_ASSIGN.match(line)
        if m:
            indents[idx], lhs[idx], rhs[idx] = m.groups()
        else:
            rhs[idx] = line  # guards, calls, yields: count uses whole
    dead = [False] * n
    changed = True
    rounds = 0
    while changed and rounds < 4:
        changed = False
        rounds += 1
        for i in range(n):
            t = lhs[i]
            # Candidates are top-level register/carry/predicate/temp
            # writes; a send capture (m<N>) exists precisely because its
            # operand is clobbered before delivery, so it never moves.
            if (dead[i] or t is None or indents[i] != "            "
                    or t.startswith("m")):
                continue
            expr = rhs[i]
            if len(expr) > _FUSE_MAX_EXPR:
                continue
            idents = set(_FUSE_IDENT.findall(expr))
            if not all(w in _FUSE_PURE_WORDS or _FUSE_NAME.fullmatch(w)
                       for w in idents):
                continue
            pat = re.compile(rf"\b{t}\b")
            cnt = 0
            use = -1
            closed = False
            for j in range(i + 1, n):
                if dead[j]:
                    continue
                hits = len(pat.findall(rhs[j]))
                if hits:
                    cnt += hits
                    if cnt > 1:
                        break
                    use = j
                if lhs[j] == t:
                    closed = True  # redefined: the value window ends
                    break
                if cnt == 0 and lhs[j] in idents:
                    break  # an operand is clobbered before the use
            if not closed:
                continue
            if cnt == 0:
                dead[i] = True  # dead store
                changed = True
            elif cnt == 1:
                new_rhs = pat.sub(lambda _m: f"({expr})", rhs[use],
                                  count=1)
                rhs[use] = new_rhs
                body[use] = (f"{indents[use]}{lhs[use]} = {new_rhs}"
                             if lhs[use] is not None else new_rhs)
                dead[i] = True
                changed = True
    return [line for idx, line in enumerate(body) if not dead[idx]]


# ---------------------------------------------------------------------------
# Source emission.
# ---------------------------------------------------------------------------
def _gaddr(val, addr_regs) -> str:
    """48-bit global address expression from (hi, mid, lo) registers."""
    parts = []
    for reg, shift in zip(addr_regs, (32, 16, 0)):
        s, c = val(reg)
        if c is not None:
            if c:
                parts.append(str(c << shift))
        elif shift:
            parts.append(f"({s} << {shift})")
        else:
            parts.append(s)
    return " | ".join(parts) if parts else "0"


def _emit(machine: "Machine", plan: _Plan) -> str:
    global EMISSIONS
    EMISSIONS += 1
    cores = machine.cores
    priv = plan.priv
    cids = sorted(cores)
    has_expects = bool(plan.sentinels)
    send_mid = {(src, pos): mid
                for mid, (_i, src, pos, _rs, _t) in enumerate(plan.sends)}
    uses_scratch = {
        cid: any(type(i) in (isa.LocalLoad, isa.LocalStore)
                 for _c, i, _x in plan.body[cid])
        for cid in cids}
    uses_global = any(
        type(i) in (isa.GlobalLoad, isa.GlobalStore)
        for _c, i, _x in plan.body.get(priv, ()))

    lines: list[str] = [
        '"""Machine-generated by repro.machine.codegen '
        f'(schema v{CODEGEN_SCHEMA_VERSION}); do not edit."""',
        "",
        "",
        "def make_kernel(machine, cores, msgs, park):",
        "    _m = machine",
    ]
    if has_expects:
        lines.append("    _se = machine.service_exception")
    if uses_global:
        lines.append("    _gr = machine.global_read")
        lines.append("    _gw = machine.global_write")
    for cid in cids:
        lines.append(f"    core{cid} = cores[{cid}]")
        lines.append(f"    regs{cid} = core{cid}.regs")
        if uses_scratch[cid]:
            lines.append(f"    sc{cid} = core{cid}.scratch")
    lines.append("")
    lines.append("    def grid_kernel():")
    for cid in cids:
        for r in plan.touched[cid]:
            lines.append(f"        c{cid}_r{r} = regs{cid}[{r}]")
        if plan.has_carry[cid]:
            lines.append(f"        c{cid}_cy = core{cid}.carry")
        if plan.has_pred[cid]:
            lines.append(f"        c{cid}_pr = core{cid}.predicate")
    lines.append("        while True:")
    if has_expects:
        lines.append("            exc = False")

    # The writeback block shared by every exit (sync, exception, abort):
    # flush all written locals, carry, and predicate back to the cores.
    wb: list[str] = []
    for cid in cids:
        for r in sorted(plan.written[cid]):
            wb.append(f"regs{cid}[{r}] = c{cid}_r{r}")
        if plan.has_carry[cid]:
            wb.append(f"core{cid}.carry = c{cid}_cy")
        if plan.has_pred[cid]:
            wb.append(f"core{cid}.predicate = c{cid}_pr")

    send_value: dict[int, str] = {}
    ind = " " * 12

    def emit_body(cid: int) -> None:
        const: dict[int, int] = {}
        carry_const: int | None = None
        n_scratch = (len(cores[cid].scratch)
                     if cores[cid].scratch is not None else 0)

        def val(r: int) -> tuple[str, int | None]:
            return f"c{cid}_r{r}", const.get(r)

        def setreg(rd: int, expr: str, cv: int | None) -> None:
            tgt = f"c{cid}_r{rd}"
            if cv is not None:
                const[rd] = cv
            else:
                const.pop(rd, None)
            if expr != tgt:
                lines.append(f"{ind}{tgt} = {expr}")

        for pos, (_cycle, instr, _x) in enumerate(plan.body[cid]):
            t = type(instr)
            if t is isa.Set:
                v = instr.imm & WORD_MASK
                setreg(instr.rd, str(v), v)
            elif t is isa.Alu:
                sa, ca = val(instr.rs1)
                sb, cb = val(instr.rs2)
                expr, cv = _alu_expr(instr.op, sa, ca, sb, cb)
                setreg(instr.rd, expr, cv)
            elif t is isa.Mux:
                ss, cs = val(instr.sel)
                if cs is not None:
                    s, c = val(instr.rtrue if cs & 1 else instr.rfalse)
                    setreg(instr.rd, s, c)
                else:
                    st, _ct = val(instr.rtrue)
                    sf, _cf = val(instr.rfalse)
                    setreg(instr.rd, f"{st} if {ss} & 1 else {sf}", None)
            elif t is isa.Slice:
                s, c = val(instr.rs)
                m = (1 << instr.length) - 1
                off = instr.offset
                if c is not None:
                    v = (c >> off) & m
                    setreg(instr.rd, str(v), v)
                elif off == 0:
                    setreg(instr.rd,
                           s if m >= WORD_MASK else f"{s} & {m}", None)
                elif m >= WORD_MASK >> off:
                    setreg(instr.rd, f"{s} >> {off}", None)
                else:
                    setreg(instr.rd, f"({s} >> {off}) & {m}", None)
            elif t is isa.AddCarry:
                sa, ca = val(instr.rs1)
                sb, cb = val(instr.rs2)
                if ca is not None and cb is not None \
                        and carry_const is not None:
                    total = ca + cb + carry_const
                    setreg(instr.rd, str(total & WORD_MASK),
                           total & WORD_MASK)
                    carry_const = total >> WORD_WIDTH
                    lines.append(f"{ind}c{cid}_cy = {carry_const}")
                else:
                    cy = (str(carry_const) if carry_const is not None
                          else f"c{cid}_cy")
                    terms = [x for x in (sa, sb, cy) if x != "0"]
                    lines.append(
                        f"{ind}_t = {' + '.join(terms) if terms else '0'}")
                    setreg(instr.rd, f"_t & {WORD_MASK}", None)
                    lines.append(f"{ind}c{cid}_cy = _t >> {WORD_WIDTH}")
                    carry_const = None
            elif t is isa.SetCarry:
                lines.append(f"{ind}c{cid}_cy = {instr.imm}")
                carry_const = instr.imm
            elif t is isa.Custom:
                config = cores[cid].binary.cfu[instr.index]
                ops = [val(r) for r in instr.rs]
                if all(c is not None for _s, c in ops):
                    v = eval_custom(config, *(c for _s, c in ops))
                    setreg(instr.rd, str(v), v)
                else:
                    expr = _custom_expr(config, [s for s, _c in ops])
                    setreg(instr.rd, expr, None)
            elif t is isa.Send:
                mid = send_mid[(cid, pos)]
                if mid in plan.unused:
                    continue
                s, c = val(instr.rs)
                if c is not None:
                    send_value[mid] = str(c)
                elif mid in plan.capture:
                    lines.append(f"{ind}m{mid} = {s}")
                    send_value[mid] = f"m{mid}"
                else:
                    send_value[mid] = s
            elif t is isa.LocalLoad:
                s, c = val(instr.rbase)
                idx = _scratch_index(s, c, instr.offset, n_scratch)
                setreg(instr.rd, f"sc{cid}[{idx}]", None)
            elif t is isa.LocalStore:
                s, c = val(instr.rbase)
                idx = _scratch_index(s, c, instr.offset, n_scratch)
                sv, _cv = val(instr.rs)
                lines.append(f"{ind}if c{cid}_pr:")
                lines.append(f"{ind}    sc{cid}[{idx}] = {sv}")
            elif t is isa.Predicate:
                s, c = val(instr.rs)
                lines.append(f"{ind}c{cid}_pr = "
                             + (str(c & 1) if c is not None else f"{s} & 1"))
            elif t is isa.GlobalLoad:
                addr = _gaddr(val, instr.addr)
                setreg(instr.rd, f"_gr({cid}, {addr}) & {WORD_MASK}", None)
            elif t is isa.GlobalStore:
                addr = _gaddr(val, instr.addr)
                sv, _cv = val(instr.rs)
                lines.append(f"{ind}if c{cid}_pr:")
                lines.append(f"{ind}    _gw({cid}, {addr}, {sv})")
            elif t is isa.Expect:
                sa, ca = val(instr.rs1)
                sb, cb = val(instr.rs2)
                if ca is not None and cb is not None and ca == cb:
                    continue  # provably never fires
                k = plan.expect_sentinel[pos]
                s = plan.sentinels[k]
                lines.append(f"{ind}if {sa} != {sb}:")
                lines.append(f"{ind}    _se({cid}, {instr.eid})")
                lines.append(f"{ind}    if _m.finished:")
                for stmt in wb:
                    lines.append(f"{ind}        {stmt}")
                for mid, (_i, src, _p, _rs, _tg) in enumerate(plan.sends):
                    if src == priv and mid < s.n_msgs:
                        lines.append(
                            f"{ind}        msgs[{mid}] = {send_value[mid]}")
                lines.append(f"{ind}        yield {k}")
                lines.append(f"{ind}        return")
                lines.append(f"{ind}    exc = True")
            else:  # pragma: no cover - _analyze already rejected it
                raise CodegenUnsupported(
                    f"cannot emit {type(instr).__name__}")

    # Privileged core first: its Expect outcomes depend only on its own
    # body prefix (no receive ever reaches it before its body ends), so
    # hoisting it ahead of the other bodies is observably equivalent and
    # lets the abort path skip re-running it.
    if priv in cores:
        emit_body(priv)
    for cid in cids:
        if cid != priv:
            emit_body(cid)

    # Receive epilogues: the static Send schedule collapses to plain
    # local-to-local moves (slot order within each core).
    for cid in cids:
        for j, rd in enumerate(plan.recv_rd[cid]):
            if (cid, j) in plan.omit:
                continue
            mid = plan.recv_mid[cid][j]
            lines.append(f"{ind}c{cid}_r{rd} = {send_value[mid]}")

    if has_expects:
        lines.append(f"{ind}if exc:")
        for stmt in wb:
            lines.append(f"{ind}    {stmt}")
        lines.append(f"{ind}    yield -2")
        lines.append(f"{ind}    return")
    lines.append(f"{ind}cmd = yield -1")
    lines.append(f"{ind}if cmd is not None:")
    for stmt in wb:
        lines.append(f"{ind}    {stmt}")
    lines.append(f"{ind}    yield -3")
    lines.append(f"{ind}    return")

    start = lines.index("        while True:") + 1
    lines[start:] = _fuse(lines[start:])

    lines.append("")
    lines.append("    return grid_kernel")

    if has_expects:
        _emit_stops(lines, machine, plan, send_mid, uses_scratch)

    if len(lines) > _MAX_SOURCE_LINES:
        raise CodegenUnsupported(
            f"emitted source has {len(lines)} lines "
            f"(budget {_MAX_SOURCE_LINES})")
    return "\n".join(lines) + "\n"


def _emit_stops(lines: list[str], machine: "Machine", plan: _Plan,
                send_mid, uses_scratch) -> None:
    """Emit the per-core stop functions the abort path replays.

    The privileged core's body already ran inside the generator (it is
    emitted first), so it gets no stop function - re-running it would
    double its global-service side effects.  Every other core's body is
    replayed *directly on the architectural state* up to the statically
    known cut for the firing sentinel, with conflicted writes parked for
    the driver's fixup pass; the receive replays then apply the
    delivered message values."""
    cores = machine.cores
    priv = plan.priv
    for cid in sorted(cores):
        if cid == priv or not plan.body[cid]:
            continue
        lines.append("")
        lines.append("")
        lines.append(f"def _stop_body_{cid}(core, machine, msgs, park, "
                     "stop):")
        lines.append("    regs = core.regs")
        if uses_scratch[cid]:
            lines.append("    sc = core.scratch")
        n_scratch = (len(cores[cid].scratch)
                     if cores[cid].scratch is not None else 0)
        cur = 0
        for pos, (_cycle, instr, _x) in enumerate(plan.body[cid]):
            thr = plan.body_thresholds[cid][pos]
            if thr > cur:
                if thr >= len(plan.sentinels):
                    break  # past the last sentinel: never replayed
                lines.append(f"    if stop < {thr}:")
                lines.append("        return")
                cur = thr
            pi = plan.park_idx.get((cid, pos))
            mid = (send_mid[(cid, pos)]
                   if type(instr) is isa.Send else None)
            for stmt in _stop_stmts(instr, pi, mid, n_scratch,
                                    cores[cid].binary):
                lines.append(f"    {stmt}")
    for cid in sorted(cores):
        if cid == priv or not plan.recv_rd[cid]:
            continue
        lines.append("")
        lines.append("")
        lines.append(f"def _stop_recv_{cid}(core, msgs, stop):")
        lines.append("    regs = core.regs")
        cur = 0
        emitted = False
        for j, rd in enumerate(plan.recv_rd[cid]):
            thr = plan.recv_thresholds[cid][j]
            if thr > cur:
                if thr >= len(plan.sentinels):
                    break
                lines.append(f"    if stop < {thr}:")
                lines.append("        return")
                cur = thr
            lines.append(f"    regs[{rd}] = msgs[{plan.recv_mid[cid][j]}]")
            emitted = True
        if not emitted:
            lines.append("    return")


def _stop_stmts(instr, park_pi, mid, n_scratch, binary) -> list[str]:
    """Strict-order replay statements for one instruction, operating
    directly on ``regs``/``core`` (no locals - the abort path runs once,
    clarity over speed).  ``park_pi`` adds the side assignment for
    conflicted writes."""
    t = type(instr)

    def tgt(rd: int) -> str:
        if park_pi is not None:
            return f"regs[{rd}] = park[{park_pi}]"
        return f"regs[{rd}]"

    def r(reg: int) -> str:
        return f"regs[{reg}]"

    if t is isa.Set:
        return [f"{tgt(instr.rd)} = {instr.imm & WORD_MASK}"]
    if t is isa.Alu:
        expr, _cv = _alu_expr(instr.op, r(instr.rs1), None,
                              r(instr.rs2), None)
        return [f"{tgt(instr.rd)} = {expr}"]
    if t is isa.Mux:
        return [f"{tgt(instr.rd)} = {r(instr.rtrue)} "
                f"if {r(instr.sel)} & 1 else {r(instr.rfalse)}"]
    if t is isa.Slice:
        m = (1 << instr.length) - 1
        return [f"{tgt(instr.rd)} = ({r(instr.rs)} >> {instr.offset}) "
                f"& {m}"]
    if t is isa.AddCarry:
        return [f"_t = {r(instr.rs1)} + {r(instr.rs2)} + core.carry",
                f"{tgt(instr.rd)} = _t & {WORD_MASK}",
                f"core.carry = _t >> {WORD_WIDTH}"]
    if t is isa.SetCarry:
        return [f"core.carry = {instr.imm}"]
    if t is isa.Custom:
        expr = _custom_expr(binary.cfu[instr.index],
                            [r(reg) for reg in instr.rs])
        return [f"{tgt(instr.rd)} = {expr}"]
    if t is isa.Send:
        return [f"msgs[{mid}] = {r(instr.rs)}"]
    if t is isa.LocalLoad:
        idx = _scratch_index(r(instr.rbase), None, instr.offset, n_scratch)
        return [f"{tgt(instr.rd)} = sc[{idx}]"]
    if t is isa.LocalStore:
        idx = _scratch_index(r(instr.rbase), None, instr.offset, n_scratch)
        return ["if core.predicate:",
                f"    sc[{idx}] = {r(instr.rs)}"]
    if t is isa.Predicate:
        return [f"core.predicate = {r(instr.rs)} & 1"]
    raise CodegenUnsupported(  # pragma: no cover - rejected in _analyze
        f"cannot replay {type(instr).__name__}")


# ---------------------------------------------------------------------------
# Content-addressed source cache.
# ---------------------------------------------------------------------------
_KEYS: dict[int, tuple[str, str]] = {}


def _stripped_program_bytes(program) -> bytes:
    """Serialize ``program`` with every boot-time data image blanked.

    The emitted source depends only on the instruction schedule and the
    machine config - kernels hydrate register/scratch/DRAM state from
    the live cores at generator start, and ``_analyze`` never reads an
    init value.  Hashing the init-stripped image means per-stimulus
    *variants* of one design (same binary, different ``reg_init`` - the
    batch axis) share one cache key, one analysis, and one exec'd
    module."""
    from .boot import serialize
    cores = {
        cid: dataclasses.replace(binary, reg_init={}, scratch_init={})
        for cid, binary in program.cores.items()}
    stripped = dataclasses.replace(program, name="", cores=cores,
                                   global_init={})
    return serialize(stripped)


def _content_key(machine: "Machine", variant: str = "scalar") -> str:
    config_repr = repr(sorted(dataclasses.asdict(machine.config).items()))
    pid = id(machine.program)
    cached = _KEYS.get(pid)
    if cached is not None and cached[0] == config_repr:
        base = cached[1]
    else:
        h = hashlib.sha256()
        h.update(f"codegen-v{CODEGEN_SCHEMA_VERSION}".encode())
        h.update(config_repr.encode())
        h.update(_stripped_program_bytes(machine.program))
        base = h.hexdigest()
        try:  # re-serializing the program dominates warm compiles: pin
            # the key to the program object (evicted with it so ids
            # can't alias)
            weakref.finalize(machine.program, _KEYS.pop, pid, None)
            _KEYS[pid] = (config_repr, base)
        except TypeError:
            pass
    if variant == "scalar":
        return base
    # Batched kernels (repro.machine.batch_codegen) fold the variant tag
    # - "batch{width}-{lowering}" - into the digest, so a batched source
    # can never collide with a scalar one (or with another width or
    # lowering) in ~/.cache/repro-codegen.
    return hashlib.sha256(f"{base}|{variant}".encode()).hexdigest()


def _cache_dir() -> str | None:
    env = os.environ.get("REPRO_CODEGEN_CACHE")
    if env is not None:
        if env.strip().lower() in ("", "0", "off"):
            return None
        return env
    return os.path.join(os.path.expanduser("~"), ".cache",
                        "repro-codegen")


def _load_cached_source(key: str) -> str | None:
    cache = _cache_dir()
    if cache is None:
        return None
    try:
        with open(os.path.join(cache, f"{key}.py"),
                  encoding="utf-8") as fh:
            return fh.read()
    except OSError:
        return None


def _store_cached_source(key: str, source: str) -> None:
    cache = _cache_dir()
    if cache is None:
        return
    try:  # best effort: a read-only cache dir must never fail a compile
        os.makedirs(cache, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=cache, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(source)
        os.replace(tmp, os.path.join(cache, f"{key}.py"))
    except OSError:
        pass


def _compiled_for(machine: "Machine") -> tuple[dict, _Plan]:
    """Namespace + plan for ``machine``, memoized under the content key.

    The plan is pure static metadata (positions, counts, thresholds), so
    two machines running the same program under the same config share
    one analysis and one exec'd module.
    """
    key = _content_key(machine)
    hit = _MEMO.get(key)
    if hit is not None:
        return hit
    plan = _analyze(machine)
    source = _load_cached_source(key)
    if source is None:
        source = _emit(machine, plan)
        _store_cached_source(key, source)
    ns = {"__name__": f"repro.machine._codegen_{key[:12]}"}
    exec(compile(source, f"<codegen {key[:12]}>", "exec"), ns)
    _MEMO[key] = (ns, plan)
    return ns, plan


# ---------------------------------------------------------------------------
# The engine driver.
# ---------------------------------------------------------------------------
class CodegenEngine:
    """The compiled-source engine for one :class:`Machine`.

    Holds the live grid kernel (a generator whose frame locals *are* the
    register state), the message/park scratch buffers for abort replays,
    and the static plan's counter bookkeeping.  The kernel yields a
    protocol code per Vcycle:

    * ``-1`` - normal Vcycle completed, state stays in frame locals;
    * ``-2`` - Vcycle completed with an exception serviced; the kernel
      already flushed all state back to the cores and retired itself
      (the trust protocol re-verifies strictly next Vcycle);
    * ``k >= 0`` - a mid-Vcycle ``$finish`` at abort sentinel ``k``; the
      kernel flushed its state and the driver replays the other cores'
      executed prefixes through the stop functions;
    * ``-3`` - acknowledgment of an explicit :meth:`sync` flush.
    """

    # The kernel emits every Expect check itself and calls
    # ``service_exception`` inline, which mutates no register state (it
    # flushes the cache - consulted live through ``_gr``/``_gw`` - and
    # appends displays), so a serviced exception leaves nothing for a
    # strict re-verification Vcycle to re-check.  The fast engine keeps
    # its conservative drop-trust-on-exception protocol.
    services_exceptions = True

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        ns, plan = _compiled_for(machine)
        self._plan = plan
        self._make_kernel = ns["make_kernel"]
        self._msgs = [0] * plan.n_msgs
        self._park = [0] * plan.n_park
        self._gen = None
        priv = plan.priv
        self._stop_bodies = [
            (machine.cores[cid], ns[f"_stop_body_{cid}"])
            for cid in sorted(machine.cores)
            if cid != priv and f"_stop_body_{cid}" in ns]
        self._stop_recvs = [
            (machine.cores[cid], ns[f"_stop_recv_{cid}"])
            for cid in sorted(machine.cores)
            if cid != priv and f"_stop_recv_{cid}" in ns]

    # ------------------------------------------------------------------
    def run_vcycle(self) -> None:
        """Execute one full Vcycle through the emitted kernel."""
        machine = self.machine
        gen = self._gen
        if gen is None:
            # (Re)hydrate: the preamble reloads every touched register
            # from the cores, so a fresh kernel picks up exactly where
            # the strict engine (or a restored checkpoint) left off.
            gen = self._make_kernel(machine, machine.cores, self._msgs,
                                    self._park)()
            self._gen = gen
        try:
            code = next(gen)
        except BaseException:
            self._gen = None
            raise
        counters = machine.counters
        prof = machine.profiler
        plan = self._plan
        if code >= 0:
            self._gen = None
            self._finish_abort(code)
        else:
            if code == -2:
                self._gen = None
            counters.instructions += plan.n_instr
            counters.messages += plan.n_msgs
            if prof is not None:
                prof.add_vcycle_bulk(plan.core_instr, plan.core_sends,
                                     plan.core_recvs, plan.link_hops)
        counters.vcycles += 1
        counters.compute_cycles += machine.program.vcpl
        machine.now = 0

    def run_vcycles(self, budget: int) -> None:
        """Trusted bulk loop: run up to ``budget`` Vcycles through the
        kernel with a single counter settlement at the end.

        Returns at budget exhaustion or after the first non-clean
        Vcycle (an exception-serviced Vcycle or a mid-Vcycle
        ``$finish``), both already fully handled; the caller re-enters
        while trust and budget remain.  Only called without a profiler
        attached - per-Vcycle profiles need :meth:`run_vcycle`'s
        step-by-step bookkeeping.
        """
        if budget <= 0:
            return
        machine = self.machine
        gen = self._gen
        if gen is None:
            gen = self._make_kernel(machine, machine.cores, self._msgs,
                                    self._park)()
            self._gen = gen
        nxt = gen.__next__
        clean = 0
        code = -1
        try:
            while clean < budget:
                code = nxt()
                if code != -1:
                    break
                clean += 1
        except BaseException:
            self._gen = None
            raise
        plan = self._plan
        counters = machine.counters
        vcpl = machine.program.vcpl
        if code >= 0:
            self._gen = None
            counters.instructions += clean * plan.n_instr
            counters.messages += clean * plan.n_msgs
            counters.vcycles += clean + 1
            counters.compute_cycles += (clean + 1) * vcpl
            self._finish_abort(code)
        else:
            full = clean + (1 if code == -2 else 0)
            if code == -2:
                self._gen = None
            counters.instructions += full * plan.n_instr
            counters.messages += full * plan.n_msgs
            counters.vcycles += full
            counters.compute_cycles += full * vcpl
        machine.now = 0

    def _finish_abort(self, k: int) -> None:
        """Complete a mid-Vcycle ``$finish``: replay every non-priv
        core's executed prefix on the architectural state, deliver the
        consumed messages, apply deferred-write fixups, and charge the
        statically precomputed prefix counters."""
        machine = self.machine
        plan = self._plan
        sentinel = plan.sentinels[k]
        msgs, park = self._msgs, self._park
        for core, fn in self._stop_bodies:
            fn(core, machine, msgs, park, k)
        for core, fn in self._stop_recvs:
            fn(core, msgs, k)
        for cid, reg, pi in sentinel.fixups:
            machine.cores[cid].regs[reg] = park[pi]
        machine.counters.instructions += sentinel.n_instr
        machine.counters.messages += sentinel.n_msgs
        prof = machine.profiler
        if prof is not None:
            hops: Counter = Counter()
            for route in plan.send_routes[:sentinel.n_msgs]:
                hops.update(route)
            prof.add_vcycle_bulk(sentinel.core_instr, sentinel.core_sends,
                                 sentinel.core_recvs, hops)

    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush kernel-frame state back to the cores and retire the
        kernel (observers - ``peek_reg``, checkpoints, the end of a
        ``run`` - see architectural state; the next trusted Vcycle
        rehydrates a fresh kernel from it)."""
        gen = self._gen
        if gen is None:
            return
        self._gen = None
        try:
            gen.send(True)
        finally:
            gen.close()

    def invalidate(self) -> None:
        """Drop the live kernel *without* flushing (the cores are about
        to be overwritten, e.g. by a checkpoint restore)."""
        gen = self._gen
        self._gen = None
        if gen is not None:
            gen.close()


def compile_codegen(machine: "Machine") -> CodegenEngine:
    """Compile ``machine``'s program into a :class:`CodegenEngine`.

    Raises :class:`CodegenUnsupported` when the schedule cannot be
    emitted (the machine then stays on the strict engine, exactly like
    the fast path's fallback contract).
    """
    return CodegenEngine(machine)


def compile_batch_kernel(machine: "Machine", width: int,
                         lowering: str = "auto"):
    """Batched multi-lane kernel for ``machine``'s program: the codegen
    engine's provider behind ``repro.machine.grid.BATCH_KERNEL_ENGINES``
    (see :mod:`repro.machine.batch_codegen` for the emitter and
    :mod:`repro.machine.batch` for the driver).

    Returns ``(make_batch_kernel, plan, lowering)``; raises
    :class:`CodegenUnsupported` when the schedule cannot be emitted, in
    which case the batch driver falls back to per-lane lockstep."""
    from .batch_codegen import compiled_batch_kernel
    return compiled_batch_kernel(machine, width, lowering)
