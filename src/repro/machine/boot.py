"""Program binary serialization - the bootloader stream (paper SSA.3.1).

The hardware bootloader reads the program binary from DRAM and streams it
to each core: a header with the instruction count, the 64-bit encoded
instructions, then a footer of three words - EPILOGUE_LENGTH,
SLEEP_LENGTH, and COUNT_DOWN (the synchronized-start timer).  Register
file, CFU, and scratchpad images follow as (address, value) sections.

``serialize``/``deserialize`` round-trip a :class:`MachineProgram`
through this stream format, making the binary a real, inspectable
artifact and exercising the instruction encoding end to end.
"""

from __future__ import annotations

import json
import struct

from ..isa.encoding import decode_program, encode_program
from ..isa.program import (
    AssertAction,
    CoreBinary,
    DisplayAction,
    ExceptionTable,
    FinishAction,
    MachineProgram,
)

MAGIC = 0x4D414E5449434F52  # "MANTICOR"
FORMAT_VERSION = 1


def _pack_words(words: list[int]) -> bytes:
    return struct.pack(f"<{len(words)}Q", *words)


def serialize(program: MachineProgram, countdown: int = 64) -> bytes:
    """Flatten a machine program into the bootloader byte stream."""
    out = bytearray()
    header = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "name": program.name,
        "grid": list(program.grid),
        "vcpl": program.vcpl,
        "privileged_core": program.privileged_core,
        "cores": sorted(program.cores),
        "global_init": {str(k): v for k, v in program.global_init.items()},
        "exceptions": _exceptions_to_json(program.exceptions),
    }
    blob = json.dumps(header).encode()
    out += struct.pack("<QI", MAGIC, len(blob))
    out += blob
    for core_id in sorted(program.cores):
        binary = program.cores[core_id]
        words = encode_program(binary.body)
        out += struct.pack("<IIII", core_id, len(words),
                           binary.epilogue_length, binary.sleep_length)
        out += struct.pack("<I", countdown)
        out += _pack_words(words)
        for section in (binary.reg_init, binary.scratch_init):
            out += struct.pack("<I", len(section))
            for addr, value in sorted(section.items()):
                out += struct.pack("<IH", addr, value)
        out += struct.pack("<I", len(binary.cfu))
        for config in binary.cfu:
            out += config.to_bytes(32, "little")
    return bytes(out)


def deserialize(stream: bytes) -> MachineProgram:
    """Parse a bootloader stream back into a machine program."""
    magic, blob_len = struct.unpack_from("<QI", stream, 0)
    if magic != MAGIC:
        raise ValueError("not a Manticore program binary")
    offset = 12
    header = json.loads(stream[offset:offset + blob_len])
    offset += blob_len
    if header["version"] != FORMAT_VERSION:
        raise ValueError(f"unsupported binary version {header['version']}")

    cores: dict[int, CoreBinary] = {}
    for _ in header["cores"]:
        core_id, n_words, epilogue, sleep = struct.unpack_from(
            "<IIII", stream, offset)
        offset += 16
        (_countdown,) = struct.unpack_from("<I", stream, offset)
        offset += 4
        words = list(struct.unpack_from(f"<{n_words}Q", stream, offset))
        offset += 8 * n_words
        sections = []
        for _s in range(2):
            (count,) = struct.unpack_from("<I", stream, offset)
            offset += 4
            section = {}
            for _e in range(count):
                addr, value = struct.unpack_from("<IH", stream, offset)
                offset += 6
                section[addr] = value
            sections.append(section)
        (n_cfu,) = struct.unpack_from("<I", stream, offset)
        offset += 4
        cfu = []
        for _c in range(n_cfu):
            cfu.append(int.from_bytes(stream[offset:offset + 32], "little"))
            offset += 32
        cores[core_id] = CoreBinary(
            body=decode_program(words),
            epilogue_length=epilogue,
            sleep_length=sleep,
            reg_init=sections[0],
            scratch_init=sections[1],
            cfu=cfu,
        )

    return MachineProgram(
        name=header["name"],
        grid=tuple(header["grid"]),
        cores=cores,
        vcpl=header["vcpl"],
        exceptions=_exceptions_from_json(header["exceptions"]),
        global_init={int(k): v for k, v in header["global_init"].items()},
        privileged_core=header["privileged_core"],
    )


def _exceptions_to_json(table: ExceptionTable) -> dict:
    out = {}
    for eid, action in table.actions.items():
        if isinstance(action, DisplayAction):
            out[str(eid)] = {"kind": "display", "fmt": action.fmt,
                             "args": [list(a) for a in action.arg_addrs]}
        elif isinstance(action, FinishAction):
            out[str(eid)] = {"kind": "finish"}
        else:
            out[str(eid)] = {"kind": "assert", "message": action.message}
    return out


def _exceptions_from_json(data: dict) -> ExceptionTable:
    table = ExceptionTable()
    actions = {}
    max_eid = 0
    for eid_str, entry in data.items():
        eid = int(eid_str)
        max_eid = max(max_eid, eid)
        if entry["kind"] == "display":
            actions[eid] = DisplayAction(
                entry["fmt"], tuple(tuple(a) for a in entry["args"]))
        elif entry["kind"] == "finish":
            actions[eid] = FinishAction()
        else:
            actions[eid] = AssertAction(entry["message"])
    table.actions = actions
    table._next_eid = max_eid + 1
    return table
