"""Process transport for sharded grid execution.

Runs each :class:`~repro.machine.shard.ShardMachine` in a **persistent
worker process**: workers are spawned once per run, the compiled
``MachineProgram`` is shipped once through a content-addressed artifact
file (sha256-named, verified on load — never pickled per call), and the
only per-Vcycle traffic is the statically-known boundary Send payloads,
encoded as little-endian u16 buffers
(:func:`~repro.machine.shard.encode_payload`) on the worker side so the
coordinator forwards opaque bytes between the per-edge pipes.

Failure model: a worker that dies mid-run (segfault, OOM-kill,
``SIGKILL``) raises :class:`ShardWorkerLost` in the coordinator —
sharded simulation state cannot be rebuilt mid-Vcycle from a respawn,
so recovery is *resume from the last checkpoint* (the CI ``shard-smoke``
job exercises exactly that: kill one worker, restart with ``--resume``).
The coordinator prints worker PIDs to stderr at spawn so harnesses can
target a specific worker.  Workers exit on pipe EOF, so a dead
coordinator never leaks processes.

Exception servicing stays bit-identical: ``$display``/``$finish``/
``$assert`` all execute on the privileged shard's worker, whose
exceptions (e.g. :class:`~repro.isa.program.SimulationFailure`) pickle
back to the coordinator and re-raise with their original type.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing as mp
import os
import pickle
import shutil
import sys
import tempfile
from pathlib import Path

from ..pool import start_method


class ShardWorkerLost(RuntimeError):
    """A shard worker process died.  Sharded state cannot be respawned
    mid-run; resume from the last checkpoint instead."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _load_program(path: str, sha: str):
    blob = Path(path).read_bytes()
    digest = hashlib.sha256(blob).hexdigest()
    if digest != sha:
        raise RuntimeError(
            f"shard program artifact {path} is corrupt: sha256 {digest} "
            f"!= expected {sha}")
    return pickle.loads(blob)


def _shard_worker_main(conn) -> None:
    """One shard's event loop: ``init`` builds the ShardMachine from the
    content-addressed program file, then ``body``/``finish`` drive the
    two-phase Vcycle protocol until ``exit`` or pipe EOF."""
    from .shard import ShardMachine, decode_payload, encode_payload

    machine = None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        tag = msg[0]
        if tag == "exit":
            return
        try:
            if tag == "init":
                p = msg[1]
                program = _load_program(p["program_path"],
                                        p["program_sha"])
                profiler = None
                if p["profiled"]:
                    from ..obs.profiler import Profiler
                    profiler = Profiler(sample_cap=p["sample_cap"])
                machine = ShardMachine(
                    program, p["spec"], config=p["config"],
                    engine=p["engine"],
                    exception_stall=p["exception_stall"],
                    profiler=profiler)
                reply = ("ok", os.getpid())
            elif tag == "body":
                stop, out = machine.run_body()
                reply = ("ok", (stop, {dst: encode_payload(values)
                                       for dst, values in out.items()}))
            elif tag == "finish":
                payloads = {src: decode_payload(data)
                            for src, data in msg[1].items()}
                machine.finish_vcycle(payloads, msg[2])
                reply = ("ok", None)
            elif tag == "state":
                reply = ("ok", machine.checkpoint_state())
            elif tag == "load_state":
                machine.load_checkpoint_state(msg[1])
                reply = ("ok", None)
            elif tag == "result":
                reply = ("ok", machine.result_payload())
            elif tag == "profiler":
                reply = ("ok", None if machine.profiler is None
                         else machine.profiler.state_dict())
            else:
                raise RuntimeError(f"unknown shard message {tag!r}")
        except BaseException as exc:  # noqa: BLE001 — shipped back
            try:
                blob = pickle.dumps(exc)
            except Exception:
                blob = pickle.dumps(RuntimeError(repr(exc)))
            reply = ("err", blob)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------

class ProcessShardExecutor:
    """Drives one persistent worker process per shard.  Mirrors the
    in-process reference executor's interface, so
    :class:`~repro.machine.shard.ShardedMachine` treats both transports
    identically — boundary payloads just stay encoded while they pass
    through the coordinator."""

    def __init__(self, plan, program, config, engine: str,
                 exception_stall: int, profiled: bool,
                 sample_cap: int = 4096) -> None:
        self.plan = plan
        self._ctx = mp.get_context(start_method())
        self._store = tempfile.mkdtemp(prefix="repro-shard-")
        atexit.register(shutil.rmtree, self._store, ignore_errors=True)

        blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
        sha = hashlib.sha256(blob).hexdigest()
        program_path = os.path.join(self._store, f"{sha}.bin")
        tmp = program_path + ".wip"
        with open(tmp, "wb") as f:
            f.write(blob)
        os.replace(tmp, program_path)

        self._conns = []
        self._procs = []
        for spec in plan.specs:
            conn, child = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(target=_shard_worker_main,
                                     args=(child,), daemon=True)
            proc.start()
            child.close()
            self._conns.append(conn)
            self._procs.append(proc)
            conn.send(("init", {
                "program_path": program_path,
                "program_sha": sha,
                "spec": spec,
                "config": config,
                "engine": engine,
                "exception_stall": exception_stall,
                "profiled": profiled,
                "sample_cap": sample_cap,
            }))
        self.pids = [self._recv(i) for i in range(len(self._conns))]
        print("repro-shard: worker pids "
              + " ".join(str(p) for p in self.pids),
              file=sys.stderr, flush=True)

    # ------------------------------------------------------------------
    def _recv(self, i: int):
        try:
            reply = self._conns[i].recv()
        except (EOFError, OSError):
            pid = self._procs[i].pid
            raise ShardWorkerLost(
                f"shard worker {i} (pid {pid}) died; resume from the "
                "last checkpoint — sharded state cannot be respawned "
                "mid-run") from None
        if reply[0] == "err":
            raise pickle.loads(reply[1])
        return reply[1]

    def _call_all(self, messages: list[tuple]) -> list:
        """Send one message per worker, then drain replies in shard
        order — workers overlap, errors surface deterministically."""
        lost: ShardWorkerLost | None = None
        for i, msg in enumerate(messages):
            try:
                self._conns[i].send(msg)
            except (BrokenPipeError, OSError):
                pid = self._procs[i].pid
                lost = lost or ShardWorkerLost(
                    f"shard worker {i} (pid {pid}) died; resume from "
                    "the last checkpoint")
        if lost is not None:
            raise lost
        error: BaseException | None = None
        replies = []
        for i in range(len(messages)):
            try:
                replies.append(self._recv(i))
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                error = error or exc
                replies.append(None)
        if error is not None:
            raise error
        return replies

    # ------------------------------------------------------------------
    def run_body(self):
        return self._call_all([("body",)] * len(self._conns))

    def finish(self, in_payloads, stop) -> None:
        self._call_all([("finish", in_payloads[i], stop)
                        for i in range(len(self._conns))])

    def states(self) -> list[dict]:
        return self._call_all([("state",)] * len(self._conns))

    def load_states(self, states: list[dict]) -> None:
        self._call_all([("load_state", state) for state in states])

    def results(self) -> list[dict]:
        return self._call_all([("result",)] * len(self._conns))

    def profiler_states(self) -> list[dict | None]:
        return self._call_all([("profiler",)] * len(self._conns))

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
        shutil.rmtree(self._store, ignore_errors=True)
