"""Machine configuration shared by the compiler and the machine model.

Defaults follow the paper's FPGA prototype (SS5): a 15x15 grid at 475 MHz,
4096x64 instruction memories, 2048-entry register files, 16 Ki-word
scratchpads, a 128 KiB direct-mapped cache in front of DRAM, and a
14-stage pipeline whose hazard distance the compiler must respect.

The pipeline's *result latency* is the number of cycles between issuing an
instruction and the earliest issue of a dependent instruction.  The paper
gives stage counts (fetch 2, decode 3, execute 4, plus memory/writeback)
but not the exact forwarding distance; we model issue->use distance of 8
cycles and expose it as a knob (it scales NOp counts uniformly).
AddCarry->AddCarry carry forwarding rides the DSP cascade (distance 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..isa.instructions import NUM_REGISTERS, SCRATCHPAD_WORDS


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of one Manticore instance."""

    grid_x: int = 15
    grid_y: int = 15
    frequency_mhz: float = 475.0

    # Pipeline (SS5.1).
    pipeline_depth: int = 14
    result_latency: int = 8
    carry_latency: int = 1

    # Memories.
    imem_words: int = 4096
    num_registers: int = NUM_REGISTERS
    scratchpad_words: int = SCRATCHPAD_WORDS

    #: Heterogeneous grids (paper SSA.7, future work - implemented):
    #: only the first ``scratchpad_cores`` cores (by linear id) carry a
    #: scratchpad URAM; the rest rely on their register file alone.
    #: ``None`` means every core has one (the paper's prototype).
    scratchpad_cores: int | None = None

    # NoC (SS5.2): unidirectional 2D torus, dimension-ordered (X then Y),
    # bufferless; one hop per cycle.
    noc_hop_latency: int = 1
    noc_inject_latency: int = 2
    noc_eject_latency: int = 2

    #: Compiled engines (``repro.machine.fastpath`` and
    #: ``repro.machine.codegen``): number of Vcycles an
    #: ``engine="fast"``/``engine="codegen"`` machine runs under the
    #: strict checking engine before trusting its compiled artifact.
    #: Because issue order, routing, and writeback timing are
    #: data-independent in a branch-free program, one clean strict Vcycle
    #: proves the whole schedule; raise this for paranoia, or set 0 to
    #: trust the static plan immediately.
    fastpath_verify_vcycles: int = 1

    # Privileged-core cache (SS5.3): 128 KiB direct-mapped, write-allocate,
    # write-back, in 16-bit words.  Stall counts are machine cycles charged
    # to the whole grid per access outcome.
    cache_words: int = 65536
    cache_line_words: int = 32
    cache_hit_stall: int = 24
    cache_miss_stall: int = 250
    cache_writeback_stall: int = 120

    @property
    def num_cores(self) -> int:
        return self.grid_x * self.grid_y

    def core_id(self, x: int, y: int) -> int:
        return y * self.grid_x + x

    def coord(self, core_id: int) -> tuple[int, int]:
        return core_id % self.grid_x, core_id // self.grid_x

    def with_grid(self, x: int, y: int) -> "MachineConfig":
        return replace(self, grid_x=x, grid_y=y)

    def route(self, src: int, dst: int) -> list[tuple[str, int, int]]:
        """Dimension-ordered route on the unidirectional torus.

        Returns the sequence of directed links as ("E"|"S", x, y) - the
        link *leaving* switch (x, y) eastwards or southwards.
        """
        sx, sy = self.coord(src)
        dx, dy = self.coord(dst)
        links: list[tuple[str, int, int]] = []
        x = sx
        while x != dx:
            links.append(("E", x, sy))
            x = (x + 1) % self.grid_x
        y = sy
        while y != dy:
            links.append(("S", dx, y))
            y = (y + 1) % self.grid_y
        return links

    def route_latency(self, src: int, dst: int) -> int:
        """Issue-to-enqueue latency of a message from src to dst."""
        hops = len(self.route(src, dst))
        return (self.noc_inject_latency + hops * self.noc_hop_latency
                + self.noc_eject_latency)


#: The paper's evaluated prototype: 225 cores at 475 MHz (Table 2).
PROTOTYPE = MachineConfig()

#: A small configuration for fast tests.
TINY = MachineConfig(grid_x=2, grid_y=2, result_latency=4, imem_words=1024,
                     frequency_mhz=500.0)
