"""Cycle-accurate model of the Manticore grid (paper SS4-SS5).

The model executes a compiled :class:`~repro.isa.program.MachineProgram`
with the same timing contract the compiler scheduled against:

* one instruction per core per compute cycle, from a fixed Vcycle-long
  schedule (body, receive epilogue, sleep);
* register writes land ``result_latency`` cycles after issue (delayed
  writeback, no interlocks) - in strict mode, reading a register with an
  in-flight write raises :class:`HazardError`, proving the compiler's
  schedule is hazard-free;
* Sends traverse the bufferless unidirectional torus with dimension-
  ordered routing; two messages on one (link, cycle) raise
  :class:`NoCDropError` (the hardware would silently drop - we fault to
  catch compiler bugs);
* privileged global accesses and exceptions freeze the compute clock
  (global stall, SS5.3) and charge stall cycles measured by Fig. 8's
  counters.

Four engines execute this contract (see :mod:`repro.machine.fastpath`,
:mod:`repro.machine.codegen`, and docs/ARCHITECTURE.md "Execution
engines"): ``strict`` (all checks, the reference), ``permissive`` (no
hazard faults - stale reads, like the real hardware), ``fast``
(verify-once-then-trust compiled closure kernels), and ``codegen``
(the same trust protocol over emitted-and-``exec``'d Python source) -
the compiled engines stay bit-identical with strict.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..isa import instructions as isa
from ..isa.interp import HazardError, NoCDropError
from ..isa.program import CoreBinary, MachineProgram, SimulationFailure
from ..obs.trace import span as _span
from .cache import Cache, CacheStats
from .config import MachineConfig


@dataclass
class PerfCounters:
    """Hardware performance counters (paper SS7.7)."""

    vcycles: int = 0
    compute_cycles: int = 0
    stall_cycles: int = 0
    instructions: int = 0
    messages: int = 0
    exceptions: int = 0

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    def as_dict(self) -> dict[str, int]:
        return {
            "vcycles": self.vcycles,
            "compute_cycles": self.compute_cycles,
            "stall_cycles": self.stall_cycles,
            "instructions": self.instructions,
            "messages": self.messages,
            "exceptions": self.exceptions,
        }

    def load_dict(self, data: dict) -> None:
        self.vcycles = int(data["vcycles"])
        self.compute_cycles = int(data["compute_cycles"])
        self.stall_cycles = int(data["stall_cycles"])
        self.instructions = int(data["instructions"])
        self.messages = int(data["messages"])
        self.exceptions = int(data["exceptions"])


@dataclass
class MachineResult:
    vcycles: int
    finished: bool
    displays: list[str]
    counters: PerfCounters
    cache: CacheStats

    def simulation_rate_khz(self, frequency_mhz: float) -> float:
        """Achieved RTL simulation rate given the machine frequency.

        Returns 0.0 for runs that executed no machine cycles (a
        zero-Vcycle budget, or a design that finished before its first
        Vcycle) instead of dividing by zero; report renderers must pair
        the 0.0 with an explicit "did not run / did not finish" note.
        """
        if self.counters.total_cycles == 0 or self.vcycles == 0:
            return 0.0
        return (frequency_mhz * 1e3 * self.vcycles
                / self.counters.total_cycles)

    def status(self) -> str:
        """Human-readable completion status for reports."""
        if self.finished:
            return "finished ($finish reached)"
        if self.vcycles == 0:
            return "did not run (zero Vcycles executed)"
        return f"did not finish (stopped at the {self.vcycles}-Vcycle budget)"


class _Core:
    """Architectural state of one core."""

    __slots__ = ("core_id", "binary", "regs", "scratch", "carry",
                 "predicate", "pending", "queue", "machine", "events")

    def __init__(self, core_id: int, binary: CoreBinary,
                 config: MachineConfig, machine: "Machine") -> None:
        self.core_id = core_id
        self.binary = binary
        self.regs = [0] * config.num_registers
        for reg, value in binary.reg_init.items():
            self.regs[reg] = value & 0xFFFF
        has_scratchpad = (config.scratchpad_cores is None
                          or core_id < config.scratchpad_cores)
        self.scratch = [0] * config.scratchpad_words if has_scratchpad \
            else None
        for addr, value in binary.scratch_init.items():
            if self.scratch is None:
                raise SimulationFailure(
                    f"core {core_id} has no scratchpad but a scratch image"
                )
            self.scratch[addr] = value & 0xFFFF
        self.carry = 0
        self.predicate = 0
        #: delayed writebacks: list of (commit_cycle, reg, value)
        self.pending: list[tuple[int, int, int]] = []
        #: arrived messages: heapq of (arrival_cycle, seq, rd, value);
        #: seq keeps equal arrivals in send order (stable).
        self.queue: list[tuple[int, int, int, int]] = []
        self.machine = machine
        # Precompute non-NOP issue events for fast Vcycle execution.
        self.events: list[tuple[int, isa.Instruction]] = [
            (cycle, instr) for cycle, instr in enumerate(binary.body)
            if not isinstance(instr, isa.Nop)
        ]

    # -- ExecContext protocol -------------------------------------------
    def read_reg(self, reg: int) -> int:
        if self.machine.strict:
            for _t, r, _v in self.pending:
                if r == reg:
                    raise HazardError(
                        f"core {self.core_id}: read of r{reg} with an "
                        "in-flight write (compiler scheduling bug)"
                    )
        return self.regs[reg]

    def write_reg(self, reg: int, value: int) -> None:
        # Called via semantics.execute at issue; convert to delayed commit.
        self.pending.append(
            (self.machine.now + self.machine.config.result_latency,
             reg, value & 0xFFFF))

    def commit_writes(self, upto: int) -> None:
        if not self.pending:
            return
        keep = []
        for t, reg, value in self.pending:
            if t <= upto:
                self.regs[reg] = value
            else:
                keep.append((t, reg, value))
        self.pending = keep

    def read_local(self, addr: int) -> int:
        if self.scratch is None:
            raise SimulationFailure(
                f"core {self.core_id} has no scratchpad (heterogeneous "
                "grid misplacement)"
            )
        return self.scratch[addr % len(self.scratch)]

    def write_local(self, addr: int, value: int) -> None:
        if self.scratch is None:
            raise SimulationFailure(
                f"core {self.core_id} has no scratchpad (heterogeneous "
                "grid misplacement)"
            )
        self.scratch[addr % len(self.scratch)] = value & 0xFFFF

    def read_global(self, addr: int) -> int:
        return self.machine.global_read(self.core_id, addr)

    def write_global(self, addr: int, value: int) -> None:
        self.machine.global_write(self.core_id, addr, value)

    def send(self, instr: isa.Send, value: int) -> None:
        self.machine.route_message(self.core_id, instr.target, instr.rd,
                                   value)

    def raise_exception(self, eid: int) -> None:
        self.machine.service_exception(self.core_id, eid)

    def custom_function(self, index: int) -> int:
        return self.binary.cfu[index]

    # -- checkpoint hooks ------------------------------------------------
    def state_dict(self) -> dict:
        """The core's complete architectural state as plain JSON data
        (register file and scratchpad packed via ``pack_words``, zero
        tails stripped - the architected lengths come from the config)."""
        from ..netlist.serialize import pack_words
        return {
            "regs": pack_words(self.regs, strip_zeros=True),
            "scratch": (None if self.scratch is None
                        else pack_words(self.scratch, strip_zeros=True)),
            "carry": self.carry,
            "predicate": self.predicate,
            "pending": [list(p) for p in self.pending],
            "queue": [list(m) for m in sorted(self.queue)],
        }

    def load_state(self, state: dict) -> None:
        """Inject a :meth:`state_dict` image.  Register/scratch lists are
        mutated *in place* so fast-engine closures bound to them by
        object identity keep working after a restore."""
        from ..netlist.serialize import unpack_words
        regs = unpack_words(state["regs"])
        if len(regs) > len(self.regs):
            raise ValueError(
                f"core {self.core_id}: snapshot has {len(regs)} registers,"
                f" machine has {len(self.regs)}")
        self.regs[:] = regs + [0] * (len(self.regs) - len(regs))
        if (state["scratch"] is None) != (self.scratch is None):
            raise ValueError(
                f"core {self.core_id}: snapshot/machine scratchpad "
                "presence mismatch (wrong MachineConfig?)")
        if state["scratch"] is not None:
            scratch = unpack_words(state["scratch"])
            if len(scratch) > len(self.scratch):
                raise ValueError(
                    f"core {self.core_id}: snapshot scratchpad size "
                    f"{len(scratch)} > machine {len(self.scratch)}")
            self.scratch[:] = scratch + \
                [0] * (len(self.scratch) - len(scratch))
        self.carry = int(state["carry"])
        self.predicate = int(state["predicate"])
        self.pending = [(int(t), int(r), int(v))
                        for t, r, v in state["pending"]]
        self.queue = [(int(a), int(s), int(rd), int(v))
                      for a, s, rd, v in state["queue"]]
        heapq.heapify(self.queue)


#: Recognized execution engines (see ``repro.machine.fastpath`` and
#: ``repro.machine.codegen``):
#: ``"strict"`` checks hazards, NoC reservations, and receive matching on
#: every event; ``"permissive"`` is the strict event loop without hazard
#: faults (reads see stale values, the real hardware's behavior);
#: ``"fast"`` verifies strictly once, then runs compiled per-core kernels;
#: ``"codegen"`` verifies the same way, then runs the schedule emitted as
#: specialized Python source (``exec``'d straight-line grid kernels).
ENGINES = ("strict", "permissive", "fast", "codegen")

#: The engines that follow the verify-once-then-trust protocol and own a
#: compiled artifact (``Machine._fastpath``).  Everything engine-generic
#: in the trust/checkpoint machinery keys off this set, so a new
#: compiled tier only has to register here.
COMPILED_ENGINES = ("fast", "codegen")

#: Compiled engines whose trusted kernels stay valid across serviced
#: exceptions (``services_exceptions`` on the engine class): the
#: privileged service routine mutates no core-visible register state,
#: so an exception during a verification Vcycle need not defer trust
#: and an exception during a trusted Vcycle need not revoke it.
EXCEPTION_SERVICING_ENGINES = ("codegen",)

#: Engines that provide a vectorized multi-lane kernel for batched
#: execution (``repro.machine.batch.BatchRunner``): B independent runs
#: of one compiled design advance in lockstep per Vcycle, with finished
#: or faulted lanes masked out.  Engines outside this set still accept
#: batches - the runner falls back to per-lane serial execution with
#: identical observable results.  The fast engine is deliberately
#: absent: its per-core closures hold scalar state (see the note in
#: ``repro.machine.fastpath``); the codegen engine re-emits its source
#: with a lane axis instead (``repro.machine.batch_codegen``).
BATCH_KERNEL_ENGINES = ("codegen",)


class Machine:
    """The whole grid in lockstep."""

    def __init__(self, program: MachineProgram,
                 config: MachineConfig | None = None,
                 strict: bool = True,
                 exception_stall: int = 500,
                 engine: str | None = None,
                 profiler=None) -> None:
        self.program = program
        #: optional :class:`repro.obs.profiler.Profiler`; observation
        #: only - attaching one never changes results or counters
        #: (``tests/test_obs_perturbation.py``), and ``None`` keeps every
        #: hot loop on its unhooked path.
        self.profiler = profiler
        self.config = config or MachineConfig(
            grid_x=program.grid[0], grid_y=program.grid[1])
        if (self.config.grid_x, self.config.grid_y) != program.grid:
            raise ValueError("program was compiled for a different grid")
        if engine is None:
            engine = "strict" if strict else "permissive"
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; pick one of "
                             f"{ENGINES}")
        self.engine = engine
        self.strict = engine != "permissive"
        self.exception_stall = exception_stall
        self.counters = PerfCounters()
        self.cache = Cache(self.config, dram=dict(program.global_init))
        self.cores = {
            cid: _Core(cid, binary, self.config, self)
            for cid, binary in program.cores.items()
        }
        self.displays: list[str] = []
        self.finished = False
        self.now = 0               # compute-domain cycle within the Vcycle
        self._link_busy: set[tuple] = set()
        self._msg_seq = 0
        self._vcycle_events = self._merge_events()
        #: resume position of a partially executed Vcycle (the checking
        #: engines can pause between events - ``step_events`` - which is
        #: what lets checkpoints capture in-flight messages and pending
        #: writebacks); 0 means "at a Vcycle boundary".
        self._event_pos = 0
        #: counter values at the start of the Vcycle currently in
        #: progress (None at a boundary) - lets a Vcycle split across
        #: pauses/restores still report exact per-Vcycle profiler deltas.
        self._vcycle_base: tuple | None = None
        # Verify-once-then-trust state (the COMPILED_ENGINES): the
        # compiled engine, whether it is currently trusted, and how many
        # strict verification Vcycles remain before (re-)trusting it.
        self._fastpath = None
        self._fastpath_error: str | None = None
        self._trusted = False
        self._verify_left = max(0, self.config.fastpath_verify_vcycles)
        if engine in COMPILED_ENGINES and self._verify_left == 0:
            self._trusted = self._ensure_fastpath()
        if profiler is not None:
            profiler.attach(self)

    # ------------------------------------------------------------------
    def _merge_events(self) -> list[tuple[int, int, object]]:
        """All (cycle, core, instr|"recv") events of one Vcycle, sorted."""
        events: list[tuple[int, int, object]] = []
        for cid, core in self.cores.items():
            for cycle, instr in core.events:
                events.append((cycle, cid, instr))
            epi_start = len(core.binary.body)
            for k in range(core.binary.epilogue_length):
                events.append((epi_start + k, cid, "recv"))
        events.sort(key=lambda e: (e[0], e[1]))
        return events

    # -- global services ---------------------------------------------------
    def global_read(self, core_id: int, addr: int) -> int:
        self._check_privileged(core_id)
        if self.profiler is None:
            value, stall = self.cache.read(addr)
            self.counters.stall_cycles += stall
            return value
        stats = self.cache.stats
        hits, writebacks = stats.hits, stats.writebacks
        value, stall = self.cache.read(addr)
        self.counters.stall_cycles += stall
        self._profile_cache_op(core_id, "read", stall,
                               stats.hits > hits,
                               stats.writebacks > writebacks)
        return value

    def global_write(self, core_id: int, addr: int, value: int) -> None:
        self._check_privileged(core_id)
        if self.profiler is None:
            stall = self.cache.write(addr, value)
            self.counters.stall_cycles += stall
            return
        stats = self.cache.stats
        hits, writebacks = stats.hits, stats.writebacks
        stall = self.cache.write(addr, value)
        self.counters.stall_cycles += stall
        self._profile_cache_op(core_id, "write", stall,
                               stats.hits > hits,
                               stats.writebacks > writebacks)

    def _profile_cache_op(self, core_id: int, op: str, stall: int,
                          hit: bool, writeback: bool) -> None:
        self.profiler.record_cache_op(
            core_id, op, "hit" if hit else "miss", stall,
            self.config.cache_writeback_stall if writeback else 0)

    def _check_privileged(self, core_id: int) -> None:
        if core_id != self.program.privileged_core:
            raise SimulationFailure(
                f"core {core_id} executed a privileged instruction but "
                f"core {self.program.privileged_core} is privileged"
            )

    def route_message(self, src: int, dst: int, rd: int, value: int) -> None:
        cfg = self.config
        route = cfg.route(src, dst)
        t0 = self.now + cfg.noc_inject_latency
        slots = [((kind, x, y), t0 + j)
                 for j, (kind, x, y) in enumerate(route)]
        arrival = t0 + len(route) + cfg.noc_eject_latency
        slots.append((("EJ", dst), arrival))
        for slot in slots:
            if slot in self._link_busy:
                raise NoCDropError(
                    f"link collision on {slot[0]} at cycle {slot[1]} "
                    f"(message {src}->{dst})"
                )
        self._link_busy.update(slots)
        self._msg_seq += 1
        heapq.heappush(self.cores[dst].queue,
                       (arrival, self._msg_seq, rd, value))
        self.counters.messages += 1
        if self.profiler is not None:
            self.profiler.record_message(src, dst, route)

    def service_exception(self, core_id: int, eid: int) -> None:
        self._check_privileged(core_id)
        self.counters.exceptions += 1
        self.counters.stall_cycles += self.exception_stall
        if self.profiler is not None:
            self.profiler.record_exception(core_id, self.exception_stall)
        # Host flushes the cache, then reads DRAM (paper SSA.3.2).
        self.cache.flush()
        verdict, text = self.program.exceptions.service(
            eid, lambda addr: self.cache.dram.get(addr, 0))
        if verdict == "finish":
            self.finished = True
        elif text is not None:
            self.displays.append(text)

    # -- execution -----------------------------------------------------------
    def _ensure_fastpath(self) -> bool:
        """Compile this engine's trusted artifact on first demand; on
        failure remember why and stay on the strict engine forever."""
        if self._fastpath is None and self._fastpath_error is None:
            if self.engine == "codegen":
                from .codegen import CodegenUnsupported, compile_codegen
                try:
                    with _span("machine.codegen.compile"):
                        self._fastpath = compile_codegen(self)
                except CodegenUnsupported as exc:
                    self._fastpath_error = str(exc)
            else:
                from .fastpath import FastpathUnsupported, compile_fastpath
                try:
                    with _span("machine.fastpath.compile"):
                        self._fastpath = compile_fastpath(self)
                except FastpathUnsupported as exc:
                    self._fastpath_error = str(exc)
        return self._fastpath is not None

    def _sync_compiled(self) -> None:
        """Flush any compiled-engine state held outside the cores (the
        codegen kernel's frame locals) back into architectural state, so
        observers - ``peek_reg``, checkpoints, a finished ``run`` - see
        exactly what the strict engine would."""
        if self._fastpath is not None:
            self._fastpath.sync()

    def step_vcycle(self) -> None:
        """Execute one full Vcycle across the grid.

        With ``engine="fast"`` this applies the verify-once-then-trust
        protocol: strict Vcycles until ``config.fastpath_verify_vcycles``
        clean ones have run, then the compiled trace; any Vcycle with an
        exception drops trust for one strict (re-verifying) Vcycle.

        If the machine was restored from a mid-Vcycle checkpoint
        (``_event_pos != 0``) the call first *completes* that partial
        Vcycle, so the boundary Vcycle is never duplicated or skipped.
        """
        if self.finished:
            return
        if not self._trusted:
            self.step_events(None)
            return
        prof = self.profiler
        if prof is not None:
            c = self.counters
            index = c.vcycles
            before = (c.compute_cycles, c.stall_cycles, c.instructions,
                      c.messages, c.exceptions)
        exceptions_before = self.counters.exceptions
        self._fastpath.run_vcycle()
        if (self.counters.exceptions != exceptions_before
                and not self._fastpath.services_exceptions):
            self._trusted = False
            self._verify_left = max(self._verify_left, 1)
        if prof is not None:
            c = self.counters
            prof.end_vcycle(index, c.compute_cycles - before[0],
                            c.stall_cycles - before[1],
                            c.instructions - before[2],
                            c.messages - before[3],
                            c.exceptions - before[4])

    def step_events(self, max_events: int | None) -> bool:
        """Advance the current Vcycle by up to ``max_events`` events
        under the checking engine; returns True once the Vcycle (and its
        end-of-Vcycle drain) completed, False when paused mid-Vcycle.

        Pausing mid-Vcycle is what gives checkpoints access to the
        "awkward" states - messages in flight on the NoC, delayed
        writebacks pending, the link-reservation set half-populated.
        Only the event-loop engines can pause; the trusted fast path
        executes whole Vcycles atomically.
        """
        if self.finished:
            return True
        if self._trusted:
            raise ValueError(
                "mid-Vcycle stepping requires the checking engine (the "
                "trusted fast path executes Vcycles atomically)")
        if self._vcycle_base is None:
            c = self.counters
            self._vcycle_base = (c.vcycles, c.compute_cycles,
                                 c.stall_cycles, c.instructions,
                                 c.messages, c.exceptions)
        stop = None if max_events is None else self._event_pos + max_events
        if not self._step_vcycle_strict(stop):
            return False
        base = self._vcycle_base
        self._vcycle_base = None
        if self.engine in COMPILED_ENGINES:
            self._verify_left -= 1
            if (self.counters.exceptions != base[5]
                    and self.engine not in EXCEPTION_SERVICING_ENGINES):
                self._verify_left = max(self._verify_left, 1)
            elif self._verify_left <= 0 and self._ensure_fastpath():
                self._trusted = True
        prof = self.profiler
        if prof is not None:
            c = self.counters
            prof.end_vcycle(base[0], c.compute_cycles - base[1],
                            c.stall_cycles - base[2],
                            c.instructions - base[3],
                            c.messages - base[4],
                            c.exceptions - base[5])
        return True

    def _step_vcycle_strict(self, stop_event: int | None = None) -> bool:
        """The checking engine: dynamic dispatch, hazard faults, NoC
        reservation checks, receive-slot matching.  Resumes from
        ``_event_pos`` and optionally pauses before event ``stop_event``
        (returning False); returns True when the Vcycle completed."""
        from ..isa.semantics import execute

        prof = self.profiler
        events = self._vcycle_events
        pos = self._event_pos
        if pos == 0:
            self._link_busy.clear()
        vcpl = self.program.vcpl
        n_events = len(events)
        while pos < n_events:
            if stop_event is not None and pos >= stop_event:
                self._event_pos = pos
                return False
            cycle, cid, item = events[pos]
            pos += 1
            self.now = cycle
            core = self.cores[cid]
            core.commit_writes(cycle)
            if item == "recv":
                if not core.queue:
                    raise NoCDropError(
                        f"core {cid}: receive slot at cycle {cycle} has "
                        "no queued message"
                    )
                arrival, _seq, rd, value = heapq.heappop(core.queue)
                if arrival > cycle:
                    raise NoCDropError(
                        f"core {cid}: message arrives at {arrival} after "
                        f"its receive slot at {cycle}"
                    )
                core.regs[rd] = value & 0xFFFF
                if prof is not None:
                    prof.record_receive(cid)
            else:
                execute(item, core)  # type: ignore[arg-type]
                self.counters.instructions += 1
                if prof is not None:
                    prof.record_instruction(cid)
            if self.finished:
                break

        # End of Vcycle: drain all pending writebacks (the scheduler
        # guarantees vcpl >= last issue + result_latency).
        for core in self.cores.values():
            core.commit_writes(vcpl)
            if core.queue and not self.finished:
                raise NoCDropError(
                    f"core {core.core_id}: {len(core.queue)} messages "
                    "left unconsumed at Vcycle end"
                )
        self.counters.vcycles += 1
        self.counters.compute_cycles += vcpl
        self.now = 0
        self._event_pos = 0
        return True

    def run(self, max_vcycles: int) -> MachineResult:
        with _span("machine.run", engine=self.engine,
                   budget=max_vcycles) as s:
            while not self.finished and self.counters.vcycles < max_vcycles:
                fp = self._fastpath
                if self._trusted and self.profiler is None \
                        and fp is not None:
                    bulk = getattr(fp, "run_vcycles", None)
                    if bulk is not None:
                        before = self.counters.exceptions
                        bulk(max_vcycles - self.counters.vcycles)
                        if (self.counters.exceptions != before
                                and not fp.services_exceptions):
                            self._trusted = False
                            self._verify_left = max(self._verify_left, 1)
                        continue
                self.step_vcycle()
            self._sync_compiled()
            if s is not None:
                s.args["vcycles"] = self.counters.vcycles
        return MachineResult(
            vcycles=self.counters.vcycles,
            finished=self.finished,
            displays=list(self.displays),
            counters=self.counters,
            cache=self.cache.stats,
        )

    # -- probes ---------------------------------------------------------------
    def peek_reg(self, core_id: int, reg: int) -> int:
        self._sync_compiled()
        return self.cores[core_id].regs[reg]

    # -- checkpoint hooks ------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """The machine's complete dynamic state as plain JSON data.

        Everything :class:`repro.checkpoint` needs to reconstruct a
        bit-identical continuation: per-core architectural state,
        cache + DRAM, machine-wide counters, exception-side displays,
        the mid-Vcycle event position with its NoC link reservations,
        and the fast engine's trust state.  An attached profiler's
        counters ride along so resumed profiles merge seamlessly.
        The program binary and :class:`MachineConfig` are *not* part of
        this dict - the checkpoint layer records them separately.
        """
        self._sync_compiled()
        state = {
            "engine": self.engine,
            "exception_stall": self.exception_stall,
            "counters": self.counters.as_dict(),
            "cache": self.cache.state_dict(),
            "cores": {str(cid): core.state_dict()
                      for cid, core in self.cores.items()},
            "displays": list(self.displays),
            "finished": self.finished,
            "now": self.now,
            "msg_seq": self._msg_seq,
            # Link reservations are cleared at the start of every Vcycle
            # before any event reads them, so at a Vcycle boundary the
            # surviving set is dead weight - only mid-Vcycle snapshots
            # need it (and it can be thousands of entries).
            "link_busy": (sorted([list(link), cycle]
                                 for link, cycle in self._link_busy)
                          if self._event_pos else []),
            "event_pos": self._event_pos,
            "vcycle_base": (None if self._vcycle_base is None
                            else list(self._vcycle_base)),
            "fastpath": {"trusted": self._trusted,
                         "verify_left": self._verify_left},
        }
        if self.profiler is not None:
            state["profiler"] = self.profiler.state_dict()
        return state

    def load_checkpoint_state(self, state: dict) -> None:
        """Inject a :meth:`checkpoint_state` image into this machine.

        The machine must have been constructed from the same program and
        config the state was captured under (the checkpoint layer
        verifies fingerprints before calling this).  If the snapshot was
        taken with a compiled engine trusted, the compiled kernels are
        rebuilt immediately from the static schedule - no strict
        re-verification Vcycles - restoring the exact trust state of the
        interrupted run.
        """
        if self._fastpath is not None:
            # Any live compiled state (the codegen kernel's frame
            # locals) is about to be stale: drop it un-flushed so the
            # restored architectural state wins.
            self._fastpath.invalidate()
        for cid_str, core_state in state["cores"].items():
            cid = int(cid_str)
            if cid not in self.cores:
                raise ValueError(
                    f"snapshot names core {cid} which this program does "
                    "not map (program/snapshot mismatch)")
            self.cores[cid].load_state(core_state)
        self.cache.load_state(state["cache"])
        self.counters.load_dict(state["counters"])
        self.displays = [str(s) for s in state["displays"]]
        self.finished = bool(state["finished"])
        self.now = int(state["now"])
        self._msg_seq = int(state["msg_seq"])
        self._link_busy = {
            ((str(link[0]),) + tuple(int(v) for v in link[1:]), int(cycle))
            for link, cycle in state["link_busy"]
        }
        self._event_pos = int(state["event_pos"])
        base = state["vcycle_base"]
        self._vcycle_base = None if base is None else tuple(
            int(v) for v in base)
        fast = state["fastpath"]
        self._verify_left = int(fast["verify_left"])
        self._trusted = False
        if bool(fast["trusted"]) and self.engine in COMPILED_ENGINES:
            # Rebuild the verified closures from the (cached) compile
            # artifact instead of burning strict re-verification
            # Vcycles: the trust was earned before the snapshot and the
            # static schedule has not changed (fingerprint-checked).
            if self._ensure_fastpath():
                self._trusted = True
            else:
                # Fastpath no longer compiles (should be impossible for
                # a fingerprint-matched program): stay on the checking
                # engine - slower but still bit-identical.
                self._verify_left = max(self._verify_left, 1)
        if self.profiler is not None and "profiler" in state:
            self.profiler.load_state(state["profiler"])
