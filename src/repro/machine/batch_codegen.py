"""Batched multi-lane codegen: one emitted kernel advances B independent
runs of one compiled design per Vcycle.

The static BSP schedule makes control flow identical across runs of a
design - only the data differs - so simulating B stimuli is pure data
parallelism.  This module re-emits the scalar codegen kernel
(:mod:`repro.machine.codegen`) with a batch axis: every register slot
local (``c{cid}_r{n}``) holds a *per-lane vector* instead of a scalar,
and one pass over the emitted Vcycle body advances every lane at once.

Two lowerings are emitted (``compiled_batch_kernel(..., lowering=...)``):

* ``"list"`` - plain Python lists with comprehension bodies built from
  the same folded scalar expressions the scalar emitter uses.  No
  dependencies, wins at narrow widths where numpy's per-op dispatch
  overhead exceeds the loop it replaces.
* ``"numpy"`` - ``int64`` ndarrays with vectorized expressions
  (``_np.where`` for data-dependent shifts and muxes, ``.astype`` for
  comparisons).  PR 6 measured numpy *unprofitable* for the scalar
  kernel at 8x8 - one value per op cannot amortize dispatch - but the
  batch axis changes the economics: one dispatch now covers B lanes.
  ``"auto"`` picks per width via :data:`NUMPY_MIN_WIDTH` (calibrated by
  ``benchmarks/bench_fuzz.py``).

Kernel invariants (both lowerings):

* every register/carry/predicate local is **always** an indexable
  vector; constants bind to shared broadcast vectors (``_k{v}``)
  prepared once in the preamble;
* vectors are **rebind-only** - never mutated in place - so aliases
  (moves, receive epilogues, send captures) are free bindings;
* pure computation (ALU, loads) runs full-width: finished lanes compute
  garbage in their slots, but every *side effect* (scratch stores,
  global accesses, exception servicing) is masked to the live-lane set
  ``act``, so a masked lane's observable state stays frozen;
* divergence: a lane whose privileged ``Expect`` reaches ``$finish``
  (or dies on a fatal exception) is serviced by the driver's ``svc``
  callback, flushed per-lane at the exact abort point - the privileged
  body is emitted first, so every other core's slots still hold
  start-of-Vcycle values, exactly the state the scalar stop-function
  replay expects - and removed from ``act`` with an abort record
  ``(lane, sentinel, priv_msgs)`` for :class:`repro.machine.batch.
  BatchRunner` to settle.  Surviving lanes keep running bit-identically.

The emitted source is width-generic (``_n = len(machines)``), but the
cache key deliberately folds the batch width *and* lowering into the
content hash (``_content_key(machine, variant="batch{B}-{mode}")``) so
batched modules can never collide with scalar ones - or with each other
- in ``~/.cache/repro-codegen``.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from ..isa import instructions as isa
from ..isa.instructions import WORD_MASK, WORD_WIDTH
from ..isa.semantics import ALU_OPS, eval_custom
from . import codegen as cg
from .codegen import (CodegenUnsupported, _alu_expr, _custom_expr,
                      _scratch_index)

if TYPE_CHECKING:  # pragma: no cover
    from .grid import Machine

#: Supported batch lowerings (``"auto"`` resolves to one of these).
LOWERINGS = ("list", "numpy")

#: ``lowering="auto"`` switches from the list kernel to the numpy kernel
#: at this batch width.  Calibrated on the bc design (8x8 grid,
#: trust-immediately fastpath, best-of-3): numpy/list throughput is
#: 0.52x at B=8, 0.91x at B=16, 1.29x at B=32, 2.33x at B=64 and 8.5x
#: at B=256 -- below B=32 numpy's per-op dispatch costs more than the
#: lane loop it replaces.  (This revisits PR-6's scalar verdict that
#: numpy was unprofitable: per-lane vectors amortize dispatch.)
NUMPY_MIN_WIDTH = 32

#: Batch width bounds (ISSUE 7: B in {8..1024}; width 1 is allowed for
#: degenerate/debug use, the cap keeps emitted vectors cache-friendly).
MAX_BATCH_WIDTH = 1024

_PH = ("_a", "_b", "_c", "_d", "_e")
_IDENT = re.compile(r"[A-Za-z_]\w*")


def have_numpy() -> bool:
    """True when numpy is importable (never a hard dependency: CI
    runners and minimal installs fall back to the list lowering)."""
    try:
        import numpy  # noqa: F401
    except Exception:
        return False
    return True


def resolve_lowering(lowering: str, width: int) -> str:
    """Resolve ``"auto"`` to a concrete lowering for ``width``."""
    if lowering == "auto":
        if width >= NUMPY_MIN_WIDTH and have_numpy():
            return "numpy"
        return "list"
    if lowering not in LOWERINGS:
        raise ValueError(
            f"unknown batch lowering {lowering!r}; pick one of "
            f"{('auto',) + LOWERINGS}")
    if lowering == "numpy" and not have_numpy():
        raise CodegenUnsupported(
            "numpy lowering requested but numpy is not importable")
    return lowering


# ---------------------------------------------------------------------------
# numpy expression helpers: the scalar ``_alu_expr`` strings rely on
# Python conditional expressions for data-dependent shifts and on bool
# results for comparisons, neither of which vectorizes.  This mirror
# keeps the same constant folds but renders ndarray-safe forms.
# ---------------------------------------------------------------------------
def _np_signed(s: str, c: int | None) -> str:
    if c is not None:
        return str(c - 0x10000 if c & 0x8000 else c)
    return f"(({s} ^ 32768) - 32768)"


def _np_alu_expr(op: str, sa: str, ca: int | None, sb: str,
                 cb: int | None) -> tuple[str, int | None]:
    if ca is not None and cb is not None:
        v = ALU_OPS[op](ca, cb)
        return str(v), v
    if op == "ADD":
        if ca == 0:
            return sb, cb
        if cb == 0:
            return sa, ca
        return f"({sa} + {sb}) & {WORD_MASK}", None
    if op == "SUB":
        # int64 two's complement: a negative difference masks correctly.
        if cb == 0:
            return sa, ca
        return f"({sa} - {sb}) & {WORD_MASK}", None
    if op == "AND":
        if ca == WORD_MASK:
            return sb, cb
        if cb == WORD_MASK:
            return sa, ca
        if ca == 0 or cb == 0:
            return "0", 0
        return f"{sa} & {sb}", None
    if op == "OR":
        if ca == 0:
            return sb, cb
        if cb == 0:
            return sa, ca
        return f"{sa} | {sb}", None
    if op == "XOR":
        if ca == 0:
            return sb, cb
        if cb == 0:
            return sa, ca
        return f"{sa} ^ {sb}", None
    if op == "MUL":
        if ca == 1:
            return sb, cb
        if cb == 1:
            return sa, ca
        if ca == 0 or cb == 0:
            return "0", 0
        return f"({sa} * {sb}) & {WORD_MASK}", None
    if op == "MULH":
        if ca == 0 or cb == 0:
            return "0", 0
        return f"({sa} * {sb}) >> {WORD_WIDTH} & {WORD_MASK}", None
    if op == "SLL":
        if cb is not None:
            if cb >= WORD_WIDTH:
                return "0", 0
            if cb == 0:
                return sa, ca
            return f"({sa} << {cb}) & {WORD_MASK}", None
        # Shift counts reach 0xFFFF; ``& 31`` keeps the masked-lane
        # shift inside int64 while preserving counts < WORD_WIDTH.
        return (f"_np.where({sb} < {WORD_WIDTH}, "
                f"({sa} << ({sb} & 31)) & {WORD_MASK}, 0)"), None
    if op == "SRL":
        if cb is not None:
            if cb >= WORD_WIDTH:
                return "0", 0
            if cb == 0:
                return sa, ca
            return f"{sa} >> {cb}", None
        return (f"_np.where({sb} < {WORD_WIDTH}, "
                f"{sa} >> ({sb} & 31), 0)"), None
    if op == "SRA":
        se = _np_signed(sa, ca)
        if cb is not None:
            sh = min(cb, WORD_WIDTH - 1)
            if sh == 0:
                return sa, ca
            return f"({se} >> {sh}) & {WORD_MASK}", None
        return (f"({se} >> _np.minimum({sb}, {WORD_WIDTH - 1})) "
                f"& {WORD_MASK}"), None
    if op == "SEQ":
        return f"({sa} == {sb}).astype(_np.int64)", None
    if op == "SLTU":
        return f"({sa} < {sb}).astype(_np.int64)", None
    if op == "SLTS":
        return (f"({_np_signed(sa, ca)} < {_np_signed(sb, cb)})"
                f".astype(_np.int64)"), None
    raise CodegenUnsupported(f"unknown ALU op {op!r}")


# ---------------------------------------------------------------------------
# Source emission.
# ---------------------------------------------------------------------------
def _emit_batch(machine: "Machine", plan, mode: str) -> str:
    np_mode = mode == "numpy"
    cg.EMISSIONS += 1
    cores = machine.cores
    priv = plan.priv
    cids = sorted(cores)
    send_mid = {(src, pos): mid
                for mid, (_i, src, pos, _rs, _t) in enumerate(plan.sends)}
    uses_scratch = {
        cid: any(type(i) in (isa.LocalLoad, isa.LocalStore)
                 for _c, i, _x in plan.body[cid])
        for cid in cids}
    uses_global = any(
        type(i) in (isa.GlobalLoad, isa.GlobalStore)
        for _c, i, _x in plan.body.get(priv, ()))

    kvals: set[int] = set()

    def kconst(v: int) -> str:
        kvals.add(v)
        return f"_k{v}"

    ind = " " * 12
    out: list[str] = []

    def emit(line: str) -> None:
        out.append(ind + line)

    send_value: dict[int, str] = {}

    def emit_body(cid: int) -> None:
        const: dict[int, int] = {}
        carry_const: int | None = None
        n_scratch = (len(cores[cid].scratch)
                     if cores[cid].scratch is not None else 0)

        def val(r: int) -> tuple[str, int | None]:
            return f"c{cid}_r{r}", const.get(r)

        def setreg(rd: int, expr: str, cv: int | None) -> None:
            tgt = f"c{cid}_r{rd}"
            if cv is not None:
                const[rd] = cv
            else:
                const.pop(rd, None)
            if expr != tgt:
                emit(f"{tgt} = {expr}")

        def setconst(rd: int, v: int) -> None:
            setreg(rd, kconst(v), v)

        def operands(*pairs):
            """Render operand (vec, const) pairs for expression builders:
            constants become literals; dynamic operands become the vector
            name (numpy) or a fresh placeholder (list).  Returns the
            rendered strings plus the (name, vector) bindings in use."""
            outs: list[str] = []
            vecs: list[tuple[str, str]] = []
            for s, c in pairs:
                if c is not None:
                    outs.append(str(c))
                elif np_mode:
                    outs.append(s)
                    vecs.append((s, s))
                else:
                    ph = _PH[len(vecs)]
                    outs.append(ph)
                    vecs.append((ph, s))
            return outs, vecs

        def comp(expr: str, vecs) -> str:
            if len(vecs) == 1:
                return f"[{expr} for {vecs[0][0]} in {vecs[0][1]}]"
            ps = ", ".join(p for p, _v in vecs)
            vs = ", ".join(v for _p, v in vecs)
            return f"[{expr} for {ps} in zip({vs})]"

        def vec_expr(expr: str, vecs) -> str:
            return expr if np_mode else comp(expr, vecs)

        for pos, (_cycle, instr, _x) in enumerate(plan.body[cid]):
            t = type(instr)
            if t is isa.Set:
                setconst(instr.rd, instr.imm & WORD_MASK)
            elif t is isa.Alu:
                pa, pb = val(instr.rs1), val(instr.rs2)
                ca, cb = pa[1], pb[1]
                if ca is not None and cb is not None:
                    setconst(instr.rd, ALU_OPS[instr.op](ca, cb))
                    continue
                outs, vecs = operands(pa, pb)
                if np_mode:
                    expr, cv = _np_alu_expr(instr.op, outs[0], ca,
                                            outs[1], cb)
                else:
                    expr, cv = _alu_expr(instr.op, outs[0], ca,
                                         outs[1], cb)
                if cv is not None:
                    setconst(instr.rd, cv)
                elif expr == outs[0] and ca is None:
                    setreg(instr.rd, pa[0], None)
                elif expr == outs[1] and cb is None:
                    setreg(instr.rd, pb[0], None)
                else:
                    setreg(instr.rd, vec_expr(expr, vecs), None)
            elif t is isa.Mux:
                ss, cs = val(instr.sel)
                if cs is not None:
                    s, c = val(instr.rtrue if cs & 1 else instr.rfalse)
                    if c is not None:
                        setconst(instr.rd, c)
                    else:
                        setreg(instr.rd, s, None)
                else:
                    outs, vecs = operands((ss, cs), val(instr.rtrue),
                                          val(instr.rfalse))
                    if np_mode:
                        expr = (f"_np.where({outs[0]} & 1, {outs[1]}, "
                                f"{outs[2]})")
                        setreg(instr.rd, expr, None)
                    else:
                        expr = f"{outs[1]} if {outs[0]} & 1 else {outs[2]}"
                        setreg(instr.rd, comp(expr, vecs), None)
            elif t is isa.Slice:
                s, c = val(instr.rs)
                m = (1 << instr.length) - 1
                off = instr.offset
                if c is not None:
                    setconst(instr.rd, (c >> off) & m)
                    continue
                outs, vecs = operands((s, c))
                x = outs[0]
                if off == 0 and m >= WORD_MASK:
                    setreg(instr.rd, s, None)
                elif off == 0:
                    setreg(instr.rd, vec_expr(f"{x} & {m}", vecs), None)
                elif m >= WORD_MASK >> off:
                    setreg(instr.rd, vec_expr(f"{x} >> {off}", vecs), None)
                else:
                    setreg(instr.rd,
                           vec_expr(f"({x} >> {off}) & {m}", vecs), None)
            elif t is isa.AddCarry:
                pa, pb = val(instr.rs1), val(instr.rs2)
                ca, cb = pa[1], pb[1]
                if ca is not None and cb is not None \
                        and carry_const is not None:
                    total = ca + cb + carry_const
                    setconst(instr.rd, total & WORD_MASK)
                    carry_const = total >> WORD_WIDTH
                    emit(f"c{cid}_cy = {kconst(carry_const)}")
                else:
                    outs, vecs = operands(pa, pb,
                                          (f"c{cid}_cy", carry_const))
                    terms = [x for x in outs if x != "0"]
                    expr = " + ".join(terms) if terms else "0"
                    emit(f"_t = {vec_expr(expr, vecs)}")
                    if np_mode:
                        setreg(instr.rd, f"_t & {WORD_MASK}", None)
                        emit(f"c{cid}_cy = _t >> {WORD_WIDTH}")
                    else:
                        setreg(instr.rd,
                               f"[_x & {WORD_MASK} for _x in _t]", None)
                        emit(f"c{cid}_cy = "
                             f"[_x >> {WORD_WIDTH} for _x in _t]")
                    carry_const = None
            elif t is isa.SetCarry:
                emit(f"c{cid}_cy = {kconst(instr.imm)}")
                carry_const = instr.imm
            elif t is isa.Custom:
                config = cores[cid].binary.cfu[instr.index]
                pairs = [val(r) for r in instr.rs]
                if all(c is not None for _s, c in pairs):
                    setconst(instr.rd,
                             eval_custom(config, *(c for _s, c in pairs)))
                    continue
                outs, vecs = operands(*pairs)
                expr = _custom_expr(config, outs)
                used = set(_IDENT.findall(expr))
                if not any(p in used for p, _v in vecs):
                    # The minimized tables reference only constant
                    # operands: the "dynamic" expression is a literal.
                    setconst(instr.rd, eval(expr) & WORD_MASK)
                else:
                    setreg(instr.rd, vec_expr(expr, vecs), None)
            elif t is isa.Send:
                mid = send_mid[(cid, pos)]
                if mid in plan.unused:
                    continue
                s, c = val(instr.rs)
                if c is not None:
                    # Receive epilogues alias the send value, so a
                    # constant must still bind a broadcast vector.
                    send_value[mid] = kconst(c)
                elif mid in plan.capture:
                    # Vectors are rebind-only, so a capture is a free
                    # alias of the current binding.
                    emit(f"m{mid} = {s}")
                    send_value[mid] = f"m{mid}"
                else:
                    send_value[mid] = s
            elif t is isa.LocalLoad:
                s, c = val(instr.rbase)
                if c is not None:
                    idx = _scratch_index(s, c, instr.offset, n_scratch)
                    if np_mode:
                        setreg(instr.rd,
                               f"_np.fromiter((_s[{idx}] for _s in "
                               f"sc{cid}), _np.int64, _n)", None)
                    else:
                        setreg(instr.rd,
                               f"[_s[{idx}] for _s in sc{cid}]", None)
                elif np_mode:
                    ix = _scratch_index(s, None, instr.offset, n_scratch)
                    setreg(instr.rd,
                           f"_np.fromiter((_s[_i] for _s, _i in "
                           f"zip(sc{cid}, {ix})), _np.int64, _n)", None)
                else:
                    ix = _scratch_index("_a", None, instr.offset,
                                        n_scratch)
                    setreg(instr.rd,
                           f"[_s[{ix}] for _s, _a in "
                           f"zip(sc{cid}, {s})]", None)
            elif t is isa.LocalStore:
                s, c = val(instr.rbase)
                if c is not None:
                    idx = _scratch_index(s, c, instr.offset, n_scratch)
                else:
                    idx = _scratch_index(f"{s}[_l]", None, instr.offset,
                                         n_scratch)
                sv, cv = val(instr.rs)
                if cv is not None:
                    vx = str(cv)
                elif np_mode:
                    vx = f"int({sv}[_l])"
                else:
                    vx = f"{sv}[_l]"
                emit("for _l in act:")
                emit(f"    if c{cid}_pr[_l]:")
                emit(f"        sc{cid}[_l][{idx}] = {vx}")
            elif t is isa.Predicate:
                s, c = val(instr.rs)
                if c is not None:
                    emit(f"c{cid}_pr = {kconst(c & 1)}")
                elif np_mode:
                    emit(f"c{cid}_pr = {s} & 1")
                else:
                    emit(f"c{cid}_pr = [_a & 1 for _a in {s}]")
            elif t is isa.GlobalLoad:
                addr = _lane_gaddr(val, instr.addr, np_mode)
                tgt = f"c{cid}_r{instr.rd}"
                # Copy-mutate-rebind: masked lanes keep their old slot
                # values without ever mutating a shared binding.
                emit(f"_t = {tgt}.copy()" if np_mode
                     else f"_t = list({tgt})")
                emit("for _l in act:")
                emit(f"    _t[_l] = _gr[_l]({cid}, {addr}) & {WORD_MASK}")
                setreg(instr.rd, "_t", None)
            elif t is isa.GlobalStore:
                addr = _lane_gaddr(val, instr.addr, np_mode)
                sv, cv = val(instr.rs)
                if cv is not None:
                    vx = str(cv)
                elif np_mode:
                    vx = f"int({sv}[_l])"
                else:
                    vx = f"{sv}[_l]"
                emit("for _l in act:")
                emit(f"    if c{cid}_pr[_l]:")
                emit(f"        _gw[_l]({cid}, {addr}, {vx})")
            elif t is isa.Expect:
                sa, ca = val(instr.rs1)
                sb, cb = val(instr.rs2)
                if ca is not None and cb is not None and ca == cb:
                    continue  # provably never fires
                k = plan.expect_sentinel[pos]
                sent = plan.sentinels[k]
                la = str(ca) if ca is not None else f"{sa}[_l]"
                lb = str(cb) if cb is not None else f"{sb}[_l]"
                if ca is not None and cb is not None:
                    pre = ""  # constants differ: fires for every lane
                else:
                    if np_mode:
                        ga = sa if ca is None else str(ca)
                        gb = sb if cb is None else str(cb)
                        emit(f"if ({ga} != {gb}).any():")
                    elif ca is None and cb is None:
                        emit(f"if any(_a != _b for _a, _b in "
                             f"zip({sa}, {sb})):")
                    elif ca is None:
                        emit(f"if any(_a != {cb} for _a in {sa}):")
                    else:
                        emit(f"if any({ca} != _b for _b in {sb}):")
                    pre = "    "
                emit(f"{pre}for _l in list(act):")
                if ca is None or cb is None:
                    emit(f"{pre}    if {la} != {lb}:")
                    p2 = pre + "        "
                else:
                    p2 = pre + "    "
                emit(f"{p2}if svc(_l, {instr.eid}):")
                emit(f"{p2}    _wb(_l)")
                emit(f"{p2}    _ab = [0] * {plan.n_msgs}")
                for mid, (_i2, src2, _pp, _rs2, _tg) in \
                        enumerate(plan.sends):
                    if src2 == priv and mid < sent.n_msgs:
                        emit(f"{p2}    _ab[{mid}] = "
                             f"int({send_value[mid]}[_l])")
                emit(f"{p2}    aborts.append((_l, {k}, _ab))")
                emit(f"{p2}    act.remove(_l)")
            else:  # pragma: no cover - _analyze already rejected it
                raise CodegenUnsupported(
                    f"cannot emit {type(instr).__name__}")

    # Privileged core first (same argument as the scalar emitter): at
    # any privileged Expect the other cores' slots still hold start-of-
    # Vcycle values, which is exactly the state the scalar stop-function
    # replay needs when the driver settles an aborted lane.
    if priv in cores:
        emit_body(priv)
    for cid in cids:
        if cid != priv:
            emit_body(cid)

    # Receive epilogues: vector aliases of the (captured) send values.
    for cid in cids:
        for j, rd in enumerate(plan.recv_rd[cid]):
            if (cid, j) in plan.omit:
                continue
            mid = plan.recv_mid[cid][j]
            emit(f"c{cid}_r{rd} = {send_value[mid]}")

    emit("cmd = yield -1")
    emit("if cmd is not None:")
    emit("    for _l in act:")
    emit("        _wb(_l)")
    emit("    yield -3")
    emit("    return")

    # -- assembly (the const pool is known only after emission) ----------
    lines: list[str] = [
        '"""Machine-generated by repro.machine.batch_codegen '
        f'(schema v{cg.CODEGEN_SCHEMA_VERSION}, {mode} lowering); '
        'do not edit."""',
    ]
    if np_mode:
        lines += ["", "import numpy as _np"]
    lines += [
        "",
        "",
        "def make_batch_kernel(machines, act, aborts, svc):",
        "    _n = len(machines)",
    ]
    for cid in cids:
        lines.append(f"    core{cid} = [m.cores[{cid}] for m in machines]")
        lines.append(f"    regs{cid} = [c.regs for c in core{cid}]")
        if uses_scratch[cid]:
            lines.append(f"    sc{cid} = [c.scratch for c in core{cid}]")
    if uses_global:
        lines.append("    _gr = [m.global_read for m in machines]")
        lines.append("    _gw = [m.global_write for m in machines]")
    for v in sorted(kvals):
        if np_mode:
            lines.append(f"    _k{v} = _np.full(_n, {v}, _np.int64)")
        else:
            lines.append(f"    _k{v} = [{v}] * _n")
    lines.append("")
    lines.append("    def grid_kernel():")
    for cid in cids:
        for r in plan.touched[cid]:
            if np_mode:
                lines.append(
                    f"        c{cid}_r{r} = _np.fromiter((_g[{r}] "
                    f"for _g in regs{cid}), _np.int64, _n)")
            else:
                lines.append(
                    f"        c{cid}_r{r} = [_g[{r}] for _g in regs{cid}]")
        if plan.has_carry[cid]:
            if np_mode:
                lines.append(
                    f"        c{cid}_cy = _np.fromiter((_c.carry for _c "
                    f"in core{cid}), _np.int64, _n)")
            else:
                lines.append(
                    f"        c{cid}_cy = [_c.carry for _c in core{cid}]")
        if plan.has_pred[cid]:
            if np_mode:
                lines.append(
                    f"        c{cid}_pr = _np.fromiter((_c.predicate for "
                    f"_c in core{cid}), _np.int64, _n)")
            else:
                lines.append(
                    f"        c{cid}_pr = "
                    f"[_c.predicate for _c in core{cid}]")

    # Per-lane writeback closure: reads the *current* vector bindings at
    # call time, so one definition serves every abort site and the final
    # sync flush.  ``int()`` keeps numpy scalars out of architectural
    # state (checkpoints and JSON exports would otherwise break).
    wb_stmts: list[str] = []
    for cid in cids:
        for r in sorted(plan.written[cid]):
            wb_stmts.append(f"regs{cid}[_l][{r}] = int(c{cid}_r{r}[_l])")
        if plan.has_carry[cid]:
            wb_stmts.append(f"core{cid}[_l].carry = int(c{cid}_cy[_l])")
        if plan.has_pred[cid]:
            wb_stmts.append(
                f"core{cid}[_l].predicate = int(c{cid}_pr[_l])")
    lines.append("")
    lines.append("        def _wb(_l):")
    for stmt in (wb_stmts or ["pass"]):
        lines.append(f"            {stmt}")
    lines.append("")
    lines.append("        while True:")
    lines.extend(out)
    lines.append("")
    lines.append("    return grid_kernel")

    if len(lines) > cg._MAX_SOURCE_LINES:
        raise CodegenUnsupported(
            f"emitted batch source has {len(lines)} lines "
            f"(budget {cg._MAX_SOURCE_LINES})")
    return "\n".join(lines) + "\n"


def _lane_gaddr(val, addr_regs, np_mode: bool) -> str:
    """Per-lane 48-bit global address expression (lane index ``_l``)."""
    parts = []
    for reg, shift in zip(addr_regs, (32, 16, 0)):
        s, c = val(reg)
        if c is not None:
            if c:
                parts.append(str(c << shift))
        elif shift:
            parts.append(f"({s}[_l] << {shift})")
        else:
            parts.append(f"{s}[_l]")
    expr = " | ".join(parts) if parts else "0"
    if np_mode and parts:
        # Addresses feed dict keys and checkpointed cache state: keep
        # numpy scalars out.
        expr = f"int({expr})"
    return expr


# ---------------------------------------------------------------------------
# Compilation entry point (shares codegen's memo + on-disk source cache).
# ---------------------------------------------------------------------------
def compiled_batch_kernel(machine: "Machine", width: int,
                          lowering: str = "auto", plan=None):
    """Compile (or fetch) the batched kernel for ``machine``'s program.

    Returns ``(make_batch_kernel, plan, mode)`` where ``mode`` is the
    resolved lowering.  Raises :class:`CodegenUnsupported` when the
    schedule cannot be emitted; the batch driver then falls back to
    per-lane execution.
    """
    if not 1 <= width <= MAX_BATCH_WIDTH:
        raise ValueError(
            f"batch width {width} out of range [1, {MAX_BATCH_WIDTH}]")
    mode = resolve_lowering(lowering, width)
    key = cg._content_key(machine, variant=f"batch{width}-{mode}")
    hit = cg._MEMO.get(key)
    if hit is not None:
        ns, plan = hit
        return ns["make_batch_kernel"], plan, mode
    if plan is None:
        plan = cg._analyze(machine)
    source = cg._load_cached_source(key)
    if source is None:
        source = _emit_batch(machine, plan, mode)
        cg._store_cached_source(key, source)
    ns = {"__name__": f"repro.machine._batch_codegen_{key[:12]}"}
    exec(compile(source, f"<batch-codegen {key[:12]}>", "exec"), ns)
    cg._MEMO[key] = (ns, plan)
    return ns["make_batch_kernel"], plan, mode
