"""The Manticore machine model: configuration, cache, the cycle-accurate
lockstep grid with global stall, the bootloader binary format, and the
host runtime."""

from .boot import deserialize, serialize
from .debug import TraceRecorder
from .cache import Cache, CacheStats
from .codegen import CodegenUnsupported
from .config import PROTOTYPE, TINY, MachineConfig
from .fastpath import FastpathUnsupported
from .grid import (COMPILED_ENGINES, ENGINES, Machine, MachineResult,
                   PerfCounters)
from .runtime import SimulationRun, simulate_on_manticore
from .waveform import Probe, WaveformCollector, trace_map_for

__all__ = [
    "Cache", "CacheStats", "CodegenUnsupported", "COMPILED_ENGINES",
    "ENGINES", "FastpathUnsupported", "Machine", "MachineConfig",
    "MachineResult", "PerfCounters", "PROTOTYPE", "Probe",
    "SimulationRun", "TINY", "TraceRecorder", "WaveformCollector",
    "deserialize", "serialize", "simulate_on_manticore", "trace_map_for",
]
