"""The Manticore machine model: configuration, cache, the cycle-accurate
lockstep grid with global stall, the bootloader binary format, and the
host runtime."""

from .batch import BatchRunner, rebind_reg_inits, run_batch
from .boot import deserialize, serialize
from .debug import TraceRecorder
from .cache import Cache, CacheStats
from .codegen import CodegenUnsupported
from .config import PROTOTYPE, TINY, MachineConfig
from .fastpath import FastpathUnsupported
from .grid import (BATCH_KERNEL_ENGINES, COMPILED_ENGINES, ENGINES,
                   Machine, MachineResult, PerfCounters)
from .runtime import SimulationRun, simulate_on_manticore
from .shard import (ShardedMachine, ShardMachine, ShardPlan, ShardSpec,
                    SendRef, decode_payload, encode_payload, partition)
from .shardpool import ShardWorkerLost
from .waveform import Probe, WaveformCollector, trace_map_for

__all__ = [
    "BATCH_KERNEL_ENGINES", "BatchRunner", "Cache", "CacheStats",
    "CodegenUnsupported", "COMPILED_ENGINES", "ENGINES",
    "FastpathUnsupported", "Machine", "MachineConfig", "MachineResult",
    "PerfCounters", "PROTOTYPE", "Probe", "SendRef", "ShardMachine",
    "ShardPlan", "ShardSpec", "ShardWorkerLost", "ShardedMachine",
    "SimulationRun", "TINY", "TraceRecorder", "WaveformCollector",
    "decode_payload", "deserialize", "encode_payload", "partition",
    "rebind_reg_inits", "run_batch", "serialize",
    "simulate_on_manticore", "trace_map_for",
]
