"""Sharded grid execution: K contiguous torus tiles, one barrier per Vcycle.

Manticore's static BSP schedule makes partition boundaries clean
(Parendi, PAPERS.md): every Send's issue cycle, route, arrival time and
receive slot are fixed at compile time, so a shard knows *statically*
which messages cross each cut and in what order.  Only the 16-bit
payload values are dynamic.  This module cuts the grid into K contiguous
row bands and runs each band as a :class:`ShardMachine` that exchanges
exactly those payloads once per Vcycle:

* **phase 1 (body)** - every shard runs its body (non-receive) events in
  local ``(cycle, core)`` order.  Cross-shard Sends append their value to
  a per-destination outbox in the statically planned channel order;
  local Sends enqueue with their *global* send rank so queue ordering is
  identical to single-process execution.
* **barrier** - the coordinator forwards each outbox to its destination
  shard (the per-edge boundary channels).
* **phase 2 (tail)** - shards inject incoming payloads as
  ``(arrival, rank, rd, value)`` queue entries and run their receive
  epilogue plus the end-of-Vcycle writeback drain.

Reordering body-before-tail is sound because each core's own event order
is preserved (all of a core's body events precede its receive slots) and
cores only interact through messages, which phase 2 sees in full.

**Mid-Vcycle $finish** is the one global event that breaks the phase
split: the privileged core can stop the grid between two body events,
and single-process execution truncates *everything* after that point.
Shards therefore run phase 1 optimistically against a per-Vcycle local
snapshot; when the privileged shard reports a stop key ``(cycle, core)``,
every shard rolls back and replays the interleaved strict event loop
truncated at that key (boundary payloads stay valid under truncation
because body execution never depends on incoming messages).

Global NoC collision detection survives sharding: each shard seeds its
``(link, cycle)`` reservation set with the static slots of every foreign
Send before checking its own, so any colliding pair is caught by at
least one shard.

The privileged core's shard owns all global services (cache/DRAM,
exceptions, ``$display``/``$finish``) - they were already confined to one
core by ``_check_privileged``, so sharding them is free.  ``codegen`` is
not shardable (its kernel holds whole-grid frame locals); use
``engine="fast"`` - :class:`ShardFastEngine` splits the compiled trace at
the phase boundary and keeps verify-once-then-trust per shard.

:class:`ShardedMachine` is the coordinator.  ``transport="local"`` runs
every shard in-process (the reference for tests); ``transport="process"``
runs them in persistent worker processes (:mod:`repro.machine.shardpool`).
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass, field, replace

from ..isa import instructions as isa
from ..isa.interp import NoCDropError
from ..isa.program import MachineProgram
from ..obs.trace import span as _span
from .cache import CacheStats, _Line
from .config import MachineConfig
from .fastpath import (FastEngine, FastpathUnsupported, _VcycleAbort,
                       _c_expect, _c_recv, _c_send)
from .grid import (COMPILED_ENGINES, ENGINES, EXCEPTION_SERVICING_ENGINES,
                   Machine, MachineResult, PerfCounters)


# ---------------------------------------------------------------------------
# Static partition plan
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SendRef:
    """One statically-known Send of the Vcycle schedule.

    ``rank`` is the send's position in the global ``(cycle, src)`` event
    order - the same order ``route_message`` assigns queue sequence
    numbers in, which is what keeps sharded receive queues popping in
    the exact single-process order.
    """

    rank: int
    cycle: int
    src: int
    dst: int
    rd: int
    arrival: int


@dataclass(frozen=True)
class ShardSpec:
    """Everything one shard needs to run its tile (picklable, static)."""

    shard_id: int
    n_shards: int
    rows: tuple[int, ...]
    core_ids: tuple[int, ...]
    privileged: bool
    #: Sends with both endpoints in this shard (keyed for rank lookup).
    local_sends: tuple[SendRef, ...]
    #: dst shard -> refs this shard sends there, in rank order.
    out_channels: dict[int, tuple[SendRef, ...]]
    #: src shard -> refs arriving here, in rank order.
    in_channels: dict[int, tuple[SendRef, ...]]
    #: static (link, cycle) slots of every *foreign* Send - seeded into
    #: the reservation set so local collision checks stay globally sound.
    foreign_slots: tuple[tuple[tuple, int], ...]


@dataclass(frozen=True)
class ShardPlan:
    """The full K-way partition of one compiled program."""

    n_shards: int
    grid: tuple[int, int]
    specs: tuple[ShardSpec, ...]
    shard_of: tuple[int, ...]       # linear core id -> shard id
    privileged_shard: int

    def boundary_sends(self) -> int:
        return sum(len(refs) for spec in self.specs
                   for refs in spec.out_channels.values())


def partition(program: MachineProgram, config: MachineConfig,
              n_shards: int) -> ShardPlan:
    """Cut the torus into ``n_shards`` contiguous row bands and compute
    the static boundary-message channels between them."""
    gx, gy = program.grid
    if (config.grid_x, config.grid_y) != program.grid:
        raise ValueError("program was compiled for a different grid")
    if not 1 <= n_shards <= gy:
        raise ValueError(
            f"shards must be in [1, grid_y={gy}] (contiguous row bands); "
            f"got {n_shards}")
    base, rem = divmod(gy, n_shards)
    rows_per: list[tuple[int, ...]] = []
    y = 0
    for s in range(n_shards):
        n = base + (1 if s < rem else 0)
        rows_per.append(tuple(range(y, y + n)))
        y += n
    row_shard = {r: s for s, rows in enumerate(rows_per) for r in rows}
    shard_of = tuple(row_shard[cid // gx] for cid in range(gx * gy))

    # Enumerate every Send of the Vcycle schedule in global event order
    # ((cycle, src) - one instruction per core per cycle, so unique).
    sends: list[tuple[int, int, isa.Send]] = []
    for cid in sorted(program.cores):
        for cycle, instr in enumerate(program.cores[cid].body):
            if isinstance(instr, isa.Send):
                sends.append((cycle, cid, instr))
    sends.sort(key=lambda t: (t[0], t[1]))

    refs: list[SendRef] = []
    slots_of: list[tuple[tuple[tuple, int], ...]] = []
    for rank, (cycle, src, instr) in enumerate(sends):
        route = config.route(src, instr.target)
        t0 = cycle + config.noc_inject_latency
        arrival = t0 + len(route) + config.noc_eject_latency
        slots = tuple([((kind, x, yy), t0 + j)
                       for j, (kind, x, yy) in enumerate(route)]
                      + [(("EJ", instr.target), arrival)])
        refs.append(SendRef(rank=rank, cycle=cycle, src=src,
                            dst=instr.target, rd=instr.rd, arrival=arrival))
        slots_of.append(slots)

    locals_: list[list[SendRef]] = [[] for _ in range(n_shards)]
    outs: list[dict[int, list[SendRef]]] = [{} for _ in range(n_shards)]
    ins: list[dict[int, list[SendRef]]] = [{} for _ in range(n_shards)]
    foreign: list[list[tuple[tuple, int]]] = [[] for _ in range(n_shards)]
    for ref, slots in zip(refs, slots_of):
        sa, sb = shard_of[ref.src], shard_of[ref.dst]
        if sa == sb:
            locals_[sa].append(ref)
        else:
            outs[sa].setdefault(sb, []).append(ref)
            ins[sb].setdefault(sa, []).append(ref)
        for s in range(n_shards):
            if s != sa:
                foreign[s].extend(slots)

    specs = []
    for s in range(n_shards):
        core_ids = tuple(cid for cid in sorted(program.cores)
                         if shard_of[cid] == s)
        specs.append(ShardSpec(
            shard_id=s, n_shards=n_shards, rows=rows_per[s],
            core_ids=core_ids,
            privileged=(shard_of[program.privileged_core] == s),
            local_sends=tuple(locals_[s]),
            out_channels={d: tuple(v) for d, v in sorted(outs[s].items())},
            in_channels={d: tuple(v) for d, v in sorted(ins[s].items())},
            foreign_slots=tuple(foreign[s]),
        ))
    return ShardPlan(n_shards=n_shards, grid=program.grid,
                     specs=tuple(specs), shard_of=shard_of,
                     privileged_shard=shard_of[program.privileged_core])


# ---------------------------------------------------------------------------
# Boundary payload codec (the process transport's wire format)
# ---------------------------------------------------------------------------
def encode_payload(values: list[int]) -> bytes:
    """Pack one boundary channel's Vcycle payload as little-endian u16s."""
    return struct.pack(f"<{len(values)}H", *(v & 0xFFFF for v in values))


def decode_payload(data: bytes) -> list[int]:
    n, rem = divmod(len(data), 2)
    if rem:
        raise ValueError(f"boundary payload has odd length {len(data)}")
    return list(struct.unpack(f"<{n}H", data))


# ---------------------------------------------------------------------------
# Per-shard machine
# ---------------------------------------------------------------------------
class _ShardAbort(_VcycleAbort):
    """Trusted-trace abort carrying the global stop key for rollback."""

    __slots__ = ("key",)

    def __init__(self, key: tuple[int, int]) -> None:
        super().__init__(0, 0)
        self.key = key


class ShardMachine(Machine):
    """One contiguous tile of the grid, driven by a coordinator through
    ``run_body()`` / ``finish_vcycle()`` instead of ``step_vcycle()``."""

    def __init__(self, program: MachineProgram, spec: ShardSpec,
                 config: MachineConfig | None = None,
                 engine: str = "strict", exception_stall: int = 500,
                 profiler=None) -> None:
        self.spec = spec
        self._shard_ready = False
        sub = replace(
            program,
            cores={cid: program.cores[cid] for cid in spec.core_ids},
            global_init=dict(program.global_init) if spec.privileged else {},
        )
        super().__init__(sub, config=config, engine=engine,
                         exception_stall=exception_stall, profiler=profiler)
        self._init_shard()

    # -- static shard structures (idempotent; may be forced early by
    # -- _ensure_fastpath during Machine.__init__ when verify_vcycles=0)
    def _init_shard(self) -> None:
        if self._shard_ready:
            return
        spec = self.spec
        self._body_events = [e for e in self._vcycle_events
                             if e[2] != "recv"]
        self._tail_events = [e for e in self._vcycle_events
                             if e[2] == "recv"]
        self._foreign_slots = frozenset(
            (tuple(link), cycle) for link, cycle in spec.foreign_slots)
        send_ref: dict[tuple[int, int], SendRef] = {
            (r.cycle, r.src): r for r in spec.local_sends}
        out_pos: dict[tuple[int, int], tuple[int, int]] = {}
        for dst_shard, refs in spec.out_channels.items():
            for k, r in enumerate(refs):
                send_ref[(r.cycle, r.src)] = r
                out_pos[(r.cycle, r.src)] = (dst_shard, k)
        self._send_ref = send_ref
        self._out_pos = out_pos
        # Receive-destination registers per core (for snapshot write sets).
        recv_rds: dict[int, set[int]] = {cid: set() for cid in self.cores}
        for r in spec.local_sends:
            if r.dst in recv_rds:
                recv_rds[r.dst].add(r.rd)
        for refs in spec.in_channels.values():
            for r in refs:
                if r.dst in recv_rds:
                    recv_rds[r.dst].add(r.rd)
        self._reg_write_set = {}
        self._snap_scratch = {}
        for cid, core in self.cores.items():
            written = set(recv_rds[cid])
            stores = False
            for _cycle, instr in core.events:
                ws = instr.writes()
                if ws:
                    written.add(ws[0])
                if type(instr) is isa.LocalStore:
                    stores = True
            self._reg_write_set[cid] = sorted(written)
            self._snap_scratch[cid] = stores and core.scratch is not None
        self._snap_cache = spec.privileged and any(
            type(instr) in (isa.GlobalLoad, isa.GlobalStore, isa.Expect)
            for core in self.cores.values() for _c, instr in core.events)
        self._outbox: dict[int, list[int]] = {}
        self._snapshot = None
        self._main_prof = None
        self._vstart: tuple | None = None
        self._ran_trusted = False
        self._shard_ready = True

    # -- engine hooks ---------------------------------------------------
    def _ensure_fastpath(self) -> bool:
        if self._fastpath is None and self._fastpath_error is None:
            self._init_shard()
            try:
                with _span("machine.shardpath.compile"):
                    self._fastpath = ShardFastEngine(self)
            except FastpathUnsupported as exc:
                self._fastpath_error = str(exc)
        return self._fastpath is not None

    def route_message(self, src: int, dst: int, rd: int,
                      value: int) -> None:
        cfg = self.config
        route = cfg.route(src, dst)
        t0 = self.now + cfg.noc_inject_latency
        slots = [((kind, x, y), t0 + j)
                 for j, (kind, x, y) in enumerate(route)]
        arrival = t0 + len(route) + cfg.noc_eject_latency
        slots.append((("EJ", dst), arrival))
        for slot in slots:
            if slot in self._link_busy:
                raise NoCDropError(
                    f"link collision on {slot[0]} at cycle {slot[1]} "
                    f"(message {src}->{dst})"
                )
        self._link_busy.update(slots)
        self._msg_seq += 1
        self.counters.messages += 1
        ref = self._send_ref[(self.now, src)]
        target = self._out_pos.get((self.now, src))
        if target is None:
            heapq.heappush(self.cores[dst].queue,
                           (arrival, ref.rank, rd, value))
        else:
            self._outbox[target[0]].append(value & 0xFFFF)
        if self.profiler is not None:
            self.profiler.record_message(src, dst, route)

    # -- per-Vcycle local snapshot (rollback support) -------------------
    def _take_snapshot(self):
        cores = []
        for cid, core in self.cores.items():
            regs = core.regs
            cores.append((
                cid,
                [regs[i] for i in self._reg_write_set[cid]],
                core.scratch.copy() if self._snap_scratch[cid] else None,
                core.carry, core.predicate,
                list(core.pending), list(core.queue),
            ))
        c = self.counters
        cache = None
        if self._snap_cache:
            cache = (
                {idx: (ln.tag, ln.dirty, ln.data.copy())
                 for idx, ln in self.cache.lines.items()},
                dict(self.cache.dram),
                self.cache.stats.as_dict(),
            )
        return (cores, (c.vcycles, c.compute_cycles, c.stall_cycles,
                        c.instructions, c.messages, c.exceptions),
                len(self.displays), cache, self._msg_seq)

    def _restore_snapshot(self, snap) -> None:
        for cid, regs, scratch, carry, predicate, pending, queue in snap[0]:
            core = self.cores[cid]
            for i, v in zip(self._reg_write_set[cid], regs):
                core.regs[i] = v
            if scratch is not None:
                core.scratch[:] = scratch
            core.carry = carry
            core.predicate = predicate
            core.pending = list(pending)
            core.queue = list(queue)
        c = self.counters
        (c.vcycles, c.compute_cycles, c.stall_cycles,
         c.instructions, c.messages, c.exceptions) = snap[1]
        del self.displays[snap[2]:]
        if snap[3] is not None:
            lines = {}
            for idx, (tag, dirty, data) in snap[3][0].items():
                line = _Line(tag, data)
                line.dirty = dirty
                lines[idx] = line
            self.cache.lines = lines
            self.cache.dram = snap[3][1]
            self.cache.stats.load_dict(snap[3][2])
        self._msg_seq = snap[4]
        self.finished = False

    # -- phase 1: optimistic body -----------------------------------------
    def run_body(self) -> tuple[tuple[int, int] | None, dict[int, list[int]]]:
        """Run this Vcycle's body events; returns (stop_key, outboxes).

        ``stop_key`` is the global ``(cycle, core)`` position of a
        ``$finish`` (privileged shard only), else None.  Outbox payloads
        are valid even under a later stop: entries are in channel (rank)
        order and truncation is receiver-side by static key.
        """
        if self.finished:
            return None, {}
        self._snapshot = self._take_snapshot()
        c = self.counters
        self._vstart = (c.vcycles, c.compute_cycles, c.stall_cycles,
                        c.instructions, c.messages, c.exceptions)
        if self.profiler is not None:
            from ..obs.profiler import Profiler
            self._main_prof = self.profiler
            temp = Profiler(sample_cap=self._main_prof.sample_cap)
            temp.grid = self._main_prof.grid
            self.profiler = temp
        self._outbox = {s: [] for s in self.spec.out_channels}
        self._ran_trusted = self._trusted
        if self._trusted:
            stop = self._fastpath.run_body_trace()
            out = ({s: list(v) for s, v in self._fastpath._out.items()}
                   if self._fastpath._out else {})
            return stop, out
        stop = self._run_body_strict()
        return stop, {s: list(v) for s, v in self._outbox.items()}

    def _run_body_strict(self) -> tuple[int, int] | None:
        from ..isa.semantics import execute
        prof = self.profiler
        counters = self.counters
        busy = self._link_busy
        busy.clear()
        busy.update(self._foreign_slots)
        for cycle, cid, item in self._body_events:
            self.now = cycle
            core = self.cores[cid]
            core.commit_writes(cycle)
            execute(item, core)
            counters.instructions += 1
            if prof is not None:
                prof.record_instruction(cid)
            if self.finished:
                return (cycle, cid)
        return None

    # -- phase 2: exchange + tail ---------------------------------------
    def finish_vcycle(self, in_payloads: dict[int, list[int]],
                      stop: tuple[int, int] | None) -> None:
        """Complete the Vcycle after the barrier exchange.

        ``in_payloads`` maps source shard -> that shard's full outbox
        for us; ``stop`` is the grid-wide finish key (or None).  On a
        stop the optimistic body is rolled back and the interleaved
        strict event loop replays truncated at the key - on *every*
        shard, so final state is bit-identical to single-process.
        """
        try:
            if stop is None:
                if self._ran_trusted:
                    self._fastpath.run_finish_trace(in_payloads)
                else:
                    self._inject_queues(in_payloads, None)
                    self._run_tail_strict()
            else:
                self._restore_snapshot(self._snapshot)
                if self._main_prof is not None:
                    from ..obs.profiler import Profiler
                    temp = Profiler(sample_cap=self._main_prof.sample_cap)
                    temp.grid = self._main_prof.grid
                    self.profiler = temp
                self._inject_queues(in_payloads, stop)
                self._replay_truncated(stop)
                self.finished = True
            self._end_vcycle()
        finally:
            self._snapshot = None
            if self._main_prof is not None:
                self._main_prof.absorb(self.profiler)
                self.profiler = self._main_prof
                self._main_prof = None

    def _inject_queues(self, in_payloads: dict[int, list[int]],
                       stop: tuple[int, int] | None) -> None:
        for src_shard, refs in self.spec.in_channels.items():
            values = in_payloads.get(src_shard) or []
            for i, ref in enumerate(refs):
                if stop is not None and (ref.cycle, ref.src) >= stop:
                    break
                heapq.heappush(self.cores[ref.dst].queue,
                               (ref.arrival, ref.rank, ref.rd, values[i]))

    def _run_tail_strict(self) -> None:
        prof = self.profiler
        for cycle, cid, _item in self._tail_events:
            self.now = cycle
            core = self.cores[cid]
            core.commit_writes(cycle)
            if not core.queue:
                raise NoCDropError(
                    f"core {cid}: receive slot at cycle {cycle} has "
                    "no queued message"
                )
            arrival, _seq, rd, value = heapq.heappop(core.queue)
            if arrival > cycle:
                raise NoCDropError(
                    f"core {cid}: message arrives at {arrival} after "
                    f"its receive slot at {cycle}"
                )
            core.regs[rd] = value & 0xFFFF
            if prof is not None:
                prof.record_receive(cid)
        vcpl = self.program.vcpl
        for core in self.cores.values():
            core.commit_writes(vcpl)
            if core.queue:
                raise NoCDropError(
                    f"core {core.core_id}: {len(core.queue)} messages "
                    "left unconsumed at Vcycle end"
                )

    def _replay_truncated(self, stop: tuple[int, int]) -> None:
        from ..isa.semantics import execute
        prof = self.profiler
        counters = self.counters
        busy = self._link_busy
        busy.clear()
        busy.update(self._foreign_slots)
        self._outbox = {s: [] for s in self.spec.out_channels}
        for cycle, cid, item in self._vcycle_events:
            if (cycle, cid) > stop:
                break
            self.now = cycle
            core = self.cores[cid]
            core.commit_writes(cycle)
            if item == "recv":
                arrival, _seq, rd, value = heapq.heappop(core.queue)
                core.regs[rd] = value & 0xFFFF
                if prof is not None:
                    prof.record_receive(cid)
            else:
                execute(item, core)
                counters.instructions += 1
                if prof is not None:
                    prof.record_instruction(cid)
            if self.finished:
                break
        vcpl = self.program.vcpl
        for core in self.cores.values():
            core.commit_writes(vcpl)

    def _end_vcycle(self) -> None:
        c = self.counters
        c.vcycles += 1
        c.compute_cycles += self.program.vcpl
        self.now = 0
        base = self._vstart
        exc_delta = c.exceptions - base[5]
        if self.engine in COMPILED_ENGINES:
            if self._ran_trusted:
                if exc_delta and not self._fastpath.services_exceptions:
                    self._trusted = False
                    self._verify_left = max(self._verify_left, 1)
            else:
                self._verify_left -= 1
                if exc_delta and self.engine not in \
                        EXCEPTION_SERVICING_ENGINES:
                    self._verify_left = max(self._verify_left, 1)
                elif self._verify_left <= 0 and self._ensure_fastpath():
                    self._trusted = True
        prof = self.profiler
        if prof is not None:
            prof.end_vcycle(base[0], c.compute_cycles - base[1],
                            c.stall_cycles - base[2],
                            c.instructions - base[3],
                            c.messages - base[4], exc_delta)

    # -- coordinator queries --------------------------------------------
    def result_payload(self) -> dict:
        return {
            "counters": self.counters.as_dict(),
            "displays": list(self.displays),
            "finished": self.finished,
            "cache_stats": self.cache.stats.as_dict(),
        }


# ---------------------------------------------------------------------------
# The fast engine, split at the phase boundary
# ---------------------------------------------------------------------------
class ShardFastEngine(FastEngine):
    """The verified fast path for one shard.

    Reuses the base closure kernels but builds the trace over the
    *reordered* event list (all body events, then all receive slots) so
    it can pause at the barrier: ``run_body_trace`` executes the body
    half (cross-shard Sends write positional out-buffers, aborts report
    their static stop key), ``run_finish_trace`` scatters incoming
    payloads into inbox slots and runs the tail half.  Per-core event
    order is unchanged, so the commit plan (deferred writebacks into
    receive latency windows) lands at the same strict positions.
    """

    def _build(self) -> None:
        machine = self.machine
        machine._init_shard()
        spec = machine.spec
        cfg = machine.config
        cores = machine.cores
        vcpl = machine.program.vcpl
        latency = cfg.result_latency

        body_events = machine._body_events
        tail_events = machine._tail_events
        send_ref = machine._send_ref
        out_pos = machine._out_pos

        # -- static message plan: local sends + remote arrivals ---------
        per_target: dict[int, list] = {cid: [] for cid in cores}
        recv_slots: dict[int, list[int]] = {cid: [] for cid in cores}
        for cycle, cid, _item in tail_events:
            recv_slots[cid].append(cycle)
        for cycle, cid, item in body_events:
            if type(item) is isa.Send:
                ref = send_ref[(cycle, cid)]
                if (cycle, cid) in out_pos:
                    continue
                if ref.dst not in per_target:
                    raise FastpathUnsupported(
                        f"Send to unmapped core {ref.dst}")
                per_target[ref.dst].append(
                    (ref.arrival, ref.rank, ref.rd, ("local", cycle, cid)))
        for src_shard, refs in spec.in_channels.items():
            for pos, ref in enumerate(refs):
                if ref.dst not in per_target:
                    raise FastpathUnsupported(
                        f"Send to unmapped core {ref.dst}")
                per_target[ref.dst].append(
                    (ref.arrival, ref.rank, ref.rd, ("in", src_shard, pos)))
        inbox_slot: dict[tuple[int, int], int] = {}
        stage_plan: dict[int, list[tuple[int, int, int]]] = {
            s: [] for s in spec.in_channels}
        recv_rd: dict[int, list[int]] = {}
        for cid in cores:
            msgs = sorted(per_target[cid], key=lambda m: (m[0], m[1]))
            slots = recv_slots[cid]
            if len(msgs) != len(slots):
                raise FastpathUnsupported(
                    f"core {cid}: {len(msgs)} messages for {len(slots)} "
                    "receive slots")
            recv_rd[cid] = []
            for j, (arrival, _rank, rd, tag) in enumerate(msgs):
                if arrival > slots[j]:
                    raise FastpathUnsupported(
                        f"core {cid}: arrival {arrival} after receive "
                        f"slot {slots[j]}")
                if tag[0] == "local":
                    inbox_slot[(tag[1], tag[2])] = j
                else:
                    stage_plan[tag[1]].append((tag[2], cid, j))
                recv_rd[cid].append(rd)

        # -- commit plan (identical rule to the base engine) -------------
        deferred_regs: dict[int, set[int]] = {}
        for cid, core in cores.items():
            conflicts: set[int] = set()
            pairs = list(zip(recv_slots[cid], recv_rd[cid]))
            if pairs:
                for cycle, instr in core.events:
                    ws = instr.writes()
                    if not ws:
                        continue
                    for s, rrd in pairs:
                        if rrd == ws[0] and cycle < s < cycle + latency:
                            conflicts.add(ws[0])
                            break
            deferred_regs[cid] = conflicts

        # -- flatten body trace, then tail trace --------------------------
        from collections import Counter, deque
        from .fastpath import _c_commit, _c_defer, _value_fn

        inboxes = {cid: [0] * len(recv_slots[cid]) for cid in cores}
        out = {s: [0] * len(refs)
               for s, refs in spec.out_channels.items()}
        defers: dict[int, list] = {cid: [] for cid in cores}
        defer_meta: dict[int, list[tuple[int, int]]] = {
            cid: [] for cid in cores}
        commit_q: dict[int, deque] = {cid: deque() for cid in cores}
        recv_seen = {cid: 0 for cid in cores}
        trace: list = []
        n_instr = 0
        n_msgs = 0
        run_instr = {cid: 0 for cid in cores}
        run_sends = {cid: 0 for cid in cores}
        run_recvs = {cid: 0 for cid in cores}
        send_routes: list[tuple] = []
        for cycle, cid, item in body_events:
            core = cores[cid]
            regs = core.regs
            q = commit_q[cid]
            while q and q[0][0] <= cycle:
                _c, k, rd = q.popleft()
                trace.append(_c_commit(regs, defers[cid], k, rd))
            n_instr += 1
            run_instr[cid] += 1
            ws = item.writes()
            if ws and cycle + latency > vcpl:
                raise FastpathUnsupported(
                    f"core {cid}: writeback at {cycle + latency} past "
                    f"VCPL {vcpl}")
            if ws and ws[0] in deferred_regs[cid]:
                k = len(defers[cid])
                defers[cid].append(None)
                defer_meta[cid].append((k, ws[0]))
                trace.append(_c_defer(
                    _value_fn(item, core, machine, cid), defers[cid], k))
                q.append((cycle + latency, k, ws[0]))
                continue
            t = type(item)
            if t is isa.Send:
                pos = out_pos.get((cycle, cid))
                if pos is None:
                    ref = send_ref[(cycle, cid)]
                    trace.append(_c_send(regs, item.rs, inboxes[ref.dst],
                                         inbox_slot[(cycle, cid)]))
                else:
                    trace.append(_c_send(regs, item.rs, out[pos[0]],
                                         pos[1]))
                n_msgs += 1
                run_sends[cid] += 1
                send_routes.append(tuple(cfg.route(cid, item.target)))
            elif t is isa.Expect:
                abort = _ShardAbort((cycle, cid))
                trace.append(_c_expect(regs, machine, cid, item.rs1,
                                       item.rs2, item.eid, abort))
            else:
                trace.append(self._compile_instr(
                    item, core, cid, inboxes, {}, -1, n_instr, n_msgs,
                    (run_instr, run_sends, run_recvs)))
        split = len(trace)
        for cycle, cid, _item in tail_events:
            core = cores[cid]
            regs = core.regs
            q = commit_q[cid]
            while q and q[0][0] <= cycle:
                _c, k, rd = q.popleft()
                trace.append(_c_commit(regs, defers[cid], k, rd))
            j = recv_seen[cid]
            recv_seen[cid] = j + 1
            trace.append(_c_recv(regs, recv_rd[cid][j], inboxes[cid], j))
            run_recvs[cid] += 1
        for cid in cores:
            q = commit_q[cid]
            while q:
                _c, k, rd = q.popleft()
                trace.append(_c_commit(cores[cid].regs, defers[cid], k, rd))

        self._body_trace = trace[:split]
        self._tail_trace = trace[split:]
        self._trace = trace
        self._inboxes = inboxes
        self._out = out
        self._stage_plan = stage_plan
        self._n_instr = n_instr
        self._n_msgs = n_msgs
        self._defers = defers
        self._defer_meta = defer_meta
        self._core_instr = run_instr
        self._core_sends = run_sends
        self._core_recvs = run_recvs
        self._send_routes = send_routes
        link_hops: Counter = Counter()
        for route in send_routes:
            link_hops.update(route)
        self._link_hops = dict(link_hops)

    # ------------------------------------------------------------------
    def run_body_trace(self) -> tuple[int, int] | None:
        """Run the body half; returns the static stop key on $finish
        (the rollback replays strictly - nothing here needs undoing
        beyond the coordinator-driven snapshot restore)."""
        try:
            for fn in self._body_trace:
                fn()
        except _ShardAbort as abort:
            return abort.key
        return None

    def run_finish_trace(self, in_payloads: dict[int, list[int]]) -> None:
        inboxes = self._inboxes
        for src_shard, plan in self._stage_plan.items():
            values = in_payloads.get(src_shard) or []
            for pos, cid, j in plan:
                inboxes[cid][j] = values[pos]
        for fn in self._tail_trace:
            fn()
        counters = self.machine.counters
        counters.instructions += self._n_instr
        counters.messages += self._n_msgs
        prof = self.machine.profiler
        if prof is not None:
            prof.add_vcycle_bulk(self._core_instr, self._core_sends,
                                 self._core_recvs, self._link_hops)


# ---------------------------------------------------------------------------
# Checkpoint-state merge/split (shards <-> standard Machine snapshots)
# ---------------------------------------------------------------------------
def merge_counter_dicts(dicts: list[dict], priv: int) -> dict:
    """Merge per-shard PerfCounters dicts into the single-process view:
    instructions/messages are sender-side sums; vcycles/compute are grid
    clocks (identical everywhere); stalls/exceptions live on the
    privileged shard only."""
    out = dict(dicts[priv])
    out["instructions"] = sum(d["instructions"] for d in dicts)
    out["messages"] = sum(d["messages"] for d in dicts)
    for d in dicts:
        if d["vcycles"] != out["vcycles"]:
            raise ValueError(
                f"shard Vcycle counters diverged: {d['vcycles']} vs "
                f"{out['vcycles']} (barrier protocol bug)")
    return out


def _empty_cache_state() -> dict:
    from ..netlist.serialize import pack_pairs
    return {"lines": [], "dram": pack_pairs([]),
            "stats": {"hits": 0, "misses": 0, "writebacks": 0,
                      "accesses": 0}}


def merge_shard_states(states: list[dict], plan: ShardPlan) -> dict:
    """Combine per-shard ``checkpoint_state()`` images into one standard
    single-process snapshot (so sharded and solo runs can restore each
    other's checkpoints interchangeably)."""
    for i, state in enumerate(states):
        if state["event_pos"]:
            raise ValueError(
                f"shard {i} paused mid-Vcycle; sharded snapshots are "
                "Vcycle-boundary only")
    priv = plan.privileged_shard
    cores: dict[str, dict] = {}
    for state in states:
        cores.update(state["cores"])
    merged = {
        "engine": states[priv]["engine"],
        "exception_stall": states[priv]["exception_stall"],
        "counters": merge_counter_dicts(
            [s["counters"] for s in states], priv),
        "cache": states[priv]["cache"],
        "cores": cores,
        "displays": list(states[priv]["displays"]),
        "finished": states[priv]["finished"],
        "now": 0,
        "msg_seq": sum(s["msg_seq"] for s in states),
        "link_busy": [],
        "event_pos": 0,
        "vcycle_base": None,
        "fastpath": dict(states[priv]["fastpath"]),
    }
    return merged


def split_shard_state(state: dict, plan: ShardPlan) -> list[dict]:
    """Cut a standard single-process snapshot into per-shard images.

    The privileged shard inherits the global counters verbatim (the
    merged view sums instructions/messages across shards, so parking the
    whole history on one shard keeps the sum exact); the others restart
    their local tallies at zero.  Cache, displays, and msg_seq likewise
    live on the privileged shard.
    """
    if state["event_pos"]:
        raise ValueError(
            "sharded execution resumes only from Vcycle-boundary "
            "snapshots (this one paused mid-Vcycle)")
    per: list[dict] = []
    for spec in plan.specs:
        counters = dict(state["counters"])
        if not spec.privileged:
            counters = {"vcycles": counters["vcycles"],
                        "compute_cycles": counters["compute_cycles"],
                        "stall_cycles": 0, "instructions": 0,
                        "messages": 0, "exceptions": 0}
        per.append({
            "engine": state["engine"],
            "exception_stall": state["exception_stall"],
            "counters": counters,
            "cache": (state["cache"] if spec.privileged
                      else _empty_cache_state()),
            "cores": {str(cid): state["cores"][str(cid)]
                      for cid in spec.core_ids},
            "displays": (list(state["displays"]) if spec.privileged
                         else []),
            "finished": state["finished"],
            "now": 0,
            "msg_seq": state["msg_seq"] if spec.privileged else 0,
            "link_busy": [],
            "event_pos": 0,
            "vcycle_base": None,
            "fastpath": dict(state["fastpath"]),
        })
    return per


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------
class _LocalShardExecutor:
    """Reference transport: every shard in-process (what the equivalence
    tests trust; the process transport must match it bit for bit)."""

    def __init__(self, plan: ShardPlan, program: MachineProgram,
                 config: MachineConfig, engine: str, exception_stall: int,
                 profiled: bool, sample_cap: int = 4096) -> None:
        self.plan = plan
        self.shards: list[ShardMachine] = []
        for spec in plan.specs:
            profiler = None
            if profiled:
                from ..obs.profiler import Profiler
                profiler = Profiler(sample_cap=sample_cap)
            self.shards.append(ShardMachine(
                program, spec, config=config, engine=engine,
                exception_stall=exception_stall, profiler=profiler))

    def run_body(self):
        return [m.run_body() for m in self.shards]

    def finish(self, in_payloads: list[dict[int, list[int]]],
               stop: tuple[int, int] | None) -> None:
        for m, payloads in zip(self.shards, in_payloads):
            m.finish_vcycle(payloads, stop)

    def states(self) -> list[dict]:
        return [m.checkpoint_state() for m in self.shards]

    def load_states(self, states: list[dict]) -> None:
        for m, state in zip(self.shards, states):
            m.load_checkpoint_state(state)

    def results(self) -> list[dict]:
        return [m.result_payload() for m in self.shards]

    def profiler_states(self) -> list[dict | None]:
        return [None if m.profiler is None else m.profiler.state_dict()
                for m in self.shards]

    def close(self) -> None:
        pass


class ShardedMachine:
    """Machine-compatible coordinator for a K-way sharded grid.

    Exposes the surface the runtime, checkpoint driver, and fuzz oracles
    use (``run``, ``step_vcycle``, ``finished``, ``counters``,
    ``checkpoint_state``/``load_checkpoint_state``), so a sharded run
    slots in wherever a :class:`~repro.machine.grid.Machine` does.
    Snapshots are standard single-process images: a sharded run can
    resume a solo run's checkpoint and vice versa.
    """

    def __init__(self, program: MachineProgram,
                 config: MachineConfig | None = None, *,
                 shards: int, engine: str = "strict",
                 exception_stall: int = 500, profiler=None,
                 transport: str = "local") -> None:
        engine = engine or "strict"
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; pick one of "
                             f"{ENGINES}")
        if engine == "codegen":
            raise ValueError(
                "engine='codegen' cannot be sharded: its kernel holds "
                "whole-grid state in one frame; use engine='fast'")
        self.program = program
        self.config = config or MachineConfig(
            grid_x=program.grid[0], grid_y=program.grid[1])
        self.engine = engine
        self.exception_stall = exception_stall
        self.profiler = profiler
        self.plan = partition(program, self.config, shards)
        self.counters = PerfCounters()
        self.displays: list[str] = []
        self.finished = False
        self._prof_base: dict | None = None
        self._in_edges: list[list[int]] = [
            sorted(spec.in_channels) for spec in self.plan.specs]
        if profiler is not None:
            profiler.attach(self)
        if transport == "local":
            self._exec = _LocalShardExecutor(
                self.plan, program, self.config, engine, exception_stall,
                profiled=profiler is not None,
                sample_cap=(profiler.sample_cap if profiler is not None
                            else 4096))
        elif transport == "process":
            from .shardpool import ProcessShardExecutor
            self._exec = ProcessShardExecutor(
                self.plan, program, self.config, engine, exception_stall,
                profiled=profiler is not None,
                sample_cap=(profiler.sample_cap if profiler is not None
                            else 4096))
        else:
            raise ValueError(f"unknown transport {transport!r}; pick "
                             "'local' or 'process'")

    # ------------------------------------------------------------------
    def step_vcycle(self) -> None:
        if self.finished:
            return
        outs = self._exec.run_body()
        stop = None
        for s, (key, _out) in enumerate(outs):
            if key is not None:
                if s != self.plan.privileged_shard:
                    raise RuntimeError(
                        f"non-privileged shard {s} reported a stop key "
                        f"{key} (protocol bug)")
                stop = key
        in_payloads = [
            {src: outs[src][1][dst] for src in self._in_edges[dst]}
            for dst in range(self.plan.n_shards)
        ]
        self._exec.finish(in_payloads, stop)
        self.counters.vcycles += 1
        if stop is not None:
            self.finished = True

    def run(self, max_vcycles: int) -> MachineResult:
        with _span("machine.run", engine=f"sharded-{self.engine}",
                   budget=max_vcycles, shards=self.plan.n_shards) as s:
            while not self.finished and \
                    self.counters.vcycles < max_vcycles:
                self.step_vcycle()
            if s is not None:
                s.args["vcycles"] = self.counters.vcycles
        return self._collect_result()

    def _collect_result(self) -> MachineResult:
        results = self._exec.results()
        priv = self.plan.privileged_shard
        merged = merge_counter_dicts(
            [r["counters"] for r in results], priv)
        self.counters.load_dict(merged)
        self.displays = [str(d) for d in results[priv]["displays"]]
        self.finished = bool(results[priv]["finished"])
        stats = CacheStats()
        stats.load_dict(results[priv]["cache_stats"])
        self._sync_profiler()
        return MachineResult(
            vcycles=self.counters.vcycles,
            finished=self.finished,
            displays=list(self.displays),
            counters=self.counters,
            cache=stats,
        )

    def _sync_profiler(self) -> None:
        if self.profiler is None:
            return
        from ..obs.profiler import merge_profiler_states
        states = self._exec.profiler_states()
        merged = merge_profiler_states(
            [s for s in states if s is not None], base=self._prof_base)
        self.profiler.load_state(merged)

    # -- checkpoint hooks ----------------------------------------------
    def checkpoint_state(self) -> dict:
        state = merge_shard_states(self._exec.states(), self.plan)
        state["engine"] = self.engine
        state["exception_stall"] = self.exception_stall
        if self.profiler is not None:
            self._sync_profiler()
            state["profiler"] = self.profiler.state_dict()
        return state

    def load_checkpoint_state(self, state: dict) -> None:
        per = split_shard_state(state, self.plan)
        self._exec.load_states(per)
        self.counters.load_dict(state["counters"])
        self.displays = [str(d) for d in state["displays"]]
        self.finished = bool(state["finished"])
        if self.profiler is not None and "profiler" in state:
            # History stays coordinator-side; shards restart their local
            # profilers empty and the merge prepends this base.
            self._prof_base = state["profiler"]
            self.profiler.load_state(state["profiler"])

    def close(self) -> None:
        self._exec.close()

    def __enter__(self) -> "ShardedMachine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
