"""Cloud cost analysis (paper SS7.9)."""

from .azure import (
    D2_V4,
    D16_V4,
    HB120,
    INSTANCES,
    NP10S,
    CostEstimate,
    Instance,
    cost_table,
    estimate,
    workday_flags,
)

__all__ = [
    "CostEstimate", "D16_V4", "D2_V4", "HB120", "INSTANCES", "Instance",
    "NP10S", "cost_table", "estimate", "workday_flags",
]
