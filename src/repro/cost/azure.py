"""Cloud cost analysis (paper SS7.9, Tables 5 and 6).

Pure arithmetic over published Azure hourly prices: given a simulation
rate (kHz) and a target cycle count, estimate wall-clock hours (rounded up
to whole billed hours) and dollars per instance type.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Instance:
    name: str
    dollars_per_hour: float
    description: str


#: Paper Table 5.
D2_V4 = Instance("D2 v4", 0.115, "Xeon 8272CL 2x vCPU (serial)")
D16_V4 = Instance("D16 v4", 0.92, "Xeon 8272CL 16x vCPU (multithreaded)")
HB120 = Instance("HB120rs v3", 4.68, "EPYC 7V73X 120x vCPU (multithreaded)")
NP10S = Instance("NP10s", 2.145, "Alveo U250 + 10x vCPU (Manticore)")

INSTANCES = {i.name: i for i in (D2_V4, D16_V4, HB120, NP10S)}


@dataclass(frozen=True)
class CostEstimate:
    instance: str
    hours: float
    billed_hours: int
    dollars: float


def estimate(instance: Instance, rate_khz: float,
             cycles: float) -> CostEstimate:
    """Runtime and cost to simulate ``cycles`` RTL cycles at ``rate_khz``.

    Azure bills by the hour; the paper rounds up to the next whole hour
    for the multi-hour Table 6 runs.
    """
    if rate_khz <= 0:
        raise ValueError("rate must be positive")
    seconds = cycles / (rate_khz * 1e3)
    hours = seconds / 3600.0
    billed = max(1, math.ceil(hours))
    return CostEstimate(instance.name, hours, billed,
                        round(billed * instance.dollars_per_hour, 2))


def cost_table(rates_khz: dict[str, dict[str, float]],
               cycles: float) -> list[dict]:
    """Table 6 rows: per benchmark, per instance, hours and dollars.

    ``rates_khz`` maps benchmark -> {instance name -> rate}.
    """
    rows = []
    for bench, rates in rates_khz.items():
        row: dict = {"benchmark": bench, "cycles": cycles}
        for name, rate in rates.items():
            instance = INSTANCES[name]
            est = estimate(instance, rate, cycles)
            row[f"{name} h"] = round(est.hours, 2)
            row[f"{name} $"] = est.dollars
        rows.append(row)
    return rows


def workday_flags(hours: float, workday_hours: float = 8.0) -> bool:
    """The paper bolds runtimes exceeding one workday."""
    return hours > workday_hours
