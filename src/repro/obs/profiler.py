"""Per-core / per-Vcycle / per-link profiling counters.

A :class:`Profiler` is an *observer* the machine calls into when one is
attached (``Machine(..., profiler=...)``).  The contract, enforced by
``tests/test_obs_perturbation.py``, is that attaching a profiler never
changes anything observable - same Vcycle count, displays, machine-wide
:class:`~repro.machine.grid.PerfCounters`, cache statistics, registers
and scratchpads, under all three engines.  With no profiler attached
the machine's hot loops are untouched (the only cost is an
``is None`` check per Vcycle / per global access), which is what keeps
the fast engine's zero-observer overhead within the budget measured by
``benchmarks/bench_obs.py``.

What is collected:

* **per-core counters** (:class:`CoreCounters`) - instructions issued,
  Sends originated, receive slots consumed, cache accesses, exceptions
  raised, and the global stall cycles each core's privileged traffic
  charged to the whole grid;
* **per-Vcycle samples** (:class:`VcycleSample`) - compute/stall/
  instruction/message/exception deltas per Vcycle, kept bounded by
  pairwise compaction once ``sample_cap`` is reached (resolution
  halves, totals stay exact);
* **per-link hop utilization** - how many message-hops crossed each
  directed torus link ``("E"|"S", x, y)``;
* **per-cache-op latency histograms** - stall-cycle histograms keyed by
  ``(op, outcome)`` such as ``("read", "miss")``, plus a stall-cause
  breakdown (cache-hit / cache-miss / cache-writeback / exception).

The strict engine feeds these hooks per event; the fast engine adds the
statically-known per-Vcycle bulk in one call per Vcycle
(:meth:`Profiler.add_vcycle_bulk`), so profiling the fast engine costs
a few dict merges per Vcycle rather than per-event dispatch.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class CoreCounters:
    """What one core did over the profiled run."""

    instructions: int = 0
    sends: int = 0
    receives: int = 0
    cache_accesses: int = 0
    exceptions: int = 0
    #: global stall cycles charged to the grid by this core's privileged
    #: accesses and exceptions (stalls freeze *everyone*; this is the
    #: attribution of who caused them).
    stall_caused: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "instructions": self.instructions,
            "sends": self.sends,
            "receives": self.receives,
            "cache_accesses": self.cache_accesses,
            "exceptions": self.exceptions,
            "stall_caused": self.stall_caused,
        }

    def load_dict(self, data: dict) -> None:
        self.instructions = int(data["instructions"])
        self.sends = int(data["sends"])
        self.receives = int(data["receives"])
        self.cache_accesses = int(data["cache_accesses"])
        self.exceptions = int(data["exceptions"])
        self.stall_caused = int(data["stall_caused"])


@dataclass
class VcycleSample:
    """Counter deltas over one Vcycle (or ``width`` merged Vcycles)."""

    start: int                  # first Vcycle index covered
    width: int                  # how many Vcycles merged into this sample
    compute_cycles: int
    stall_cycles: int
    instructions: int
    messages: int
    exceptions: int

    def merge(self, other: "VcycleSample") -> "VcycleSample":
        return VcycleSample(
            start=self.start, width=self.width + other.width,
            compute_cycles=self.compute_cycles + other.compute_cycles,
            stall_cycles=self.stall_cycles + other.stall_cycles,
            instructions=self.instructions + other.instructions,
            messages=self.messages + other.messages,
            exceptions=self.exceptions + other.exceptions,
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "start": self.start, "width": self.width,
            "compute_cycles": self.compute_cycles,
            "stall_cycles": self.stall_cycles,
            "instructions": self.instructions,
            "messages": self.messages,
            "exceptions": self.exceptions,
        }


@dataclass
class Profiler:
    """Observation-only collector the machine reports into."""

    #: per-Vcycle samples beyond this count are pairwise-compacted
    #: (bounded memory on million-Vcycle runs; totals stay exact).
    sample_cap: int = 4096

    cores: dict[int, CoreCounters] = field(default_factory=dict)
    links: Counter = field(default_factory=Counter)
    samples: list[VcycleSample] = field(default_factory=list)
    #: (op, outcome) -> Counter of stall-cycle latencies, e.g.
    #: ("read", "hit") -> {24: 310}
    cache_latency: dict[tuple[str, str], Counter] = field(
        default_factory=dict)
    stall_causes: Counter = field(default_factory=Counter)
    total_hops: int = 0
    grid: tuple[int, int] | None = None

    # -- attachment ----------------------------------------------------
    def attach(self, machine) -> None:
        """Called by ``Machine.__init__`` so reports know the topology."""
        self.grid = (machine.config.grid_x, machine.config.grid_y)

    def core(self, cid: int) -> CoreCounters:
        counters = self.cores.get(cid)
        if counters is None:
            counters = self.cores[cid] = CoreCounters()
        return counters

    # -- per-event hooks (strict/permissive engines) -------------------
    def record_instruction(self, cid: int) -> None:
        self.core(cid).instructions += 1

    def record_receive(self, cid: int) -> None:
        self.core(cid).receives += 1

    def record_message(self, src: int, dst: int, route) -> None:
        """One Send: ``route`` is the list of directed links traversed."""
        self.core(src).sends += 1
        self.links.update(route)
        self.total_hops += len(route)

    def record_cache_op(self, cid: int, op: str, outcome: str,
                        stall: int, writeback_stall: int = 0) -> None:
        core = self.core(cid)
        core.cache_accesses += 1
        core.stall_caused += stall
        hist = self.cache_latency.get((op, outcome))
        if hist is None:
            hist = self.cache_latency[(op, outcome)] = Counter()
        hist[stall] += 1
        if outcome == "hit":
            self.stall_causes["cache-hit"] += stall
        else:
            self.stall_causes["cache-miss"] += stall - writeback_stall
            if writeback_stall:
                self.stall_causes["cache-writeback"] += writeback_stall
        self.stall_causes["total"] += stall

    def record_exception(self, cid: int, stall: int) -> None:
        core = self.core(cid)
        core.exceptions += 1
        core.stall_caused += stall
        self.stall_causes["exception"] += stall
        self.stall_causes["total"] += stall

    # -- per-Vcycle hooks (all engines) --------------------------------
    def end_vcycle(self, index: int, compute: int, stall: int,
                   instructions: int, messages: int,
                   exceptions: int) -> None:
        """One Vcycle's machine-wide counter deltas (from the engine
        dispatcher, so it covers strict, permissive, and fast alike)."""
        self.samples.append(VcycleSample(
            start=index, width=1, compute_cycles=compute,
            stall_cycles=stall, instructions=instructions,
            messages=messages, exceptions=exceptions))
        if len(self.samples) > self.sample_cap:
            merged = [self.samples[i].merge(self.samples[i + 1])
                      if i + 1 < len(self.samples) else self.samples[i]
                      for i in range(0, len(self.samples), 2)]
            self.samples = merged

    def add_vcycle_bulk(self, core_instr: dict[int, int],
                        core_sends: dict[int, int],
                        core_recvs: dict[int, int],
                        link_hops) -> None:
        """The fast engine's statically-known per-Vcycle contribution."""
        for cid, n in core_instr.items():
            if n:
                self.core(cid).instructions += n
        for cid, n in core_sends.items():
            if n:
                self.core(cid).sends += n
        for cid, n in core_recvs.items():
            if n:
                self.core(cid).receives += n
        self.links.update(link_hops)
        self.total_hops += sum(link_hops.values())

    # -- shard merge ----------------------------------------------------
    def absorb(self, other: "Profiler") -> None:
        """Fold another profiler's collections into this one (the shard
        runtime records each Vcycle into a scratch profiler so a
        rollback can discard it, then absorbs the survivor here).
        Samples append in Vcycle order and re-compact at the cap, so the
        result is byte-identical to having recorded directly."""
        for cid, counters in other.cores.items():
            mine = self.core(cid)
            mine.instructions += counters.instructions
            mine.sends += counters.sends
            mine.receives += counters.receives
            mine.cache_accesses += counters.cache_accesses
            mine.exceptions += counters.exceptions
            mine.stall_caused += counters.stall_caused
        self.links.update(other.links)
        self.total_hops += other.total_hops
        for key, hist in other.cache_latency.items():
            mine_hist = self.cache_latency.get(key)
            if mine_hist is None:
                mine_hist = self.cache_latency[key] = Counter()
            mine_hist.update(hist)
        self.stall_causes.update(other.stall_causes)
        for sample in other.samples:
            self.samples.append(sample)
            if len(self.samples) > self.sample_cap:
                merged = [self.samples[i].merge(self.samples[i + 1])
                          if i + 1 < len(self.samples) else self.samples[i]
                          for i in range(0, len(self.samples), 2)]
                self.samples = merged

    # -- checkpoint hooks ----------------------------------------------
    def state_dict(self) -> dict:
        """Everything collected so far as plain JSON data, so a profile
        spanning checkpoint/resume segments equals the single-run
        profile (tuple keys flattened into sorted lists)."""
        return {
            "cores": {str(cid): c.as_dict()
                      for cid, c in self.cores.items()},
            "links": [[kind, x, y, hops] for (kind, x, y), hops
                      in sorted(self.links.items())],
            "samples": [s.as_dict() for s in self.samples],
            "cache_latency": [
                [op, outcome, [[stall, n]
                               for stall, n in sorted(hist.items())]]
                for (op, outcome), hist
                in sorted(self.cache_latency.items())],
            "stall_causes": {k: v for k, v
                             in sorted(self.stall_causes.items())},
            "total_hops": self.total_hops,
        }

    def load_state(self, state: dict) -> None:
        """Inject a :meth:`state_dict` image, replacing anything
        collected so far (``sample_cap`` and ``grid`` stay as
        configured/attached)."""
        self.cores = {}
        for cid_str, data in state["cores"].items():
            counters = CoreCounters()
            counters.load_dict(data)
            self.cores[int(cid_str)] = counters
        self.links = Counter({(str(kind), int(x), int(y)): int(hops)
                              for kind, x, y, hops in state["links"]})
        self.samples = [VcycleSample(**{k: int(v) for k, v in s.items()})
                        for s in state["samples"]]
        self.cache_latency = {
            (str(op), str(outcome)): Counter(
                {int(stall): int(n) for stall, n in hist})
            for op, outcome, hist in state["cache_latency"]}
        self.stall_causes = Counter(
            {str(k): int(v) for k, v in state["stall_causes"].items()})
        self.total_hops = int(state["total_hops"])

    # -- aggregate views -----------------------------------------------
    def totals(self) -> dict[str, int]:
        """Machine-wide sums of the per-core counters (the invariant
        checks compare these against ``PerfCounters``)."""
        out = {"instructions": 0, "sends": 0, "receives": 0,
               "cache_accesses": 0, "exceptions": 0, "stall_caused": 0}
        for core in self.cores.values():
            out["instructions"] += core.instructions
            out["sends"] += core.sends
            out["receives"] += core.receives
            out["cache_accesses"] += core.cache_accesses
            out["exceptions"] += core.exceptions
            out["stall_caused"] += core.stall_caused
        return out

    def switch_utilization(self) -> dict[tuple[int, int], int]:
        """Outgoing hop count per torus switch (E + S links leaving
        (x, y)) - the quantity the report heatmaps."""
        out: dict[tuple[int, int], int] = {}
        for (kind, x, y), hops in self.links.items():
            out[(x, y)] = out.get((x, y), 0) + hops
        return out


def merge_profiler_states(states: list[dict],
                          base: dict | None = None) -> dict:
    """Merge per-shard profiler ``state_dict`` images into the
    single-process view.

    Shards profile disjoint core sets but share the grid clock, so:
    per-core counters union, link/hop counts sum (a message's hops are
    attributed sender-side, once), cache-latency histograms and stall
    causes sum (only the privileged shard has any).  Per-Vcycle samples
    merge positionally - every shard appends exactly one sample per
    Vcycle and compacts at the same cap, so the lists align; per-sample
    ``compute_cycles`` is the grid clock (identical everywhere, take the
    first) while the other deltas are shard-local and sum.

    ``base`` is a profile history to prepend (a restored checkpoint's
    merged profile: shards restart empty after a restore, so the
    coordinator holds the past and splices it in front here).
    """
    if not states:
        raise ValueError("no shard profiler states to merge")
    cores: dict[str, dict] = {}
    for state in states:
        for cid, data in state["cores"].items():
            mine = cores.get(cid)
            if mine is None:
                cores[cid] = dict(data)
            else:
                for k, v in data.items():
                    mine[k] += v
    links: Counter = Counter()
    for state in states:
        links.update({(k, x, y): h for k, x, y, h in state["links"]})
    n_samples = {len(state["samples"]) for state in states}
    if len(n_samples) != 1:
        raise ValueError(
            f"shard sample streams diverged in length: {sorted(n_samples)}")
    samples = []
    for row in zip(*(state["samples"] for state in states)):
        first = row[0]
        for s in row[1:]:
            if (s["start"], s["width"]) != (first["start"], first["width"]):
                raise ValueError(
                    "shard sample streams diverged in compaction: "
                    f"{s} vs {first}")
        samples.append({
            "start": first["start"], "width": first["width"],
            "compute_cycles": first["compute_cycles"],
            "stall_cycles": sum(s["stall_cycles"] for s in row),
            "instructions": sum(s["instructions"] for s in row),
            "messages": sum(s["messages"] for s in row),
            "exceptions": sum(s["exceptions"] for s in row),
        })
    cache_latency: dict[tuple[str, str], Counter] = {}
    for state in states:
        for op, outcome, hist in state["cache_latency"]:
            mine = cache_latency.setdefault((op, outcome), Counter())
            mine.update({int(stall): int(n) for stall, n in hist})
    stall_causes: Counter = Counter()
    for state in states:
        stall_causes.update(state["stall_causes"])
    total_hops = sum(state["total_hops"] for state in states)
    if base is not None:
        for cid, data in base["cores"].items():
            mine = cores.get(cid)
            if mine is None:
                cores[cid] = dict(data)
            else:
                for k, v in data.items():
                    mine[k] += v
        links.update({(k, x, y): h for k, x, y, h in base["links"]})
        samples = list(base["samples"]) + samples
        for op, outcome, hist in base["cache_latency"]:
            mine = cache_latency.setdefault((op, outcome), Counter())
            mine.update({int(stall): int(n) for stall, n in hist})
        stall_causes.update(base["stall_causes"])
        total_hops += base["total_hops"]
    return {
        "cores": cores,
        "links": [[kind, x, y, hops] for (kind, x, y), hops
                  in sorted(links.items())],
        "samples": samples,
        "cache_latency": [
            [op, outcome, [[stall, n] for stall, n in sorted(hist.items())]]
            for (op, outcome), hist in sorted(cache_latency.items())],
        "stall_causes": {k: v for k, v in sorted(stall_causes.items())},
        "total_hops": total_hops,
    }
