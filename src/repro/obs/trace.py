"""Lightweight structured span tracing.

A :class:`Tracer` records a tree of timed spans - compiler phases,
cache lookups, machine run segments - with nanosecond-free overhead
when no tracer is installed: the module-level :func:`span` helper is a
no-op unless :func:`use_tracer` has installed one, so library code can
be instrumented unconditionally.

Spans are plain records (name, category, start, end, depth, parent)
and export losslessly to Chrome ``trace_event`` JSON
(:func:`repro.obs.export.chrome_trace`, loadable in ``about:tracing``
or Perfetto) and to a flat metrics dict.

Usage::

    tracer = Tracer()
    with use_tracer(tracer):
        result = compile_circuit(circuit, options)   # phases self-span
    print(tracer.render_tree())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One finished (or still-open) timed span."""

    name: str
    cat: str
    start: float
    end: float | None = None
    depth: int = 0
    parent: int = -1            # index into Tracer.spans, -1 for roots
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


class Tracer:
    """Records a nesting tree of spans, in start order."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.epoch = clock()
        self.spans: list[Span] = []
        self._stack: list[int] = []     # indices of open spans

    @contextmanager
    def span(self, name: str, cat: str = "", **args):
        """Open a child span of the innermost open span."""
        idx = len(self.spans)
        s = Span(name=name, cat=cat, start=self._clock(),
                 depth=len(self._stack),
                 parent=self._stack[-1] if self._stack else -1,
                 args=dict(args))
        self.spans.append(s)
        self._stack.append(idx)
        try:
            yield s
        finally:
            s.end = self._clock()
            self._stack.pop()

    # ------------------------------------------------------------------
    def children(self, index: int) -> list[int]:
        return [i for i, s in enumerate(self.spans) if s.parent == index]

    def roots(self) -> list[int]:
        return [i for i, s in enumerate(self.spans) if s.parent == -1]

    def total(self, name: str) -> float:
        """Summed duration of every span with this name."""
        return sum(s.duration for s in self.spans if s.name == name)

    def render_tree(self) -> str:
        """Indented text rendering, for terminals and reports."""
        lines = []
        for s in self.spans:
            extra = ""
            if s.args:
                extra = "  " + " ".join(f"{k}={v}" for k, v in
                                        sorted(s.args.items()))
            lines.append(f"{'  ' * s.depth}{s.name:<{32 - 2 * s.depth}s} "
                         f"{s.duration * 1e3:9.2f} ms{extra}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The installed tracer.  Library code calls the module-level span();
# when nothing is installed it costs one global load and a None check.
# ---------------------------------------------------------------------------
_current: Tracer | None = None


def current_tracer() -> Tracer | None:
    return _current


@contextmanager
def use_tracer(tracer: Tracer):
    """Install ``tracer`` as the ambient tracer for the duration."""
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous


@contextmanager
def span(name: str, cat: str = "", **args):
    """Span against the ambient tracer; no-op when none is installed."""
    tracer = _current
    if tracer is None:
        yield None
        return
    with tracer.span(name, cat, **args) as s:
        yield s
