"""Bottleneck reporting: turn a profiled run into answers.

:func:`profile_circuit` is the one-call harness behind ``repro
profile``: compile under a span tracer, run under a profiler, and hand
back a :class:`ProfiledRun`.  :func:`build_profile` condenses that into
the schema'd JSON export (``docs/profile.schema.json``), and
:func:`render_report` renders the human bottleneck report:

* **VCPL critical-core attribution** - which cores' schedules set the
  Vcycle length (the paper's Fig. 7 question, per design instead of in
  aggregate);
* **stall-cause breakdown** - cache-hit / cache-miss / writeback /
  exception global-stall cycles (Fig. 8's categories, measured);
* **torus link-utilization heatmap** - message hops per switch, so NoC
  hot spots are visible in a terminal (`repro.textplot.heatmap`).

Zero-cycle and unfinished runs render explicitly ("did not finish",
rate 0.0) rather than dividing by zero - enforced by
``tests/test_obs_invariants.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..textplot import bar_chart, heatmap
from .export import chrome_trace, metrics_dict, prometheus_textfile
from .profiler import Profiler
from .trace import Tracer, use_tracer

#: Version stamp of the profile export; bump on breaking shape changes
#: (docs/profile.schema.json pins it).
PROFILE_SCHEMA_VERSION = 1


@dataclass
class ProfiledRun:
    """Everything one observed compile-and-run produced."""

    name: str
    engine: str
    compile_result: object         # compiler.driver.CompileResult
    machine: object                # machine.grid.Machine
    result: object                 # machine.grid.MachineResult
    profiler: Profiler
    tracer: Tracer
    frequency_mhz: float

    @property
    def profile(self) -> dict:
        return build_profile(self)

    @property
    def trace_json(self) -> dict:
        return chrome_trace(self.tracer, process_name=f"repro:{self.name}")

    @property
    def metrics(self) -> dict:
        return metrics_dict(self.profile)

    @property
    def prometheus(self) -> str:
        return prometheus_textfile(self.profile)

    def render(self) -> str:
        return render_report(self.profile)


def profile_circuit(circuit, name: str | None = None, engine: str = "fast",
                    options=None, max_vcycles: int = 1_000_000,
                    config=None, profiler: Profiler | None = None,
                    tracer: Tracer | None = None) -> ProfiledRun:
    """Compile ``circuit`` with compile-phase span tracing, run it on
    the machine with a profiler attached, and return the observed run."""
    from ..compiler.driver import CompilerOptions, compile_circuit
    from ..machine.config import MachineConfig
    from ..machine.grid import Machine

    options = options or CompilerOptions()
    profiler = profiler or Profiler()
    tracer = tracer or Tracer()
    with use_tracer(tracer):
        compile_result = compile_circuit(circuit, options)
        program = compile_result.program
        config = config or options.config or MachineConfig(
            grid_x=program.grid[0], grid_y=program.grid[1])
        machine = Machine(program, config, engine=engine,
                          profiler=profiler)
        result = machine.run(max_vcycles)
    return ProfiledRun(
        name=name or circuit.name, engine=engine,
        compile_result=compile_result, machine=machine, result=result,
        profiler=profiler, tracer=tracer,
        frequency_mhz=config.frequency_mhz)


# ---------------------------------------------------------------------------
# The JSON profile export.
# ---------------------------------------------------------------------------

def _core_table(run: ProfiledRun) -> list[dict]:
    machine = run.machine
    config = machine.config
    rows = []
    for cid, core in sorted(machine.cores.items()):
        x, y = config.coord(cid)
        counters = run.profiler.cores.get(cid)
        schedule_length = (len(core.binary.body)
                          + core.binary.epilogue_length)
        row = {
            "core": cid, "x": x, "y": y,
            "schedule_length": schedule_length,
            "body": len(core.binary.body),
            "epilogue": core.binary.epilogue_length,
            "instructions": 0, "sends": 0, "receives": 0,
            "cache_accesses": 0, "exceptions": 0, "stall_caused": 0,
        }
        if counters is not None:
            row.update(counters.as_dict())
        rows.append(row)
    return rows


def build_profile(run: ProfiledRun) -> dict:
    """The schema'd JSON export of one profiled run."""
    machine = run.machine
    result = run.result
    report = run.compile_result.report
    config = machine.config
    counters = result.counters
    table = _core_table(run)
    critical = max(table, key=lambda r: r["schedule_length"],
                   default=None)
    links = {f"{kind}:{x}:{y}": hops
             for (kind, x, y), hops in sorted(run.profiler.links.items())}
    busiest = sorted(links.items(), key=lambda kv: -kv[1])[:8]
    cache_stats = result.cache
    return {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "design": run.name,
        "engine": run.engine,
        "grid": {"x": config.grid_x, "y": config.grid_y},
        "result": {
            "vcycles": result.vcycles,
            "finished": result.finished,
            "status": result.status(),
            "compute_cycles": counters.compute_cycles,
            "stall_cycles": counters.stall_cycles,
            "instructions": counters.instructions,
            "messages": counters.messages,
            "exceptions": counters.exceptions,
            "displays": len(result.displays),
            "simulation_rate_khz": round(
                result.simulation_rate_khz(run.frequency_mhz), 3),
            "frequency_mhz": run.frequency_mhz,
        },
        "vcpl": {
            "vcpl": report.vcpl,
            "critical_core": critical["core"] if critical else -1,
            "critical_schedule_length":
                critical["schedule_length"] if critical else 0,
        },
        "cores": {"used": len(table), "table": table},
        "stalls": {
            "total": counters.stall_cycles,
            "causes": {
                cause: cycles for cause, cycles in
                sorted(run.profiler.stall_causes.items())
                if cause != "total"
            },
        },
        "noc": {
            "total_hops": run.profiler.total_hops,
            "links": links,
            "busiest": [{"link": link, "hops": hops}
                        for link, hops in busiest],
        },
        "cache": {
            "accesses": cache_stats.accesses,
            "hits": cache_stats.hits,
            "misses": cache_stats.misses,
            "writebacks": cache_stats.writebacks,
            "hit_rate": round(cache_stats.hit_rate, 4),
            "occupancy": machine.cache.occupancy(),
            "latency_histograms": {
                f"{op}:{outcome}": {str(stall): count
                                    for stall, count in sorted(hist.items())}
                for (op, outcome), hist in
                sorted(run.profiler.cache_latency.items())
            },
        },
        "vcycle_samples": [s.as_dict() for s in run.profiler.samples],
        "compile": {
            "phases_seconds": report.times.as_dict(),
            "cache": report.cache,
            "spans": [{"name": s.name,
                       "duration_ms": round(s.duration * 1e3, 3),
                       "depth": s.depth}
                      for s in run.tracer.spans],
        },
    }


# ---------------------------------------------------------------------------
# The human report.
# ---------------------------------------------------------------------------

def _switch_grid(profile: dict) -> list[list[int]]:
    gx, gy = profile["grid"]["x"], profile["grid"]["y"]
    grid = [[0] * gx for _ in range(gy)]
    for link, hops in profile["noc"]["links"].items():
        _kind, x, y = link.split(":")
        grid[int(y)][int(x)] += hops
    return grid


def render_report(profile: dict) -> str:
    """The terminal bottleneck report for one profiled run."""
    result = profile["result"]
    out = []
    out.append(f"=== repro profile: {profile['design']} "
               f"(engine={profile['engine']}, "
               f"grid {profile['grid']['x']}x{profile['grid']['y']}) ===")
    out.append(f"status             : {result['status']}")
    out.append(f"Vcycles            : {result['vcycles']}")
    total = result["compute_cycles"] + result["stall_cycles"]
    out.append(f"machine cycles     : {total} "
               f"({result['compute_cycles']} compute, "
               f"{result['stall_cycles']} stalled)")
    rate = result["simulation_rate_khz"]
    if result["vcycles"] == 0 or total == 0:
        out.append("simulation rate    : n/a (no machine cycles executed)")
    else:
        out.append(f"simulation rate    : {rate:.1f} kHz "
                   f"@ {result['frequency_mhz']:g} MHz")

    # -- VCPL critical-core attribution ------------------------------
    vcpl = profile["vcpl"]
    out.append("")
    out.append(f"-- VCPL attribution (VCPL = {vcpl['vcpl']}) --")
    table = profile["cores"]["table"]
    ranked = sorted(table, key=lambda r: -r["schedule_length"])[:6]
    bars = {}
    for row in ranked:
        label = f"core {row['core']} ({row['x']},{row['y']})"
        bars[label] = row["schedule_length"]
    out.append(bar_chart(bars, title="top cores by schedule length "
                                     "(body + receive epilogue)",
                         unit=" cyc"))
    if ranked:
        crit = ranked[0]
        slack = vcpl["vcpl"] - crit["schedule_length"]
        out.append(f"critical core      : {crit['core']} at "
                   f"({crit['x']},{crit['y']}), schedule "
                   f"{crit['schedule_length']} of VCPL {vcpl['vcpl']} "
                   f"({slack} cycles of writeback/latency slack)")

    # -- stall breakdown ---------------------------------------------
    out.append("")
    out.append("-- global stall breakdown --")
    causes = profile["stalls"]["causes"]
    if causes:
        out.append(bar_chart(causes, title="stall cycles by cause",
                             unit=" cyc"))
        if total:
            out.append(f"stalled fraction   : "
                       f"{result['stall_cycles'] / total:.1%} of "
                       f"machine cycles")
    else:
        out.append("no global stalls recorded")

    # -- NoC utilization ---------------------------------------------
    out.append("")
    out.append("-- NoC link utilization --")
    noc = profile["noc"]
    if noc["total_hops"]:
        out.append(heatmap(_switch_grid(profile),
                           title=f"hops per switch "
                                 f"(total {noc['total_hops']} hops, "
                                 f"{result['messages']} messages)",
                           unit=" hops"))
        busiest = ", ".join(f"{b['link']}={b['hops']}"
                            for b in noc["busiest"][:4])
        out.append(f"busiest links      : {busiest}")
    else:
        out.append("no messages crossed the torus")

    # -- cache --------------------------------------------------------
    cache = profile["cache"]
    out.append("")
    out.append("-- privileged-core cache --")
    if cache["accesses"]:
        out.append(f"accesses           : {cache['accesses']} "
                   f"({cache['hit_rate']:.1%} hit rate, "
                   f"{cache['misses']} misses, "
                   f"{cache['writebacks']} writebacks)")
        for key, hist in cache["latency_histograms"].items():
            points = ", ".join(f"{stall}cyc x{count}"
                               for stall, count in hist.items())
            out.append(f"  {key:<12s}: {points}")
    else:
        out.append("no global memory traffic")

    # -- compile phases ----------------------------------------------
    phases = {k: v for k, v in
              profile["compile"]["phases_seconds"].items()
              if k != "total" and v > 0}
    if phases:
        out.append("")
        out.append(bar_chart({k: round(v, 4) for k, v in phases.items()},
                             title="-- compile phases (seconds) --",
                             unit=" s"))
    return "\n".join(out)
