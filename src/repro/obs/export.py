"""Export formats for the observability layer.

Three consumers, three formats:

* :func:`chrome_trace` - a ``trace_event`` JSON object loadable in
  ``chrome://tracing`` / Perfetto, built from a :class:`~repro.obs.
  trace.Tracer`'s span tree (complete ``"ph": "X"`` events);
* :func:`metrics_dict` - the profile export flattened to dotted-key
  numeric leaves, for programmatic diffing and JSON lines;
* :func:`prometheus_textfile` - the same metrics in Prometheus textfile
  exposition format (``repro_*`` families, per-core/per-link labels),
  suitable for the node-exporter textfile collector.

:func:`validate_profile` is a dependency-free validator for the subset
of JSON Schema the checked-in ``docs/profile.schema.json`` uses
(``type``/``required``/``properties``/``items``/``enum``/``minimum``),
so CI can gate the export without installing ``jsonschema``.
"""

from __future__ import annotations

import re
from typing import Any

from .trace import Tracer

# ---------------------------------------------------------------------------
# Chrome trace_event.
# ---------------------------------------------------------------------------


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict:
    """The tracer's spans as a Chrome ``trace_event`` JSON object."""
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": process_name},
    }]
    for s in tracer.spans:
        events.append({
            "name": s.name,
            "cat": s.cat or "repro",
            "ph": "X",
            "ts": round((s.start - tracer.epoch) * 1e6, 3),
            "dur": round(s.duration * 1e6, 3),
            "pid": 1,
            "tid": 1,
            "args": {k: _jsonable(v) for k, v in s.args.items()},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


# ---------------------------------------------------------------------------
# Flat metrics.
# ---------------------------------------------------------------------------


def metrics_dict(profile: dict) -> dict[str, float]:
    """Every numeric leaf of the profile export, dotted-key flattened
    (``result.vcycles``, ``cores.5.instructions``, ``noc.links.E:0:1``)."""
    out: dict[str, float] = {}

    def walk(node: Any, prefix: str) -> None:
        if isinstance(node, bool):
            out[prefix] = int(node)
        elif isinstance(node, (int, float)):
            out[prefix] = node
        elif isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{prefix}.{key}" if prefix else str(key))
        elif isinstance(node, list):
            for i, value in enumerate(node):
                # Core rows are keyed by their core id, not list position.
                key = value.get("core") if isinstance(value, dict) else None
                walk(value, f"{prefix}.{key if key is not None else i}")

    walk(profile, "")
    return out


_PROM_NAME = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return _PROM_NAME.sub("_", name)


def prometheus_textfile(profile: dict) -> str:
    """Prometheus textfile exposition of the profile export."""
    design = profile.get("design", "unknown")
    engine = profile.get("engine", "unknown")
    base = f'design="{design}",engine="{engine}"'
    lines: list[str] = []

    def gauge(name: str, value, labels: str = "") -> None:
        if value is None:
            return
        full = f"repro_{_prom_name(name)}"
        label_str = f"{{{base}{',' + labels if labels else ''}}}"
        lines.append(f"{full}{label_str} {value}")

    def header(name: str, help_text: str) -> None:
        full = f"repro_{_prom_name(name)}"
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} gauge")

    result = profile.get("result", {})
    for key in ("vcycles", "compute_cycles", "stall_cycles",
                "instructions", "messages", "exceptions"):
        header(key, f"machine-wide {key} over the profiled run")
        gauge(key, result.get(key))
    header("finished", "1 when the design reached $finish")
    gauge("finished", int(bool(result.get("finished"))))
    header("simulation_rate_khz", "achieved RTL simulation rate")
    gauge("simulation_rate_khz", result.get("simulation_rate_khz"))

    header("stall_cycles_by_cause", "global stall cycles by cause")
    for cause, cycles in sorted(profile.get("stalls", {})
                                .get("causes", {}).items()):
        gauge("stall_cycles_by_cause", cycles, f'cause="{cause}"')

    header("core_counter", "per-core profiling counters")
    for row in profile.get("cores", {}).get("table", []):
        core = row.get("core")
        for key in ("instructions", "sends", "receives",
                    "cache_accesses", "exceptions", "stall_caused",
                    "schedule_length"):
            if key in row:
                gauge("core_counter", row[key],
                      f'core="{core}",counter="{key}"')

    header("link_hops", "message hops per directed torus link")
    for link, hops in sorted(profile.get("noc", {})
                             .get("links", {}).items()):
        gauge("link_hops", hops, f'link="{link}"')

    cache = profile.get("cache", {})
    header("cache_accesses", "privileged-core cache accesses")
    gauge("cache_accesses", cache.get("accesses"))
    header("cache_hit_rate", "privileged-core cache hit rate")
    gauge("cache_hit_rate", cache.get("hit_rate"))

    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Service metrics (repro serve).
# ---------------------------------------------------------------------------


def serve_prometheus_textfile(metrics: dict) -> str:
    """Prometheus textfile exposition of a
    :meth:`repro.serve.SimulationServer.metrics_snapshot` dict
    (``repro_serve_*`` families: job counters by event and by state,
    per-tenant counters, compile/dedupe counters, latency quantiles)."""
    lines: list[str] = []

    def header(name: str, help_text: str,
               metric_type: str = "gauge") -> None:
        full = f"repro_serve_{_prom_name(name)}"
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} {metric_type}")

    def sample(name: str, value, labels: str = "") -> None:
        if value is None:
            return
        full = f"repro_serve_{_prom_name(name)}"
        label_str = f"{{{labels}}}" if labels else ""
        lines.append(f"{full}{label_str} {value}")

    sample_info = f'mode="{metrics.get("mode", "unknown")}"'
    header("info", "server identity (value is schema version)")
    sample("info", metrics.get("schema_version", 0), sample_info)
    header("workers", "configured worker slots")
    sample("workers", metrics.get("workers"))
    header("uptime_seconds", "seconds since server start")
    sample("uptime_seconds", metrics.get("uptime_s"))

    jobs = metrics.get("jobs", {})
    header("jobs_total", "job lifecycle events since start", "counter")
    for event in ("submitted", "completed", "failed", "preempted",
                  "retried"):
        sample("jobs_total", jobs.get(event), f'event="{event}"')
    header("jobs", "jobs currently in each state")
    for state, count in sorted(jobs.get("states", {}).items()):
        sample("jobs", count, f'state="{state}"')

    compile_stats = metrics.get("compile", {})
    header("compile_total", "compile-cache outcomes", "counter")
    for kind in ("compiles", "cache_hits", "inflight_shared"):
        sample("compile_total", compile_stats.get(kind), f'kind="{kind}"')
    header("compile_hit_rate", "fraction of submissions served without "
                               "a fresh compile")
    sample("compile_hit_rate", compile_stats.get("hit_rate"))

    latency = metrics.get("latency", {})
    header("latency_count", "terminal jobs with a measured latency",
           "counter")
    sample("latency_count", latency.get("count"))
    header("latency_seconds", "submit-to-terminal latency quantiles")
    for quantile, key in (("0.5", "p50_s"), ("0.99", "p99_s")):
        sample("latency_seconds", latency.get(key),
               f'quantile="{quantile}"')
    header("latency_mean_seconds", "mean submit-to-terminal latency")
    sample("latency_mean_seconds", latency.get("mean_s"))

    header("tenant_jobs_total", "per-tenant job lifecycle events",
           "counter")
    for tenant, counters in sorted(metrics.get("tenants", {}).items()):
        for event, count in sorted(counters.items()):
            sample("tenant_jobs_total", count,
                   f'tenant="{tenant}",event="{event}"')

    return "\n".join(lines) + "\n"


_PROM_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?\d+))?$")
_PROM_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def validate_prometheus_textfile(text: str) -> list[str]:
    """Errors (empty when valid) for Prometheus textfile exposition
    format: every non-comment line must parse as
    ``name{label="value",...} value [timestamp]`` with a float-parsable
    value, ``# TYPE`` lines must name a known type, and every sample
    must be preceded by HELP/TYPE headers for its family.  This is the
    schema gate the CI ``serve-smoke`` job runs over the served
    textfile — dependency-free, like :func:`validate_profile`."""
    errors: list[str] = []
    declared: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3:
                    errors.append(f"line {lineno}: # {parts[1]} needs a "
                                  f"metric name")
                    continue
                if parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in _PROM_TYPES:
                        errors.append(
                            f"line {lineno}: # TYPE {parts[2]} has "
                            f"invalid type "
                            f"{parts[3] if len(parts) > 3 else '<none>'!r}")
                    declared.add(parts[2])
            continue
        match = _PROM_METRIC_LINE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparsable sample {line!r}")
            continue
        if match.group("name") not in declared:
            errors.append(f"line {lineno}: sample for undeclared family "
                          f"{match.group('name')!r} (no # TYPE header)")
        labels = match.group("labels")
        if labels:
            for pair in _split_labels(labels):
                if not _PROM_LABEL.match(pair):
                    errors.append(f"line {lineno}: bad label {pair!r}")
        try:
            float(match.group("value"))
        except ValueError:
            if match.group("value") not in ("NaN", "+Inf", "-Inf"):
                errors.append(f"line {lineno}: non-numeric value "
                              f"{match.group('value')!r}")
    return errors


def _split_labels(labels: str) -> list[str]:
    """Split ``a="x",b="y,z"`` on commas outside quoted values."""
    out, depth, start = [], False, 0
    for i, ch in enumerate(labels):
        if ch == '"' and (i == 0 or labels[i - 1] != "\\"):
            depth = not depth
        elif ch == "," and not depth:
            out.append(labels[start:i])
            start = i + 1
    tail = labels[start:]
    if tail:
        out.append(tail)
    return out


# ---------------------------------------------------------------------------
# Schema validation (dependency-free subset of JSON Schema).
# ---------------------------------------------------------------------------

_TYPES = {
    "object": dict, "array": list, "string": str, "boolean": bool,
    "null": type(None),
}


def _type_ok(value, expected: str) -> bool:
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    python_type = _TYPES.get(expected)
    if python_type is bool:
        return isinstance(value, bool)
    return python_type is not None and isinstance(value, python_type) \
        and not (python_type is dict and isinstance(value, bool))


def validate_profile(instance, schema: dict, path: str = "$") -> list[str]:
    """Errors (empty when valid) for the schema subset we check in:
    ``type`` / ``required`` / ``properties`` / ``items`` / ``enum`` /
    ``minimum`` / ``additionalProperties`` (schema form)."""
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(instance, t) for t in allowed):
            errors.append(f"{path}: expected type {expected}, got "
                          f"{type(instance).__name__}")
            return errors
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) \
            and instance < schema["minimum"]:
        errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in instance:
                errors.extend(validate_profile(instance[key], sub,
                                               f"{path}.{key}"))
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, value in instance.items():
                if key not in properties:
                    errors.extend(validate_profile(value, extra,
                                                   f"{path}.{key}"))
    if isinstance(instance, list) and "items" in schema:
        for i, value in enumerate(instance):
            errors.extend(validate_profile(value, schema["items"],
                                           f"{path}[{i}]"))
    return errors
