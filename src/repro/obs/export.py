"""Export formats for the observability layer.

Three consumers, three formats:

* :func:`chrome_trace` - a ``trace_event`` JSON object loadable in
  ``chrome://tracing`` / Perfetto, built from a :class:`~repro.obs.
  trace.Tracer`'s span tree (complete ``"ph": "X"`` events);
* :func:`metrics_dict` - the profile export flattened to dotted-key
  numeric leaves, for programmatic diffing and JSON lines;
* :func:`prometheus_textfile` - the same metrics in Prometheus textfile
  exposition format (``repro_*`` families, per-core/per-link labels),
  suitable for the node-exporter textfile collector.

:func:`validate_profile` is a dependency-free validator for the subset
of JSON Schema the checked-in ``docs/profile.schema.json`` uses
(``type``/``required``/``properties``/``items``/``enum``/``minimum``),
so CI can gate the export without installing ``jsonschema``.
"""

from __future__ import annotations

import re
from typing import Any

from .trace import Tracer

# ---------------------------------------------------------------------------
# Chrome trace_event.
# ---------------------------------------------------------------------------


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict:
    """The tracer's spans as a Chrome ``trace_event`` JSON object."""
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": process_name},
    }]
    for s in tracer.spans:
        events.append({
            "name": s.name,
            "cat": s.cat or "repro",
            "ph": "X",
            "ts": round((s.start - tracer.epoch) * 1e6, 3),
            "dur": round(s.duration * 1e6, 3),
            "pid": 1,
            "tid": 1,
            "args": {k: _jsonable(v) for k, v in s.args.items()},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


# ---------------------------------------------------------------------------
# Flat metrics.
# ---------------------------------------------------------------------------


def metrics_dict(profile: dict) -> dict[str, float]:
    """Every numeric leaf of the profile export, dotted-key flattened
    (``result.vcycles``, ``cores.5.instructions``, ``noc.links.E:0:1``)."""
    out: dict[str, float] = {}

    def walk(node: Any, prefix: str) -> None:
        if isinstance(node, bool):
            out[prefix] = int(node)
        elif isinstance(node, (int, float)):
            out[prefix] = node
        elif isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{prefix}.{key}" if prefix else str(key))
        elif isinstance(node, list):
            for i, value in enumerate(node):
                # Core rows are keyed by their core id, not list position.
                key = value.get("core") if isinstance(value, dict) else None
                walk(value, f"{prefix}.{key if key is not None else i}")

    walk(profile, "")
    return out


_PROM_NAME = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return _PROM_NAME.sub("_", name)


def prometheus_textfile(profile: dict) -> str:
    """Prometheus textfile exposition of the profile export."""
    design = profile.get("design", "unknown")
    engine = profile.get("engine", "unknown")
    base = f'design="{design}",engine="{engine}"'
    lines: list[str] = []

    def gauge(name: str, value, labels: str = "") -> None:
        if value is None:
            return
        full = f"repro_{_prom_name(name)}"
        label_str = f"{{{base}{',' + labels if labels else ''}}}"
        lines.append(f"{full}{label_str} {value}")

    def header(name: str, help_text: str) -> None:
        full = f"repro_{_prom_name(name)}"
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} gauge")

    result = profile.get("result", {})
    for key in ("vcycles", "compute_cycles", "stall_cycles",
                "instructions", "messages", "exceptions"):
        header(key, f"machine-wide {key} over the profiled run")
        gauge(key, result.get(key))
    header("finished", "1 when the design reached $finish")
    gauge("finished", int(bool(result.get("finished"))))
    header("simulation_rate_khz", "achieved RTL simulation rate")
    gauge("simulation_rate_khz", result.get("simulation_rate_khz"))

    header("stall_cycles_by_cause", "global stall cycles by cause")
    for cause, cycles in sorted(profile.get("stalls", {})
                                .get("causes", {}).items()):
        gauge("stall_cycles_by_cause", cycles, f'cause="{cause}"')

    header("core_counter", "per-core profiling counters")
    for row in profile.get("cores", {}).get("table", []):
        core = row.get("core")
        for key in ("instructions", "sends", "receives",
                    "cache_accesses", "exceptions", "stall_caused",
                    "schedule_length"):
            if key in row:
                gauge("core_counter", row[key],
                      f'core="{core}",counter="{key}"')

    header("link_hops", "message hops per directed torus link")
    for link, hops in sorted(profile.get("noc", {})
                             .get("links", {}).items()):
        gauge("link_hops", hops, f'link="{link}"')

    cache = profile.get("cache", {})
    header("cache_accesses", "privileged-core cache accesses")
    gauge("cache_accesses", cache.get("accesses"))
    header("cache_hit_rate", "privileged-core cache hit rate")
    gauge("cache_hit_rate", cache.get("hit_rate"))

    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Schema validation (dependency-free subset of JSON Schema).
# ---------------------------------------------------------------------------

_TYPES = {
    "object": dict, "array": list, "string": str, "boolean": bool,
    "null": type(None),
}


def _type_ok(value, expected: str) -> bool:
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    python_type = _TYPES.get(expected)
    if python_type is bool:
        return isinstance(value, bool)
    return python_type is not None and isinstance(value, python_type) \
        and not (python_type is dict and isinstance(value, bool))


def validate_profile(instance, schema: dict, path: str = "$") -> list[str]:
    """Errors (empty when valid) for the schema subset we check in:
    ``type`` / ``required`` / ``properties`` / ``items`` / ``enum`` /
    ``minimum`` / ``additionalProperties`` (schema form)."""
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(instance, t) for t in allowed):
            errors.append(f"{path}: expected type {expected}, got "
                          f"{type(instance).__name__}")
            return errors
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) \
            and instance < schema["minimum"]:
        errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in instance:
                errors.extend(validate_profile(instance[key], sub,
                                               f"{path}.{key}"))
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, value in instance.items():
                if key not in properties:
                    errors.extend(validate_profile(value, extra,
                                                   f"{path}.{key}"))
    if isinstance(instance, list) and "items" in schema:
        for i, value in enumerate(instance):
            errors.extend(validate_profile(value, schema["items"],
                                           f"{path}[{i}]"))
    return errors
