"""Observability: profiling counters, span tracing, and reporting.

The paper's evaluation (SS7.7, Figs. 7-10) argues from *measured*
architectural quantities - VCPL, stall breakdowns, Send counts, cache
hit rates.  This package turns the machine model's single machine-wide
counter aggregate into an attribution story: which core, which link,
which cause.

Three layers, all opt-in with a zero-cost disabled path:

* :class:`Profiler` (``profiler.py``) - per-core / per-Vcycle /
  per-link / per-cache-op counters, attached via
  ``Machine(..., profiler=...)``;
* :class:`Tracer` (``trace.py``) - structured spans around compiler
  phases and machine run segments, installed ambiently with
  :func:`use_tracer`;
* exports and reports (``export.py``, ``report.py``) - Chrome
  ``trace_event`` JSON, flat metrics, Prometheus textfiles, and the
  ``repro profile`` terminal bottleneck report.

The load-bearing guarantee: observation never perturbs.  A profiled run
is bit-identical to an unprofiled one on every engine
(``tests/test_obs_perturbation.py``), and the zero-observer fast-engine
path stays within the overhead budget of ``benchmarks/bench_obs.py``.
"""

from .export import (
    chrome_trace,
    metrics_dict,
    prometheus_textfile,
    serve_prometheus_textfile,
    validate_profile,
    validate_prometheus_textfile,
)
from .profiler import CoreCounters, Profiler, VcycleSample
from .report import (
    PROFILE_SCHEMA_VERSION,
    ProfiledRun,
    build_profile,
    profile_circuit,
    render_report,
)
from .trace import Span, Tracer, current_tracer, span, use_tracer

__all__ = [
    "CoreCounters", "PROFILE_SCHEMA_VERSION", "ProfiledRun", "Profiler",
    "Span", "Tracer", "VcycleSample", "build_profile", "chrome_trace",
    "current_tracer", "metrics_dict", "profile_circuit",
    "prometheus_textfile", "render_report", "serve_prometheus_textfile",
    "span", "use_tracer", "validate_profile",
    "validate_prometheus_textfile",
]
