"""Program containers: compiler-internal :class:`Process` collections and
the final placed-and-scheduled :class:`MachineProgram` binary.

The exception side-band (``$display``/``$finish``/assertions) is encoded as
an :class:`ExceptionTable`: each ``Expect`` instruction carries an ``eid``
that the host looks up to decide how to service the stall (paper SSA.3.2).
Display arguments travel through a *mailbox* region of global DRAM written
with predicated ``GST`` instructions before the ``Expect`` fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from . import instructions as isa
from .instructions import Instruction, Reg


@dataclass
class DisplayAction:
    """Host prints ``fmt`` using words read from mailbox addresses.

    ``arg_addrs`` holds, per format argument, the global word addresses of
    its 16-bit limbs, least significant first.
    """

    fmt: str
    arg_addrs: tuple[tuple[int, ...], ...] = ()


@dataclass
class FinishAction:
    """Host terminates the simulation (``$finish``)."""


@dataclass
class AssertAction:
    """Host aborts with an assertion failure message."""

    message: str


ExceptionAction = DisplayAction | FinishAction | AssertAction


class SimulationFailure(AssertionError):
    """An assertion ``Expect`` fired during execution."""


@dataclass
class ExceptionTable:
    """Maps exception ids to host actions."""

    actions: dict[int, ExceptionAction] = field(default_factory=dict)
    _next_eid: int = 1  # eid 0 is reserved: "no exception"

    def register(self, action: ExceptionAction) -> int:
        eid = self._next_eid
        self._next_eid += 1
        self.actions[eid] = action
        return eid

    def service(self, eid: int, read_global: Callable[[int], int],
                ) -> tuple[str, str | None]:
        """Service an exception; returns (verdict, text).

        verdict is ``"resume"`` (display printed), ``"finish"``, or raises
        :class:`SimulationFailure` for assertion actions.
        """
        action = self.actions.get(eid)
        if action is None:
            raise SimulationFailure(f"unknown exception id {eid}")
        if isinstance(action, FinishAction):
            return "finish", None
        if isinstance(action, AssertAction):
            raise SimulationFailure(action.message)
        values = []
        for limbs in action.arg_addrs:
            value = 0
            for i, addr in enumerate(limbs):
                value |= (read_global(addr) & 0xFFFF) << (16 * i)
            values.append(value)
        from ..netlist.interp import format_display
        return "resume", format_display(action.fmt, values)


@dataclass
class Process:
    """A pre-placement program partition (paper SS6.1).

    ``body`` uses virtual registers; before scheduling it is an *ordered*
    but hazard-oblivious instruction list.  ``reg_init`` holds boot-time
    register contents (constants and state initial values).  ``scratch``
    maps a scratchpad base address per owned memory; ``scratch_init`` is
    the boot image of the local scratchpad.
    """

    pid: int
    body: list[Instruction] = field(default_factory=list)
    reg_init: dict[Reg, int] = field(default_factory=dict)
    cfu: list[int] = field(default_factory=list)
    scratch_init: dict[int, int] = field(default_factory=dict)
    privileged: bool = False

    def instruction_count(self) -> int:
        """Execution-time estimate used by the merge heuristics: every body
        instruction including Sends (paper SS6.1)."""
        return len(self.body)

    def send_count(self) -> int:
        return sum(1 for i in self.body if isinstance(i, isa.Send))

    def sends(self) -> list[isa.Send]:
        return [i for i in self.body if isinstance(i, isa.Send)]

    def has_privileged(self) -> bool:
        return any(isa.is_privileged(i) for i in self.body)


@dataclass
class ProgramImage:
    """A set of processes plus shared metadata - the compiler's unit of
    work between partitioning and placement."""

    name: str
    processes: dict[int, Process]
    exceptions: ExceptionTable
    global_init: dict[int, int] = field(default_factory=dict)
    #: virtual registers of each process written by other processes' Sends
    #: (receive bindings): pid -> {virtual reg}
    receive_regs: dict[int, set[Reg]] = field(default_factory=dict)

    def total_instructions(self) -> int:
        return sum(p.instruction_count() for p in self.processes.values())


@dataclass
class CoreBinary:
    """Final per-core binary (paper SSA.3.1 stream contents)."""

    body: list[Instruction]
    epilogue_length: int
    sleep_length: int
    reg_init: dict[int, int] = field(default_factory=dict)
    cfu: list[int] = field(default_factory=list)
    scratch_init: dict[int, int] = field(default_factory=dict)

    @property
    def total_length(self) -> int:
        """Instruction-memory footprint (body + receive slots)."""
        return len(self.body) + self.epilogue_length


@dataclass
class MachineProgram:
    """A placed, scheduled, register-allocated Manticore binary."""

    name: str
    grid: tuple[int, int]
    cores: dict[int, CoreBinary]           # linear core id -> binary
    vcpl: int                              # machine cycles per Vcycle
    exceptions: ExceptionTable
    global_init: dict[int, int] = field(default_factory=dict)
    privileged_core: int = 0

    def core_coord(self, core_id: int) -> tuple[int, int]:
        return core_id % self.grid[0], core_id // self.grid[0]

    def core_id(self, x: int, y: int) -> int:
        return y * self.grid[0] + x

    def used_cores(self) -> int:
        return len(self.cores)

    def max_instruction_footprint(self) -> int:
        return max((c.total_length for c in self.cores.values()), default=0)
