"""Single-instruction execution semantics, shared by the functional lower
interpreter (:mod:`repro.isa.interp`) and the cycle-accurate machine model
(:mod:`repro.machine.grid`) so behaviour can never diverge between them.

Two execution styles are offered over the same semantics:

* :func:`execute` - the reference path: dispatch on the instruction type
  every time it runs.  Simple, obviously correct, used by the strict
  machine engine and as the fallback for compiler pseudo-instructions.
* :func:`compile_body` - the specialized path: resolve the dispatch,
  operands, and ALU operator *once* per instruction, returning closures
  that only touch the :class:`ExecContext`.  Both interpreters use it on
  their hot loops; :mod:`repro.machine.fastpath` goes one step further
  and binds register *storage* directly.
"""

from __future__ import annotations

from typing import Callable, Protocol

from . import instructions as isa
from .instructions import WORD_MASK, WORD_WIDTH


class ExecContext(Protocol):
    """State and services an instruction needs; both interpreters and the
    machine core implement this protocol."""

    carry: int
    predicate: int

    def read_reg(self, reg: isa.Reg) -> int: ...

    def write_reg(self, reg: isa.Reg, value: int) -> None: ...

    def read_local(self, addr: int) -> int: ...

    def write_local(self, addr: int, value: int) -> None: ...

    def read_global(self, addr: int) -> int: ...

    def write_global(self, addr: int, value: int) -> None: ...

    def send(self, instr: isa.Send, value: int) -> None: ...

    def raise_exception(self, eid: int) -> None: ...

    def custom_function(self, index: int) -> int:
        """256-bit CFU configuration for ``index``."""
        ...


def to_signed16(value: int) -> int:
    value &= WORD_MASK
    return value - 0x10000 if value & 0x8000 else value


#: ALU operator table shared by every engine (reference, compiled, and
#: machine fast path).  Functions take *already masked* 16-bit operands
#: and return a masked 16-bit result.
ALU_OPS: dict[str, Callable[[int, int], int]] = {
    "ADD": lambda a, b: (a + b) & WORD_MASK,
    "SUB": lambda a, b: (a - b) & WORD_MASK,
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "MUL": lambda a, b: (a * b) & WORD_MASK,
    "MULH": lambda a, b: ((a * b) >> WORD_WIDTH) & WORD_MASK,
    "SLL": lambda a, b: (a << b) & WORD_MASK if b < WORD_WIDTH else 0,
    "SRL": lambda a, b: (a >> b) if b < WORD_WIDTH else 0,
    "SRA": lambda a, b:
        (to_signed16(a) >> min(b, WORD_WIDTH - 1)) & WORD_MASK,
    "SEQ": lambda a, b: 1 if a == b else 0,
    "SLTU": lambda a, b: 1 if a < b else 0,
    "SLTS": lambda a, b: 1 if to_signed16(a) < to_signed16(b) else 0,
}


def eval_alu(op: str, a: int, b: int) -> int:
    """Pure 16-bit ALU evaluation."""
    fn = ALU_OPS.get(op)
    if fn is None:
        raise ValueError(f"unknown ALU op {op!r}")
    return fn(a & WORD_MASK, b & WORD_MASK)


def eval_custom(config: int, a: int, b: int, c: int, d: int) -> int:
    """Evaluate a 4-input per-bit-position custom function.

    ``config`` packs 16 truth tables of 16 bits each: bits
    ``[pos*16 + row]`` where ``row = a_p | b_p<<1 | c_p<<2 | d_p<<3``.
    """
    result = 0
    for pos in range(WORD_WIDTH):
        row = ((a >> pos) & 1) | (((b >> pos) & 1) << 1) | \
              (((c >> pos) & 1) << 2) | (((d >> pos) & 1) << 3)
        if (config >> (pos * 16 + row)) & 1:
            result |= 1 << pos
    return result


def global_address(ctx: ExecContext, addr_regs: tuple[isa.Reg, ...]) -> int:
    """Assemble a 48-bit address from (hi, mid, lo) registers."""
    hi, mid, lo = (ctx.read_reg(r) for r in addr_regs)
    return (hi << 32) | (mid << 16) | lo


def execute(instr: isa.Instruction, ctx: ExecContext) -> None:
    """Execute one instruction against ``ctx`` (architectural semantics,
    no timing).  Compiler pseudo-instructions provide their own
    ``execute_on`` hook so mid-pipeline programs stay interpretable."""
    pseudo = getattr(instr, "execute_on", None)
    if pseudo is not None:
        pseudo(ctx)
        return
    if isinstance(instr, isa.Nop):
        return
    if isinstance(instr, isa.Set):
        ctx.write_reg(instr.rd, instr.imm & WORD_MASK)
        return
    if isinstance(instr, isa.Alu):
        ctx.write_reg(
            instr.rd,
            eval_alu(instr.op, ctx.read_reg(instr.rs1),
                     ctx.read_reg(instr.rs2)),
        )
        return
    if isinstance(instr, isa.Mux):
        sel = ctx.read_reg(instr.sel) & 1
        src = instr.rtrue if sel else instr.rfalse
        ctx.write_reg(instr.rd, ctx.read_reg(src))
        return
    if isinstance(instr, isa.Slice):
        value = ctx.read_reg(instr.rs)
        ctx.write_reg(
            instr.rd,
            (value >> instr.offset) & ((1 << instr.length) - 1),
        )
        return
    if isinstance(instr, isa.AddCarry):
        total = ctx.read_reg(instr.rs1) + ctx.read_reg(instr.rs2) + ctx.carry
        ctx.write_reg(instr.rd, total & WORD_MASK)
        ctx.carry = total >> WORD_WIDTH
        return
    if isinstance(instr, isa.SetCarry):
        ctx.carry = instr.imm
        return
    if isinstance(instr, isa.Custom):
        config = ctx.custom_function(instr.index)
        a, b, c, d = (ctx.read_reg(r) for r in instr.rs)
        ctx.write_reg(instr.rd, eval_custom(config, a, b, c, d))
        return
    if isinstance(instr, isa.Send):
        ctx.send(instr, ctx.read_reg(instr.rs))
        return
    if isinstance(instr, isa.LocalLoad):
        addr = (ctx.read_reg(instr.rbase) + instr.offset) & WORD_MASK
        ctx.write_reg(instr.rd, ctx.read_local(addr))
        return
    if isinstance(instr, isa.LocalStore):
        if ctx.predicate:
            addr = (ctx.read_reg(instr.rbase) + instr.offset) & WORD_MASK
            ctx.write_local(addr, ctx.read_reg(instr.rs))
        return
    if isinstance(instr, isa.Predicate):
        ctx.predicate = ctx.read_reg(instr.rs) & 1
        return
    if isinstance(instr, isa.GlobalLoad):
        ctx.write_reg(instr.rd, ctx.read_global(global_address(ctx, instr.addr)))
        return
    if isinstance(instr, isa.GlobalStore):
        if ctx.predicate:
            ctx.write_global(global_address(ctx, instr.addr),
                             ctx.read_reg(instr.rs))
        return
    if isinstance(instr, isa.Expect):
        if ctx.read_reg(instr.rs1) != ctx.read_reg(instr.rs2):
            ctx.raise_exception(instr.eid)
        return
    raise TypeError(f"cannot execute {type(instr).__name__}")


# ---------------------------------------------------------------------------
# Closure specialization: resolve dispatch/operands once per instruction.
# ---------------------------------------------------------------------------
ExecFn = Callable[[ExecContext], None]


def _nop_fn(_ctx: ExecContext) -> None:
    return None


def compile_instruction(instr: isa.Instruction) -> ExecFn:
    """Specialize one instruction into an ``fn(ctx)`` closure.

    The returned closure has the instruction type, register operands, ALU
    operator, and immediates pre-resolved; it performs exactly the same
    :class:`ExecContext` calls as :func:`execute`.  Compiler
    pseudo-instructions (``execute_on`` hook) and unknown types fall back
    to :func:`execute` so mid-pipeline programs stay interpretable.
    """
    if getattr(instr, "execute_on", None) is not None:
        return instr.execute_on
    t = type(instr)
    if t is isa.Nop:
        return _nop_fn
    if t is isa.Set:
        rd, imm = instr.rd, instr.imm & WORD_MASK
        return lambda ctx: ctx.write_reg(rd, imm)
    if t is isa.Alu:
        fn = ALU_OPS[instr.op]
        rd, a, b = instr.rd, instr.rs1, instr.rs2
        return lambda ctx: ctx.write_reg(
            rd, fn(ctx.read_reg(a) & WORD_MASK, ctx.read_reg(b) & WORD_MASK))
    if t is isa.Mux:
        rd, sel, rf, rt = instr.rd, instr.sel, instr.rfalse, instr.rtrue
        return lambda ctx: ctx.write_reg(
            rd, ctx.read_reg(rt if ctx.read_reg(sel) & 1 else rf))
    if t is isa.Slice:
        rd, rs = instr.rd, instr.rs
        off, m = instr.offset, (1 << instr.length) - 1
        return lambda ctx: ctx.write_reg(rd, (ctx.read_reg(rs) >> off) & m)
    if t is isa.AddCarry:
        rd, a, b = instr.rd, instr.rs1, instr.rs2

        def _addc(ctx: ExecContext) -> None:
            total = ctx.read_reg(a) + ctx.read_reg(b) + ctx.carry
            ctx.write_reg(rd, total & WORD_MASK)
            ctx.carry = total >> WORD_WIDTH

        return _addc
    if t is isa.SetCarry:
        imm = instr.imm

        def _setc(ctx: ExecContext) -> None:
            ctx.carry = imm

        return _setc
    if t is isa.Custom:
        rd, index = instr.rd, instr.index
        r0, r1, r2, r3 = instr.rs
        return lambda ctx: ctx.write_reg(rd, eval_custom(
            ctx.custom_function(index), ctx.read_reg(r0), ctx.read_reg(r1),
            ctx.read_reg(r2), ctx.read_reg(r3)))
    if t is isa.Send:
        rs = instr.rs
        return lambda ctx, _i=instr: ctx.send(_i, ctx.read_reg(rs))
    if t is isa.LocalLoad:
        rd, rb, off = instr.rd, instr.rbase, instr.offset
        return lambda ctx: ctx.write_reg(
            rd, ctx.read_local((ctx.read_reg(rb) + off) & WORD_MASK))
    if t is isa.LocalStore:
        rs, rb, off = instr.rs, instr.rbase, instr.offset

        def _lst(ctx: ExecContext) -> None:
            if ctx.predicate:
                ctx.write_local((ctx.read_reg(rb) + off) & WORD_MASK,
                                ctx.read_reg(rs))

        return _lst
    if t is isa.Predicate:
        rs = instr.rs

        def _pred(ctx: ExecContext) -> None:
            ctx.predicate = ctx.read_reg(rs) & 1

        return _pred
    if t is isa.GlobalLoad:
        rd, addr = instr.rd, instr.addr
        return lambda ctx: ctx.write_reg(
            rd, ctx.read_global(global_address(ctx, addr)))
    if t is isa.GlobalStore:
        rs, addr = instr.rs, instr.addr

        def _gst(ctx: ExecContext) -> None:
            if ctx.predicate:
                ctx.write_global(global_address(ctx, addr), ctx.read_reg(rs))

        return _gst
    if t is isa.Expect:
        a, b, eid = instr.rs1, instr.rs2, instr.eid

        def _expect(ctx: ExecContext) -> None:
            if ctx.read_reg(a) != ctx.read_reg(b):
                ctx.raise_exception(eid)

        return _expect
    return lambda ctx, _i=instr: execute(_i, ctx)


def compile_body(body) -> list[ExecFn]:
    """Specialize a whole instruction sequence (one closure each)."""
    return [compile_instruction(instr) for instr in body]
