"""Single-instruction execution semantics, shared by the functional lower
interpreter (:mod:`repro.isa.interp`) and the cycle-accurate machine model
(:mod:`repro.machine.core`) so behaviour can never diverge between them.
"""

from __future__ import annotations

from typing import Protocol

from . import instructions as isa
from .instructions import WORD_MASK, WORD_WIDTH


class ExecContext(Protocol):
    """State and services an instruction needs; both interpreters and the
    machine core implement this protocol."""

    carry: int
    predicate: int

    def read_reg(self, reg: isa.Reg) -> int: ...

    def write_reg(self, reg: isa.Reg, value: int) -> None: ...

    def read_local(self, addr: int) -> int: ...

    def write_local(self, addr: int, value: int) -> None: ...

    def read_global(self, addr: int) -> int: ...

    def write_global(self, addr: int, value: int) -> None: ...

    def send(self, instr: isa.Send, value: int) -> None: ...

    def raise_exception(self, eid: int) -> None: ...

    def custom_function(self, index: int) -> int:
        """256-bit CFU configuration for ``index``."""
        ...


def to_signed16(value: int) -> int:
    value &= WORD_MASK
    return value - 0x10000 if value & 0x8000 else value


def eval_alu(op: str, a: int, b: int) -> int:
    """Pure 16-bit ALU evaluation."""
    a &= WORD_MASK
    b &= WORD_MASK
    if op == "ADD":
        return (a + b) & WORD_MASK
    if op == "SUB":
        return (a - b) & WORD_MASK
    if op == "AND":
        return a & b
    if op == "OR":
        return a | b
    if op == "XOR":
        return a ^ b
    if op == "MUL":
        return (a * b) & WORD_MASK
    if op == "MULH":
        return ((a * b) >> WORD_WIDTH) & WORD_MASK
    if op == "SLL":
        return (a << b) & WORD_MASK if b < WORD_WIDTH else 0
    if op == "SRL":
        return (a >> b) if b < WORD_WIDTH else 0
    if op == "SRA":
        return (to_signed16(a) >> min(b, WORD_WIDTH - 1)) & WORD_MASK
    if op == "SEQ":
        return 1 if a == b else 0
    if op == "SLTU":
        return 1 if a < b else 0
    if op == "SLTS":
        return 1 if to_signed16(a) < to_signed16(b) else 0
    raise ValueError(f"unknown ALU op {op!r}")


def eval_custom(config: int, a: int, b: int, c: int, d: int) -> int:
    """Evaluate a 4-input per-bit-position custom function.

    ``config`` packs 16 truth tables of 16 bits each: bits
    ``[pos*16 + row]`` where ``row = a_p | b_p<<1 | c_p<<2 | d_p<<3``.
    """
    result = 0
    for pos in range(WORD_WIDTH):
        row = ((a >> pos) & 1) | (((b >> pos) & 1) << 1) | \
              (((c >> pos) & 1) << 2) | (((d >> pos) & 1) << 3)
        if (config >> (pos * 16 + row)) & 1:
            result |= 1 << pos
    return result


def global_address(ctx: ExecContext, addr_regs: tuple[isa.Reg, ...]) -> int:
    """Assemble a 48-bit address from (hi, mid, lo) registers."""
    hi, mid, lo = (ctx.read_reg(r) for r in addr_regs)
    return (hi << 32) | (mid << 16) | lo


def execute(instr: isa.Instruction, ctx: ExecContext) -> None:
    """Execute one instruction against ``ctx`` (architectural semantics,
    no timing).  Compiler pseudo-instructions provide their own
    ``execute_on`` hook so mid-pipeline programs stay interpretable."""
    pseudo = getattr(instr, "execute_on", None)
    if pseudo is not None:
        pseudo(ctx)
        return
    if isinstance(instr, isa.Nop):
        return
    if isinstance(instr, isa.Set):
        ctx.write_reg(instr.rd, instr.imm & WORD_MASK)
        return
    if isinstance(instr, isa.Alu):
        ctx.write_reg(
            instr.rd,
            eval_alu(instr.op, ctx.read_reg(instr.rs1),
                     ctx.read_reg(instr.rs2)),
        )
        return
    if isinstance(instr, isa.Mux):
        sel = ctx.read_reg(instr.sel) & 1
        src = instr.rtrue if sel else instr.rfalse
        ctx.write_reg(instr.rd, ctx.read_reg(src))
        return
    if isinstance(instr, isa.Slice):
        value = ctx.read_reg(instr.rs)
        ctx.write_reg(
            instr.rd,
            (value >> instr.offset) & ((1 << instr.length) - 1),
        )
        return
    if isinstance(instr, isa.AddCarry):
        total = ctx.read_reg(instr.rs1) + ctx.read_reg(instr.rs2) + ctx.carry
        ctx.write_reg(instr.rd, total & WORD_MASK)
        ctx.carry = total >> WORD_WIDTH
        return
    if isinstance(instr, isa.SetCarry):
        ctx.carry = instr.imm
        return
    if isinstance(instr, isa.Custom):
        config = ctx.custom_function(instr.index)
        a, b, c, d = (ctx.read_reg(r) for r in instr.rs)
        ctx.write_reg(instr.rd, eval_custom(config, a, b, c, d))
        return
    if isinstance(instr, isa.Send):
        ctx.send(instr, ctx.read_reg(instr.rs))
        return
    if isinstance(instr, isa.LocalLoad):
        addr = (ctx.read_reg(instr.rbase) + instr.offset) & WORD_MASK
        ctx.write_reg(instr.rd, ctx.read_local(addr))
        return
    if isinstance(instr, isa.LocalStore):
        if ctx.predicate:
            addr = (ctx.read_reg(instr.rbase) + instr.offset) & WORD_MASK
            ctx.write_local(addr, ctx.read_reg(instr.rs))
        return
    if isinstance(instr, isa.Predicate):
        ctx.predicate = ctx.read_reg(instr.rs) & 1
        return
    if isinstance(instr, isa.GlobalLoad):
        ctx.write_reg(instr.rd, ctx.read_global(global_address(ctx, instr.addr)))
        return
    if isinstance(instr, isa.GlobalStore):
        if ctx.predicate:
            ctx.write_global(global_address(ctx, instr.addr),
                             ctx.read_reg(instr.rs))
        return
    if isinstance(instr, isa.Expect):
        if ctx.read_reg(instr.rs1) != ctx.read_reg(instr.rs2):
            ctx.raise_exception(instr.eid)
        return
    raise TypeError(f"cannot execute {type(instr).__name__}")
