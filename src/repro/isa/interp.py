"""Functional "lower interpreter" (paper SS6): executes lower-assembly
programs with BSP semantics but no timing.

The paper used its interpreters extensively to validate compiler passes; we
do the same.  The interpreter accepts either a pre-placement
:class:`~repro.isa.program.ProgramImage` (virtual registers, processes) or
a final :class:`~repro.isa.program.MachineProgram` (machine registers,
core binaries) - both reduce to a set of *units* with bodies, local state,
and Send targets.

BSP contract implemented here: within a Vcycle each unit executes its body
sequentially; ``Send`` values are buffered and applied to target register
files only at the end of the Vcycle, so results are architecturally visible
one Vcycle later - exactly Fig. 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from . import instructions as isa
from .program import (
    CoreBinary,
    ExceptionTable,
    MachineProgram,
    Process,
    ProgramImage,
)
from .semantics import compile_body


class HazardError(RuntimeError):
    """Raised by the strict machine model; defined here for reuse."""


class NoCDropError(RuntimeError):
    """Two messages collided on a bufferless link (paper SS5.2)."""


@dataclass
class FunctionalResult:
    vcycles: int
    finished: bool
    displays: list[str] = field(default_factory=list)
    instructions_executed: int = 0


class _Unit:
    """Execution context of one process/core (implements ExecContext)."""

    def __init__(self, uid: int, body, reg_init: Mapping, cfu, scratch_init,
                 parent: "FunctionalInterpreter") -> None:
        self.uid = uid
        self.body = list(body)
        #: Per-instruction closures (dispatch/operands resolved once;
        #: pseudo-instructions fall back to ``semantics.execute``).
        self.compiled = compile_body(self.body)
        self.regs: dict = dict(reg_init)
        self.cfu = list(cfu)
        self.scratch: dict[int, int] = dict(scratch_init)
        self.carry = 0
        self.predicate = 0
        self._parent = parent

    # -- ExecContext ----------------------------------------------------
    def read_reg(self, reg):
        return self.regs.get(reg, 0)

    def write_reg(self, reg, value):
        self.regs[reg] = value & 0xFFFF

    def read_local(self, addr):
        return self.scratch.get(addr, 0)

    def write_local(self, addr, value):
        self.scratch[addr] = value & 0xFFFF

    def read_global(self, addr):
        return self._parent.global_mem.get(addr, 0)

    def write_global(self, addr, value):
        self._parent.global_mem[addr] = value & 0xFFFF

    def send(self, instr: isa.Send, value: int):
        self._parent.pending_sends.append((instr.target, instr.rd, value))

    def raise_exception(self, eid: int):
        self._parent.service_exception(eid)

    def custom_function(self, index: int) -> int:
        return self.cfu[index]


class FunctionalInterpreter:
    """Executes a program image or machine program Vcycle by Vcycle."""

    def __init__(self, program: ProgramImage | MachineProgram) -> None:
        self.exceptions: ExceptionTable = program.exceptions
        self.global_mem: dict[int, int] = dict(program.global_init)
        self.units: dict[int, _Unit] = {}
        if isinstance(program, ProgramImage):
            items: Iterable[tuple[int, Process | CoreBinary]] = (
                program.processes.items()
            )
        else:
            items = program.cores.items()
        for uid, unit in items:
            self.units[uid] = _Unit(uid, unit.body, unit.reg_init, unit.cfu,
                                    unit.scratch_init, self)
        self.pending_sends: list[tuple[int, isa.Reg, int]] = []
        self.finished = False
        self.displays: list[str] = []
        self.vcycle = 0
        self.instructions_executed = 0

    # ------------------------------------------------------------------
    def service_exception(self, eid: int) -> None:
        verdict, text = self.exceptions.service(
            eid, lambda addr: self.global_mem.get(addr, 0))
        if verdict == "finish":
            self.finished = True
        elif text is not None:
            self.displays.append(text)

    def step(self) -> None:
        """Execute one Vcycle across all units, then commit Sends."""
        if self.finished:
            return
        for unit in self.units.values():
            for fn in unit.compiled:
                fn(unit)
                self.instructions_executed += 1
        for target, rd, value in self.pending_sends:
            if target not in self.units:
                raise NoCDropError(f"Send to unknown unit {target}")
            self.units[target].regs[rd] = value
        self.pending_sends.clear()
        self.vcycle += 1

    def run(self, max_vcycles: int) -> FunctionalResult:
        while not self.finished and self.vcycle < max_vcycles:
            self.step()
        return FunctionalResult(self.vcycle, self.finished,
                                list(self.displays),
                                self.instructions_executed)

    # -- probes ----------------------------------------------------------
    def peek_reg(self, uid: int, reg: isa.Reg) -> int:
        return self.units[uid].regs.get(reg, 0)

    def peek_scratch(self, uid: int, addr: int) -> int:
        return self.units[uid].scratch.get(addr, 0)
