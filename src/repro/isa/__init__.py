"""The Manticore ISA: instruction definitions, execution semantics, binary
encoding, program containers, and the functional lower interpreter."""

from .encoding import EncodingError, decode, decode_program, encode, encode_program
from .instructions import (
    AddCarry,
    Alu,
    Custom,
    Expect,
    GlobalLoad,
    GlobalStore,
    Instruction,
    LocalLoad,
    LocalStore,
    Mux,
    Nop,
    Predicate,
    Reg,
    Send,
    Set,
    SetCarry,
    Slice,
    NUM_CUSTOM_FUNCTIONS,
    NUM_REGISTERS,
    SCRATCHPAD_WORDS,
    WORD_MASK,
    WORD_WIDTH,
    is_privileged,
)
from .interp import FunctionalInterpreter, FunctionalResult, HazardError, NoCDropError
from .program import (
    AssertAction,
    CoreBinary,
    DisplayAction,
    ExceptionTable,
    FinishAction,
    MachineProgram,
    Process,
    ProgramImage,
    SimulationFailure,
)
from .semantics import eval_alu, eval_custom, execute, to_signed16

__all__ = [
    "AddCarry", "Alu", "AssertAction", "CoreBinary", "Custom",
    "DisplayAction", "EncodingError", "ExceptionTable", "Expect",
    "FinishAction", "FunctionalInterpreter", "FunctionalResult",
    "GlobalLoad", "GlobalStore", "HazardError", "Instruction", "LocalLoad",
    "LocalStore", "MachineProgram", "Mux", "NUM_CUSTOM_FUNCTIONS",
    "NUM_REGISTERS", "NoCDropError", "Nop", "Predicate", "Process",
    "ProgramImage", "Reg", "SCRATCHPAD_WORDS", "Send", "Set", "SetCarry",
    "SimulationFailure", "Slice", "WORD_MASK", "WORD_WIDTH", "decode",
    "decode_program", "encode", "encode_program", "eval_alu", "eval_custom",
    "execute", "is_privileged", "to_signed16",
]
