"""Textual Manticore assembly: printer and assembler.

The paper's Fig. 13 shows programs in an assembly syntax (``ADD $r7,
$r4, $r1``, ``SEND p0.$r4, $r4``, ``EXPECT $r5, $r0, 1`` ...).  This
module renders processes/binaries in that style and parses it back -
useful for dumping compiler output, writing tests, and hand-crafting
microbenchmarks.

Syntax (one instruction per line, ``//`` comments)::

    NOP
    SET   $rd, imm
    ADD   $rd, $rs1, $rs2          // any ALU mnemonic
    MUX   $rd, $sel, $rf, $rt
    SLICE $rd, $rs, offset, length
    ADDC  $rd, $rs1, $rs2
    SETC  imm
    CUST  $rd, fN, $a, $b, $c, $d
    SEND  pT.$rd, $rs
    LLD   $rd, $base, offset
    LST   $rs, $base, offset
    PRED  $rs
    GLD   $rd, [$hi, $mid, $lo]
    GST   $rs, [$hi, $mid, $lo]
    EXPECT $rs1, $rs2, eid

Virtual registers print as ``$name``; machine registers as ``$rN``.
"""

from __future__ import annotations

import re

from . import instructions as isa
from .instructions import _ALU_OPS


class AsmError(ValueError):
    pass


# ---------------------------------------------------------------------------
# Printing
# ---------------------------------------------------------------------------
def _reg(reg: isa.Reg) -> str:
    if isinstance(reg, int):
        return f"$r{reg}"
    return f"${reg}"


def format_instruction(instr: isa.Instruction) -> str:
    if isinstance(instr, isa.Nop):
        return "NOP"
    if isinstance(instr, isa.Set):
        return f"SET {_reg(instr.rd)}, {instr.imm}"
    if isinstance(instr, isa.Alu):
        return (f"{instr.op} {_reg(instr.rd)}, {_reg(instr.rs1)}, "
                f"{_reg(instr.rs2)}")
    if isinstance(instr, isa.Mux):
        return (f"MUX {_reg(instr.rd)}, {_reg(instr.sel)}, "
                f"{_reg(instr.rfalse)}, {_reg(instr.rtrue)}")
    if isinstance(instr, isa.Slice):
        return (f"SLICE {_reg(instr.rd)}, {_reg(instr.rs)}, "
                f"{instr.offset}, {instr.length}")
    if isinstance(instr, isa.AddCarry):
        return (f"ADDC {_reg(instr.rd)}, {_reg(instr.rs1)}, "
                f"{_reg(instr.rs2)}")
    if isinstance(instr, isa.SetCarry):
        return f"SETC {instr.imm}"
    if isinstance(instr, isa.Custom):
        args = ", ".join(_reg(r) for r in instr.rs)
        return f"CUST {_reg(instr.rd)}, f{instr.index}, {args}"
    if isinstance(instr, isa.Send):
        return f"SEND p{instr.target}.{_reg(instr.rd)}, {_reg(instr.rs)}"
    if isinstance(instr, isa.LocalLoad):
        return (f"LLD {_reg(instr.rd)}, {_reg(instr.rbase)}, "
                f"{instr.offset}")
    if isinstance(instr, isa.LocalStore):
        return (f"LST {_reg(instr.rs)}, {_reg(instr.rbase)}, "
                f"{instr.offset}")
    if isinstance(instr, isa.Predicate):
        return f"PRED {_reg(instr.rs)}"
    if isinstance(instr, isa.GlobalLoad):
        hi, mid, lo = instr.addr
        return (f"GLD {_reg(instr.rd)}, [{_reg(hi)}, {_reg(mid)}, "
                f"{_reg(lo)}]")
    if isinstance(instr, isa.GlobalStore):
        hi, mid, lo = instr.addr
        return (f"GST {_reg(instr.rs)}, [{_reg(hi)}, {_reg(mid)}, "
                f"{_reg(lo)}]")
    if isinstance(instr, isa.Expect):
        return (f"EXPECT {_reg(instr.rs1)}, {_reg(instr.rs2)}, "
                f"{instr.eid}")
    # Compiler pseudo-instructions (pre-expansion listings).
    name = type(instr).__name__
    if name == "Mov":
        return f"MOV {_reg(instr.rd)}, {_reg(instr.rs)}"  # type: ignore
    if name == "PLocalStore":
        return (f"PLST {_reg(instr.rs)}, {_reg(instr.rbase)}, "
                f"{instr.offset}, {_reg(instr.pred)}")  # type: ignore
    if name == "PGlobalStore":
        hi, mid, lo = instr.addr  # type: ignore[attr-defined]
        return (f"PGST {_reg(instr.rs)}, [{_reg(hi)}, {_reg(mid)}, "
                f"{_reg(lo)}], {_reg(instr.pred)}")  # type: ignore
    raise AsmError(f"cannot format {name}")


def format_process(pid: int, body, reg_init=None, privileged=False,
                   ) -> str:
    """Fig. 13-style process listing with an init-comment header."""
    lines = [f".p{pid}:" + (" // privileged process" if privileged else "")]
    if reg_init:
        inits = ", ".join(f"{_reg(r)} = {v}"
                          for r, v in sorted(reg_init.items(), key=str)
                          if v or True)
        for chunk_start in range(0, len(inits), 68):
            prefix = "// init " if chunk_start == 0 else "//      "
            lines.append(f"  {prefix}{inits[chunk_start:chunk_start + 68]}")
    for instr in body:
        lines.append(f"  {format_instruction(instr)}")
    lines.append(f"  // implicit jump to p{pid}")
    return "\n".join(lines)


def format_program(image_or_program) -> str:
    """Render a ProgramImage or MachineProgram as assembly text."""
    from .program import MachineProgram, ProgramImage
    sections = []
    if isinstance(image_or_program, ProgramImage):
        for pid in sorted(image_or_program.processes):
            proc = image_or_program.processes[pid]
            sections.append(format_process(pid, proc.body, proc.reg_init,
                                           proc.privileged))
    elif isinstance(image_or_program, MachineProgram):
        prog = image_or_program
        for cid in sorted(prog.cores):
            binary = prog.cores[cid]
            header = format_process(
                cid, binary.body, binary.reg_init,
                privileged=(cid == prog.privileged_core))
            footer = (f"  // EPILOGUE_LENGTH={binary.epilogue_length} "
                      f"SLEEP_LENGTH={binary.sleep_length}")
            sections.append(header + "\n" + footer)
    else:
        raise AsmError(f"cannot format {type(image_or_program).__name__}")
    return "\n\n".join(sections)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------
_REG_RE = re.compile(r"\$(r(\d+)|[A-Za-z_%][\w#%.$]*)")


def _parse_reg(token: str) -> isa.Reg:
    token = token.strip()
    m = _REG_RE.fullmatch(token)
    if not m:
        raise AsmError(f"bad register {token!r}")
    if m.group(2) is not None:
        return int(m.group(2))
    return m.group(1)


def _parse_int(token: str) -> int:
    token = token.strip()
    return int(token, 0)


def parse_instruction(line: str) -> isa.Instruction:
    line = line.split("//")[0].strip()
    if not line:
        raise AsmError("empty line")
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.upper()
    args = [a.strip() for a in rest.split(",")] if rest.strip() else []

    if mnemonic == "NOP":
        return isa.Nop()
    if mnemonic == "SET":
        return isa.Set(_parse_reg(args[0]), _parse_int(args[1]))
    if mnemonic in _ALU_OPS:
        return isa.Alu(mnemonic, _parse_reg(args[0]),
                       _parse_reg(args[1]), _parse_reg(args[2]))
    if mnemonic == "MUX":
        return isa.Mux(*(_parse_reg(a) for a in args))
    if mnemonic == "SLICE":
        return isa.Slice(_parse_reg(args[0]), _parse_reg(args[1]),
                         _parse_int(args[2]), _parse_int(args[3]))
    if mnemonic == "ADDC":
        return isa.AddCarry(_parse_reg(args[0]), _parse_reg(args[1]),
                            _parse_reg(args[2]))
    if mnemonic == "SETC":
        return isa.SetCarry(_parse_int(args[0]))
    if mnemonic == "CUST":
        index = int(args[1].lstrip("f"))
        return isa.Custom(_parse_reg(args[0]), index,
                          tuple(_parse_reg(a) for a in args[2:6]))
    if mnemonic == "SEND":
        target, _, rd = args[0].partition(".")
        return isa.Send(int(target.lstrip("p")), _parse_reg(rd),
                        _parse_reg(args[1]))
    if mnemonic == "LLD":
        return isa.LocalLoad(_parse_reg(args[0]), _parse_reg(args[1]),
                             _parse_int(args[2]))
    if mnemonic == "LST":
        return isa.LocalStore(_parse_reg(args[0]), _parse_reg(args[1]),
                              _parse_int(args[2]))
    if mnemonic == "PRED":
        return isa.Predicate(_parse_reg(args[0]))
    if mnemonic in ("GLD", "GST"):
        m = re.search(r"\[(.+)\]", rest)
        if not m:
            raise AsmError(f"missing address brackets in {line!r}")
        addr = tuple(_parse_reg(a) for a in m.group(1).split(","))
        first = rest.split(",", 1)[0]
        if mnemonic == "GLD":
            return isa.GlobalLoad(_parse_reg(first), addr)
        return isa.GlobalStore(_parse_reg(first), addr)
    if mnemonic == "EXPECT":
        return isa.Expect(_parse_reg(args[0]), _parse_reg(args[1]),
                          _parse_int(args[2]))
    if mnemonic == "MOV":
        from ..compiler.lir import Mov
        return Mov(_parse_reg(args[0]), _parse_reg(args[1]))
    if mnemonic == "PLST":
        from ..compiler.lir import PLocalStore
        return PLocalStore(_parse_reg(args[0]), _parse_reg(args[1]),
                           _parse_int(args[2]), _parse_reg(args[3]))
    if mnemonic == "PGST":
        from ..compiler.lir import PGlobalStore
        m = re.search(r"\[(.+)\]", rest)
        if not m:
            raise AsmError(f"missing address brackets in {line!r}")
        addr = tuple(_parse_reg(a) for a in m.group(1).split(","))
        first = rest.split(",", 1)[0]
        pred = rest.rsplit(",", 1)[1]
        return PGlobalStore(_parse_reg(first), addr, _parse_reg(pred))
    raise AsmError(f"unknown mnemonic {mnemonic!r}")


def parse_process(text: str) -> tuple[int, list[isa.Instruction]]:
    """Parse one ``.pN:`` block into (pid, instructions)."""
    pid = 0
    body: list[isa.Instruction] = []
    for raw in text.splitlines():
        line = raw.split("//")[0].strip()
        if not line:
            continue
        m = re.fullmatch(r"\.p(\d+):", line)
        if m:
            pid = int(m.group(1))
            continue
        body.append(parse_instruction(line))
    return pid, body
