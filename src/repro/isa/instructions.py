"""The Manticore instruction set (paper SS4.2).

A 16-bit datapath with a 2048-entry register file plus a carry bit, a
16 Ki-word local scratchpad, 32 programmable 4-input custom functions per
core, message-passing ``Send``, and privileged global memory / exception
instructions that stall the whole grid.

Register operands are generic: the compiler works with *virtual* registers
(strings); after register allocation they become machine register indices
(ints).  All instruction classes are frozen dataclasses so they can be used
as dict keys and compared structurally in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Iterator, Union

Reg = Union[str, int]

WORD_WIDTH = 16
WORD_MASK = (1 << WORD_WIDTH) - 1
NUM_REGISTERS = 2048
NUM_CUSTOM_FUNCTIONS = 32
SCRATCHPAD_WORDS = 16384  # 16384 x 16 bits = 32 KiB reshaped URAM
GLOBAL_ADDR_WORDS = 3     # 48-bit global addresses = 3 x 16-bit registers


@dataclass(frozen=True)
class Instruction:
    """Base class; concrete instructions define reads/writes."""

    def reads(self) -> tuple[Reg, ...]:
        return ()

    def writes(self) -> tuple[Reg, ...]:
        return ()

    @property
    def mnemonic(self) -> str:
        return type(self).__name__.upper()

    def rename(self, mapping: dict[Reg, Reg]) -> "Instruction":
        """Return a copy with every register operand remapped."""
        changes = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.metadata.get("reg") and value in mapping:
                changes[f.name] = mapping[value]
            elif f.metadata.get("reglist"):
                changes[f.name] = tuple(mapping.get(r, r) for r in value)
        return replace(self, **changes) if changes else self


def _reg():
    return field(metadata={"reg": True})


def _reglist():
    return field(metadata={"reglist": True})


# ---------------------------------------------------------------------------
# Standard ALU instructions (one result, up to two sources).
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Nop(Instruction):
    """Idle one cycle - the static-BSP padding instruction."""


@dataclass(frozen=True)
class Set(Instruction):
    """``rd = imm`` - also the wire format of NoC message delivery."""

    rd: Reg = _reg()
    imm: int = 0

    def writes(self):
        return (self.rd,)


_ALU_OPS = ("ADD", "SUB", "AND", "OR", "XOR", "MUL", "MULH", "SLL", "SRL",
            "SRA", "SEQ", "SLTU", "SLTS")


@dataclass(frozen=True)
class Alu(Instruction):
    """Two-source ALU operation ``rd = op(rs1, rs2)``."""

    op: str
    rd: Reg = _reg()
    rs1: Reg = _reg()
    rs2: Reg = _reg()

    def __post_init__(self):
        if self.op not in _ALU_OPS:
            raise ValueError(f"unknown ALU op {self.op!r}")

    def reads(self):
        return (self.rs1, self.rs2)

    def writes(self):
        return (self.rd,)

    @property
    def mnemonic(self) -> str:
        return self.op


@dataclass(frozen=True)
class Mux(Instruction):
    """``rd = rtrue if (sel & 1) else rfalse``."""

    rd: Reg = _reg()
    sel: Reg = _reg()
    rfalse: Reg = _reg()
    rtrue: Reg = _reg()

    def reads(self):
        return (self.sel, self.rfalse, self.rtrue)

    def writes(self):
        return (self.rd,)


@dataclass(frozen=True)
class Slice(Instruction):
    """``rd = (rs >> offset) & mask(length)`` - bit-field extract."""

    rd: Reg = _reg()
    rs: Reg = _reg()
    offset: int = 0
    length: int = WORD_WIDTH

    def __post_init__(self):
        if not (0 <= self.offset < WORD_WIDTH):
            raise ValueError("slice offset out of range")
        if not (1 <= self.length <= WORD_WIDTH):
            raise ValueError("slice length out of range")

    def reads(self):
        return (self.rs,)

    def writes(self):
        return (self.rd,)


@dataclass(frozen=True)
class AddCarry(Instruction):
    """``rd = rs1 + rs2 + carry``; updates the carry bit (wide adds)."""

    rd: Reg = _reg()
    rs1: Reg = _reg()
    rs2: Reg = _reg()

    def reads(self):
        return (self.rs1, self.rs2)

    def writes(self):
        return (self.rd,)


@dataclass(frozen=True)
class SetCarry(Instruction):
    """``carry = imm`` (0 or 1) - starts a wide add/sub chain."""

    imm: int = 0

    def __post_init__(self):
        if self.imm not in (0, 1):
            raise ValueError("carry immediate must be 0 or 1")


@dataclass(frozen=True)
class Custom(Instruction):
    """``rd = F[index](rs1..rs4)`` - 4-input per-bit-position LUT (SS5.1).

    The function table lives in the core's CFU configuration: 16 bit
    positions x 16-bit truth table = 256 bits per function.
    """

    rd: Reg = _reg()
    index: int
    rs: tuple[Reg, ...] = _reglist()

    def __post_init__(self):
        if not (0 <= self.index < NUM_CUSTOM_FUNCTIONS):
            raise ValueError("custom function index out of range")
        if len(self.rs) != 4:
            raise ValueError("custom function takes exactly 4 sources")

    def reads(self):
        return tuple(self.rs)

    def writes(self):
        return (self.rd,)


# ---------------------------------------------------------------------------
# Communication.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Send(Instruction):
    """Ask core ``target`` to set its register ``rd`` to our ``rs``
    (paper SS4.2).  The update lands at the end of the target's Vcycle.

    ``target`` is a process id pre-placement and a core id (grid linear
    index) post-placement.
    """

    target: int
    rd: Reg = _reg()
    rs: Reg = _reg()

    def reads(self):
        return (self.rs,)

    # NOTE: writes() is empty - the write happens on the *remote* core.


# ---------------------------------------------------------------------------
# Local memory.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LocalLoad(Instruction):
    """``rd = scratchpad[rbase + offset]`` - unconditional (SS4.2)."""

    rd: Reg = _reg()
    rbase: Reg = _reg()
    offset: int = 0

    def reads(self):
        return (self.rbase,)

    def writes(self):
        return (self.rd,)

    @property
    def mnemonic(self):
        return "LLD"


@dataclass(frozen=True)
class LocalStore(Instruction):
    """``if (pred) scratchpad[rbase + offset] = rs`` - predicated."""

    rs: Reg = _reg()
    rbase: Reg = _reg()
    offset: int = 0

    def reads(self):
        return (self.rs, self.rbase)

    @property
    def mnemonic(self):
        return "LST"


@dataclass(frozen=True)
class Predicate(Instruction):
    """``pred = rs & 1`` - sets the store predicate."""

    rs: Reg = _reg()

    def reads(self):
        return (self.rs,)


# ---------------------------------------------------------------------------
# Privileged instructions (single privileged core; globally stalling).
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GlobalLoad(Instruction):
    """``rd = DRAM[{rhi, rmid, rlo}]`` - 48-bit address, privileged."""

    rd: Reg = _reg()
    addr: tuple[Reg, ...] = _reglist()  # (hi, mid, lo)

    def __post_init__(self):
        if len(self.addr) != GLOBAL_ADDR_WORDS:
            raise ValueError("global address needs 3 register words")

    def reads(self):
        return tuple(self.addr)

    def writes(self):
        return (self.rd,)

    @property
    def mnemonic(self):
        return "GLD"


@dataclass(frozen=True)
class GlobalStore(Instruction):
    """``if (pred) DRAM[{rhi, rmid, rlo}] = rs`` - privileged."""

    rs: Reg = _reg()
    addr: tuple[Reg, ...] = _reglist()

    def __post_init__(self):
        if len(self.addr) != GLOBAL_ADDR_WORDS:
            raise ValueError("global address needs 3 register words")

    def reads(self):
        return (self.rs,) + tuple(self.addr)

    @property
    def mnemonic(self):
        return "GST"


@dataclass(frozen=True)
class Expect(Instruction):
    """Raise exception ``eid`` if ``rs1 != rs2`` (paper SS4.2).

    Exceptions stall the grid and transfer control to the host, which
    services ``$display``/``$finish``/assertions and resumes or stops.
    """

    rs1: Reg = _reg()
    rs2: Reg = _reg()
    eid: int = 0

    def reads(self):
        return (self.rs1, self.rs2)


PRIVILEGED_TYPES = (GlobalLoad, GlobalStore, Expect)


def is_privileged(instr: Instruction) -> bool:
    """True if the instruction may stall the whole grid (paper SS4.2)."""
    return isinstance(instr, PRIVILEGED_TYPES)


def registers_of(instrs) -> Iterator[Reg]:
    """All register operands mentioned by a sequence of instructions."""
    for instr in instrs:
        yield from instr.reads()
        yield from instr.writes()
