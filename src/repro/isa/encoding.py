"""Binary encoding of Manticore instructions into 64-bit words.

The FPGA prototype fetches 64-bit instruction words from a 4096x64 URAM
(paper SS5.1); the bootloader streams these words to each core (SSA.3.1).
We reproduce a concrete encoding so that binaries are real artifacts:
register fields are 11 bits (2048 registers), custom-function indices 5
bits, slice offsets/lengths 4 bits, exception ids and immediates 16 bits.

Layout (bit 63 is the MSB)::

    [63:58] opcode
    [57:47] rd      (11 bits)
    [46:36] rs1 / sub-field
    [35:25] rs2
    [24:14] rs3
    [13: 3] rs4
    ...     format-specific immediates packed into unused low bits

``Set``/``Expect``/``Send`` use the low 16 bits for their immediate.
Encoding requires machine (integer) registers, i.e. post register
allocation.
"""

from __future__ import annotations

from typing import Sequence

from . import instructions as isa

_OPCODES: dict[str, int] = {
    "NOP": 0, "SET": 1, "ALU": 2, "MUX": 3, "SLICE": 4, "ADDCARRY": 5,
    "SETCARRY": 6, "CUSTOM0": 7, "SEND": 8, "LLD": 9, "LST": 10,
    "PREDICATE": 11, "GLD": 12, "GST": 13, "EXPECT": 14,
    # A Custom instruction needs rd + four sources (55 bits) plus a 5-bit
    # function index; the index's two high bits are folded into the opcode
    # space (CUSTOM0..CUSTOM3), its low three bits into the word's low bits.
    "CUSTOM1": 15, "CUSTOM2": 16, "CUSTOM3": 17,
}
_OPCODE_NAMES = {v: k for k, v in _OPCODES.items()}
_ALU_INDEX = {op: i for i, op in enumerate(isa._ALU_OPS)}
_ALU_NAMES = {i: op for op, i in _ALU_INDEX.items()}


class EncodingError(ValueError):
    pass


def _reg_field(reg: isa.Reg) -> int:
    if not isinstance(reg, int):
        raise EncodingError(
            f"cannot encode virtual register {reg!r}; run register "
            "allocation first"
        )
    if not (0 <= reg < isa.NUM_REGISTERS):
        raise EncodingError(f"register index {reg} out of range")
    return reg


def _pack(opcode: int, rd: int = 0, rs1: int = 0, rs2: int = 0,
          rs3: int = 0, rs4: int = 0, low: int = 0, low_bits: int = 0) -> int:
    word = (opcode << 58) | (rd << 47) | (rs1 << 36) | (rs2 << 25) | \
        (rs3 << 14) | (rs4 << 3)
    if low_bits:
        if low >> low_bits:
            raise EncodingError("immediate overflow")
        # Low immediates live in the bottom 16 bits; formats using them
        # leave rs3/rs4 unused so the fields never overlap in practice.
        word = (opcode << 58) | (rd << 47) | (rs1 << 36) | (rs2 << 25) | low
    return word


def encode(instr: isa.Instruction) -> int:
    """Encode one instruction into a 64-bit word."""
    if isinstance(instr, isa.Nop):
        return _pack(_OPCODES["NOP"])
    if isinstance(instr, isa.Set):
        return _pack(_OPCODES["SET"], rd=_reg_field(instr.rd),
                     low=instr.imm & 0xFFFF, low_bits=16)
    if isinstance(instr, isa.Alu):
        return _pack(_OPCODES["ALU"], rd=_reg_field(instr.rd),
                     rs1=_reg_field(instr.rs1), rs2=_reg_field(instr.rs2),
                     rs3=_ALU_INDEX[instr.op])
    if isinstance(instr, isa.Mux):
        return _pack(_OPCODES["MUX"], rd=_reg_field(instr.rd),
                     rs1=_reg_field(instr.sel), rs2=_reg_field(instr.rfalse),
                     rs3=_reg_field(instr.rtrue))
    if isinstance(instr, isa.Slice):
        return _pack(_OPCODES["SLICE"], rd=_reg_field(instr.rd),
                     rs1=_reg_field(instr.rs),
                     low=(instr.offset << 4) | (instr.length - 1),
                     low_bits=8)
    if isinstance(instr, isa.AddCarry):
        return _pack(_OPCODES["ADDCARRY"], rd=_reg_field(instr.rd),
                     rs1=_reg_field(instr.rs1), rs2=_reg_field(instr.rs2))
    if isinstance(instr, isa.SetCarry):
        return _pack(_OPCODES["SETCARRY"], low=instr.imm, low_bits=1)
    if isinstance(instr, isa.Custom):
        regs = [_reg_field(r) for r in instr.rs]
        opcode = _OPCODES[f"CUSTOM{instr.index >> 3}"]
        word = _pack(opcode, rd=_reg_field(instr.rd),
                     rs1=regs[0], rs2=regs[1], rs3=regs[2], rs4=regs[3])
        return word | (instr.index & 0x7)
    if isinstance(instr, isa.Send):
        return _pack(_OPCODES["SEND"], rd=_reg_field(instr.rd),
                     rs1=_reg_field(instr.rs),
                     low=instr.target & 0xFFFF, low_bits=16)
    if isinstance(instr, isa.LocalLoad):
        return _pack(_OPCODES["LLD"], rd=_reg_field(instr.rd),
                     rs1=_reg_field(instr.rbase),
                     low=instr.offset & 0x3FFF, low_bits=14)
    if isinstance(instr, isa.LocalStore):
        return _pack(_OPCODES["LST"], rd=_reg_field(instr.rs),
                     rs1=_reg_field(instr.rbase),
                     low=instr.offset & 0x3FFF, low_bits=14)
    if isinstance(instr, isa.Predicate):
        return _pack(_OPCODES["PREDICATE"], rs1=_reg_field(instr.rs))
    if isinstance(instr, isa.GlobalLoad):
        hi, mid, lo = (_reg_field(r) for r in instr.addr)
        return _pack(_OPCODES["GLD"], rd=_reg_field(instr.rd),
                     rs1=hi, rs2=mid, rs3=lo)
    if isinstance(instr, isa.GlobalStore):
        hi, mid, lo = (_reg_field(r) for r in instr.addr)
        return _pack(_OPCODES["GST"], rd=_reg_field(instr.rs),
                     rs1=hi, rs2=mid, rs3=lo)
    if isinstance(instr, isa.Expect):
        return _pack(_OPCODES["EXPECT"], rd=_reg_field(instr.rs1),
                     rs1=_reg_field(instr.rs2),
                     low=instr.eid & 0xFFFF, low_bits=16)
    raise EncodingError(f"cannot encode {type(instr).__name__}")


def _rd(word: int) -> int:
    return (word >> 47) & 0x7FF


def _rs1(word: int) -> int:
    return (word >> 36) & 0x7FF


def _rs2(word: int) -> int:
    return (word >> 25) & 0x7FF


def _rs3(word: int) -> int:
    return (word >> 14) & 0x7FF


def _rs4(word: int) -> int:
    return (word >> 3) & 0x7FF


def decode(word: int) -> isa.Instruction:
    """Decode a 64-bit word back into an instruction."""
    opcode = (word >> 58) & 0x3F
    name = _OPCODE_NAMES.get(opcode)
    if name == "NOP":
        return isa.Nop()
    if name == "SET":
        return isa.Set(_rd(word), word & 0xFFFF)
    if name == "ALU":
        return isa.Alu(_ALU_NAMES[_rs3(word)], _rd(word), _rs1(word),
                       _rs2(word))
    if name == "MUX":
        return isa.Mux(_rd(word), _rs1(word), _rs2(word), _rs3(word))
    if name == "SLICE":
        return isa.Slice(_rd(word), _rs1(word), (word >> 4) & 0xF,
                         (word & 0xF) + 1)
    if name == "ADDCARRY":
        return isa.AddCarry(_rd(word), _rs1(word), _rs2(word))
    if name == "SETCARRY":
        return isa.SetCarry(word & 1)
    if name and name.startswith("CUSTOM"):
        index = (int(name[6]) << 3) | (word & 0x7)
        return isa.Custom(_rd(word), index,
                          (_rs1(word), _rs2(word), _rs3(word), _rs4(word)))
    if name == "SEND":
        return isa.Send(word & 0xFFFF, _rd(word), _rs1(word))
    if name == "LLD":
        return isa.LocalLoad(_rd(word), _rs1(word), word & 0x3FFF)
    if name == "LST":
        return isa.LocalStore(_rd(word), _rs1(word), word & 0x3FFF)
    if name == "PREDICATE":
        return isa.Predicate(_rs1(word))
    if name == "GLD":
        return isa.GlobalLoad(_rd(word), (_rs1(word), _rs2(word),
                                          _rs3(word)))
    if name == "GST":
        return isa.GlobalStore(_rd(word), (_rs1(word), _rs2(word),
                                           _rs3(word)))
    if name == "EXPECT":
        return isa.Expect(_rd(word), _rs1(word), word & 0xFFFF)
    raise EncodingError(f"unknown opcode {opcode}")


def encode_program(body: Sequence[isa.Instruction]) -> list[int]:
    return [encode(i) for i in body]


def decode_program(words: Sequence[int]) -> list[isa.Instruction]:
    return [decode(w) for w in words]
