"""Client API + load generator for the ``repro serve`` socket protocol.

:class:`ServeClient` is a small synchronous client for the
newline-delimited JSON protocol of :func:`repro.serve.server.serve_unix`
(one request object per line, one response per line).  It is what
``repro submit`` and the CI ``serve-smoke`` job use; tests drive the
:class:`~repro.serve.server.SimulationServer` in-process instead.

:func:`plan_load` builds the deterministic zipfian tenant workload the
benchmark and the smoke job replay: design popularity follows a zipf
distribution (rank ``r`` drawn with probability proportional to
``1/r**s``), so with ``s=1.1`` a handful of designs dominate and the
content-addressed compile cache should serve most submissions — the
``BENCH_serve.json`` hit-rate gate measures exactly that.
"""

from __future__ import annotations

import json
import random
import socket
import time


class ServeClientError(RuntimeError):
    """The server answered ``ok: false`` (the error text is the
    server's) or the connection failed permanently."""


class ServeClient:
    """Blocking unix-socket client; one JSON object per request line."""

    def __init__(self, path: str, connect_timeout: float = 10.0) -> None:
        self.path = path
        deadline = time.monotonic() + connect_timeout
        while True:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                self._sock.connect(path)
                break
            except (FileNotFoundError, ConnectionRefusedError):
                # Server may still be binding (CI starts it in the
                # background); retry until the timeout.
                self._sock.close()
                if time.monotonic() >= deadline:
                    raise ServeClientError(
                        f"no server on {path!r} after "
                        f"{connect_timeout:.0f}s")
                time.sleep(0.05)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def call(self, request: dict) -> dict:
        """One request/response round trip; raises on ``ok: false``."""
        self._file.write(json.dumps(request).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeClientError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServeClientError(response.get("error", "request failed"))
        return response

    def submit(self, design: str, *, tenant: str = "default",
               cycles: int | None = None, engine: str | None = None,
               priority: int = 1, preemptible: bool = True) -> int:
        """Submit one job; returns its id."""
        request = {"op": "submit", "design": design, "tenant": tenant,
                   "priority": priority, "preemptible": preemptible}
        if cycles is not None:
            request["cycles"] = cycles
        if engine is not None:
            request["engine"] = engine
        return self.call(request)["job"]

    def wait(self, job_id: int, timeout: float | None = None) -> dict:
        """Job dict once terminal; raises :class:`ServeClientError` on
        timeout (the server reports ``error: timeout``)."""
        request: dict = {"op": "wait", "job": job_id}
        if timeout is not None:
            request["timeout"] = timeout
        return self.call(request)["job"]

    def status(self, job_id: int | None = None) -> dict:
        """One job's dict, or the whole metrics snapshot."""
        if job_id is not None:
            return self.call({"op": "status", "job": job_id})["job"]
        return self.call({"op": "status"})["metrics"]

    def preempt(self, job_id: int) -> bool:
        return self.call({"op": "preempt", "job": job_id})["delivered"]

    def prometheus(self) -> str:
        return self.call({"op": "metrics"})["prometheus"]

    def shutdown(self) -> None:
        self.call({"op": "shutdown"})


# ---------------------------------------------------------------------------
# Load generation.
# ---------------------------------------------------------------------------

#: Default design catalog for generated load: small enough that a 25-job
#: smoke run finishes in CI seconds, varied enough to exercise dedupe.
DEFAULT_CATALOG = ("mm", "cgra", "noc", "mc")


def plan_load(jobs: int = 25, *, zipf_s: float = 1.1, tenants: int = 4,
              seed: int = 0, designs: tuple[str, ...] | None = None,
              engine: str = "fast") -> list[dict]:
    """Deterministic zipfian submission plan.

    Each entry is ``{"design", "tenant", "priority", "engine"}``.
    Design rank ``r`` (1-based over ``designs``) is drawn with
    probability proportional to ``1 / r**zipf_s``; tenants round-robin
    with priority 1 except tenant 0, which submits at priority 2 — so a
    replayed plan exercises fair scheduling, priority, and dedupe at
    once, reproducibly for any fixed ``seed``.
    """
    designs = designs or DEFAULT_CATALOG
    rng = random.Random(seed)
    weights = [1.0 / (rank ** zipf_s)
               for rank in range(1, len(designs) + 1)]
    plan = []
    for i in range(jobs):
        design = rng.choices(designs, weights=weights, k=1)[0]
        tenant_i = i % tenants
        plan.append({
            "design": design,
            "tenant": f"tenant-{tenant_i}",
            "priority": 2 if tenant_i == 0 else 1,
            "engine": engine,
        })
    return plan


def run_load(client: ServeClient, plan: list[dict], *,
             preempt_one: bool = False, wait: bool = True,
             timeout: float = 600.0) -> dict:
    """Replay a :func:`plan_load` plan against a live server.

    With ``preempt_one=True`` one job is forced through a preemption
    round trip (preempt it while running, let the scheduler resume it)
    — the smoke-job knob that proves the preemption path works end to
    end.  Delivery races are retried on the next running job: a flag
    that lands in a job's final Vcycle preempts nothing, so the forcing
    loop keeps trying until a preemption actually *registers* or every
    job drains.  Returns a summary with the final job dicts and the
    server metrics snapshot.
    """
    ids = [client.submit(entry["design"], tenant=entry["tenant"],
                         priority=entry["priority"],
                         engine=entry.get("engine"))
           for entry in plan]

    preempted_id = None
    if preempt_one and ids:
        preempted_id = _force_one_preemption(client, ids, timeout)

    jobs = []
    if wait:
        jobs = [client.wait(job_id, timeout=timeout) for job_id in ids]
    return {
        "submitted": len(ids),
        "preempt_requested": preempted_id,
        "jobs": jobs,
        "metrics": client.status(),
    }


def _force_one_preemption(client: ServeClient, ids: list[int],
                          timeout: float) -> int | None:
    """Preempt running jobs until one preemption registers; returns the
    preempted job id (None if every job drained first)."""
    deadline = time.monotonic() + timeout
    live = set(ids)
    while live and time.monotonic() < deadline:
        target = None
        for job_id in sorted(live):
            job = client.status(job_id)
            if job["state"] in ("done", "failed"):
                live.discard(job_id)
            elif job["state"] == "running" and client.preempt(job_id):
                target = job_id
                break
        if target is None:
            time.sleep(0.01)
            continue
        # Confirm the preemption landed (it races the job's own
        # completion) before claiming success.
        while time.monotonic() < deadline:
            job = client.status(target)
            if job["preemptions"] > 0:
                return target
            if job["state"] in ("done", "failed"):
                live.discard(target)
                break
            time.sleep(0.01)
    return None
