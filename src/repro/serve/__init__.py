"""Multi-tenant simulation job service (``repro serve``).

Fronts the existing stack — content-addressed compile cache (dedupe),
``run_with_checkpoints`` + PR-5 snapshots (preemption and migration),
persistent pool leases (process isolation), and the :mod:`repro.obs`
Prometheus textfile path (metrics) — behind one asyncio server with a
per-tenant fair-share queue.
"""

from .client import ServeClient, ServeClientError, plan_load, run_load
from .jobs import (Job, JobStateError, TERMINAL_STATES, TRANSITIONS,
                   state_digest)
from .server import (FairQueue, SERVE_SCHEMA_VERSION, SimulationServer,
                     serve_unix)

__all__ = [
    "FairQueue", "Job", "JobStateError", "SERVE_SCHEMA_VERSION",
    "ServeClient", "ServeClientError", "SimulationServer",
    "TERMINAL_STATES", "TRANSITIONS", "plan_load", "run_load",
    "serve_unix", "state_digest",
]
