"""Job model for the multi-tenant simulation service.

A :class:`Job` is one tenant's request to simulate one circuit for a
Vcycle budget on a chosen engine.  Its lifecycle is a small explicit
state machine::

    pending ──> compiling ──> running ──> done
                    │            │  ▲└──> failed
                    └──> failed  ▼  │
                             preempted

``running -> preempted -> running`` may repeat any number of times
(priority preemption, worker migration); ``running -> pending`` is the
retry edge after a lost worker.  Every transition is validated by
:meth:`Job.advance` - an illegal edge raises :class:`JobStateError`
instead of silently corrupting the scheduler's bookkeeping, which is
what makes the preemption test suite trustworthy: a job that reports
``done`` provably walked a legal path to get there.

:func:`state_digest` is the equivalence oracle the server-path test
suite compares against direct ``Machine.run`` executions: a sha256 over
the machine's engine-independent architectural state (registers,
scratchpads, cache+DRAM, displays, completion) in canonical JSON form.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any

#: Legal state-machine edges (see module docstring).
TRANSITIONS: dict[str, frozenset[str]] = {
    "pending": frozenset({"compiling", "failed"}),
    "compiling": frozenset({"running", "failed"}),
    "running": frozenset({"done", "failed", "preempted", "pending"}),
    "preempted": frozenset({"running", "failed"}),
    "done": frozenset(),
    "failed": frozenset(),
}

#: States a job can never leave.
TERMINAL_STATES = frozenset(s for s, nxt in TRANSITIONS.items() if not nxt)


class JobStateError(RuntimeError):
    """An illegal job state transition was attempted."""


def state_digest(machine) -> str:
    """Engine-independent digest of a machine's architectural state.

    Built from the checkpoint image (which already syncs compiled-engine
    frame locals back into architectural state) but stripped of
    everything engine- or schedule-sensitive: only the register files,
    scratchpads, cache+DRAM contents, display log, and completion flag
    contribute.  Two runs of the same program with the same budget must
    digest identically on every engine - this is the byte-equality the
    server-path equivalence suite asserts.
    """
    state = machine.checkpoint_state()
    arch = {
        # Per-core: register file, scratchpad, flags.  The transient
        # fields (pending writebacks, NoC receive queues) are excluded:
        # messages sent in the final Vcycle that nothing will ever
        # consume are engine-schedule residue, not architecture.
        "cores": {cid: {"regs": core["regs"], "scratch": core["scratch"],
                        "carry": core["carry"],
                        "predicate": core["predicate"]}
                  for cid, core in state["cores"].items()},
        "cache": state["cache"],
        "displays": state["displays"],
        "finished": state["finished"],
    }
    blob = json.dumps(arch, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class Job:
    """One submission and everything that happened to it."""

    id: int
    tenant: str
    design: str | None
    cycles: int
    engine: str
    priority: int = 1
    preemptible: bool = True
    state: str = "pending"

    #: wall-clock submission time and monotonic latency anchors.
    submitted_at: float = field(default_factory=time.time)
    _t_submit: float = field(default_factory=time.monotonic, repr=False)
    _t_done: float | None = field(default=None, repr=False)

    #: compile-cache outcome for this job: ``status`` is ``"miss"``
    #: (this job ran the pipeline), ``"hit"`` (disk artifact reused) or
    #: ``"shared"`` (attached to another tenant's in-flight compile).
    cache: dict | None = None
    cache_key: str | None = None

    #: worker ids (and, in process mode, worker PIDs) that executed this
    #: job, in order - a preempted-and-migrated job lists several.
    workers: list[int] = field(default_factory=list)
    pids: list[int] = field(default_factory=list)
    preemptions: int = 0
    #: lost-worker retries consumed.
    attempts: int = 0
    #: Vcycles completed so far (updated at chunk/preemption boundaries).
    progress: int = 0
    #: worker id that must NOT resume this job next (migration target
    #: exclusion after a preemption), or None.
    avoid_worker: int | None = None

    result: dict | None = None
    error: str | None = None

    #: cooperative preemption flag polled by the checkpoint driver
    #: (thread mode) / between chunks (process mode).
    preempt_flag: threading.Event = field(default_factory=threading.Event,
                                          repr=False)
    #: set by the server when the job reaches a terminal state.
    done_flag: Any = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def advance(self, new_state: str) -> None:
        """Transition to ``new_state``, enforcing the state machine."""
        if new_state not in TRANSITIONS:
            raise JobStateError(f"unknown job state {new_state!r}")
        if new_state not in TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.id}: illegal transition "
                f"{self.state!r} -> {new_state!r}")
        self.state = new_state
        if new_state in TERMINAL_STATES:
            self._t_done = time.monotonic()

    def fail(self, error: str) -> None:
        """Move to ``failed`` from any non-terminal state."""
        if self.state in TERMINAL_STATES:
            raise JobStateError(
                f"job {self.id}: cannot fail from terminal state "
                f"{self.state!r}")
        self.error = error
        self.state = "failed"
        self._t_done = time.monotonic()

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def latency_s(self) -> float | None:
        """Submit-to-terminal latency, or None while in flight."""
        if self._t_done is None:
            return None
        return self._t_done - self._t_submit

    def as_dict(self) -> dict:
        """JSON-safe view (the wire format of the socket protocol)."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "design": self.design,
            "cycles": self.cycles,
            "engine": self.engine,
            "priority": self.priority,
            "preemptible": self.preemptible,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "cache": self.cache,
            "cache_key": self.cache_key,
            "workers": list(self.workers),
            "pids": list(self.pids),
            "preemptions": self.preemptions,
            "attempts": self.attempts,
            "progress": self.progress,
            "result": self.result,
            "error": self.error,
            "latency_s": self.latency_s,
        }
