"""The multi-tenant simulation job server (``repro serve``).

One asyncio event loop fronts the whole existing stack:

* **submission queue with tenant priorities and fair scheduling** -
  :class:`FairQueue` keeps one FIFO per tenant and stride-schedules
  across them (a tenant's share of dispatches is proportional to its
  jobs' priority), so a chatty tenant cannot starve a quiet one;
* **content-addressed dedupe** - every submission is keyed through the
  PR-2 compile cache (:func:`~repro.compiler.cache.compile_cache_key`);
  fingerprint-identical circuits from different tenants compile exactly
  once (in-flight submissions share the same compile future, later ones
  hit the disk artifact);
* **preemption and migration** - jobs execute under
  :func:`~repro.checkpoint.driver.run_with_checkpoints` with the PR-5
  snapshot format as the handoff mechanism: a preempted job (priority
  pressure or an explicit :meth:`SimulationServer.preempt`) stops -
  mid-Vcycle on the checking engines - publishes a durable snapshot,
  and resumes bit-identically on a *different* worker;
* **fault isolation** - in ``mode="process"`` each job chunk runs on a
  leased :class:`~repro.pool.PersistentPool` worker; a SIGKILLed worker
  surfaces as :class:`~repro.pool.PoolWorkerLost`, the job is retried
  from its last snapshot (``retries`` budget) or failed loudly - never
  a hang;
* **metrics** - per-job / per-tenant counters and latency percentiles,
  exported through the :mod:`repro.obs` Prometheus textfile path
  (:func:`repro.obs.export.serve_prometheus_textfile`) and validated
  against ``docs/serve.schema.json``.

The server is usable fully in-process (the test suites and
``benchmarks/bench_serve.py`` drive it that way) or over a unix-domain
socket speaking newline-delimited JSON (:func:`serve_unix`, the
``repro serve`` / ``repro submit`` transport).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import shutil
import tempfile
import time
from collections import deque
from pathlib import Path

from ..checkpoint.driver import run_with_checkpoints
from ..checkpoint.store import CheckpointStore
from ..compiler.cache import CompileCache
from ..compiler.driver import CompilerOptions, compile_circuit
from ..machine.config import MachineConfig
from ..machine.grid import ENGINES
from ..pool import PersistentPool, PoolWorkerLost
from .jobs import Job, state_digest

#: Current shape version of :meth:`SimulationServer.metrics_snapshot`.
SERVE_SCHEMA_VERSION = 1

#: Worker execution modes.
MODES = ("thread", "process")


# ---------------------------------------------------------------------------
# Fair scheduling.
# ---------------------------------------------------------------------------


class FairQueue:
    """Stride scheduler over per-tenant FIFOs.

    Each dispatch charges the chosen tenant ``stride / priority`` of
    virtual time and the next dispatch goes to the lowest-virtual-time
    tenant with work queued - so over any window, tenants receive
    dispatch shares proportional to their priorities, independent of
    submission rates.  A tenant going idle and returning is re-based to
    the current minimum (it cannot bank credit while idle).  Ties break
    by tenant name for determinism.
    """

    def __init__(self, stride: int = 1 << 16) -> None:
        self._stride = float(stride)
        self._queues: dict[str, deque] = {}
        self._pass: dict[str, float] = {}

    def push(self, job: Job, front: bool = False) -> None:
        queue = self._queues.get(job.tenant)
        if queue is None:
            queue = self._queues[job.tenant] = deque()
        if not queue:
            active = [self._pass[t] for t, q in self._queues.items()
                      if q and t != job.tenant]
            floor = min(active) if active else 0.0
            self._pass[job.tenant] = max(
                self._pass.get(job.tenant, 0.0), floor)
        if front:
            queue.appendleft(job)
        else:
            queue.append(job)

    def pop(self, avoid_worker: int | None = None) -> Job | None:
        """Next job by stride order; skips tenants whose head job is
        pinned away from ``avoid_worker`` (post-preemption migration).
        Returns None when nothing eligible is queued."""
        best: str | None = None
        for tenant in sorted(self._queues):
            queue = self._queues[tenant]
            if not queue:
                continue
            if avoid_worker is not None \
                    and queue[0].avoid_worker == avoid_worker:
                continue
            if best is None or self._pass[tenant] < self._pass[best]:
                best = tenant
        if best is None:
            return None
        job = self._queues[best].popleft()
        self._pass[best] += self._stride / max(1, job.priority)
        return job

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def queued_tenants(self) -> list[str]:
        return [t for t, q in self._queues.items() if q]


# ---------------------------------------------------------------------------
# The server.
# ---------------------------------------------------------------------------


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty list."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


class SimulationServer:
    """Asyncio multi-tenant job server over the compile/run/checkpoint
    stack.  Construct, ``await start()``, ``await submit(...)``,
    ``await wait(job_id)``, ``await close()`` - or use it as an async
    context manager."""

    def __init__(self, *, workers: int = 2, mode: str = "thread",
                 config: MachineConfig | None = None,
                 engine_default: str = "fast",
                 cache_dir: str | None = None,
                 work_dir: str | None = None,
                 checkpoint_every: int = 0,
                 chunk_vcycles: int = 256,
                 preempt_grain: int = 16,
                 retries: int = 1,
                 keep_snapshots: int = 3) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if engine_default not in ENGINES:
            raise ValueError(f"unknown engine {engine_default!r}")
        self.workers = workers
        self.mode = mode
        self.config = config or MachineConfig(grid_x=8, grid_y=8)
        self.engine_default = engine_default
        self.checkpoint_every = checkpoint_every
        self.chunk_vcycles = chunk_vcycles
        self.preempt_grain = preempt_grain
        self.retries = retries
        self.keep_snapshots = keep_snapshots

        self._owned_dirs: list[Path] = []
        self.cache_dir = Path(cache_dir) if cache_dir \
            else self._own_dir("repro-serve-cache-")
        self.work_dir = Path(work_dir) if work_dir \
            else self._own_dir("repro-serve-work-")
        self._options = CompilerOptions(config=self.config,
                                        cache_dir=str(self.cache_dir))
        self._cache = CompileCache(self.cache_dir)

        self._jobs: dict[int, Job] = {}
        self._circuits: dict[int, object] = {}
        self._queue = FairQueue()
        self._running: dict[int, Job] = {}
        self._compiles: dict[str, asyncio.Future] = {}
        self._next_id = 1
        self._tasks: list[asyncio.Task] = []
        self._cond: asyncio.Condition | None = None
        self._pool: PersistentPool | None = None
        self._started = time.monotonic()
        self.shutdown_event: asyncio.Event | None = None

        # Counters (per-event, monotonic; state counts are derived from
        # the live job table in metrics_snapshot).
        self.counter = {"submitted": 0, "completed": 0, "failed": 0,
                        "preempted": 0, "retried": 0,
                        "compiles": 0, "cache_hits": 0,
                        "inflight_shared": 0}
        self._tenant_counters: dict[str, dict[str, int]] = {}
        self._latencies: list[float] = []

    def _own_dir(self, prefix: str) -> Path:
        path = Path(tempfile.mkdtemp(prefix=prefix))
        self._owned_dirs.append(path)
        return path

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "SimulationServer":
        if self._cond is not None:
            raise RuntimeError("server already started")
        self._cond = asyncio.Condition()
        self.shutdown_event = asyncio.Event()
        self._tasks = [asyncio.create_task(self._worker_loop(wid),
                                           name=f"serve-worker-{wid}")
                       for wid in range(self.workers)]
        return self

    async def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        for path in self._owned_dirs:
            shutil.rmtree(path, ignore_errors=True)
        self._owned_dirs = []

    async def __aenter__(self) -> "SimulationServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- submission ----------------------------------------------------
    async def submit(self, *, tenant: str = "default",
                     design: str | None = None, circuit=None,
                     cycles: int | None = None, engine: str | None = None,
                     priority: int = 1, preemptible: bool = True) -> Job:
        """Queue one simulation job; returns the live :class:`Job`.

        ``design`` names a registry design; ``circuit`` submits an IR
        circuit directly (in-process callers).  ``cycles`` defaults to
        the design's driver-complete budget + 300.
        """
        if self._cond is None:
            raise RuntimeError("server is not started")
        engine = engine or self.engine_default
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
        if circuit is None:
            if design is None:
                raise ValueError("submit needs design= or circuit=")
            from ..designs import DESIGNS
            info = DESIGNS[design]
            circuit = info.build()
            if cycles is None:
                cycles = info.cycles + 300
        elif cycles is None:
            cycles = 1_000_000
        if priority < 1:
            raise ValueError("priority must be >= 1")

        job = Job(id=self._next_id, tenant=tenant, design=design,
                  cycles=int(cycles), engine=engine, priority=priority,
                  preemptible=preemptible)
        self._next_id += 1
        job.done_flag = asyncio.Event()
        self._jobs[job.id] = job
        self._circuits[job.id] = circuit
        self.counter["submitted"] += 1
        self._tenant_counter(tenant, "submitted")
        async with self._cond:
            self._queue.push(job)
            self._maybe_preempt(job)
            self._cond.notify_all()
        return job

    async def wait(self, job_id: int, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state."""
        job = self._jobs[job_id]
        if not job.finished:
            await asyncio.wait_for(job.done_flag.wait(), timeout)
        return job

    def job(self, job_id: int) -> Job:
        return self._jobs[job_id]

    def preempt(self, job_id: int) -> bool:
        """Request preemption of a running job; True when delivered."""
        job = self._jobs[job_id]
        if job.state != "running" or not job.preemptible:
            return False
        job.preempt_flag.set()
        return True

    def _maybe_preempt(self, incoming: Job) -> None:
        """Priority preemption on submit: if every worker is busy and
        the newcomer outranks the weakest preemptible running job, that
        victim is asked to yield (it will requeue and migrate)."""
        if len(self._running) < self.workers:
            return
        victims = [j for j in self._running.values()
                   if j.preemptible and not j.preempt_flag.is_set()
                   and j.priority < incoming.priority]
        if not victims:
            return
        victim = min(victims, key=lambda j: (j.priority, j.id))
        victim.preempt_flag.set()

    def _tenant_counter(self, tenant: str, key: str) -> None:
        counters = self._tenant_counters.setdefault(
            tenant, {"submitted": 0, "completed": 0, "failed": 0,
                     "preempted": 0})
        counters[key] += 1

    # -- scheduling / execution ----------------------------------------
    async def _worker_loop(self, wid: int) -> None:
        while True:
            async with self._cond:
                avoid = wid if self.workers > 1 else None
                job = self._queue.pop(avoid_worker=avoid)
                while job is None:
                    await self._cond.wait()
                    job = self._queue.pop(avoid_worker=avoid)
                self._running[wid] = job
            try:
                await self._execute(wid, job)
            finally:
                async with self._cond:
                    self._running.pop(wid, None)
                    self._cond.notify_all()

    async def _execute(self, wid: int, job: Job) -> None:
        job.workers.append(wid)
        job.avoid_worker = None
        try:
            if job.state == "pending":
                job.advance("compiling")
            compiled = await self._compiled(job)
            job.advance("running")
            job.preempt_flag.clear()
            if self.mode == "process":
                payload = await self._run_process(job)
            else:
                payload = await asyncio.to_thread(
                    self._run_thread, job, compiled)
        except PoolWorkerLost as exc:
            await self._lost_worker(wid, job, exc)
            return
        except Exception as exc:  # noqa: BLE001 - job-scoped failure
            self._finish(job, error=f"{type(exc).__name__}: {exc}")
            return
        if payload is None:
            await self._requeue_preempted(wid, job)
        else:
            self._finish(job, result=payload)

    async def _lost_worker(self, wid: int, job: Job,
                           exc: PoolWorkerLost) -> None:
        """A worker process died under the job: retry from the last
        durable snapshot on a fresh worker, or fail loudly."""
        job.attempts += 1
        if job.attempts > self.retries:
            self._finish(job, error=f"worker lost ({exc}); "
                                    f"retries exhausted")
            return
        self.counter["retried"] += 1
        job.advance("pending")
        job.avoid_worker = wid if self.workers > 1 else None
        async with self._cond:
            self._queue.push(job, front=True)
            self._cond.notify_all()

    async def _requeue_preempted(self, wid: int, job: Job) -> None:
        job.advance("preempted")
        job.preemptions += 1
        job.preempt_flag.clear()
        # Migration contract: the resume lands on a different worker
        # whenever the fleet has one.
        job.avoid_worker = wid if self.workers > 1 else None
        self.counter["preempted"] += 1
        self._tenant_counter(job.tenant, "preempted")
        async with self._cond:
            self._queue.push(job, front=True)
            self._cond.notify_all()

    def _finish(self, job: Job, result: dict | None = None,
                error: str | None = None) -> None:
        if error is not None:
            job.fail(error)
            self.counter["failed"] += 1
            self._tenant_counter(job.tenant, "failed")
        else:
            job.result = result
            job.progress = result["vcycles"]
            job.advance("done")
            self.counter["completed"] += 1
            self._tenant_counter(job.tenant, "completed")
        self._latencies.append(job.latency_s)
        job.done_flag.set()
        shutil.rmtree(self._job_dir(job), ignore_errors=True)

    # -- compilation / dedupe ------------------------------------------
    async def _compiled(self, job: Job):
        """CompileResult for the job's circuit, deduped across tenants.

        The first job for a cache key runs the compile (and stores the
        artifact); concurrent jobs for the same key await that same
        future (``status="shared"``); later jobs hit the disk artifact
        (``status="hit"``).  ``CompileReport.cache`` statistics back
        every status, so the dedupe contract is test-assertable.
        """
        circuit = self._circuits[job.id]
        key = self._cache.key(circuit, self._options)
        job.cache_key = key
        record = job.cache is None
        fut = self._compiles.get(key)
        if fut is None:
            fut = asyncio.get_running_loop().create_future()
            self._compiles[key] = fut
            try:
                compiled = await asyncio.to_thread(
                    compile_circuit, circuit, self._options)
            except BaseException as exc:
                fut.set_exception(exc)
                self._compiles.pop(key, None)
                # Consume the exception so an un-awaited shared future
                # does not warn; sharers re-raise via await below.
                fut.exception()
                raise
            fut.set_result(compiled)
            self._compiles.pop(key, None)
            if record:
                job.cache = dict(compiled.report.cache)
                if job.cache["status"] == "miss":
                    self.counter["compiles"] += 1
                else:
                    self.counter["cache_hits"] += 1
        else:
            compiled = await asyncio.shield(fut)
            if record:
                job.cache = dict(compiled.report.cache)
                job.cache["status"] = "shared"
                self.counter["inflight_shared"] += 1
        return compiled

    # -- execution backends --------------------------------------------
    def _job_dir(self, job: Job) -> Path:
        return self.work_dir / f"job-{job.id:06d}"

    def _run_thread(self, job: Job, compiled) -> dict | None:
        """Thread-mode executor (runs in a worker thread): advance the
        job to completion, a preemption point, or its budget."""
        store = CheckpointStore(self._job_dir(job),
                                keep=self.keep_snapshots)
        resume = job.preemptions > 0 or job.attempts > 0
        run = run_with_checkpoints(
            compiled.program, job.cycles, config=self.config,
            engine=job.engine, store=store,
            checkpoint_every=self.checkpoint_every, resume=resume,
            preempt=job.preempt_flag.is_set,
            preempt_grain=self.preempt_grain)
        job.progress = run.result.vcycles
        if run.preempted:
            return None
        return self._result_payload(run)

    async def _run_process(self, job: Job) -> dict | None:
        """Process-mode executor: run the job in bounded-Vcycle chunks
        on a leased pool worker, each chunk resuming from (and ending
        with) a durable snapshot.  Preemption is honored between
        chunks; a dead worker raises PoolWorkerLost to the caller."""
        if self._pool is None:
            self._pool = PersistentPool(1)
        lease = await asyncio.to_thread(self._pool.lease)
        job.pids.append(lease.pid or -1)
        try:
            while True:
                request = {
                    "key": job.cache_key,
                    "cache_dir": str(self.cache_dir),
                    "config": dataclasses.asdict(self.config),
                    "engine": job.engine,
                    "budget": job.cycles,
                    "chunk": self.chunk_vcycles,
                    "ckpt_dir": str(self._job_dir(job)),
                    "keep": self.keep_snapshots,
                    "checkpoint_every": self.checkpoint_every,
                    "resume": (job.progress > 0 or job.preemptions > 0
                               or job.attempts > 0),
                }
                reply = await asyncio.to_thread(
                    lease.run, _serve_run_chunk, request)
                job.progress = reply["vcycles"]
                if reply["done"]:
                    return {k: reply[k] for k in
                            ("vcycles", "finished", "displays",
                             "counters", "state_sha256", "resumed_from")}
                if job.preempt_flag.is_set():
                    return None
        finally:
            await asyncio.to_thread(self._pool.reclaim, lease)

    @staticmethod
    def _result_payload(run) -> dict:
        mres = run.result
        return {
            "vcycles": mres.vcycles,
            "finished": mres.finished,
            "displays": list(mres.displays),
            "counters": mres.counters.as_dict(),
            "state_sha256": state_digest(run.machine),
            "resumed_from": run.resumed_from,
        }

    # -- metrics -------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """The service metrics export (``docs/serve.schema.json``)."""
        states = {"pending": 0, "compiling": 0, "running": 0,
                  "preempted": 0, "done": 0, "failed": 0}
        for job in self._jobs.values():
            states[job.state] += 1
        compile_events = (self.counter["compiles"]
                          + self.counter["cache_hits"]
                          + self.counter["inflight_shared"])
        deduped = (self.counter["cache_hits"]
                   + self.counter["inflight_shared"])
        latencies = self._latencies
        latency = {"count": len(latencies)}
        if latencies:
            latency.update({
                "mean_s": sum(latencies) / len(latencies),
                "p50_s": _percentile(latencies, 0.50),
                "p99_s": _percentile(latencies, 0.99),
            })
        else:
            latency.update({"mean_s": 0.0, "p50_s": 0.0, "p99_s": 0.0})
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "workers": self.workers,
            "mode": self.mode,
            "uptime_s": time.monotonic() - self._started,
            "jobs": {
                "submitted": self.counter["submitted"],
                "completed": self.counter["completed"],
                "failed": self.counter["failed"],
                "preempted": self.counter["preempted"],
                "retried": self.counter["retried"],
                "states": states,
            },
            "compile": {
                "compiles": self.counter["compiles"],
                "cache_hits": self.counter["cache_hits"],
                "inflight_shared": self.counter["inflight_shared"],
                "hit_rate": (deduped / compile_events
                             if compile_events else 0.0),
            },
            "latency": latency,
            "tenants": {t: dict(c)
                        for t, c in sorted(self._tenant_counters.items())},
        }

    def prometheus(self) -> str:
        from ..obs.export import serve_prometheus_textfile
        return serve_prometheus_textfile(self.metrics_snapshot())


# ---------------------------------------------------------------------------
# Process-mode worker entry point (dispatched by name through the pool).
# ---------------------------------------------------------------------------


def _serve_run_chunk(request: dict) -> dict:
    """Advance one job by up to ``chunk`` Vcycles on a leased worker.

    The compiled program travels as a content-addressed cache key, never
    over the pipe; job state travels as PR-5 snapshots in the job's
    checkpoint directory.  Each chunk that does not finish the job ends
    with a durable snapshot (the driver's preemption handoff), so a
    SIGKILL at any instant loses at most one chunk of progress.
    """
    cache = CompileCache(request["cache_dir"])
    compiled = cache.get(request["key"])
    if compiled is None:
        raise RuntimeError(
            f"compiled artifact {request['key'][:12]}... missing from "
            f"cache {request['cache_dir']}")
    store = CheckpointStore(request["ckpt_dir"], keep=request["keep"])
    seen = {"n": 0}

    def on_vcycle(_machine) -> None:
        seen["n"] += 1

    run = run_with_checkpoints(
        compiled.program, request["budget"],
        config=MachineConfig(**request["config"]),
        engine=request["engine"], store=store,
        checkpoint_every=request["checkpoint_every"],
        resume=request["resume"], on_vcycle=on_vcycle,
        preempt=lambda: seen["n"] >= request["chunk"])
    mres = run.result
    done = mres.finished or mres.vcycles >= request["budget"]
    out = {"vcycles": mres.vcycles, "finished": mres.finished,
           "done": done, "resumed_from": run.resumed_from}
    if done:
        out["displays"] = list(mres.displays)
        out["counters"] = mres.counters.as_dict()
        out["state_sha256"] = state_digest(run.machine)
    return out


# ---------------------------------------------------------------------------
# Unix-domain-socket front end (newline-delimited JSON).
# ---------------------------------------------------------------------------


async def _dispatch(server: SimulationServer, request: dict) -> dict:
    op = request.get("op")
    if op == "submit":
        job = await server.submit(
            tenant=request.get("tenant", "default"),
            design=request.get("design"),
            cycles=request.get("cycles"),
            engine=request.get("engine"),
            priority=int(request.get("priority", 1)),
            preemptible=bool(request.get("preemptible", True)))
        return {"ok": True, "job": job.id}
    if op == "wait":
        try:
            job = await server.wait(int(request["job"]),
                                    timeout=request.get("timeout"))
        except asyncio.TimeoutError:
            return {"ok": False, "error": "timeout",
                    "job": server.job(int(request["job"])).as_dict()}
        return {"ok": True, "job": job.as_dict()}
    if op == "status":
        if "job" in request:
            return {"ok": True,
                    "job": server.job(int(request["job"])).as_dict()}
        return {"ok": True, "metrics": server.metrics_snapshot()}
    if op == "preempt":
        return {"ok": True,
                "delivered": server.preempt(int(request["job"]))}
    if op == "metrics":
        return {"ok": True, "prometheus": server.prometheus()}
    if op == "shutdown":
        server.shutdown_event.set()
        return {"ok": True, "shutdown": True}
    return {"ok": False, "error": f"unknown op {op!r}"}


async def serve_unix(server: SimulationServer, path: str):
    """Expose ``server`` on a unix socket; one JSON object per line in,
    one per line out.  Returns the asyncio server (close it to stop
    accepting; the SimulationServer itself is closed separately)."""

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = await _dispatch(server, json.loads(line))
                except Exception as exc:  # noqa: BLE001 - wire boundary
                    response = {"ok": False,
                                "error": f"{type(exc).__name__}: {exc}"}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels in-flight connection handlers;
            # that is a clean exit, not an error to log.
            pass
        finally:
            writer.close()

    return await asyncio.start_unix_server(handle, path=path)
