"""FPGA resource model of the Manticore implementation (paper SS7.2,
Table 7, SSA.7).

Per-core resource usage and U200 capacities are the paper's published
numbers; the model derives the quantities the paper reports from them:
URAMs are the binding resource (two per core - instruction memory and
scratchpad), capping the grid at 398 cores after the cache takes four.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceVector:
    lut: int = 0
    lutram: int = 0
    ff: int = 0
    bram: int = 0
    uram: int = 0
    dsp: int = 0
    srl: int = 0

    def __mul__(self, n: int) -> "ResourceVector":
        return ResourceVector(*(getattr(self, f) * n for f in
                                ("lut", "lutram", "ff", "bram", "uram",
                                 "dsp", "srl")))

    def fits_in(self, other: "ResourceVector") -> bool:
        return all(getattr(self, f) <= getattr(other, f)
                   for f in ("lut", "lutram", "ff", "bram", "uram", "dsp"))

    def utilization(self, capacity: "ResourceVector") -> dict[str, float]:
        out = {}
        for f in ("lut", "lutram", "ff", "bram", "uram", "dsp", "srl"):
            cap = getattr(capacity, f)
            out[f] = 100.0 * getattr(self, f) / cap if cap else 0.0
        return out


#: One Manticore core (paper Table 7).
CORE = ResourceVector(lut=545, lutram=128, ff=1358, bram=4, uram=2,
                      dsp=1, srl=102)

#: Alveo U200 totals (XCU200: 1182k LUTs, 2364k FFs, 960 URAM, 2160
#: 36Kb-BRAM, 6840 DSP).  LUTRAM/SRL capacities derive from the paper's
#: percentages (128 LUTRAM = 0.02%, 102 SRL = 0.02%).
U200 = ResourceVector(lut=1_182_000, lutram=591_840, ff=2_364_480,
                      bram=2_160, uram=960, dsp=6_840, srl=591_840)

#: URAMs available to user logic on the U200 platform (paper cites 800
#: available, of which the cache uses 4).
U200_AVAILABLE_URAM = 800
CACHE_URAM = 4
CORE_URAM = 2


def max_cores(available_uram: int = U200_AVAILABLE_URAM,
              cache_uram: int = CACHE_URAM) -> int:
    """URAM-limited core count: (800 - 4) / 2 = 398 (paper SS7.2)."""
    return (available_uram - cache_uram) // CORE_URAM


def max_cores_heterogeneous(scratchpad_fraction: float,
                            available_uram: int = U200_AVAILABLE_URAM,
                            cache_uram: int = CACHE_URAM) -> int:
    """Core bound when only a fraction of cores carry scratchpads
    (paper SSA.7: "one optimization is a heterogeneous implementation
    where some cores lack a scratchpad").

    A scratchpad-less core needs one URAM (instruction memory only), a
    full core needs two.
    """
    if not (0.0 <= scratchpad_fraction <= 1.0):
        raise ValueError("fraction must be within [0, 1]")
    budget = available_uram - cache_uram
    per_core = 1.0 + scratchpad_fraction
    return int(budget / per_core)


def grid_resources(cores: int) -> ResourceVector:
    """Aggregate core resources for a grid (excludes shell/cache/NoC)."""
    return CORE * cores


def core_utilization_percent() -> dict[str, float]:
    """Table 7's percentage row."""
    return CORE.utilization(U200)


def sram_capacity_mib(cores: int) -> float:
    """On-chip SRAM for data+instructions (paper: 225 cores ~ 18.45 MiB
    counting register files; 14.4 MiB of URAM alone)."""
    imem_bytes = 4096 * 8          # 4096 x 64b URAM
    scratch_bytes = 16384 * 2      # 16384 x 16b URAM
    regfile_bytes = 2048 * 17 // 8 * 4  # 4 mirrored BRAM copies
    per_core = imem_bytes + scratch_bytes + regfile_bytes
    return cores * per_core / (1 << 20)
