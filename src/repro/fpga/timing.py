"""Frequency and floorplanning model (paper SS7.2, Table 1, SSA.5).

The U200 is a three-SLR device with a fixed PCIe shell occupying the
center-right; designs under ~160 cores fit in one unperturbed region and
close timing near 500 MHz; larger grids wrap around the shell and need
guided floorplanning (core spreading across SLRs, switches pinned to the
central SLR, dedicated SLR-crossing registers) to avoid a timing cliff.

The model encodes the published Table 1 measurements and interpolates
between them so arbitrary grid sizes return plausible frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper Table 1: grid -> (auto MHz, guided MHz or None if not run).
TABLE1: dict[tuple[int, int], tuple[float, float | None]] = {
    (8, 8): (500.0, None),
    (10, 10): (485.0, None),
    (12, 12): (480.0, 500.0),
    (15, 15): (395.0, 475.0),
    (16, 16): (180.0, 450.0),
}

#: Cores that fit above the shell without SLR gymnastics (paper SS7.2).
SINGLE_REGION_CORES = 160


@dataclass(frozen=True)
class TimingEstimate:
    cores: int
    auto_mhz: float
    guided_mhz: float

    @property
    def best_mhz(self) -> float:
        return max(self.auto_mhz, self.guided_mhz)


def _interp(points: list[tuple[int, float]], cores: int) -> float:
    points = sorted(points)
    if cores <= points[0][0]:
        return points[0][1]
    if cores >= points[-1][0]:
        return points[-1][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= cores <= x1:
            frac = (cores - x0) / (x1 - x0)
            return y0 + (y1 - y0) * frac
    return points[-1][1]


_AUTO_POINTS = [(x * y, mhz) for (x, y), (mhz, _g) in TABLE1.items()]
_GUIDED_POINTS = [(x * y, g if g is not None else mhz)
                  for (x, y), (mhz, g) in TABLE1.items()]


def frequency_mhz(grid_x: int, grid_y: int, guided: bool = True,
                  ) -> TimingEstimate:
    """Achievable clock for a grid, per the Table 1 model."""
    cores = grid_x * grid_y
    return TimingEstimate(
        cores=cores,
        auto_mhz=_interp(_AUTO_POINTS, cores),
        guided_mhz=_interp(_GUIDED_POINTS, cores),
    )


def needs_guided_floorplan(grid_x: int, grid_y: int) -> bool:
    """Grids beyond the single unperturbed region want guidance."""
    return grid_x * grid_y > SINGLE_REGION_CORES


def table1_rows() -> list[dict]:
    rows = []
    for (x, y), (auto, guided) in sorted(TABLE1.items()):
        rows.append({
            "grid": f"{x}x{y}", "cores": x * y,
            "auto_mhz": auto,
            "guided_mhz": guided if guided is not None else "-",
        })
    return rows
