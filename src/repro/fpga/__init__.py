"""Physical (FPGA) model of the Manticore prototype: resource accounting
(Table 7) and the frequency/floorplanning model (Table 1)."""

from .resources import (
    CACHE_URAM,
    CORE,
    CORE_URAM,
    U200,
    U200_AVAILABLE_URAM,
    ResourceVector,
    core_utilization_percent,
    grid_resources,
    max_cores,
    sram_capacity_mib,
)
from .timing import (
    SINGLE_REGION_CORES,
    TABLE1,
    TimingEstimate,
    frequency_mhz,
    needs_guided_floorplan,
    table1_rows,
)

__all__ = [
    "CACHE_URAM", "CORE", "CORE_URAM", "ResourceVector",
    "SINGLE_REGION_CORES", "TABLE1", "TimingEstimate", "U200",
    "U200_AVAILABLE_URAM", "core_utilization_percent", "frequency_mhz",
    "grid_resources", "max_cores", "needs_guided_floorplan",
    "sram_capacity_mib", "table1_rows",
]
