"""Persistent worker-process pool.

The PR-2 parallel compiler forked a fresh ``ProcessPoolExecutor`` for
every parallel phase, so each ``jobs=N`` compile paid pool spawn +
module import + full argument pickling per phase — and measured
*slower* than serial (0.52–0.83× in ``BENCH_compile.json``).  This
module replaces that with a pool of **persistent** workers:

* workers are spawned **once** per process (module-level registry,
  reused across every compile in the session, torn down at interpreter
  exit);
* tasks name their function by ``module:qualname`` — only the function
  *reference* and the argument chunk cross the pipe, never code
  objects, and with the default ``fork`` start method the worker
  already holds every imported module warm;
* items are split into **contiguous chunks** (one per worker) so
  results reassemble in input order and a ``jobs=N`` map stays
  bit-identical to the serial list comprehension;
* a dead worker (segfault, ``os._exit``, OOM-kill) is respawned and
  its chunk retried **once**; a second death raises
  :class:`PoolWorkerLost` — the pool recovers or fails loudly, it
  never hangs.

Worker exceptions are pickled back and re-raised in the parent with
their original type, so error behavior matches the serial path.  The
start method is ``fork`` where available (cheapest, inherits warm
modules) and can be overridden with ``REPRO_POOL_START=spawn`` for
platforms or tests that need it.
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing as mp
import os
import pickle
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class PoolWorkerLost(RuntimeError):
    """A worker died and its replacement died too — the task chunk is
    undeliverable.  Raised instead of hanging; callers may fall back to
    the serial path (which either succeeds or reproduces the real
    error)."""


def start_method() -> str:
    """``$REPRO_POOL_START`` override, else ``fork`` when the platform
    has it (cheap, warm modules), else the platform default."""
    env = os.environ.get("REPRO_POOL_START")
    if env:
        return env
    if "fork" in mp.get_all_start_methods():
        return "fork"
    return mp.get_start_method()


def _resolve(module: str, qualname: str) -> Callable:
    obj = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def task_ref(fn: Callable) -> tuple[str, str]:
    """``(module, qualname)`` for a pool-dispatchable function.

    Raises :class:`pickle.PicklingError` for anything that cannot be
    re-imported by name in a worker (lambdas, closures, bound methods)
    so callers can fall back to their serial path — the same contract
    the old executor-based pool had.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise pickle.PicklingError(f"{fn!r} is not importable by name")
    try:
        if _resolve(module, qualname) is not fn:
            raise pickle.PicklingError(
                f"{module}:{qualname} does not resolve back to {fn!r}")
    except (ImportError, AttributeError) as exc:
        raise pickle.PicklingError(str(exc)) from exc
    return module, qualname


def _worker_main(conn) -> None:
    """Loop: receive ``("map", module, qualname, chunk)`` tasks, reply
    ``("ok", results)`` / ``("err", pickled_exception)``.  Exits on
    ``("exit",)`` or when the parent's end of the pipe closes."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "exit":
            return
        if msg[0] == "ping":
            conn.send(("pong", os.getpid()))
            continue
        _, module, qualname, chunk = msg
        try:
            fn = _resolve(module, qualname)
            out = ("ok", [fn(item) for item in chunk])
        except BaseException as exc:  # noqa: BLE001 — shipped to parent
            try:
                blob = pickle.dumps(exc)
            except Exception:
                blob = pickle.dumps(RuntimeError(repr(exc)))
            out = ("err", blob)
        try:
            conn.send(out)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    __slots__ = ("proc", "conn")

    def __init__(self, ctx) -> None:
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(target=_worker_main, args=(child,),
                                daemon=True)
        self.proc.start()
        child.close()

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5)


class WorkerLease:
    """A worker process leased out of a :class:`PersistentPool` for
    exclusive, stateful use (the :mod:`repro.serve` job executors).

    Unlike :meth:`PersistentPool.map` - which chunks one call over the
    shared workers - a lease pins a single process so a sequence of
    calls shares that process's warm state (imported modules, page
    cache).  A lease never hangs on a dead worker: any pipe failure
    raises :class:`PoolWorkerLost` immediately, and the caller decides
    whether to retry on a fresh lease or fail the job.
    """

    __slots__ = ("_pool", "_worker", "closed")

    def __init__(self, pool: "PersistentPool", worker: _Worker) -> None:
        self._pool = pool
        self._worker = worker
        self.closed = False

    @property
    def pid(self) -> int | None:
        return self._worker.proc.pid

    @property
    def alive(self) -> bool:
        return not self.closed and self._worker.alive

    def run(self, fn: Callable[[T], R], item: T) -> R:
        """``fn(item)`` on the leased worker process.

        Worker exceptions re-raise here with their original type; a
        dead worker (SIGKILL, OOM, segfault) raises
        :class:`PoolWorkerLost` instead of blocking forever.
        """
        if self.closed:
            raise ValueError("lease already reclaimed")
        module, qualname = task_ref(fn)
        w = self._worker
        try:
            w.conn.send(("map", module, qualname, [item]))
            reply = w.conn.recv()
        except (EOFError, BrokenPipeError, OSError):
            raise PoolWorkerLost(
                f"leased worker (pid {w.proc.pid}) died running "
                f"{module}:{qualname}") from None
        if reply[0] == "err":
            raise pickle.loads(reply[1])
        return reply[1][0]


class PersistentPool:
    """``workers`` persistent processes executing chunked maps."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._ctx = mp.get_context(start_method())
        self._procs: list[_Worker | None] = [None] * workers
        #: healthy workers returned by :meth:`reclaim`, reused by the
        #: next :meth:`lease` so steady-state leasing spawns nothing.
        self._spares: list[_Worker] = []
        #: leases currently out, so :meth:`close` can tear them down.
        self._leased: list[WorkerLease] = []
        self.respawns = 0

    # ------------------------------------------------------------------
    def _worker(self, i: int) -> _Worker:
        w = self._procs[i]
        if w is None or not w.alive:
            if w is not None:
                w.kill()
            w = _Worker(self._ctx)
            self._procs[i] = w
        return w

    @property
    def pids(self) -> list[int | None]:
        return [w.proc.pid if w is not None and w.alive else None
                for w in self._procs]

    # ------------------------------------------------------------------
    @staticmethod
    def _chunks(items: Sequence, n: int) -> list[Sequence]:
        k, m = divmod(len(items), n)
        out, pos = [], 0
        for i in range(n):
            size = k + (1 if i < m else 0)
            out.append(items[pos:pos + size])
            pos += size
        return out

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``[fn(x) for x in items]`` over the persistent workers.

        Input order is preserved (contiguous chunks reassembled by
        index).  Worker exceptions re-raise here with their original
        type; a twice-dead worker raises :class:`PoolWorkerLost`.
        """
        items = list(items)
        if not items:
            return []
        module, qualname = task_ref(fn)
        n = min(self.workers, len(items))
        chunks = [c for c in self._chunks(items, n) if c]
        task = ("map", module, qualname)

        def _bury(i: int) -> None:
            w = self._procs[i]
            if w is not None:
                w.kill()
            self._procs[i] = None
            self.respawns += 1

        def _retry(i: int, chunk) -> tuple[str, object]:
            """One fresh-worker attempt after a death; a second death
            fails loudly instead of hanging."""
            w = self._worker(i)
            try:
                w.conn.send((*task, chunk))
                return w.conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                _bury(i)
                raise PoolWorkerLost(
                    f"pool worker {i} died twice running "
                    f"{module}:{qualname} on a {len(chunk)}-item chunk"
                ) from None

        # Pipeline: send every chunk before draining replies so the
        # workers overlap; deaths detected at recv() retry synchronously.
        sent: list[bool] = []
        for i, chunk in enumerate(chunks):
            w = self._worker(i)
            try:
                w.conn.send((*task, chunk))
                sent.append(True)
            except (BrokenPipeError, OSError):
                _bury(i)
                sent.append(False)

        results: list[R] = []
        error: BaseException | None = None
        for i, chunk in enumerate(chunks):
            try:
                if sent[i]:
                    try:
                        reply = self._procs[i].conn.recv()
                    except (EOFError, OSError):
                        _bury(i)
                        reply = _retry(i, chunk)
                else:
                    reply = _retry(i, chunk)
            except PoolWorkerLost as exc:
                error = error or exc
                continue
            if reply[0] == "err":
                error = error or pickle.loads(reply[1])
                continue
            results.extend(reply[1])
        if error is not None:
            raise error
        return results

    # ------------------------------------------------------------------
    # Leasing: dedicated workers for stateful callers (repro.serve).
    # ------------------------------------------------------------------
    def lease(self) -> WorkerLease:
        """Claim a dedicated worker process (reusing a reclaimed spare
        when one is alive, spawning otherwise).  Leased workers are
        tracked separately from the ``map`` workers, so leasing never
        perturbs chunked-map scheduling."""
        worker = None
        while self._spares:
            candidate = self._spares.pop()
            if candidate.alive:
                worker = candidate
                break
            candidate.kill()
        if worker is None:
            worker = _Worker(self._ctx)
        lease = WorkerLease(self, worker)
        self._leased.append(lease)
        return lease

    def reclaim(self, lease: WorkerLease) -> None:
        """Return a lease to the pool.  A healthy worker becomes a spare
        for the next :meth:`lease`; a dead one is buried.  Idempotent."""
        if lease.closed:
            return
        lease.closed = True
        if lease in self._leased:
            self._leased.remove(lease)
        if lease._worker.alive:
            self._spares.append(lease._worker)
        else:
            lease._worker.kill()

    # ------------------------------------------------------------------
    def ping(self) -> list[int]:
        """Round-trip every worker; returns their PIDs (spawning any
        that are missing)."""
        pids = []
        for i in range(self.workers):
            w = self._worker(i)
            w.conn.send(("ping",))
            pids.append(w.conn.recv()[1])
        return pids

    def close(self) -> None:
        for lease in list(self._leased):
            lease.closed = True
            lease._worker.kill()
        self._leased.clear()
        for w in self._spares:
            w.kill()
        self._spares.clear()
        for i, w in enumerate(self._procs):
            if w is None:
                continue
            try:
                w.conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
            w.kill()
            self._procs[i] = None


# ----------------------------------------------------------------------
# Module-level registry: one pool per worker count, reused for every
# parallel phase in the session so spawn cost is paid once.
# ----------------------------------------------------------------------

_POOLS: dict[int, PersistentPool] = {}


def get_pool(workers: int) -> PersistentPool:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = PersistentPool(workers)
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_pools)
