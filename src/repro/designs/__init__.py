"""The paper's nine RTL benchmarks (SS7.5) plus the SS7.7 microbenchmarks,
reimplemented on the netlist builder at parameterizable scale, each
wrapped in an assertion-based test driver.

``DESIGNS`` is the registry the benchmark harness iterates: paper name ->
build function + default simulated cycles, ordered by the paper's Table 3
columns (largest serial step first).

Every family carries three named scale tiers (:data:`SCALES`):

* ``small`` - the historical default sizes, tuned for an 8x8 grid and
  fast CI;
* ``paper`` - sized to populate the paper's 15x15 (225-core) machine;
* ``stretch`` - sized for a 32x32 grid, the forward-looking row of the
  workload bench trajectory.

``DesignInfo.build_at(scale)``/``cycles_at(scale)`` construct a tier;
the zero-argument ``build`` and ``cycles`` fields remain the ``small``
tier so existing harnesses keep their historical meaning.  Per-tier
cycle budgets are driver-complete (measured finish + headroom), because
every driver is self-checking and ``$finish``es on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Mapping

from ..netlist.ir import Circuit
from . import bc, blur, cgra, jpeg, mc, micro, mm, nocsim, rv32r, vta

#: Named scale tiers, smallest first.
SCALES: tuple[str, ...] = ("small", "paper", "stretch")


@dataclass(frozen=True)
class ScaleSpec:
    """One size tier of a design family: builder kwargs + cycle budget."""

    params: Mapping[str, int]
    cycles: int                 # driver-complete simulated cycles


@dataclass(frozen=True)
class DesignInfo:
    name: str
    build: Callable[[], Circuit]
    cycles: int                 # driver-complete cycles at ``small``
    description: str
    #: the raw parameterized builder behind ``build``
    builder: Callable[..., Circuit] | None = None
    #: scale tier name -> :class:`ScaleSpec`
    scales: Mapping[str, ScaleSpec] = field(
        default_factory=lambda: MappingProxyType({}))

    def build_at(self, scale: str = "small") -> Circuit:
        """Build this design at a named scale tier."""
        spec = self.scale_spec(scale)
        builder = self.builder or (lambda **kw: self.build())
        return builder(**dict(spec.params))

    def cycles_at(self, scale: str = "small") -> int:
        """Driver-complete cycle budget at a named scale tier."""
        return self.scale_spec(scale).cycles

    def scale_spec(self, scale: str) -> ScaleSpec:
        if scale not in self.scales:
            raise KeyError(
                f"design {self.name!r} has no scale {scale!r} "
                f"(known: {', '.join(self.scales)})")
        return self.scales[scale]


def _scales(**tiers: tuple[dict, int]) -> Mapping[str, ScaleSpec]:
    return MappingProxyType({
        name: ScaleSpec(MappingProxyType(params), cycles)
        for name, (params, cycles) in tiers.items()})


def _info(name: str, module, description: str,
          scales: Mapping[str, ScaleSpec]) -> DesignInfo:
    return DesignInfo(name, module.build, module.DEFAULT_CYCLES,
                      description, module.build, scales)


DESIGNS: dict[str, DesignInfo] = {
    "vta": _info(
        "vta", vta, "VTA-style GEMM ML accelerator",
        _scales(
            small=({"batch": 4, "block_in": 8, "block_out": 12},
                   vta.DEFAULT_CYCLES),
            paper=({"batch": 8, "block_in": 16, "block_out": 16}, 576),
            stretch=({"batch": 16, "block_in": 16, "block_out": 24},
                     1152),
        )),
    "mc": _info(
        "mc", mc, "Monte-Carlo fixed-point price predictor",
        _scales(
            small=({"walkers": 32, "steps": 64}, mc.DEFAULT_CYCLES),
            paper=({"walkers": 96, "steps": 96}, 160),
            stretch=({"walkers": 256, "steps": 128}, 192),
        )),
    "noc": _info(
        "noc", nocsim, "2D torus NoC with virtual channels",
        _scales(
            small=({"nx": 3, "ny": 3, "vcs": 1, "steps": 48},
                   nocsim.DEFAULT_CYCLES),
            paper=({"nx": 4, "ny": 4, "vcs": 2, "steps": 64}, 128),
            stretch=({"nx": 6, "ny": 6, "vcs": 2, "steps": 96}, 160),
        )),
    "mm": _info(
        "mm", mm, "systolic integer matrix multiplier",
        _scales(
            small=({"n": 8}, mm.DEFAULT_CYCLES),
            paper=({"n": 14}, 96),
            stretch=({"n": 20}, 128),
        )),
    "rv32r": _info(
        "rv32r", rv32r, "ring of small in-order processors",
        _scales(
            small=({"num_cores": 12, "iterations": 8},
                   rv32r.DEFAULT_CYCLES),
            paper=({"num_cores": 24, "iterations": 10}, 320),
            stretch=({"num_cores": 48, "iterations": 12}, 384),
        )),
    "cgra": _info(
        "cgra", cgra, "coarse-grained reconfigurable array",
        _scales(
            small=({"rows": 9, "cols": 9, "steps": 48},
                   cgra.DEFAULT_CYCLES),
            paper=({"rows": 14, "cols": 14, "steps": 64}, 128),
            stretch=({"rows": 20, "cols": 20, "steps": 96}, 192),
        )),
    "bc": _info(
        "bc", bc, "SHA-256 bitcoin miner pipeline",
        _scales(
            small=({"rounds": 10, "difficulty_bits": 7,
                    "max_cycles": 512}, 576),
            paper=({"rounds": 16, "difficulty_bits": 8,
                    "max_cycles": 1024}, 1152),
            stretch=({"rounds": 24, "difficulty_bits": 9,
                      "max_cycles": 2048}, 2176),
        )),
    "blur": _info(
        "blur", blur, "3x3 stencil accelerator with line buffers",
        _scales(
            small=({"width": 8, "height": 8}, blur.DEFAULT_CYCLES),
            paper=({"width": 14, "height": 14}, 256),
            stretch=({"width": 20, "height": 20}, 448),
        )),
    "jpeg": _info(
        "jpeg", jpeg, "bit-serial Huffman decoder (serial bottleneck)",
        _scales(
            small=({"num_bits": 256}, jpeg.DEFAULT_CYCLES),
            paper=({"num_bits": 512}, 640),
            stretch=({"num_bits": 1024}, 1152),
        )),
}

__all__ = ["DESIGNS", "DesignInfo", "SCALES", "ScaleSpec", "bc", "blur",
           "cgra", "jpeg", "mc", "micro", "mm", "nocsim", "rv32r", "vta"]
