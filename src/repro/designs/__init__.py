"""The paper's nine RTL benchmarks (SS7.5) plus the SS7.7 microbenchmarks,
reimplemented on the netlist builder at parameterizable (default reduced)
scale, each wrapped in an assertion-based test driver.

``DESIGNS`` is the registry the benchmark harness iterates: paper name ->
build function + default simulated cycles, ordered by the paper's Table 3
columns (largest serial step first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..netlist.ir import Circuit
from . import bc, blur, cgra, jpeg, mc, micro, mm, nocsim, rv32r, vta


@dataclass(frozen=True)
class DesignInfo:
    name: str
    build: Callable[[], Circuit]
    cycles: int                 # driver-complete simulated cycles
    description: str


DESIGNS: dict[str, DesignInfo] = {
    "vta": DesignInfo("vta", vta.build, vta.DEFAULT_CYCLES,
                      "VTA-style GEMM ML accelerator"),
    "mc": DesignInfo("mc", mc.build, mc.DEFAULT_CYCLES,
                     "Monte-Carlo fixed-point price predictor"),
    "noc": DesignInfo("noc", nocsim.build, nocsim.DEFAULT_CYCLES,
                      "2D torus NoC with virtual channels"),
    "mm": DesignInfo("mm", mm.build, mm.DEFAULT_CYCLES,
                     "systolic integer matrix multiplier"),
    "rv32r": DesignInfo("rv32r", rv32r.build, rv32r.DEFAULT_CYCLES,
                        "ring of small in-order processors"),
    "cgra": DesignInfo("cgra", cgra.build, cgra.DEFAULT_CYCLES,
                       "coarse-grained reconfigurable array"),
    "bc": DesignInfo("bc", bc.build, bc.DEFAULT_CYCLES,
                     "SHA-256 bitcoin miner pipeline"),
    "blur": DesignInfo("blur", blur.build, blur.DEFAULT_CYCLES,
                       "3x3 stencil accelerator with line buffers"),
    "jpeg": DesignInfo("jpeg", jpeg.build, jpeg.DEFAULT_CYCLES,
                       "bit-serial Huffman decoder (serial bottleneck)"),
}

__all__ = ["DESIGNS", "DesignInfo", "bc", "blur", "cgra", "jpeg", "mc",
           "micro", "mm", "nocsim", "rv32r", "vta"]
