"""``mc`` - a Monte-Carlo stock option price evolution predictor with
fixed-point arithmetic (paper SS7.5, [44]).

``walkers`` independent lanes each hold a 32-bit fixed-point price
(Q16.16) and a xorshift32 RNG.  Every cycle each lane updates::

    price += (price * drift) >> 16 + (price * noise) >> 16

where ``noise`` is a small signed value derived from the RNG.  Lanes are
completely independent - the design is embarrassingly parallel, which is
why the paper's mc scales to hundreds of cores (Fig. 7) and gains the
most from multithreaded Verilator (Table 3).

A running sum of all lane prices is checked against a Python reference
model at the end of the run.
"""

from __future__ import annotations

from ..netlist.builder import CircuitBuilder, Signal
from ..netlist.ir import Circuit

M32 = 0xFFFFFFFF
Q = 16                      # fixed-point fraction bits
DRIFT = 0x0100              # per-step drift: 2^-8 in Q16
NOISE_BITS = 10             # RNG noise magnitude


def xorshift32(x: int) -> int:
    x ^= (x << 13) & M32
    x ^= x >> 17
    x ^= (x << 5) & M32
    return x & M32


def reference_sum(walkers: int, steps: int) -> int:
    """Python model of the total price after ``steps`` cycles."""
    total = 0
    for w in range(walkers):
        price = (1 << Q) + (w << 8)
        state = 0x12345678 + w * 0x9E3779B9 & M32
        for _ in range(steps):
            state = xorshift32(state)
            noise = state & ((1 << NOISE_BITS) - 1)
            price = (price + ((price * DRIFT) >> Q)
                     + ((price * noise) >> Q)) & M32
        total = (total + price) & M32
    return total


def _xorshift_step(m: CircuitBuilder, x: Signal) -> Signal:
    x1 = (x ^ (x << 13)).trunc(32)
    x2 = (x1 ^ (x1 >> 17)).trunc(32)
    return (x2 ^ (x2 << 5)).trunc(32)


def build(walkers: int = 32, steps: int = 64) -> Circuit:
    m = CircuitBuilder("mc")
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)

    prices: list[Signal] = []
    for w in range(walkers):
        price = m.register(f"price{w}", 32, init=(1 << Q) + (w << 8))
        rng = m.register(f"rng{w}", 32,
                         init=(0x12345678 + w * 0x9E3779B9) & M32)
        nxt_rng = _xorshift_step(m, rng)
        rng.next = nxt_rng
        noise = nxt_rng.trunc(NOISE_BITS)
        drift_term = (price.mul_wide(m.const(DRIFT, 32))
                      >> Q).trunc(32)
        noise_term = (price.mul_wide(noise.zext(32)) >> Q).trunc(32)
        price.next = (price + drift_term + noise_term).trunc(32)
        prices.append(price)

    def add32(group):
        acc = group[0]
        for s in group[1:]:
            acc = (acc + s).trunc(32)
        return acc

    total, depth = m.registered_reduce("mc_sum", prices, add32)
    # The reduction tree lags the walkers by ``depth`` cycles: at cycle
    # steps + depth it holds the sum of prices as of cycle ``steps``.
    done = cyc == steps + depth
    m.check_sticky(done, total == reference_sum(walkers, steps),
                   "monte-carlo sum diverged from reference")
    shown = m.display_staged(done, "mc sum %d after %d steps", total,
                             m.const(steps, 16))
    m.finish(shown)
    return m.build()


DEFAULT_CYCLES = 128
