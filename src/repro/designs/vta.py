"""``vta`` - a TVM VTA-style ML accelerator (paper SS7.5, [29]).

A GEMM accelerator with the VTA structure: an instruction ROM drives
load / compute / store modules around on-chip input, weight, and
accumulator buffers.  The compute module is spatial: ``block_in``
multipliers and an adder tree evaluate one dot product per cycle -
matching the paper's enlarged spatial configuration (they grew blockIn /
blockOut to benefit from acceleration; we default to 4x4 with batch 2 to
keep the Python flow fast, all parameterizable).

Phases (driven by a small instruction ROM):
  LOAD_INP  - stream the input matrix into the inp buffer,
  LOAD_WGT  - stream the weight matrix into the wgt buffer,
  GEMM      - for each (batch, out) pair, one dot product per cycle,
  STORE     - drain accumulators, checksum, and compare with reference.
"""

from __future__ import annotations

from ..netlist.builder import CircuitBuilder, Signal
from ..netlist.ir import Circuit

M32 = 0xFFFFFFFF

OP_LOAD_INP, OP_LOAD_WGT, OP_GEMM, OP_STORE, OP_HALT = range(5)


def inp_value(addr: int) -> int:
    return (addr * 29 + 3) & 0xFF


def wgt_value(addr: int) -> int:
    return (addr * 53 + 7) & 0xFF


def reference_checksum(batch: int, block_in: int, block_out: int) -> int:
    inp = [[inp_value(b * block_in + k) for k in range(block_in)]
           for b in range(batch)]
    wgt = [[wgt_value(o * block_in + k) for k in range(block_in)]
           for o in range(block_out)]
    checksum = 0
    for b in range(batch):
        for o in range(block_out):
            dot = sum(inp[b][k] * wgt[o][k] for k in range(block_in))
            checksum = (checksum + dot) & M32
    return checksum


def build(batch: int = 4, block_in: int = 8, block_out: int = 12) -> Circuit:
    m = CircuitBuilder("vta")
    if batch & (batch - 1):
        raise ValueError("batch must be a power of two")
    if block_in & (block_in - 1):
        raise ValueError("block_in must be a power of two")
    n_inp = batch * block_in
    n_wgt = block_out * block_in
    n_out = batch * block_out

    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)

    # Instruction ROM: op(3) | length(13).
    instrs = [
        (OP_LOAD_INP, n_inp),
        (OP_LOAD_WGT, n_wgt),
        (OP_GEMM, batch + 1),  # +1: pipeline drain cycle
        (OP_STORE, n_out),
        (OP_HALT, 0),
    ]
    rom = m.memory("imem", 16, 8,
                   init=[(op | (ln << 3)) for op, ln in instrs])

    pc = m.register("pc", 3)
    step = m.register("step", 13)
    instr = rom.read(pc)
    op = instr.trunc(3)
    length = instr.bits(3, 13)

    last_step = (step + 1) == length
    is_halt = op == OP_HALT
    advance = last_step & ~is_halt
    step.next = m.mux(advance, (step + 1).trunc(13), m.const(0, 13))
    pc.update(advance, (pc + 1).trunc(3))

    # Buffers: SRAM-pinned and banked per output column - the standard
    # spatial-accelerator organization (VTA's buffers are SRAMs), and
    # what lets the compiler's memory co-location rule distribute the
    # MAC grid: each weight/accumulator bank and its dot product form an
    # independent process.
    inp = m.memory("inp_buf", 8, n_inp, sram_hint=True)
    wgt_banks = [m.memory(f"wgt_bank{o}", 8, block_in, sram_hint=True)
                 for o in range(block_out)]
    acc_banks = [m.memory(f"acc_bank{o}", 32, batch, sram_hint=True)
                 for o in range(block_out)]

    def synth(addr: Signal, mul: int, add: int) -> Signal:
        return (addr * mul + add).trunc(8)

    abits = 13
    addr = step

    # LOAD modules: one element per cycle from synthetic DRAM.
    is_load_inp = op == OP_LOAD_INP
    is_load_wgt = op == OP_LOAD_WGT
    inp.write(addr.trunc(max(1, (n_inp - 1).bit_length())),
              synth(addr, 29, 3), is_load_inp)
    kbits = (block_in - 1).bit_length()
    wgt_k = addr.trunc(kbits) if kbits else m.const(0, 1)
    wgt_o = (addr >> kbits).trunc(max(1, (block_out - 1).bit_length()))
    for o in range(block_out):
        wgt_banks[o].write(wgt_k, synth(addr, 53, 7),
                           is_load_wgt & (wgt_o == o))

    # GEMM: pipelined, weight-stationary.  Cycle t fetches input row
    # b(t) into broadcast registers; cycle t+1 computes all block_out dot
    # products against that row (block_in x block_out MAC grid - the
    # paper's *spatial* configuration) and writes the banked
    # accumulators.  The broadcast registers are the real VTA's input
    # pipeline, and they matter for Manticore: every MAC process reads a
    # register current instead of re-selecting from the whole buffer.
    is_gemm = op == OP_GEMM
    bbits_g = max(1, (batch - 1).bit_length())
    b_idx = addr.trunc(bbits_g)
    row_regs: list[Signal] = []
    for k in range(block_in):
        row = m.register(f"row{k}", 8)
        rd = inp.read((b_idx.zext(abits) * block_in + k).trunc(
            max(1, (n_inp - 1).bit_length())))
        row.update(is_gemm, rd)
        row_regs.append(row)
    b_prev = m.register("b_prev", bbits_g)
    b_prev.update(is_gemm, b_idx)
    wvalid = m.register("wvalid", 1)
    wvalid.next = is_gemm

    for o in range(block_out):
        partials = [
            row_regs[k].mul_wide(
                wgt_banks[o].read(m.const(k, max(1, kbits))))
            for k in range(block_in)
        ]
        dot = m.const(0, 32)
        for p in partials:
            dot = (dot + p.zext(32)).trunc(32)
        acc_banks[o].write(b_prev, dot, wvalid)

    # STORE: each bank drains into its own partial-sum register (reads
    # never cross banks, so banks stay in independent processes); a
    # register tree reduces the partial sums into the frame checksum.
    is_store = op == OP_STORE
    bbits = (batch - 1).bit_length()
    store_b = addr.trunc(bbits) if bbits else m.const(0, 1)
    store_o = (addr >> bbits).trunc(
        max(1, (block_out - 1).bit_length()))
    bank_sums = []
    for o in range(block_out):
        bank_sum = m.register(f"bank_sum{o}", 32)
        hit = is_store & (store_o == o)
        bank_sum.update(hit, (bank_sum
                              + acc_banks[o].read(store_b)).trunc(32))
        bank_sums.append(bank_sum)

    def add32(group):
        acc32 = group[0]
        for sig in group[1:]:
            acc32 = (acc32 + sig).trunc(32)
        return acc32

    checksum, depth = m.registered_reduce("vta_sum", bank_sums, add32)

    done = is_halt & (step == depth + 1)  # reduce-tree settling time
    m.check_sticky(done, checksum == reference_checksum(batch, block_in,
                                                        block_out),
                   "vta checksum mismatch")
    shown = m.display_staged(done, "vta checksum %d at cycle %d",
                             checksum, cyc)
    m.finish(shown)
    m.check(m.const(1, 1), ~(cyc == 2000), "vta watchdog expired")
    return m.build()


DEFAULT_CYCLES = 256
