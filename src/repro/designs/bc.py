"""``bc`` - a bitcoin miner (paper SS7.5, [32]).

A pipelined SHA-256 round engine searching for a nonce whose digest has a
given number of leading zero bits.  The paper uses the open-source FPGA
miner (fully unrolled double SHA-256); we reproduce the same structure -
a deep pipeline of SHA-256 rounds fed by an incrementing nonce - at a
parameterizable number of rounds (default 8) so the netlist stays
tractable for the Python toolchain.

The design is wrapped in an assertion-based driver: a reference model in
:func:`sha_rounds_reference` lets tests check every reported hit.
"""

from __future__ import annotations

from ..netlist.builder import CircuitBuilder, Signal
from ..netlist.ir import Circuit

#: First eight SHA-256 round constants.
K = [0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
     0x3956C25B, 0x59F111F1, 0x923F82A6, 0xAB1C5ED5,
     0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
     0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174]

#: SHA-256 initial hash state.
H0 = [0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
      0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19]

MASK32 = 0xFFFFFFFF


def _rotr(x: Signal, n: int) -> Signal:
    m = x.builder
    return m.cat(x.bits(n, 32 - n), x.bits(0, n))


def _add32(*xs: Signal) -> Signal:
    acc = xs[0]
    for x in xs[1:]:
        acc = (acc + x).trunc(32)
    return acc


def _round(m: CircuitBuilder, state: list[Signal], w: Signal,
           k: int) -> list[Signal]:
    a, b, c, d, e, f, g, h = state
    s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
    ch = (e & f) ^ (~e & g)
    t1 = _add32(h, s1, ch, m.const(k, 32), w)
    s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
    maj = (a & b) ^ (a & c) ^ (b & c)
    t2 = _add32(s0, maj)
    return [_add32(t1, t2), a, b, c, _add32(d, t1), e, f, g]


def sha_rounds_reference(nonce: int, rounds: int) -> int:
    """Python model of the pipeline's digest word ``a`` for a nonce."""
    def rotr(x, n):
        return ((x >> n) | (x << (32 - n))) & MASK32

    state = list(H0)
    for i in range(rounds):
        w = (nonce ^ (0x9E3779B9 * (i + 1))) & MASK32
        a, b, c, d, e, f, g, h = state
        s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        t1 = (h + s1 + ch + K[i % len(K)] + w) & MASK32
        s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        t2 = (s0 + maj) & MASK32
        state = [(t1 + t2) & MASK32, a, b, c, (d + t1) & MASK32, e, f, g]
    return state[0]


def build(rounds: int = 10, difficulty_bits: int = 7,
          max_cycles: int = 512) -> Circuit:
    """Build the miner: ``rounds`` pipeline stages, hit when the digest's
    low ``difficulty_bits`` bits are zero."""
    m = CircuitBuilder("bc")
    cyc = m.register("cyc", 32)
    cyc.next = (cyc + 1).trunc(32)
    nonce = cyc  # one nonce per cycle

    # Pipeline: stage i holds the SHA state after i rounds plus the nonce
    # that produced it.
    state: list[list[Signal]] = []
    prev_state = [m.const(h, 32) for h in H0]
    prev_nonce = nonce
    for i in range(rounds):
        # message word for this round, derived from the staged nonce.
        w = (prev_nonce ^ m.const((0x9E3779B9 * (i + 1)) & MASK32, 32))
        nxt = _round(m, prev_state, w, K[i % len(K)])
        regs = [m.register(f"s{i}_{j}", 32) for j in range(8)]
        nreg = m.register(f"n{i}", 32)
        for reg, val in zip(regs, nxt):
            reg.next = val
        nreg.next = prev_nonce
        prev_state = list(regs)
        prev_nonce = nreg
        state.append(regs)

    digest = prev_state[0]
    valid = cyc.geu(rounds)  # pipeline full
    low = digest.trunc(difficulty_bits)
    hit = valid & (low == 0)
    m.display_staged(hit, "golden nonce %d digest %x", prev_nonce,
                     digest)
    m.finish(cyc == max_cycles)
    m.output("digest", digest)
    return m.build()


DEFAULT_CYCLES = 512
