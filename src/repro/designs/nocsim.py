"""``noc`` - a 2D unidirectional torus network-on-chip design
(paper SS7.5): the RTL being *simulated* is itself a NoC, with
dimension-ordered (X then Y) routing and per-link virtual channels.

Each router has one single-flit buffer per virtual channel on its east
and south outputs.  Flits carry (dest_x, dest_y, payload); routing is
deterministic: travel east until the column matches, then south.  Each
node injects a new flit from an LFSR-driven traffic generator whenever
its preferred output VC is free.  Delivered flits are counted and XOR-
folded into a signature checked against a cycle-exact Python model.
"""

from __future__ import annotations

from ..netlist.builder import CircuitBuilder, Signal
from ..netlist.ir import Circuit

M16 = 0xFFFF


def _lfsr_next(x: int) -> int:
    bit = ((x >> 0) ^ (x >> 2) ^ (x >> 3) ^ (x >> 5)) & 1
    return ((x >> 1) | (bit << 15)) & M16


class _RefRouter:
    def __init__(self) -> None:
        # Per output ("E"/"S") per VC: None or flit tuple
        # (dx, dy, payload).
        self.out = {("E", 0): None, ("E", 1): None,
                    ("S", 0): None, ("S", 1): None}


def reference_signature(nx: int, ny: int, vcs: int, steps: int,
                        ) -> tuple[int, int]:
    """(delivered count, xor signature) after ``steps`` cycles."""
    routers = [[_RefRouter() for _ in range(nx)] for _ in range(ny)]
    lfsrs = [[(0xACE1 + 0x2137 * (y * nx + x)) & M16 or 1
              for x in range(nx)] for y in range(ny)]
    delivered = 0
    signature = 0
    for _t in range(steps):
        # Phase 1: each router computes, for each incoming flit (from
        # west neighbor's E outputs and north neighbor's S outputs, VC
        # priority order), its requested output; delivery happens when
        # the flit addresses this node.
        new_routers = [[_RefRouter() for _ in range(nx)]
                       for y in range(ny)]
        requests: list[list[dict]] = [
            [dict() for _ in range(nx)] for _ in range(ny)]

        def offer(y, x, flit, vc):
            """Flit arriving at router (y,x) on VC ``vc``."""
            nonlocal delivered, signature
            dx, dy, payload = flit
            if dx == x and dy == y:
                delivered += 1
                signature ^= payload
                return
            out = ("E", vc) if dx != x else ("S", vc)
            reqs = requests[y][x]
            if out not in reqs:          # first claimant wins (W > N)
                reqs[out] = flit

        # Receiver-centric scan, priority: west E VCs, then north S VCs
        # (must match the circuit's claim order exactly).
        for y in range(ny):
            for x in range(nx):
                west = routers[y][(x - 1) % nx]
                north = routers[(y - 1) % ny][x]
                for vc in range(vcs):
                    flit = west.out[("E", vc)]
                    if flit is not None:
                        offer(y, x, flit, vc)
                for vc in range(vcs):
                    flit = north.out[("S", vc)]
                    if flit is not None:
                        offer(y, x, flit, vc)

        # Phase 2: traffic generators inject on VC = payload LSB when
        # that output VC got no through-traffic claim.
        for y in range(ny):
            for x in range(nx):
                state = lfsrs[y][x]
                lfsrs[y][x] = _lfsr_next(state)
                payload = state
                dx = ((state >> 4) & 0xFF) % nx
                dy = ((state >> 8) & 0xFF) % ny
                if dx == x and dy == y:
                    continue  # self-addressed: dropped at the generator
                vc = state & 1 if vcs > 1 else 0
                out = ("E", vc) if dx != x else ("S", vc)
                reqs = requests[y][x]
                if out not in reqs:
                    reqs[out] = (dx, dy, payload)

        # Phase 3: commit winning requests into output registers.
        for y in range(ny):
            for x in range(nx):
                for out, flit in requests[y][x].items():
                    new_routers[y][x].out[out] = flit
        routers = new_routers
    return delivered, signature


def build(nx: int = 3, ny: int = 3, vcs: int = 1,
          steps: int = 48) -> Circuit:
    m = CircuitBuilder("noc")
    xb = max(1, (nx - 1).bit_length())
    yb = max(1, (ny - 1).bit_length())
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)

    # Output registers: [y][x][dir][vc] -> (valid, dx, dy, payload).
    def flit_regs(name: str):
        return {
            "valid": m.register(f"{name}_v", 1),
            "dx": m.register(f"{name}_dx", xb),
            "dy": m.register(f"{name}_dy", yb),
            "pay": m.register(f"{name}_p", 16),
        }

    outs = [[{("E", vc): flit_regs(f"r{y}_{x}_E{vc}") for vc in range(vcs)}
             | {("S", vc): flit_regs(f"r{y}_{x}_S{vc}")
                for vc in range(vcs)}
             for x in range(nx)] for y in range(ny)]

    # Per-router delivery counters and XOR signatures (registered locally
    # so the compiler can distribute them; reduced through a register
    # tree for the final check).
    local_counts: list[Signal] = []
    local_sigs: list[Signal] = []

    # Traffic generators.
    lfsrs = [[m.register(f"lfsr{y}_{x}", 16,
                         init=(0xACE1 + 0x2137 * (y * nx + x)) & M16 or 1)
              for x in range(nx)] for y in range(ny)]

    for y in range(ny):
        for x in range(nx):
            # Incoming flits in priority order: west E VCs, north S VCs,
            # then local injection.
            offers = []  # (valid, dx, dy, payload, vc)
            west = outs[y][(x - 1) % nx]
            north = outs[(y - 1) % ny][x]
            for vc in range(vcs):
                f = west[("E", vc)]
                offers.append((f["valid"], f["dx"], f["dy"], f["pay"], vc))
            for vc in range(vcs):
                f = north[("S", vc)]
                offers.append((f["valid"], f["dx"], f["dy"], f["pay"], vc))

            state = lfsrs[y][x]
            bit = (state[0] ^ state[2] ^ state[3] ^ state[5])
            lfsrs[y][x].next = m.cat(state.bits(1, 15), bit)
            gdx = ((state >> 4).trunc(xb) if nx & (nx - 1) == 0
                   else _mod(m, (state >> 4).trunc(8), nx, xb))
            gdy = ((state >> 8).trunc(yb) if ny & (ny - 1) == 0
                   else _mod(m, (state >> 8).trunc(8), ny, yb))
            gvc = state[0] if vcs > 1 else m.const(0, 1)
            gen_valid = ~((gdx == x) & (gdy == y))

            # Claim tracking per output (dir, vc).
            claimed = {key: m.const(0, 1) for key in outs[y][x]}
            winner = {key: None for key in outs[y][x]}

            def claim(key, valid, dx, dy, pay):
                prev = claimed[key]
                take = valid & ~prev
                claimed[key] = prev | valid
                if winner[key] is None:
                    winner[key] = (take, dx, dy, pay)
                else:
                    old = winner[key]
                    winner[key] = (
                        old[0] | take,
                        m.mux(take, old[1], dx),
                        m.mux(take, old[2], dy),
                        m.mux(take, old[3], pay),
                    )

            deliver_count = m.const(0, 16)
            deliver_xor = m.const(0, 16)
            for valid, dx, dy, pay, vc in offers:
                here = (dx == x) & (dy == y)
                arrive = valid & here
                deliver_count = (deliver_count + arrive.zext(16)).trunc(16)
                deliver_xor = deliver_xor ^ m.mux(arrive,
                                                  m.const(0, 16), pay)
                through = valid & ~here
                goes_east = ~(dx == x)
                claim(("E", vc), through & goes_east, dx, dy, pay)
                claim(("S", vc), through & ~goes_east, dx, dy, pay)

            # Local injection last (lowest priority).
            for vc in range(vcs):
                sel_vc = (gvc == vc) if vcs > 1 else m.const(1, 1)
                inj_east = gen_valid & sel_vc & ~(gdx == x)
                inj_south = gen_valid & sel_vc & (gdx == x)
                claim(("E", vc), inj_east, gdx, gdy, state)
                claim(("S", vc), inj_south, gdx, gdy, state)

            for key, regs in outs[y][x].items():
                take, dx, dy, pay = winner[key]
                regs["valid"].next = take
                regs["dx"].next = m.mux(take, m.const(0, xb), dx)
                regs["dy"].next = m.mux(take, m.const(0, yb), dy)
                regs["pay"].next = m.mux(take, m.const(0, 16), pay)

            # Counters freeze at `steps` so both reduction trees settle on
            # the same snapshot regardless of their depths.
            delv = m.register(f"delv{y}_{x}", 16)
            sig = m.register(f"sig{y}_{x}", 16)
            counting = cyc.ltu(steps)
            delv.update(counting, (delv + deliver_count).trunc(16))
            sig.update(counting, sig ^ deliver_xor)
            local_counts.append(delv)
            local_sigs.append(sig)

    def add16(group):
        acc = group[0]
        for s in group[1:]:
            acc = (acc + s).trunc(16)
        return acc

    def xor16(group):
        acc = group[0]
        for s in group[1:]:
            acc = acc ^ s
        return acc

    delivered, d1 = m.registered_reduce("noc_cnt", local_counts, add16)
    signature, d2 = m.registered_reduce("noc_sig", local_sigs, xor16)
    depth = max(d1, d2)

    ref_count, ref_sig = reference_signature(nx, ny, vcs, steps)
    done = cyc == steps + depth
    m.check_sticky(done, delivered == ref_count,
                   "noc delivered count mismatch")
    m.check_sticky(done, signature == (ref_sig & M16),
                   "noc signature mismatch")
    shown = m.display_staged(done, "noc delivered %d signature %x",
                             delivered, signature)
    m.finish(shown)
    return m.build()


def _mod(m: CircuitBuilder, value: Signal, modulus: int,
         out_bits: int) -> Signal:
    """value % modulus for small constants via repeated conditional
    subtraction (value < 256, modulus < 8: a few comparator stages)."""
    acc = value.zext(9)
    for shift in (7, 6, 5, 4, 3, 2, 1, 0):
        sub = modulus << shift
        if sub > 511:
            continue
        ge = ~acc.ltu(sub)
        acc = m.mux(ge, acc, (acc - sub).trunc(9))
    return acc.trunc(out_bits)


DEFAULT_CYCLES = 96
