"""``jpeg`` - a pipelined JPEG decoder (paper SS7.5, [46]).

The paper notes jpeg is Manticore's worst case: "sizeable sequential data
dependencies that cannot be parallelized - Huffman table lookup is the
bottleneck".  We reproduce exactly that structure: a bit-serial
variable-length (Huffman) decoder walking a code tree one bit per cycle,
feeding a small dequantize/accumulate backend.  Almost everything is one
long serial dependence chain, so the compiled design has a deep critical
path and little to distribute - the benchmark where Verilator wins.
"""

from __future__ import annotations

from ..netlist.builder import CircuitBuilder
from ..netlist.ir import Circuit

#: A tiny canonical Huffman tree stored as a node table.  Each node packs
#: left/right child indices (or leaf symbols).  Entry format (8 bits per
#: field): [leaf(1) | value(7)] for each branch.
#: Tree over symbols 0..4 with code lengths (1, 2, 3, 4, 4).
_TREE: list[tuple[tuple[bool, int], tuple[bool, int]]] = [
    ((True, 0), (False, 1)),    # node 0: bit0 -> leaf 0, bit1 -> node 1
    ((True, 1), (False, 2)),    # node 1
    ((True, 2), (False, 3)),    # node 2
    ((True, 3), (True, 4)),     # node 3
]

#: Per-symbol dequantization factors.
_DEQUANT = [1, 3, 5, 11, 17]


def bitstream_bit(i: int) -> int:
    """Synthetic compressed bitstream (LFSR-flavored, deterministic)."""
    x = (i * 0x9E37 + 0x1234) & 0xFFFF
    return (x >> 7) & 1


def reference_decode(num_bits: int) -> tuple[int, int]:
    """(symbols decoded, accumulated dequantized sum) after consuming
    ``num_bits`` bits."""
    node = 0
    count = 0
    acc = 0
    for i in range(num_bits):
        leaf, value = _TREE[node][bitstream_bit(i)]
        if leaf:
            count += 1
            acc = (acc + _DEQUANT[value] * (count & 0x3F)) & 0xFFFFFFFF
            node = 0
        else:
            node = value
    return count, acc


def build(num_bits: int = 256) -> Circuit:
    m = CircuitBuilder("jpeg")
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)

    # Bitstream generator: bit = ((cyc * 0x9E37 + 0x1234) >> 7) & 1.
    word = (cyc * m.const(0x9E37, 16) + 0x1234).trunc(16)
    bit = word[7]

    # Huffman node table in an RTL memory: two packed branch bytes per
    # node -> one 16-bit word per node.
    table_init = []
    for (l_leaf, l_val), (r_leaf, r_val) in _TREE:
        lo = (0x80 if l_leaf else 0) | l_val
        hi = (0x80 if r_leaf else 0) | r_val
        table_init.append(lo | (hi << 8))
    table = m.memory("huffman", 16, len(_TREE), init=table_init)

    node = m.register("node", 4)
    entry = table.read(node.trunc(2))
    branch = m.mux(bit, entry.trunc(8), entry.bits(8, 8))
    is_leaf = branch[7]
    value = branch.trunc(3)

    count = m.register("count", 16)
    count.update(is_leaf, (count + 1).trunc(16))
    node.next = m.mux(is_leaf, branch.trunc(4), m.const(0, 4))

    # Dequantize: factor[symbol] * (count & 0x3F), accumulated serially.
    factor = m.select(value, [m.const(d, 8) for d in _DEQUANT]
                      + [m.const(0, 8)] * 3)
    scaled = factor.zext(16).mul_wide(
        ((count + 1) & 0x3F).trunc(16)).trunc(32)
    acc = m.register("acc", 32)
    acc.update(is_leaf, (acc + scaled).trunc(32))

    done = cyc == num_bits
    ref_count, ref_acc = reference_decode(num_bits)
    m.check_sticky(done, count == ref_count, "jpeg symbol count mismatch")
    m.check_sticky(done, acc == ref_acc,
                   "jpeg dequant accumulator mismatch")
    shown = m.display_staged(done, "jpeg decoded %d symbols acc %d",
                             count, acc)
    m.finish(shown)
    return m.build()


DEFAULT_CYCLES = 512
