"""``mm`` - an integer matrix-matrix multiplier (paper SS7.5).

An output-stationary systolic array: A values stream in from the west,
B values from the north, each PE accumulates ``a*b``.  The paper uses a
16x16 array; the default here is 4x4 (parameterizable) to keep the
Python toolchain fast.  A driver streams two constant matrices, then
checks every accumulator against the reference product and ``$display``s
a checksum.
"""

from __future__ import annotations

from ..netlist.builder import CircuitBuilder, Signal
from ..netlist.ir import Circuit


def reference_product(a: list[list[int]], b: list[list[int]],
                      ) -> list[list[int]]:
    """Reference matrix product mod 2^32."""
    n = len(a)
    return [
        [sum(a[i][k] * b[k][j] for k in range(n)) & 0xFFFFFFFF
         for j in range(n)]
        for i in range(n)
    ]


def test_matrices(n: int) -> tuple[list[list[int]], list[list[int]]]:
    """Deterministic input matrices baked into the design's ROMs."""
    a = [[(3 * i + 5 * j + 1) & 0xFF for j in range(n)] for i in range(n)]
    b = [[(7 * i + 2 * j + 3) & 0xFF for j in range(n)] for i in range(n)]
    return a, b


def build(n: int = 8, max_cycles: int | None = None) -> Circuit:
    """Build an ``n x n`` output-stationary systolic multiplier."""
    m = CircuitBuilder("mm")
    a_mat, b_mat = test_matrices(n)
    product = reference_product(a_mat, b_mat)

    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)

    # Input skewing: row i of A enters at the west edge delayed by i
    # cycles; column j of B enters at the north edge delayed by j cycles.
    # Elements are fed from small ROMs indexed by the cycle counter.
    a_roms = []
    b_roms = []
    for i in range(n):
        a_roms.append(m.memory(f"a_rom{i}", 8, n,
                               init=[a_mat[i][k] for k in range(n)]))
        b_roms.append(m.memory(f"b_rom{i}", 8, n,
                               init=[b_mat[k][i] for k in range(n)]))

    def feed(rom, delay: int) -> Signal:
        """Stream rom[0..n-1] starting at cycle ``delay``, zero outside."""
        t = (cyc - delay).trunc(16)
        active = cyc.geu(delay) & t.ltu(n)
        idx = t.trunc(max(1, (n - 1).bit_length()))
        return m.mux(active, m.const(0, 8), rom.read(idx))

    a_in = [feed(a_roms[i], i) for i in range(n)]
    b_in = [feed(b_roms[j], j) for j in range(n)]

    # The PE grid: each PE latches its west/north inputs and accumulates.
    a_wire: list[list[Signal]] = [[None] * (n + 1) for _ in range(n)]
    b_wire: list[list[Signal]] = [[None] * (n + 1) for _ in range(n)]
    accs: list[list[Signal]] = [[None] * n for _ in range(n)]
    for i in range(n):
        a_wire[i][0] = a_in[i]
    for j in range(n):
        b_wire[j][0] = b_in[j]

    for i in range(n):
        for j in range(n):
            a_reg = m.register(f"pe{i}_{j}_a", 8)
            b_reg = m.register(f"pe{i}_{j}_b", 8)
            acc = m.register(f"pe{i}_{j}_acc", 32)
            a_reg.next = a_wire[i][j]
            b_reg.next = b_wire[j][i]
            prod = a_wire[i][j].mul_wide(b_wire[j][i])
            acc.next = (acc + prod.zext(32)).trunc(32)
            a_wire[i][j + 1] = a_reg
            b_wire[j][i + 1] = b_reg
            accs[i][j] = acc

    # After the wavefront has fully passed (3n cycles is safe), check
    # every accumulator against the reference product.
    settle_cycle = 3 * n + 2
    flat = [accs[i][j] for i in range(n) for j in range(n)]
    expect = [product[i][j] for i in range(n) for j in range(n)]

    def add32(group):
        acc = group[0]
        for s in group[1:]:
            acc = (acc + s).trunc(32)
        return acc

    checksum, depth = m.registered_reduce("mm_sum", flat, add32)
    checking = cyc == settle_cycle + depth
    settled = cyc == settle_cycle
    for k, (sig, value) in enumerate(zip(flat, expect)):
        m.check_sticky(settled, sig == value,
                       f"PE({k // n},{k % n}) product mismatch")
    total_ref = sum(expect) & 0xFFFFFFFF
    m.check_sticky(checking, checksum == total_ref,
                   "mm checksum mismatch")
    shown = m.display_staged(checking, "mm checksum %d", checksum)
    m.finish(shown if max_cycles is None else (cyc == max_cycles))
    return m.build()


DEFAULT_CYCLES = 64
