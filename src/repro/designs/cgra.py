"""``cgra`` - a coarse-grained reconfigurable array (paper SS7.5).

The paper's cgra is a latency-insensitive 64-PE array with floating-point
units; we reproduce the architecture at reduced scale with Q8.8
fixed-point MAC/ALU processing elements (substitution documented in
DESIGN.md: fixed-point keeps the netlist tractable while exercising the
same dataflow structure).

Each PE has a static configuration (op select + routing), an output
register, and a valid bit; rows stream west->east while the north input
provides per-row coefficients, the classic weight-stationary CGRA setup.
A reference model replays the exact dataflow in Python and the driver
asserts equality on a frame checksum.
"""

from __future__ import annotations

from ..netlist.builder import CircuitBuilder, Signal
from ..netlist.ir import Circuit

M16 = 0xFFFF

#: Per-PE operation: 0 = MAC (a*coef + prev), 1 = add, 2 = xor-mix,
#: 3 = max (unsigned).
def pe_config(i: int, j: int) -> tuple[int, int]:
    """(op, coefficient) of PE at row i, column j."""
    return ((i + j) % 4, ((i * 37 + j * 101 + 9) & 0xFF) | 0x100)


def _pe_ref(op: int, a: int, coef: int, prev: int) -> int:
    if op == 0:
        return (((a * coef) >> 8) + prev) & M16
    if op == 1:
        return (a + coef + prev) & M16
    if op == 2:
        return (a ^ (coef * 3) ^ (prev << 1)) & M16
    return max(a, prev)


def row_input(i: int, t: int) -> int:
    return (t * 23 + i * 77 + 5) & M16


def reference_checksum(rows: int, cols: int, steps: int) -> int:
    outs = [[0] * cols for _ in range(rows)]
    valid = [[False] * cols for _ in range(rows)]
    checksum = 0
    for t in range(steps):
        new_outs = [row[:] for row in outs]
        new_valid = [row[:] for row in valid]
        for i in range(rows):
            for j in range(cols):
                a = row_input(i, t) if j == 0 else outs[i][j - 1]
                a_valid = True if j == 0 else valid[i][j - 1]
                prev = outs[i][j]
                op, coef = pe_config(i, j)
                if a_valid:
                    new_outs[i][j] = _pe_ref(op, a, coef, prev)
                new_valid[i][j] = a_valid
            if valid[i][cols - 1]:
                checksum = (checksum + outs[i][cols - 1]) & 0xFFFFFFFF
        outs, valid = new_outs, new_valid
    return checksum


def build(rows: int = 9, cols: int = 9, steps: int = 48) -> Circuit:
    m = CircuitBuilder("cgra")
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)

    checksum = m.register("checksum", 32)
    checksum_add = m.const(0, 32)
    for i in range(rows):
        # West-edge stream: row_input(i, t) = (t*23 + i*77 + 5) & M16.
        west: Signal = (cyc * 23 + (i * 77 + 5)).trunc(16)
        west_valid = m.const(1, 1)
        a, a_valid = west, west_valid
        for j in range(cols):
            op, coef = pe_config(i, j)
            out = m.register(f"pe{i}_{j}_out", 16)
            vld = m.register(f"pe{i}_{j}_valid", 1)
            coef_sig = m.const(coef, 16)
            if op == 0:
                res = ((a.mul_wide(coef_sig) >> 8).trunc(16)
                       + out).trunc(16)
            elif op == 1:
                res = (a + coef_sig + out).trunc(16)
            elif op == 2:
                res = (a ^ m.const((coef * 3) & M16, 16)
                       ^ (out << 1).trunc(16))
            else:
                res = m.mux(a.gtu(out), out, a)
            out.update(a_valid, res)
            vld.next = a_valid
            a, a_valid = out, vld
        # Tail of the row feeds the frame checksum.
        checksum_add = (checksum_add
                        + m.mux(a_valid, m.const(0, 16), a).zext(32)
                        ).trunc(32)
    checksum.next = (checksum + checksum_add).trunc(32)

    done = cyc == steps
    m.check_sticky(done, checksum == reference_checksum(rows, cols, steps),
                   "cgra checksum mismatch")
    shown = m.display_staged(done, "cgra checksum %d", checksum)
    m.finish(shown)
    return m.build()


DEFAULT_CYCLES = 96
