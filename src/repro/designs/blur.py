"""``blur`` - a stencil computation accelerator (paper SS7.5, [15]).

A streaming 3x3 box blur over an 8-bit image: pixels arrive one per
cycle in raster order; two line buffers (RTL memories) hold the previous
rows; a 3x3 window of registers slides along.  The output stream is
checksummed and compared against a Python reference at end of frame -
the classic line-buffer structure of stencil accelerators.
"""

from __future__ import annotations

from ..netlist.builder import CircuitBuilder, Signal
from ..netlist.ir import Circuit


def input_pixel(x: int, y: int) -> int:
    return (13 * x + 31 * y + (x * y) // 3 + 7) & 0xFF


def reference_checksum(width: int, height: int) -> int:
    """Sum of all valid blur outputs (interior pixels only), mod 2^32."""
    total = 0
    for y in range(2, height):
        for x in range(2, width):
            acc = 0
            for dy in range(3):
                for dx in range(3):
                    acc += input_pixel(x - dx, y - dy)
            total = (total + acc // 9) & 0xFFFFFFFF
    return total


def build(width: int = 8, height: int = 8) -> Circuit:
    m = CircuitBuilder("blur")
    xbits = max(1, (width - 1).bit_length())
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)

    # Raster coordinates.
    x = m.register("x", xbits)
    y = m.register("y", 16)
    at_eol = x == (width - 1)
    x.next = m.mux(at_eol, (x + 1).trunc(xbits), m.const(0, xbits))
    y.update(at_eol, (y + 1).trunc(16))

    # Synthetic pixel source: pixel = f(x, y) matching input_pixel().
    xy = x.zext(16).mul_wide(y.trunc(8).zext(16)).trunc(16)
    xy_div3 = ((xy.mul_wide(m.const(0x5556, 16))) >> 16).trunc(16)
    pixel = (x.zext(16) * 13 + y * 31 + xy_div3 + 7).trunc(8)

    # Two line buffers: row y-1 and row y-2 at each column.
    line1 = m.memory("line1", 8, width)
    line2 = m.memory("line2", 8, width)
    above1 = line1.read(x)      # pixel at (x, y-1)
    above2 = line2.read(x)      # pixel at (x, y-2)
    one = m.const(1, 1)
    line2.write(x, above1, one)
    line1.write(x, pixel, one)

    # 3x3 window registers: w[r][c] is row offset r, column offset c.
    rows_in = [pixel, above1, above2]
    window: list[list[Signal]] = []
    for r, tap in enumerate(rows_in):
        c1 = m.register(f"w{r}_1", 8)
        c2 = m.register(f"w{r}_2", 8)
        c1.next = tap
        c2.next = c1
        window.append([tap, c1, c2])

    total = m.const(0, 12)
    for r in range(3):
        for c in range(3):
            total = (total + window[r][c].zext(12)).trunc(12)
    # Divide by 9 via multiply-shift: floor(t * 7282 / 2^16) == t // 9
    # for t < 2^12.
    blurred = (total.mul_wide(m.const(7282, 16)) >> 16).trunc(8)

    valid = x.geu(2) & y.geu(2) & y.ltu(height)
    checksum = m.register("checksum", 32)
    checksum.update(valid, (checksum + blurred.zext(32)).trunc(32))

    done = cyc == width * height
    m.check_sticky(done, checksum == reference_checksum(width, height),
                   "blur checksum mismatch")
    shown = m.display_staged(done, "blur checksum %d", checksum)
    m.finish(shown)
    return m.build()


DEFAULT_CYCLES = 128
