"""Global-stall microbenchmarks (paper SS7.7, Fig. 8): a FIFO and a RAM,
each performing one load and one store per Vcycle, sized at 1 KiB,
64 KiB, and 512 KiB.

The 1 KiB configuration fits in a core's scratchpad (no global stalls);
64 KiB exceeds the scratchpad but fits the 128 KiB cache; 512 KiB spills
to DRAM.  The FIFO accesses memory sequentially (excellent spatial
locality -> high hit rate); the RAM uses xorshift pseudo-random
addresses (miss-dominated at 512 KiB).
"""

from __future__ import annotations

from ..netlist.builder import CircuitBuilder
from ..netlist.ir import Circuit

KIB = 1024


def _depth_for(size_bytes: int) -> int:
    return size_bytes // 2  # 16-bit words


def build_fifo(size_bytes: int = KIB, cycles: int = 4096,
               force_global: bool | None = None) -> Circuit:
    """Sequential load+store per cycle over a ``size_bytes`` buffer."""
    depth = _depth_for(size_bytes)
    abits = max(1, (depth - 1).bit_length())
    m = CircuitBuilder(f"fifo_{size_bytes // KIB}k")
    cyc = m.register("cyc", 32)
    cyc.next = (cyc + 1).trunc(32)

    mem = m.memory("fifo", 16, depth, sram_hint=True,
                   global_hint=bool(force_global) if force_global
                   is not None else False)
    wr = m.register("wr", abits)
    rd = m.register("rd", abits)
    wr.next = (wr + 1).trunc(abits)
    rd.next = (rd + 1).trunc(abits)

    data = (cyc.trunc(16) ^ 0x5A5A).trunc(16)
    mem.write(wr, data, m.const(1, 1))
    head = mem.read(rd)
    sink = m.register("sink", 16)
    sink.next = sink ^ head

    m.display(cyc == cycles, "fifo sink %x", sink)
    m.finish(cyc == cycles)
    return m.build()


def build_ram(size_bytes: int = KIB, cycles: int = 4096,
              force_global: bool | None = None) -> Circuit:
    """Pseudo-random load+store per cycle (xorshift addresses)."""
    depth = _depth_for(size_bytes)
    abits = max(1, (depth - 1).bit_length())
    m = CircuitBuilder(f"ram_{size_bytes // KIB}k")
    cyc = m.register("cyc", 32)
    cyc.next = (cyc + 1).trunc(32)

    mem = m.memory("ram", 16, depth, sram_hint=True,
                   global_hint=bool(force_global) if force_global
                   is not None else False)
    # xorshift32 address generator (paper: XOR-shift-128; 32 suffices for
    # uniform pseudo-random addressing of these depths).
    rng = m.register("rng", 32, init=0x1D872B41)
    x1 = (rng ^ (rng << 13)).trunc(32)
    x2 = (x1 ^ (x1 >> 17)).trunc(32)
    rng.next = (x2 ^ (x2 << 5)).trunc(32)

    raddr = rng.trunc(abits)
    waddr = rng.bits(8, min(abits, 24)).zext(abits) \
        if abits > 1 else rng.trunc(abits)
    data = rng.trunc(16)
    mem.write(waddr.trunc(abits), data, m.const(1, 1))
    rd = mem.read(raddr)
    sink = m.register("sink", 16)
    sink.next = sink ^ rd

    m.display(cyc == cycles, "ram sink %x", sink)
    m.finish(cyc == cycles)
    return m.build()


#: The Fig. 8 sweep: (label, bytes).
FIG8_SIZES = [("1KiB", KIB), ("64KiB", 64 * KIB), ("512KiB", 512 * KIB)]
