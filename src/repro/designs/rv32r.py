"""``rv32r`` - a ring of in-order processors (paper SS7.5, [26]).

The paper runs 16 riscv-mini cores communicating over a ring.  Building a
full RV32I pipeline in our netlist IR would dwarf every other benchmark,
so we substitute a compact 16-bit accumulator ISA ("mini16") per core -
fetch from a per-core instruction ROM, a register file memory, ring send/
receive ports - preserving the structural character: many small CPUs,
mostly independent, coupled through nearest-neighbor links.

mini16 ISA (op 4 bits | field 12 bits):
  0 LDI  imm   acc = imm
  1 ADDI imm   acc += imm
  2 XORI imm   acc ^= imm
  3 SHLI imm   acc <<= imm (masked)
  4 ST   r     R[r] = acc
  5 LD   r     acc = R[r]
  6 ADD  r     acc += R[r]
  7 SEND       ring_out = acc
  8 RECV       acc = ring_in
  9 JNZ  pc    if acc != 0 jump
 10 JMP  pc    jump
 11 HALT       spin here
"""

from __future__ import annotations

from ..netlist.builder import CircuitBuilder, Signal
from ..netlist.ir import Circuit

M16 = 0xFFFF

(LDI, ADDI, XORI, SHLI, ST, LD, ADD, SEND, RECV, JNZ, JMP,
 HALT) = range(12)


def _asm(op: int, field: int = 0) -> int:
    return op | ((field & 0xFFF) << 4)


def core_program(core: int, num_cores: int, iterations: int) -> list[int]:
    """Token-mixing loop: accumulate locally, pass around the ring."""
    return [
        _asm(LDI, core + 1),       # 0: acc = id+1
        _asm(ST, 0),               # 1: R0 = acc (loop counter seed)
        _asm(LDI, iterations),     # 2
        _asm(ST, 1),               # 3: R1 = remaining iterations
        # loop:
        _asm(LD, 0),               # 4: acc = R0
        _asm(ADDI, 13),            # 5
        _asm(XORI, 0x3A7),         # 6
        _asm(SHLI, 1),             # 7
        _asm(SEND),                # 8: ring_out = acc
        _asm(RECV),                # 9: acc = ring_in (neighbor's last)
        _asm(ADD, 0),              # 10: acc += R0
        _asm(ST, 0),               # 11: R0 = acc
        _asm(LD, 1),               # 12
        _asm(ADDI, 0xFFF),         # 13: acc -= 1 (12-bit -1)
        _asm(ST, 1),               # 14
        _asm(JNZ, 4),              # 15: loop while remaining
        _asm(LD, 0),               # 16
        _asm(HALT),                # 17
    ]


def reference_final_r0(num_cores: int, iterations: int) -> list[int]:
    """Python model of every core's final R0 (exact ISA semantics)."""
    programs = [core_program(c, num_cores, iterations)
                for c in range(num_cores)]
    pcs = [0] * num_cores
    accs = [0] * num_cores
    regs = [[0, 0] for _ in range(num_cores)]
    ring_out = [0] * num_cores
    # Simulate synchronously: all cores step once per cycle; RECV reads
    # the *previous* cycle's neighbor output (registered link).
    for _cycle in range(iterations * 16 + 64):
        new_ring = list(ring_out)
        for c in range(num_cores):
            instr = programs[c][pcs[c]]
            op, field = instr & 0xF, instr >> 4
            nxt = pcs[c] + 1
            if op == LDI:
                accs[c] = field
            elif op == ADDI:
                accs[c] = (accs[c] + (field | (0xF000 if field >= 0x800
                                               else 0))) & M16
            elif op == XORI:
                accs[c] ^= field
            elif op == SHLI:
                accs[c] = (accs[c] << field) & M16
            elif op == ST:
                regs[c][field] = accs[c]
            elif op == LD:
                accs[c] = regs[c][field]
            elif op == ADD:
                accs[c] = (accs[c] + regs[c][field]) & M16
            elif op == SEND:
                new_ring[c] = accs[c]
            elif op == RECV:
                accs[c] = ring_out[(c - 1) % num_cores]
            elif op == JNZ:
                nxt = field if accs[c] != 0 else nxt
            elif op == JMP:
                nxt = field
            elif op == HALT:
                nxt = pcs[c]
            pcs[c] = nxt
        ring_out = new_ring
    return [regs[c][0] for c in range(num_cores)]


def build(num_cores: int = 12, iterations: int = 8) -> Circuit:
    """Build the ring of mini16 processors with its test driver."""
    m = CircuitBuilder("rv32r")
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)

    ring_regs: list[Signal] = [
        m.register(f"ring{c}", 16) for c in range(num_cores)
    ]
    final_r0: list[Signal] = []
    new_ring: list[Signal] = []

    for c in range(num_cores):
        program = core_program(c, num_cores, iterations)
        imem = m.memory(f"imem{c}", 16, 32,
                        init=program + [0] * (32 - len(program)))
        pc = m.register(f"pc{c}", 5)
        acc = m.register(f"acc{c}", 16)
        rf = m.memory(f"rf{c}", 16, 4)

        instr = imem.read(pc)
        op = instr.trunc(4)
        field = instr.bits(4, 12)
        imm_sext = m.cat(field, m.mux(field[11], m.const(0, 4),
                                      m.const(0xF, 4)))
        rf_rd = rf.read(field.trunc(2))
        ring_in = ring_regs[(c - 1) % num_cores]

        def is_op(code: int) -> Signal:
            return op == code

        acc_next = acc
        acc_next = m.mux(is_op(LDI), acc_next, field.zext(16))
        acc_next = m.mux(is_op(ADDI), acc_next,
                         (acc + imm_sext).trunc(16))
        acc_next = m.mux(is_op(XORI), acc_next, acc ^ field.zext(16))
        acc_next = m.mux(is_op(SHLI), acc_next,
                         (acc << field.trunc(4)).trunc(16))
        acc_next = m.mux(is_op(LD), acc_next, rf_rd)
        acc_next = m.mux(is_op(ADD), acc_next, (acc + rf_rd).trunc(16))
        acc_next = m.mux(is_op(RECV), acc_next, ring_in)
        acc.next = acc_next

        rf.write(field.trunc(2), acc, is_op(ST))

        taken = is_op(JMP) | (is_op(JNZ) & acc.any())
        halted = is_op(HALT)
        pc_next = m.mux(taken, (pc + 1).trunc(5), field.trunc(5))
        pc.next = m.mux(halted, pc_next, pc)

        new_ring.append(m.mux(is_op(SEND), ring_regs[c], acc))
        final_r0.append(rf.read(m.const(0, 2)))

    for c in range(num_cores):
        ring_regs[c].next = new_ring[c]

    expected = reference_final_r0(num_cores, iterations)
    halt_cycle = iterations * 16 + 64
    done = cyc == halt_cycle
    for c in range(num_cores):
        m.check_sticky(done, final_r0[c] == expected[c],
                       f"core {c} final R0 mismatch")

    def add32(group):
        acc = group[0]
        for s in group[1:]:
            acc = (acc + s).trunc(32)
        return acc

    total, depth = m.registered_reduce(
        "rv_sum", [r.zext(32) for r in final_r0], add32)
    shown = m.display_staged(cyc == halt_cycle + depth,
                             "rv32r checksum %d", total)
    m.finish(shown)
    return m.build()


DEFAULT_CYCLES = 256
