"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate FILE.v``          golden-interpreter simulation of a Verilog file
``compile FILE.v``           compile for Manticore; report VCPL/cores/sends,
                             optionally dump assembly and the binary
``run FILE.v``               compile + execute on the cycle-accurate machine,
                             optionally writing a VCD waveform
``designs``                  list the built-in benchmark designs
``design NAME``              golden-run one benchmark design
``disasm FILE.bin``          disassemble a bootloader binary
``fuzz``                     differential fuzzing: hunt a seed range through
                             an oracle matrix, shrink + record divergences
                             into a replayable corpus (``--replay FILE``)
``profile``                  compile + run one design under the observability
                             subsystem; print a bottleneck report and export
                             profile JSON / Chrome trace / Prometheus metrics
``serve``                    multi-tenant job server on a unix socket:
                             fair-share queue, compile-cache dedupe,
                             preemption + migration via checkpoints
``submit``                   client for a running ``repro serve``: submit one
                             job, replay a zipfian load plan, or shut down
"""

from __future__ import annotations

import argparse
import sys


def _load_circuit(path: str):
    from .netlist.verilog import parse_verilog
    with open(path) as f:
        return parse_verilog(f.read())


def _grid_config(args):
    from .machine.config import MachineConfig
    return MachineConfig(grid_x=args.grid[0], grid_y=args.grid[1])


def _compiler_options(args):
    """CompilerOptions from the shared compile flags (grid, cache, jobs).

    The CLI opts into the compile cache by default (``~/.cache/
    repro-compile`` or ``$REPRO_COMPILE_CACHE``); ``--no-cache`` turns it
    off, ``--cache-dir`` points it elsewhere.
    """
    from .compiler.cache import default_cache_dir
    from .compiler.driver import CompilerOptions
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(default_cache_dir())
    return CompilerOptions(config=_grid_config(args), jobs=args.jobs,
                           cache_dir=cache_dir)


def cmd_simulate(args) -> int:
    """Golden-interpreter simulation of a Verilog file."""
    from .netlist.interp import run_circuit
    circuit = _load_circuit(args.file)
    result = run_circuit(circuit, args.cycles)
    for line in result.displays:
        print(line)
    print(f"-- {result.cycles} cycles, "
          f"{'finished' if result.finished else 'cycle limit reached'}",
          file=sys.stderr)
    return 0


def cmd_compile(args) -> int:
    """Compile for Manticore and print the compile report."""
    import json

    from .compiler.driver import compile_circuit
    from .isa.asm import format_program
    from .machine.boot import serialize

    circuit = _load_circuit(args.file)
    result = compile_circuit(circuit, _compiler_options(args))
    r = result.report
    if args.json:
        print(json.dumps(r.as_dict(), indent=2))
        return 0
    print(f"design             : {r.name}")
    print(f"netlist ops        : {r.netlist_ops}")
    print(f"lower instructions : {r.lowered_instructions}")
    print(f"split processes    : {r.split_processes} "
          f"(|E| = {r.split_edges})")
    print(f"cores used         : {r.cores_used}")
    print(f"VCPL               : {r.vcpl}")
    print(f"Sends per Vcycle   : {r.send_count}")
    print(f"max imem footprint : {r.max_imem}")
    print(f"compile time       : {r.times.total:.2f}s "
          f"({', '.join(f'{k}={v:.2f}' for k, v in r.times.as_dict().items() if k != 'total')})")
    if r.cache is not None:
        print(f"compile cache      : {r.cache['status']} "
              f"({r.cache['key'][:12]}... in {r.cache['dir']})")
    print(f"rate @ 475 MHz     : {r.simulated_rate_khz(475.0):.1f} kHz")
    if args.asm:
        with open(args.asm, "w") as f:
            f.write(format_program(result.program))
        print(f"assembly           : {args.asm}")
    if args.binary:
        stream = serialize(result.program)
        with open(args.binary, "wb") as f:
            f.write(stream)
        print(f"binary             : {args.binary} ({len(stream)} bytes)")
    return 0


def cmd_run(args) -> int:
    """Compile and execute on the cycle-accurate machine model,
    optionally in crash-safe checkpointed chunks (``repro.checkpoint``)."""
    import json
    import os
    import time

    from . import checkpoint as ckpt
    from .compiler.driver import compile_circuit
    from .machine.waveform import WaveformCollector, trace_map_for

    if args.design:
        from .designs import DESIGNS
        info = DESIGNS[args.design]
        circuit = info.build()
        cycles = args.cycles or info.cycles + 300
    elif args.file:
        circuit = _load_circuit(args.file)
        cycles = args.cycles or 1_000_000
    else:
        print("repro run: need FILE.v or --design NAME", file=sys.stderr)
        return 2
    config = _grid_config(args)
    result = compile_circuit(circuit, _compiler_options(args))

    if args.batch:
        return _run_batch(args, result, config, cycles)

    if args.shards:
        incompatible = [flag for flag, on in [
            ("--batch", args.batch), ("--vcd", args.vcd),
        ] if on]
        if incompatible:
            print(f"repro run: --shards is incompatible with "
                  f"{', '.join(incompatible)}", file=sys.stderr)
            return 2
        if args.engine == "codegen":
            print("repro run: --shards cannot use engine=codegen (its "
                  "kernel holds whole-grid state); use --engine fast",
                  file=sys.stderr)
            return 2

    store = None
    if args.checkpoint_dir:
        store = ckpt.CheckpointStore(args.checkpoint_dir,
                                     keep=args.checkpoint_keep)
    elif args.checkpoint_every or args.resume:
        print("repro run: --checkpoint-every/--resume need "
              "--checkpoint-dir", file=sys.stderr)
        return 2

    probes = None
    if args.vcd:
        names = args.trace.split(",") if args.trace else None
        probes = trace_map_for(result, names=names)
    hooks: dict = {}

    def on_start(machine, resumed):
        if probes is None:
            return
        if resumed and os.path.exists(args.vcd):
            # Continue the interrupted dump: prime the change detector
            # with the restored values, append body-only later.
            hooks["collector"] = WaveformCollector.resumed_from(
                machine, probes)
        else:
            collector = WaveformCollector(machine, probes)
            collector.sample()  # initial values
            hooks["collector"] = collector

    def on_vcycle(machine):
        collector = hooks.get("collector")
        if collector is not None:
            collector.sample()
        if args.throttle:
            time.sleep(args.throttle)

    run = ckpt.run_with_checkpoints(
        result.program, cycles, config=config, engine=args.engine,
        store=store, checkpoint_every=args.checkpoint_every,
        resume=args.resume, shards=args.shards,
        transport=args.shard_transport,
        on_start=on_start, on_vcycle=on_vcycle)
    mres = run.result
    if args.shards:
        run.machine.close()

    for bad in run.rejected:
        print(f"-- discarded snapshot {bad.path.name}: {bad.reason}",
              file=sys.stderr)
    if args.resume:
        if run.resumed_from is not None:
            print(f"-- resumed from {run.resumed_path.name} at "
                  f"Vcycle {run.resumed_from}", file=sys.stderr)
        else:
            print("-- no usable snapshot; started fresh", file=sys.stderr)
    if run.published:
        print(f"-- published {len(run.published)} snapshot(s), newest "
              f"{run.published[-1].name}", file=sys.stderr)

    collector = hooks.get("collector")
    if collector is not None:
        mode = "a" if collector.resumed else "w"
        with open(args.vcd, mode) as f:
            collector.write_vcd(f, header=not collector.resumed)
        print(f"-- wrote {len(probes)} signals to {args.vcd}"
              + (" (appended)" if collector.resumed else ""),
              file=sys.stderr)

    c = mres.counters
    if args.json:
        print(json.dumps({
            "design": args.design or args.file,
            "engine": args.engine,
            "vcycles": mres.vcycles,
            "finished": mres.finished,
            "displays": mres.displays,
            "counters": c.as_dict(),
            "cache": mres.cache.as_dict(),
            "resumed_from": run.resumed_from,
        }, indent=2, sort_keys=True))
    else:
        for line in mres.displays:
            print(line)
    print(f"-- {mres.vcycles} Vcycles, {c.total_cycles} machine cycles "
          f"({c.stall_cycles} stalled), "
          f"rate @475MHz = {mres.simulation_rate_khz(475.0):.1f} kHz",
          file=sys.stderr)
    return 0


def _run_batch(args, result, config, cycles) -> int:
    """``repro run --batch N``: N identical lanes of one compiled design
    advanced in lockstep (``repro.machine.batch``)."""
    import json
    import time

    from .machine.batch import BatchRunner

    incompatible = [flag for flag, on in [
        ("--vcd", args.vcd), ("--checkpoint-dir", args.checkpoint_dir),
        ("--checkpoint-every", args.checkpoint_every),
        ("--resume", args.resume), ("--throttle", args.throttle),
    ] if on]
    if incompatible:
        print(f"repro run: --batch is incompatible with "
              f"{', '.join(incompatible)}", file=sys.stderr)
        return 2

    runner = BatchRunner(result.program, config, width=args.batch,
                         engine=args.engine, lowering=args.batch_lowering)
    start = time.perf_counter()
    outs = runner.run(cycles)
    elapsed = time.perf_counter() - start

    if args.json:
        lanes = []
        for lane, out in enumerate(outs):
            if runner.errors[lane] is not None:
                lanes.append({"lane": lane, "error": runner.errors[lane]})
            else:
                lanes.append({
                    "lane": lane, "vcycles": out.vcycles,
                    "finished": out.finished, "displays": out.displays,
                    "counters": out.counters.as_dict(),
                })
        print(json.dumps({
            "design": args.design or args.file,
            "engine": args.engine,
            "batch_width": args.batch,
            "lowering": runner.lowering_used,
            "lanes": lanes,
        }, indent=2, sort_keys=True))
    else:
        for lane, out in enumerate(outs):
            if runner.errors[lane] is not None:
                print(f"[lane {lane}] ERROR: {runner.errors[lane]}")
                continue
            for line in out.displays:
                print(f"[lane {lane}] {line}")
    total_vcycles = sum(out.vcycles for out in outs)
    print(f"-- {args.batch} lanes "
          f"(lowering={runner.lowering_used or 'serial fallback'}), "
          f"{total_vcycles} lane-Vcycles in {elapsed:.2f}s "
          f"({total_vcycles / max(elapsed, 1e-9):.0f} lane-Vcycles/s)",
          file=sys.stderr)
    return 0


def cmd_designs(_args) -> int:
    """List the built-in benchmark designs."""
    from .designs import DESIGNS
    for name, info in DESIGNS.items():
        print(f"{name:8s} {info.description}")
    return 0


def cmd_design(args) -> int:
    """Golden-run one benchmark design by name."""
    from .designs import DESIGNS
    from .netlist.interp import run_circuit
    info = DESIGNS[args.name]
    result = run_circuit(info.build(), args.cycles or info.cycles + 300)
    for line in result.displays:
        print(line)
    print(f"-- {result.cycles} cycles", file=sys.stderr)
    return 0


def cmd_disasm(args) -> int:
    """Disassemble a bootloader binary back to assembly."""
    from .isa.asm import format_program
    from .machine.boot import deserialize
    with open(args.file, "rb") as f:
        program = deserialize(f.read())
    print(f"// {program.name}: grid {program.grid[0]}x{program.grid[1]}, "
          f"VCPL {program.vcpl}")
    print(format_program(program))
    return 0


def _parse_seed_range(spec: str) -> range:
    """``"A:B"`` -> ``range(A, B)``; a bare ``"N"`` -> ``range(N, N+1)``."""
    if ":" in spec:
        lo, hi = spec.split(":", 1)
        return range(int(lo), int(hi))
    n = int(spec)
    return range(n, n + 1)


def _fuzz_params(args):
    from .fuzz.generator import GeneratorParams
    overrides = {}
    if args.n_ops is not None:
        overrides["n_ops"] = args.n_ops
    if args.n_regs is not None:
        overrides["n_regs"] = args.n_regs
    if args.max_width is not None:
        overrides["max_width"] = args.max_width
    return GeneratorParams().scaled(**overrides)


def _fuzz_report_divergence(args, report, params) -> str:
    """Shrink + record one failing seed; returns the corpus file path."""
    from .fuzz.corpus import CorpusEntry, save_entry
    from .fuzz.generator import generate
    from .fuzz.shrink import oracle_predicate, shrink

    budget = args.cycles if args.cycles is not None else params.cycles + 8
    first = report.divergences[0]
    circuit = generate(report.seed, params)
    divergence = first
    if not args.no_shrink:
        predicate = oracle_predicate(first.oracle, budget)
        result = shrink(circuit, predicate)
        print(f"  {result.summary()}", file=sys.stderr)
        circuit, divergence = result.circuit, result.divergence
    entry = CorpusEntry(
        circuit=circuit, cycles=budget, seed=report.seed, params=params,
        matrix=args.matrix or "quick", oracle=divergence.oracle,
        divergence=divergence,
        note=f"found by repro fuzz, seed {report.seed}")
    path = save_entry(entry, args.corpus_dir)
    print(f"  repro: {entry.replay_command(path)}", file=sys.stderr)
    return path


def _fuzz_replay(args) -> int:
    """Replay corpus files; exit 0 iff every recorded outcome reproduces."""
    from .fuzz.corpus import load_entry, replay_entry
    failures = 0
    for path in args.replay:
        entry = load_entry(path)
        _, divergences = replay_entry(entry, matrix=args.matrix)
        want = entry.divergence
        if divergences:
            print(f"{path}: {divergences[0].describe()}")
        else:
            print(f"{path}: clean "
                  f"({'as recorded' if want is None else 'UNEXPECTED'})")
        reproduced = (bool(divergences) == (want is not None))
        if want is not None and divergences and args.matrix is None:
            reproduced = (divergences[0].cycle == want.cycle
                          and divergences[0].signal == want.signal)
        if not reproduced:
            failures += 1
            print(f"{path}: recorded outcome did NOT reproduce",
                  file=sys.stderr)
    return 1 if failures else 0


def cmd_fuzz(args) -> int:
    """Differential fuzzing: hunt seeds, shrink and record divergences."""
    import time

    from .fuzz.oracle import MATRICES, ORACLES, fuzz_seed

    if args.list_oracles:
        for name, spec in ORACLES.items():
            print(f"{name:28s} {spec.describe()}")
        for name, members in MATRICES.items():
            print(f"matrix {name:21s} {', '.join(members)}")
        return 0
    if args.replay:
        return _fuzz_replay(args)
    if args.batch_width:
        return _fuzz_batch(args)

    params = _fuzz_params(args)
    matrix = args.matrix or "quick"
    seeds = _parse_seed_range(args.seeds)
    deadline = (time.monotonic() + args.time_budget
                if args.time_budget else None)
    failures = []
    tested = 0

    def handle(report):
        nonlocal tested
        tested += 1
        if report.ok:
            if args.verbose:
                print(f"seed {report.seed}: ok "
                      f"({report.elapsed:.2f}s)", file=sys.stderr)
            return
        print(f"seed {report.seed}: {report.divergences[0].describe()}")
        failures.append(_fuzz_report_divergence(args, report, params))

    if args.jobs > 1:
        import concurrent.futures as cf
        from functools import partial
        work = partial(fuzz_seed, params=params, matrix=matrix,
                       cycles=args.cycles)
        with cf.ProcessPoolExecutor(max_workers=args.jobs) as pool:
            futures = [pool.submit(work, seed) for seed in seeds]
            for future in futures:
                if deadline is not None and time.monotonic() > deadline:
                    for f in futures:
                        f.cancel()
                    break
                handle(future.result())
    else:
        for seed in seeds:
            if deadline is not None and time.monotonic() > deadline:
                break
            handle(fuzz_seed(seed, params=params, matrix=matrix,
                             cycles=args.cycles))

    print(f"-- fuzzed {tested} seeds against [{matrix}]: "
          f"{len(failures)} divergence(s)"
          + (f", corpus in {args.corpus_dir}" if failures else ""),
          file=sys.stderr)
    return 1 if failures else 0


def _fuzz_batch(args) -> int:
    """``repro fuzz --batch-width B``: each seed compiled once and run as
    B stimulus lanes in lockstep, every lane checked against its own
    golden (``repro.fuzz.oracle.fuzz_seed_batch``)."""
    import time

    from .fuzz.oracle import fuzz_seed_batch

    params = _fuzz_params(args)
    seeds = _parse_seed_range(args.seeds)
    deadline = (time.monotonic() + args.time_budget
                if args.time_budget else None)
    failures = 0
    tested = lanes = 0
    start = time.perf_counter()
    for seed in seeds:
        if deadline is not None and time.monotonic() > deadline:
            break
        report = fuzz_seed_batch(seed, width=args.batch_width,
                                 params=params, cycles=args.cycles,
                                 lowering=args.batch_lowering)
        tested += 1
        lanes += report.width
        if report.ok:
            if args.verbose:
                print(f"seed {report.seed}: ok x{report.width} lanes "
                      f"({report.elapsed:.2f}s, "
                      f"lowering={report.lowering or 'serial fallback'}"
                      + (", rebind fallback" if report.rebind_fallback
                         else "") + ")",
                      file=sys.stderr)
            continue
        failures += 1
        for div in report.divergences:
            print(f"seed {report.seed}: {div.describe()}")
        # Batched lanes are init-variants of the seed circuit; replay
        # scalar-style with `repro fuzz --seeds SEED` to shrink.
    elapsed = time.perf_counter() - start
    print(f"-- batch-fuzzed {tested} seeds x {args.batch_width} lanes: "
          f"{failures} diverging seed(s), "
          f"{lanes / max(elapsed, 1e-9):.2f} lane-seeds/s",
          file=sys.stderr)
    return 1 if failures else 0


def cmd_profile(args) -> int:
    """Profile one design: compile with span tracing, run with profiling
    counters, and render the bottleneck report (``repro.obs``)."""
    import json

    from .obs import profile_circuit

    if args.design:
        from .designs import DESIGNS
        info = DESIGNS[args.design]
        circuit = info.build()
        cycles = args.cycles or info.cycles + 300
        name = args.design
    else:
        circuit = _load_circuit(args.file)
        cycles = args.cycles or 1_000_000
        name = None

    run = profile_circuit(circuit, name=name, engine=args.engine,
                          options=_compiler_options(args),
                          max_vcycles=cycles)
    profile = run.profile
    if args.json:
        with open(args.json, "w") as f:
            json.dump(profile, f, indent=2)
        print(f"-- profile JSON: {args.json}", file=sys.stderr)
    if args.trace_out:
        with open(args.trace_out, "w") as f:
            json.dump(run.trace_json, f, indent=2)
        print(f"-- Chrome trace: {args.trace_out} "
              f"(load via chrome://tracing or ui.perfetto.dev)",
              file=sys.stderr)
    if args.metrics:
        with open(args.metrics, "w") as f:
            f.write(run.prometheus)
        print(f"-- Prometheus textfile: {args.metrics}", file=sys.stderr)
    if not args.quiet:
        print(run.render())
    return 0


def cmd_serve(args) -> int:
    """Run the multi-tenant simulation service on a unix socket
    (``repro.serve``); stops on ``repro submit --shutdown`` or Ctrl-C,
    writing the Prometheus metrics textfile on the way out."""
    import asyncio
    import os

    from .machine.config import MachineConfig
    from .serve import SimulationServer, serve_unix

    config = MachineConfig(grid_x=args.grid[0], grid_y=args.grid[1])
    cache_dir = None
    if not args.no_cache:
        from .compiler.cache import default_cache_dir
        cache_dir = args.cache_dir or str(default_cache_dir())

    async def main() -> None:
        server = SimulationServer(
            workers=args.workers, mode=args.mode, config=config,
            engine_default=args.engine, cache_dir=cache_dir,
            checkpoint_every=args.checkpoint_every,
            chunk_vcycles=args.chunk_vcycles,
            preempt_grain=args.preempt_grain, retries=args.retries)
        await server.start()
        sock = await serve_unix(server, args.socket)
        print(f"-- serving on {args.socket} ({args.workers} "
              f"{args.mode} worker(s), engine={args.engine})",
              file=sys.stderr)
        try:
            await server.shutdown_event.wait()
        finally:
            sock.close()
            await sock.wait_closed()
            if args.metrics_out:
                with open(args.metrics_out, "w") as f:
                    f.write(server.prometheus())
                print(f"-- metrics textfile: {args.metrics_out}",
                      file=sys.stderr)
            snapshot = server.metrics_snapshot()
            await server.close()
            jobs = snapshot["jobs"]
            print(f"-- served {jobs['submitted']} job(s): "
                  f"{jobs['completed']} done, {jobs['failed']} failed, "
                  f"{jobs['preempted']} preemption(s), compile hit rate "
                  f"{snapshot['compile']['hit_rate']:.0%}",
                  file=sys.stderr)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("-- interrupted", file=sys.stderr)
    finally:
        if os.path.exists(args.socket):
            os.unlink(args.socket)
    return 0


def cmd_submit(args) -> int:
    """Client for a running ``repro serve``."""
    import json

    from .serve import ServeClient, plan_load, run_load

    with ServeClient(args.socket, connect_timeout=args.connect_timeout) \
            as client:
        if args.shutdown:
            client.shutdown()
            print("-- shutdown requested", file=sys.stderr)
            return 0
        if args.load:
            plan = plan_load(args.load, zipf_s=args.zipf,
                             tenants=args.tenants, seed=args.seed,
                             engine=args.engine)
            summary = run_load(client, plan,
                               preempt_one=args.preempt_one,
                               wait=args.wait, timeout=args.timeout)
            failed = [j for j in summary["jobs"]
                      if j["state"] != "done"]
            if args.json:
                print(json.dumps(summary, indent=2, sort_keys=True))
            else:
                metrics = summary["metrics"]
                print(f"-- {summary['submitted']} submitted, "
                      f"{len(failed)} not done, compile hit rate "
                      f"{metrics['compile']['hit_rate']:.0%}, p50 "
                      f"{metrics['latency']['p50_s']:.3f}s p99 "
                      f"{metrics['latency']['p99_s']:.3f}s",
                      file=sys.stderr)
            return 1 if (args.wait and failed) else 0
        if not args.design:
            print("repro submit: need --design, --load, or --shutdown",
                  file=sys.stderr)
            return 2
        job_id = client.submit(args.design, tenant=args.tenant,
                               cycles=args.cycles, engine=args.engine,
                               priority=args.priority)
        if not args.wait:
            print(job_id)
            return 0
        job = client.wait(job_id, timeout=args.timeout)
        if args.json:
            print(json.dumps(job, indent=2, sort_keys=True))
        elif job["result"]:
            for line in job["result"]["displays"]:
                print(line)
        print(f"-- job {job_id} [{job['tenant']}] {job['state']}: "
              f"{job['progress']} Vcycles, "
              f"{job['preemptions']} preemption(s), cache "
              f"{(job['cache'] or {}).get('status', '?')}",
              file=sys.stderr)
        return 0 if job["state"] == "done" else 1


def _workload_grid(values: list[str]) -> tuple[int, int]:
    """``["15x15"]`` or ``["15", "15"]`` -> ``(15, 15)``."""
    from .workloads.registry import parse_grid
    if len(values) == 1:
        return parse_grid(values[0])
    return (int(values[0]), int(values[1]))


def cmd_workloads(args) -> int:
    """Named-workload registry: list, run, verify, bench, pin."""
    import json

    from .workloads import (DEFAULT_GRID, WorkloadError, load_workloads,
                            pin_workloads, run_workload, verify_workload)
    from .workloads.bench import bench_row, default_scale, verify_registry
    from .workloads.registry import grid_key, save_workloads

    def progress(msg):
        print(f"-- {msg}", file=sys.stderr)

    try:
        workloads = load_workloads()
        if args.action == "list":
            for w in workloads.values():
                grids = ",".join(sorted(w.digests)) or "-"
                print(f"{w.name:16s} {w.kind:8s} {w.cycles:6d} cyc  "
                      f"pinned@{grids:8s} {w.description}")
            return 0

        grid = _workload_grid(args.grid) if args.grid else DEFAULT_GRID
        if args.action == "run":
            if args.name not in workloads:
                print(f"repro workloads: unknown workload {args.name!r}",
                      file=sys.stderr)
                return 2
            run = run_workload(workloads[args.name], grid, args.engine)
            print(f"{run.workload} @ {grid_key(grid)} [{run.engine}]: "
                  f"{run.vcycles} Vcycles, finished={run.finished}, "
                  f"digest {run.digest[:16]} "
                  f"(pin={'n/a' if run.digest_ok is None else run.digest_ok},"
                  f" fingerprint="
                  f"{'n/a' if run.fingerprint_ok is None else run.fingerprint_ok})")
            return 0 if run.ok else 1

        if args.action == "verify":
            names = args.names or list(workloads)
            for name in names:
                if name not in workloads:
                    print(f"repro workloads: unknown workload {name!r}",
                          file=sys.stderr)
                    return 2
                runs = verify_workload(workloads[name], grid,
                                       tuple(args.engines.split(",")))
                print(f"{name:16s} ok: "
                      + ", ".join(f"{r.engine}={r.digest[:12]}"
                                  for r in runs))
            return 0

        if args.action == "bench":
            scale = args.scale or default_scale(grid)
            row = bench_row(grid, scale, tuple(args.engines.split(",")),
                            progress=progress)
            if grid == DEFAULT_GRID and not args.no_registry:
                row["registry"] = verify_registry(grid, progress=progress)
            if args.json:
                print(json.dumps(row, indent=2, sort_keys=True))
            else:
                for name, d in row["designs"].items():
                    rates = " ".join(
                        f"{e}={v['vcycles_per_s']:.0f}/s"
                        for e, v in d["engines"].items())
                    print(f"{name:8s} {d['ops']:6d} ops  "
                          f"{d['vcycles']:5d} Vcycles  "
                          f"compile {d['compile_s']:6.1f}s  {rates}")
                print(f"-- {row['grid']}/{row['scale']}: all digests "
                      f"agree across {', '.join(row['engines'])}")
            return 0

        if args.action == "pin":
            grids = (tuple(_workload_grid([g]) for g in args.grids)
                     if args.grids else (DEFAULT_GRID,))
            pinned = pin_workloads(workloads, grids)
            changed = [n for n in pinned
                       if pinned[n] != workloads[n]]
            path = save_workloads(pinned)
            print(f"-- pinned {len(pinned)} workloads "
                  f"({len(changed)} changed) -> {path}", file=sys.stderr)
            for n in changed:
                print(f"   {n}")
            return 0
    except WorkloadError as exc:
        print(f"repro workloads: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled action {args.action!r}")


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    # Engine and matrix choices come from the live registries so a new
    # engine tier or oracle preset shows up here without a CLI edit.
    from .fuzz.oracle import MATRICES
    from .machine import ENGINES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Manticore (ASPLOS 2023) reproduction toolchain")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_grid(p):
        p.add_argument("--grid", nargs=2, type=int, default=[4, 4],
                       metavar=("X", "Y"), help="Manticore grid size")

    def add_compile_flags(p):
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the parallel compiler "
                            "phases (1 = serial, -1 = one per CPU; the "
                            "output is bit-identical either way)")
        p.add_argument("--cache-dir", metavar="DIR",
                       help="compile-cache directory (default: "
                            "$REPRO_COMPILE_CACHE or ~/.cache/"
                            "repro-compile)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the content-addressed compile cache")

    p = sub.add_parser("simulate", help="golden-interpreter simulation")
    p.add_argument("file")
    p.add_argument("--cycles", type=int, default=1_000_000)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("compile", help="compile for Manticore")
    p.add_argument("file")
    add_grid(p)
    add_compile_flags(p)
    p.add_argument("--asm", help="write assembly listing")
    p.add_argument("--binary", help="write bootloader binary")
    p.add_argument("--json", action="store_true",
                   help="print the compile report as JSON")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="compile and run on the machine model")
    p.add_argument("file", nargs="?",
                   help="Verilog file (or use --design)")
    p.add_argument("--design", metavar="NAME",
                   help="run a built-in benchmark design instead of a file")
    add_grid(p)
    add_compile_flags(p)
    p.add_argument("--cycles", "--max-vcycles", dest="cycles", type=int,
                   help="Vcycle budget (default: the design's cycle count "
                        "+ 300, or 1000000 for files)")
    p.add_argument("--engine", default="strict", choices=list(ENGINES),
                   help="machine execution engine (default: strict)")
    p.add_argument("--batch", type=int, default=0, metavar="N",
                   help="run N identical lanes of the design in lockstep "
                        "(batched kernel on the codegen engine; "
                        "incompatible with --vcd/--checkpoint-*/--resume)")
    p.add_argument("--shards", type=int, default=0, metavar="K",
                   help="shard the grid into K contiguous row bands, one "
                        "persistent worker process each, exchanging "
                        "boundary messages once per Vcycle (bit-identical "
                        "to single-process; incompatible with "
                        "--batch/--vcd/engine=codegen)")
    p.add_argument("--shard-transport", default="process",
                   choices=["process", "local"],
                   help="sharded execution transport (default: process; "
                        "local runs every shard in-process, for debugging)")
    p.add_argument("--batch-lowering", default="auto",
                   choices=["auto", "list", "numpy"],
                   help="batched-kernel vector lowering (default: auto = "
                        "numpy at wide batches when available)")
    p.add_argument("--vcd", help="write a VCD waveform (on --resume, "
                                 "appends to an existing dump)")
    p.add_argument("--trace", help="comma-separated register prefixes")
    p.add_argument("--checkpoint-dir", metavar="DIR",
                   help="snapshot directory for crash-safe long runs")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="K",
                   help="publish a snapshot every K completed Vcycles")
    p.add_argument("--checkpoint-keep", type=int, default=3, metavar="N",
                   help="snapshot generations to retain (default: 3)")
    p.add_argument("--resume", action="store_true",
                   help="continue from the newest valid snapshot in "
                        "--checkpoint-dir (torn/mismatched snapshots are "
                        "discarded with a report)")
    p.add_argument("--json", action="store_true",
                   help="print the run result (Vcycles, displays, "
                        "counters, cache) as JSON")
    p.add_argument("--throttle", type=float, default=0.0,
                   metavar="SECONDS",
                   help="sleep after every Vcycle (testing aid: makes "
                        "kill-and-resume windows deterministic)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("designs", help="list benchmark designs")
    p.set_defaults(func=cmd_designs)

    p = sub.add_parser("design", help="golden-run a benchmark design")
    p.add_argument("name")
    p.add_argument("--cycles", type=int)
    p.set_defaults(func=cmd_design)

    p = sub.add_parser("disasm", help="disassemble a program binary")
    p.add_argument("file")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser(
        "workloads",
        help="named-workload registry with pinned state digests")
    wsub = p.add_subparsers(dest="action", required=True)

    def add_wgrid(wp, default_help="workload grid (default: the pin "
                                   "grid, 8x8); accepts '15x15' or "
                                   "'15 15'"):
        wp.add_argument("--grid", nargs="+", metavar="G",
                        help=default_help)

    wp = wsub.add_parser("list", help="list registered workloads")
    wp.set_defaults(func=cmd_workloads)

    wp = wsub.add_parser("run", help="compile+run one workload, "
                                     "checking its pinned digest")
    wp.add_argument("name")
    add_wgrid(wp)
    wp.add_argument("--engine", default="fast", choices=list(ENGINES))
    wp.set_defaults(func=cmd_workloads)

    wp = wsub.add_parser(
        "verify", help="run workloads on several engines; digests must "
                       "agree and match the pins")
    wp.add_argument("names", nargs="*",
                    help="workload names (default: all)")
    add_wgrid(wp)
    wp.add_argument("--engines", default="strict,fast,codegen",
                    help="comma-separated engine list")
    wp.set_defaults(func=cmd_workloads)

    wp = wsub.add_parser(
        "bench", help="bench all design families at one grid/scale "
                      "operating point (digest-checked)")
    add_wgrid(wp)
    wp.add_argument("--scale", choices=["small", "paper", "stretch"],
                    help="design scale tier (default: inferred from "
                         "the grid)")
    wp.add_argument("--engines", default="strict,fast,codegen",
                    help="comma-separated engine list")
    wp.add_argument("--no-registry", action="store_true",
                    help="skip the registry pin sweep on the pin grid")
    wp.add_argument("--json", action="store_true",
                    help="print the bench row as JSON")
    wp.set_defaults(func=cmd_workloads)

    wp = wsub.add_parser(
        "pin", help="recompute and save pinned fingerprints/digests "
                    "(after a deliberate toolchain change)")
    wp.add_argument("--grids", nargs="+", metavar="G",
                    help="grids to pin (default: 8x8)")
    wp.set_defaults(func=cmd_workloads)

    p = sub.add_parser(
        "fuzz", help="differential fuzzing against an oracle matrix")
    p.add_argument("--seeds", default="0:50", metavar="A:B",
                   help="seed range to hunt (half-open; default 0:50)")
    p.add_argument("--time-budget", type=float, metavar="SECONDS",
                   help="stop hunting after this many seconds")
    p.add_argument("--matrix",
                   help=f"oracle matrix: a preset "
                        f"({'/'.join(sorted(MATRICES))}) or a "
                        f"comma-separated oracle list (default: quick; in "
                        f"--replay mode, default: the recorded oracle)")
    p.add_argument("--corpus-dir", default="fuzz-corpus", metavar="DIR",
                   help="where shrunk repros are written (default: "
                        "fuzz-corpus)")
    p.add_argument("--replay", nargs="+", metavar="FILE",
                   help="replay corpus files instead of hunting; exits "
                        "non-zero unless every recorded outcome reproduces")
    p.add_argument("--jobs", type=int, default=1,
                   help="fuzz seeds in parallel worker processes")
    p.add_argument("--cycles", type=int,
                   help="simulation cycle budget per seed (default: "
                        "generator cycles + 8)")
    p.add_argument("--n-ops", type=int, help="generator: ops per circuit")
    p.add_argument("--n-regs", type=int, help="generator: register count")
    p.add_argument("--max-width", type=int,
                   help="generator: maximum wire width")
    p.add_argument("--batch-width", type=int, default=0, metavar="B",
                   help="batched mode: compile each seed once and run B "
                        "init-variant lanes in lockstep, each lane "
                        "checked against its own golden (serial; ignores "
                        "--matrix/--jobs)")
    p.add_argument("--batch-lowering", default="auto",
                   choices=["auto", "list", "numpy"],
                   help="batched-kernel vector lowering (default: auto)")
    p.add_argument("--no-shrink", action="store_true",
                   help="record failing circuits without minimizing them")
    p.add_argument("--list-oracles", action="store_true",
                   help="list known oracles and matrices, then exit")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="report every seed, not just failures")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "profile",
        help="profile a design: bottleneck report + trace exports")
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--design", metavar="NAME",
                     help="profile a built-in benchmark design")
    src.add_argument("--file", metavar="FILE.v",
                     help="profile a Verilog file")
    p.add_argument("--engine", default="fast", choices=list(ENGINES),
                   help="machine execution engine (default: fast)")
    p.add_argument("--cycles", type=int,
                   help="Vcycle budget (default: the design's driver-"
                        "complete cycle count + 300, or 1000000 for files)")
    add_grid(p)
    add_compile_flags(p)
    p.add_argument("--json", metavar="FILE",
                   help="write the profile export (docs/profile.schema."
                        "json) as JSON")
    p.add_argument("--trace", dest="trace_out", metavar="FILE",
                   help="write compile/run spans as Chrome trace_event "
                        "JSON")
    p.add_argument("--metrics", metavar="FILE",
                   help="write flat metrics as a Prometheus textfile")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="suppress the terminal report (exports only)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "serve",
        help="multi-tenant job server on a unix socket (repro.serve)")
    p.add_argument("--socket", required=True, metavar="PATH",
                   help="unix socket path to listen on")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent job slots (default: 2)")
    p.add_argument("--mode", default="thread",
                   choices=["thread", "process"],
                   help="job execution backend: thread (in-process) or "
                        "process (leased pool workers, fault-isolated; "
                        "default: thread)")
    p.add_argument("--engine", default="fast", choices=list(ENGINES),
                   help="default engine for submissions (default: fast)")
    add_grid(p)
    p.add_argument("--cache-dir", metavar="DIR",
                   help="compile-cache directory (default: "
                        "$REPRO_COMPILE_CACHE or ~/.cache/repro-compile)")
    p.add_argument("--no-cache", action="store_true",
                   help="use a private throwaway compile cache")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="K",
                   help="snapshot running jobs every K Vcycles "
                        "(0 = only at preemption handoffs)")
    p.add_argument("--chunk-vcycles", type=int, default=256, metavar="N",
                   help="process mode: Vcycles per worker dispatch "
                        "(default: 256)")
    p.add_argument("--preempt-grain", type=int, default=16, metavar="G",
                   help="checking engines: events between preemption "
                        "polls, enabling mid-Vcycle handoff (default: 16)")
    p.add_argument("--retries", type=int, default=1,
                   help="snapshot-resume retries after a lost worker "
                        "(default: 1)")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="write the Prometheus metrics textfile at "
                        "shutdown")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="client for a running `repro serve`")
    p.add_argument("--socket", required=True, metavar="PATH",
                   help="unix socket of the server")
    p.add_argument("--design", metavar="NAME",
                   help="submit one built-in design")
    p.add_argument("--tenant", default="default")
    p.add_argument("--priority", type=int, default=1,
                   help="fair-share weight; higher may preempt lower "
                        "(default: 1)")
    p.add_argument("--cycles", type=int,
                   help="Vcycle budget (default: design cycles + 300)")
    p.add_argument("--engine", choices=list(ENGINES),
                   help="engine override (default: the server's)")
    p.add_argument("--load", type=int, default=0, metavar="N",
                   help="replay a deterministic zipfian plan of N jobs "
                        "instead of one submission")
    p.add_argument("--zipf", type=float, default=1.1, metavar="S",
                   help="zipf skew of the load plan (default: 1.1)")
    p.add_argument("--tenants", type=int, default=4,
                   help="tenant count for the load plan (default: 4)")
    p.add_argument("--seed", type=int, default=0,
                   help="load plan RNG seed (default: 0)")
    p.add_argument("--preempt-one", action="store_true",
                   help="force one preemption round trip on the first "
                        "load-plan job")
    p.add_argument("--wait", action="store_true",
                   help="block until submitted job(s) are terminal")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="per-job wait timeout in seconds (default: 600)")
    p.add_argument("--connect-timeout", type=float, default=10.0,
                   help="seconds to retry connecting (default: 10)")
    p.add_argument("--json", action="store_true",
                   help="print results as JSON")
    p.add_argument("--shutdown", action="store_true",
                   help="ask the server to shut down")
    p.set_defaults(func=cmd_submit)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
