"""Custom function synthesis (paper SS6.2).

Collapses chains of bitwise logic instructions (AND/OR/XOR, including the
XOR-with-constant NOTs produced by lowering) into single 4-input custom
instructions evaluated by each core's CFU.

Method, mirroring the paper:

1. per process, prune the dependence graph to logic-only connected
   components;
2. exhaustively enumerate 4-feasible cuts (cut enumeration [16]);
   constant operands are *free* because the per-bit-position truth tables
   absorb them (SS5.1);
3. keep cuts that are maximal fanout-free cones (no interior result used
   outside the cone);
4. group candidate cones by the function they compute - logical
   equivalence up to input permutation, checked on the 256-bit truth
   table;
5. select a non-overlapping subset maximizing instruction savings, with
   at most 32 distinct functions per core, via MILP
   (``scipy.optimize.milp``) with a greedy fallback.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..isa import instructions as isa
from ..isa.program import Process, ProgramImage
from ..isa.semantics import eval_alu

LOGIC_OPS = {"AND", "OR", "XOR"}
MAX_CUT_INPUTS = 4
MAX_CUTS_PER_NODE = 12
MILP_CANDIDATE_LIMIT = 400


def _is_const(reg: isa.Reg) -> bool:
    return isinstance(reg, str) and reg.startswith("$c")


@dataclass
class Candidate:
    """A fusable cone: ``root`` (body index) plus interior instructions."""

    root: int
    cone: frozenset[int]
    inputs: tuple[str, ...]     # non-constant cut inputs, canonical order
    config: int                 # 256-bit CFU configuration
    savings: int


@dataclass
class ProcessSynthesisStats:
    pid: int
    instructions_before: int
    instructions_after: int
    fused_cones: int
    functions_used: int


@dataclass
class CustomSynthesisResult:
    per_process: list[ProcessSynthesisStats] = field(default_factory=list)

    @property
    def instructions_before(self) -> int:
        return sum(p.instructions_before for p in self.per_process)

    @property
    def instructions_after(self) -> int:
        return sum(p.instructions_after for p in self.per_process)

    @property
    def reduction_percent(self) -> float:
        before = self.instructions_before
        if before == 0:
            return 0.0
        return 100.0 * (before - self.instructions_after) / before


def _evaluate_cone(body: list[isa.Instruction], cone_order: list[int],
                   assignment: dict[str, int], root: int) -> int:
    values = dict(assignment)
    for i in cone_order:
        instr = body[i]
        assert isinstance(instr, isa.Alu)
        a = values[instr.rs1]
        b = values[instr.rs2]
        values[instr.rd] = eval_alu(instr.op, a, b)
    return values[body[root].rd]  # type: ignore[union-attr]


def _cone_config(body: list[isa.Instruction], cone: frozenset[int],
                 inputs: tuple[str, ...], consts: dict[str, int],
                 root: int) -> int:
    """256-bit truth table: row r of position p = output bit p when input
    i carries bit (r >> i) & 1 at every position."""
    cone_order = sorted(cone)
    config = 0
    for row in range(16):
        assignment = dict(consts)
        for i, reg in enumerate(inputs):
            assignment[reg] = 0xFFFF if (row >> i) & 1 else 0
        word = _evaluate_cone(body, cone_order, assignment, root)
        for pos in range(16):
            if (word >> pos) & 1:
                config |= 1 << (pos * 16 + row)
    return config


def _canonicalize(body, cone, inputs, consts, root) -> tuple[int, tuple]:
    """Minimum config over input permutations (logic equivalence class)."""
    best_config = None
    best_inputs = inputs
    for perm in itertools.permutations(inputs):
        config = _cone_config(body, cone, perm, consts, root)
        if best_config is None or config < best_config:
            best_config = config
            best_inputs = perm
    return best_config or 0, best_inputs


def _enumerate_candidates(proc: Process) -> list[Candidate]:
    body = proc.body
    defs: dict[str, int] = {}
    consumers: dict[str, int] = {}
    for i, instr in enumerate(body):
        for reg in instr.writes():
            defs[reg] = i
        for reg in instr.reads():
            consumers[reg] = consumers.get(reg, 0) + 1

    logic = {
        i for i, instr in enumerate(body)
        if isinstance(instr, isa.Alu) and instr.op in LOGIC_OPS
    }
    consts = {reg: proc.reg_init[reg] for reg in proc.reg_init
              if _is_const(reg)}

    # Cut enumeration, bottom-up in body order (bodies are topological).
    cuts: dict[int, list[frozenset[str]]] = {}
    for i in sorted(logic):
        instr = body[i]
        operand_cuts: list[list[frozenset[str]]] = []
        for reg in (instr.rs1, instr.rs2):  # type: ignore[union-attr]
            if _is_const(reg):
                operand_cuts.append([frozenset()])
                continue
            d = defs.get(reg)
            options = [frozenset([reg])]
            if d is not None and d in logic:
                options.extend(cuts.get(d, ()))
            operand_cuts.append(options)
        merged: set[frozenset[str]] = set()
        for a in operand_cuts[0]:
            for b in operand_cuts[1]:
                u = a | b
                if len(u) <= MAX_CUT_INPUTS:
                    merged.add(u)
        ranked = sorted(merged, key=lambda c: (len(c), sorted(c)))
        cuts[i] = ranked[:MAX_CUTS_PER_NODE]

    def cone_of(root: int, cut: frozenset[str]) -> frozenset[int] | None:
        cone: set[int] = set()
        stack = [root]
        while stack:
            i = stack.pop()
            if i in cone:
                continue
            cone.add(i)
            instr = body[i]
            for reg in instr.reads():
                if _is_const(reg) or reg in cut:
                    continue
                d = defs.get(reg)
                if d is None or d not in logic:
                    return None  # cut does not actually cover this cone
                stack.append(d)
        return frozenset(cone)

    candidates: list[Candidate] = []
    for root in sorted(logic):
        root_result = body[root].writes()[0]
        for cut in cuts.get(root, ()):
            cone = cone_of(root, cut)
            if cone is None or len(cone) < 2:
                continue
            # MFFC: interior results must have all consumers inside.
            interior_ok = True
            for i in cone:
                if i == root:
                    continue
                result = body[i].writes()[0]
                uses = consumers.get(result, 0)
                internal = sum(
                    1 for j in cone for reg in body[j].reads()
                    if reg == result
                )
                if uses != internal:
                    interior_ok = False
                    break
            if not interior_ok:
                continue
            inputs = tuple(sorted(cut))
            config, ordered = _canonicalize(body, cone, inputs, consts, root)
            candidates.append(Candidate(
                root=root, cone=cone, inputs=ordered, config=config,
                savings=len(cone) - 1,
            ))
    return candidates


def _select_greedy(candidates: list[Candidate],
                   max_functions: int) -> list[Candidate]:
    chosen: list[Candidate] = []
    used: set[int] = set()
    functions: set[int] = set()
    # Prefer high savings; among equals prefer reusable functions.
    for cand in sorted(candidates, key=lambda c: (-c.savings, c.root)):
        if cand.cone & used:
            continue
        if cand.config not in functions and len(functions) >= max_functions:
            continue
        chosen.append(cand)
        used |= cand.cone
        functions.add(cand.config)
    return chosen


def _select_milp(candidates: list[Candidate],
                 max_functions: int) -> list[Candidate] | None:
    """Exact selection via scipy MILP; None when unavailable/failed."""
    try:
        from scipy.optimize import LinearConstraint, Bounds, milp
    except ImportError:  # pragma: no cover
        return None
    configs = sorted({c.config for c in candidates})
    f_index = {cfg: i for i, cfg in enumerate(configs)}
    n_x = len(candidates)
    n_y = len(configs)
    n = n_x + n_y
    cost = np.zeros(n)
    cost[:n_x] = [-c.savings for c in candidates]

    rows, cols, vals = [], [], []
    row = 0
    lows, highs = [], []
    # Overlap: for each instruction, sum of covering x <= 1.
    coverage: dict[int, list[int]] = {}
    for ci, cand in enumerate(candidates):
        for i in cand.cone:
            coverage.setdefault(i, []).append(ci)
    for i, cands in coverage.items():
        if len(cands) < 2:
            continue
        for ci in cands:
            rows.append(row)
            cols.append(ci)
            vals.append(1.0)
        lows.append(-np.inf)
        highs.append(1.0)
        row += 1
    # Linking: x_c - y_f <= 0.
    for ci, cand in enumerate(candidates):
        rows.append(row)
        cols.append(ci)
        vals.append(1.0)
        rows.append(row)
        cols.append(n_x + f_index[cand.config])
        vals.append(-1.0)
        lows.append(-np.inf)
        highs.append(0.0)
        row += 1
    # Function budget: sum y <= max_functions.
    for fi in range(n_y):
        rows.append(row)
        cols.append(n_x + fi)
        vals.append(1.0)
    lows.append(-np.inf)
    highs.append(float(max_functions))
    row += 1

    from scipy.sparse import coo_matrix
    a = coo_matrix((vals, (rows, cols)), shape=(row, n))
    constraint = LinearConstraint(a, lows, highs)
    res = milp(cost, constraints=[constraint],
               integrality=np.ones(n),
               bounds=Bounds(0, 1),
               options={"time_limit": 10.0})
    if not res.success or res.x is None:
        return None
    return [candidates[i] for i in range(n_x) if res.x[i] > 0.5]


#: Padding operand for CFU slots beyond a cone's real inputs.
ZERO_REG = "$c0000"


def _synthesize_process(payload: tuple[int, Process, int, bool],
                        ) -> tuple[int, list[isa.Instruction], list[int],
                                   bool, ProcessSynthesisStats]:
    """Synthesis for one process as a pure function.

    Returns ``(pid, new_body, cfu, needs_zero, stats)`` without mutating
    the input, so it can run in a pool worker (module-level + picklable)
    and the parent can apply results in pid order - the ``jobs=N`` path
    of :func:`synthesize_custom_functions`.
    """
    pid, proc, max_functions, use_milp = payload
    before = len(proc.body)
    candidates = _enumerate_candidates(proc)
    chosen: list[Candidate] | None = None
    if use_milp and 0 < len(candidates) <= MILP_CANDIDATE_LIMIT:
        chosen = _select_milp(candidates, max_functions)
    if chosen is None:
        chosen = _select_greedy(candidates, max_functions)

    # Assign function indices (dedup by config).
    cfu: list[int] = []
    func_of: dict[int, int] = {}
    for cand in chosen:
        if cand.config not in func_of:
            func_of[cand.config] = len(cfu)
            cfu.append(cand.config)

    # Rewrite the body.
    replace: dict[int, isa.Instruction] = {}
    delete: set[int] = set()
    needs_zero = False
    for cand in chosen:
        rd = proc.body[cand.root].writes()[0]
        rs = list(cand.inputs)
        while len(rs) < 4:
            rs.append(ZERO_REG)
            needs_zero = True
        replace[cand.root] = isa.Custom(rd, func_of[cand.config],
                                        tuple(rs))
        delete |= cand.cone - {cand.root}
    new_body = [
        replace.get(i, instr) for i, instr in enumerate(proc.body)
        if i not in delete
    ]
    stats = ProcessSynthesisStats(
        pid=pid,
        instructions_before=before,
        instructions_after=len(new_body),
        fused_cones=len(chosen),
        functions_used=len(cfu),
    )
    return pid, new_body, cfu, needs_zero, stats


def synthesize_custom_functions(image: ProgramImage,
                                max_functions: int =
                                isa.NUM_CUSTOM_FUNCTIONS,
                                use_milp: bool = True,
                                jobs: int | None = None,
                                ) -> CustomSynthesisResult:
    """Fuse logic chains in every process; mutates ``image`` in place.

    ``jobs > 1`` fans the per-process synthesis (the compile-time
    hotspot: cut enumeration + truth tables + MILP) over a process pool.
    Results are applied in pid order, so the rewritten image is identical
    to the serial one.
    """
    from .parallel import parallel_map

    result = CustomSynthesisResult()
    pids = sorted(image.processes)
    payloads = [(pid, image.processes[pid], max_functions, use_milp)
                for pid in pids]
    for pid, new_body, cfu, needs_zero, stats in parallel_map(
            _synthesize_process, payloads, jobs):
        proc = image.processes[pid]
        if needs_zero:
            proc.reg_init.setdefault(ZERO_REG, 0)
        proc.body = new_body
        proc.cfu = cfu
        result.per_process.append(stats)
    return result
