"""Static verification of compiled machine programs.

The paper validates its compiler with interpreters (SS6); we do the same
*and* add a static checker over the final binary.  ``verify_program``
checks every invariant the hardware relies on without executing anything:

* instruction-memory bounds and grid placement,
* machine register indices within the register file,
* ``Send`` targets are instantiated cores with matching receive budgets,
* scratchpad image and addressing bounds (and heterogeneous placement),
* every ``Expect`` eid resolves in the exception table,
* custom-function indices resolve in each core's CFU image,
* Vcycle layout arithmetic (body + epilogue + sleep == VCPL).
"""

from __future__ import annotations

from ..isa import instructions as isa
from ..isa.program import MachineProgram
from ..machine.config import MachineConfig


class VerificationError(Exception):
    """A compiled binary violates a hardware invariant."""


def verify_program(program: MachineProgram,
                   config: MachineConfig | None = None) -> None:
    """Raise :class:`VerificationError` on the first violated invariant."""
    config = config or MachineConfig(grid_x=program.grid[0],
                                     grid_y=program.grid[1])
    if (config.grid_x, config.grid_y) != program.grid:
        raise VerificationError("config grid differs from program grid")
    num_cores = config.num_cores
    receive_budget = {cid: binary.epilogue_length
                      for cid, binary in program.cores.items()}
    sends_to: dict[int, int] = {cid: 0 for cid in program.cores}

    if program.privileged_core not in program.cores:
        raise VerificationError("privileged core has no binary")

    for cid, binary in program.cores.items():
        if not (0 <= cid < num_cores):
            raise VerificationError(f"core {cid} outside the grid")
        if binary.total_length > config.imem_words:
            raise VerificationError(
                f"core {cid}: imem overflow "
                f"({binary.total_length} > {config.imem_words})"
            )
        layout = (len(binary.body) + binary.epilogue_length
                  + binary.sleep_length)
        if layout != program.vcpl:
            raise VerificationError(
                f"core {cid}: Vcycle layout {layout} != VCPL "
                f"{program.vcpl}"
            )
        if binary.scratch_init:
            if config.scratchpad_cores is not None and \
                    cid >= config.scratchpad_cores:
                raise VerificationError(
                    f"core {cid}: scratch image on a scratchpad-less core"
                )
            top = max(binary.scratch_init)
            if top >= config.scratchpad_words:
                raise VerificationError(
                    f"core {cid}: scratch image beyond "
                    f"{config.scratchpad_words} words"
                )
        for reg in binary.reg_init:
            _check_reg(reg, cid, config)
        for instr in binary.body:
            _check_instruction(instr, cid, binary, program, config,
                               sends_to)

    for cid, count in sends_to.items():
        if count != receive_budget.get(cid, 0):
            raise VerificationError(
                f"core {cid}: {count} incoming Sends but "
                f"{receive_budget.get(cid, 0)} receive slots"
            )


def _check_reg(reg, cid: int, config: MachineConfig) -> None:
    if not isinstance(reg, int):
        raise VerificationError(
            f"core {cid}: unallocated virtual register {reg!r}"
        )
    if not (0 <= reg < config.num_registers):
        raise VerificationError(f"core {cid}: register {reg} out of range")


def _check_instruction(instr, cid, binary, program, config,
                       sends_to) -> None:
    for reg in (*instr.reads(), *instr.writes()):
        _check_reg(reg, cid, config)
    if isinstance(instr, isa.Send):
        target = instr.target
        if target not in program.cores:
            raise VerificationError(
                f"core {cid}: Send to missing core {target}"
            )
        _check_reg(instr.rd, target, config)
        sends_to[target] += 1
    elif isinstance(instr, isa.Custom):
        if instr.index >= len(binary.cfu):
            raise VerificationError(
                f"core {cid}: custom function f{instr.index} not "
                "configured"
            )
    elif isinstance(instr, isa.Expect):
        if instr.eid not in program.exceptions.actions:
            raise VerificationError(
                f"core {cid}: unknown exception id {instr.eid}"
            )
    elif isinstance(instr, (isa.LocalLoad, isa.LocalStore)):
        if config.scratchpad_cores is not None and \
                cid >= config.scratchpad_cores:
            raise VerificationError(
                f"core {cid}: scratchpad access on a scratchpad-less core"
            )
        if not (0 <= instr.offset < config.scratchpad_words):
            raise VerificationError(
                f"core {cid}: scratchpad offset {instr.offset} out of "
                "range"
            )
    elif isinstance(instr, (isa.GlobalLoad, isa.GlobalStore)):
        if cid != program.privileged_core:
            raise VerificationError(
                f"core {cid}: privileged global access on an "
                "unprivileged core"
            )
    if isinstance(instr, isa.Expect) and cid != program.privileged_core:
        raise VerificationError(
            f"core {cid}: Expect on an unprivileged core"
        )
