"""Lowering: word-level netlist assembly -> 16-bit Manticore lower assembly.

Every arbitrary-width wire becomes a vector of 16-bit *limbs* (virtual
registers, least significant first), and every netlist op becomes a short
sequence of Manticore instructions (paper SS6: "transform the netlist
assembly instructions into an equivalent sequence of lower assembly
instructions whose operands match Manticore's 16-bit data path").

Conventions established here and relied on by every later pass:

* Limb invariant: the unused high bits of a value's top limb are zero.
* Constants live in boot-initialized registers (the const pool); they cost
  no instructions at runtime.
* Wide adds/subs/compares use ``SetCarry``/``AddCarry`` chains; the carry
  dependence is recorded in ``extra_data_edges`` so partitioning keeps
  chains whole, and chains are serialized per-core by the scheduler.
* RTL state registers become persistent ``name#k`` virtual registers; the
  (current, next) commit relation is recorded in ``commits`` and realized
  by the scheduler as a coalesced write or a ``Mov``.
* RTL memories are placed in the scratchpad (or global DRAM when too large
  or hinted), loads emit before stores, and every instruction touching a
  memory is tagged so partitioning co-locates them.
* ``$display``/``$finish``/assertions lower to mailbox ``GST`` + ``Expect``
  in the privileged instruction chain (paper SSA.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import instructions as isa
from ..isa.program import AssertAction, DisplayAction, FinishAction
from ..netlist.ir import (
    AssertEffect,
    Circuit,
    Display,
    Finish,
    Op,
    OpKind,
    mask,
    topological_order,
)
from .lir import LoweredDesign, MemoryLayout, PGlobalStore, PLocalStore

WORD = 16


class CompilerError(Exception):
    """Raised when a design cannot be compiled for Manticore."""


def nlimbs(width: int) -> int:
    return (width + WORD - 1) // WORD


def limb_width(width: int, index: int) -> int:
    """Significant bits of limb ``index`` of a ``width``-bit value."""
    rem = width - index * WORD
    return min(rem, WORD)


@dataclass
class LowerOptions:
    """Knobs for the lowering pass (ablation hooks)."""

    scratchpad_words: int = isa.SCRATCHPAD_WORDS
    #: memories larger than this many 16-bit words go to global DRAM
    global_threshold_words: int = isa.SCRATCHPAD_WORDS
    mailbox_base: int = 1 << 40  # global word address of the display mailbox


class Lowerer:
    """Single-use object: ``Lowerer(circuit).lower()``."""

    def __init__(self, circuit: Circuit,
                 options: LowerOptions | None = None) -> None:
        circuit.validate()
        if circuit.inputs:
            raise CompilerError(
                "Manticore compiles closed designs: wrap the circuit in a "
                f"test driver (found inputs {sorted(circuit.inputs)})"
            )
        self.circuit = circuit
        self.options = options or LowerOptions()
        self.design = LoweredDesign(circuit.name)
        self._tmp = 0
        self._limbs: dict[str, list[str]] = {}
        self._local_cursor = 0
        self._global_cursor = 0
        self._mailbox_cursor = self.options.mailbox_base
        self._carry_prev: int | None = None  # last carry-op body index

    # ------------------------------------------------------------------
    # Emission primitives.
    # ------------------------------------------------------------------
    def fresh(self, prefix: str = "t") -> str:
        self._tmp += 1
        return f"%{prefix}{self._tmp}"

    def emit(self, instr: isa.Instruction) -> int:
        self.design.body.append(instr)
        return len(self.design.body) - 1

    def emit_carry(self, instr: isa.Instruction) -> int:
        """Emit a SetCarry/AddCarry, recording the carry data edge."""
        idx = self.emit(instr)
        if isinstance(instr, isa.AddCarry) and self._carry_prev is not None:
            self.design.extra_data_edges.append((self._carry_prev, idx))
        self._carry_prev = idx
        return idx

    def const(self, value: int) -> str:
        value &= 0xFFFF
        reg = self.design.const_regs.get(value)
        if reg is None:
            reg = f"$c{value:04x}"
            self.design.const_regs[value] = reg
            self.design.reg_init[reg] = value
        return reg

    @property
    def zero(self) -> str:
        return self.const(0)

    def const_limbs(self, value: int, width: int) -> list[str]:
        return [self.const((value >> (WORD * i)) & 0xFFFF)
                for i in range(nlimbs(width))]

    def mark_memory(self, name: str, idx: int) -> None:
        self.design.memory_users.setdefault(name, set()).add(idx)

    def mark_privileged(self, idx: int) -> None:
        self.design.privileged_indices.add(idx)

    # ------------------------------------------------------------------
    # ALU helpers (all return the result vreg).
    # ------------------------------------------------------------------
    def alu(self, op: str, a: str, b: str, prefix: str = "t") -> str:
        rd = self.fresh(prefix)
        self.emit(isa.Alu(op, rd, a, b))
        return rd

    def mask_to(self, reg: str, bits: int) -> str:
        """AND with a constant mask when ``bits`` < 16 (limb invariant)."""
        if bits >= WORD:
            return reg
        return self.alu("AND", reg, self.const(mask(bits)))

    def or_tree(self, regs: list[str]) -> str:
        """Balanced OR reduction of one or more limb registers."""
        regs = list(regs)
        if not regs:
            return self.zero
        while len(regs) > 1:
            nxt = []
            for i in range(0, len(regs) - 1, 2):
                nxt.append(self.alu("OR", regs[i], regs[i + 1]))
            if len(regs) % 2:
                nxt.append(regs[-1])
            regs = nxt
        return regs[0]

    def add_chain(self, a: list[str], b: list[str], width: int,
                  carry_in: int = 0, invert_b: bool = False,
                  want_carry_out: bool = False) -> tuple[list[str], str | None]:
        """Multi-limb add (or subtract via ``invert_b``); masks the top limb.

        Returns (result limbs, carry-out vreg or None).
        """
        n = nlimbs(width)
        if invert_b:
            b = [self.alu("XOR", limb, self.const(0xFFFF)) for limb in b]
        out: list[str] = []
        carry_out = None
        if n == 1 and carry_in == 0 and not want_carry_out:
            out.append(self.alu("ADD", a[0], b[0]))
        else:
            self.emit_carry(isa.SetCarry(carry_in))
            for i in range(n):
                rd = self.fresh("s")
                self.emit_carry(isa.AddCarry(rd, a[i], b[i]))
                out.append(rd)
            if want_carry_out:
                carry_out = self.fresh("co")
                self.emit_carry(isa.AddCarry(carry_out, self.zero, self.zero))
        out[-1] = self.mask_to(out[-1], limb_width(width, n - 1))
        return out, carry_out

    # ------------------------------------------------------------------
    # Per-op lowering.
    # ------------------------------------------------------------------
    def lower(self) -> LoweredDesign:
        circuit = self.circuit
        self._place_memories()
        self._declare_state()
        for op in topological_order(circuit):
            self._limbs[op.result.name] = self._lower_op(op)
        self._lower_effects()
        self._lower_commits()
        self._serialize_memory_and_privileged_order()
        return self.design

    def _place_memories(self) -> None:
        opts = self.options
        for name, memory in self.circuit.memories.items():
            limbs = nlimbs(memory.width)
            words = limbs * memory.depth
            is_global = memory.global_hint or words > opts.global_threshold_words
            if is_global:
                base = self._global_cursor
                self._global_cursor += words
                for i, value in enumerate(memory.init):
                    for j in range(limbs):
                        word = (value >> (WORD * j)) & 0xFFFF
                        if word:
                            self.design.global_init[base + i * limbs + j] = word
            else:
                base = self._local_cursor
                self._local_cursor += words
                if self._local_cursor > opts.scratchpad_words:
                    raise CompilerError(
                        f"local memories overflow the scratchpad at "
                        f"{name!r} ({self._local_cursor} words)"
                    )
                for i, value in enumerate(memory.init):
                    for j in range(limbs):
                        word = (value >> (WORD * j)) & 0xFFFF
                        if word:
                            self.design.scratch_init[base + i * limbs + j] = word
            self.design.memories[name] = MemoryLayout(
                name, base, limbs, memory.depth, is_global)

    def _declare_state(self) -> None:
        for name, reg in self.circuit.registers.items():
            limbs = []
            for i in range(nlimbs(reg.width)):
                vreg = f"{name}#{i}"
                limbs.append(vreg)
                self.design.reg_init[vreg] = (reg.init >> (WORD * i)) & 0xFFFF
            self._limbs[name] = limbs

    def _arg_limbs(self, op: Op, index: int) -> list[str]:
        return self._limbs[op.args[index].name]

    def _lower_op(self, op: Op) -> list[str]:
        handler = getattr(self, f"_lower_{op.kind.name.lower()}", None)
        if handler is None:
            raise CompilerError(f"no lowering for {op.kind}")
        return handler(op)

    # -- constants and bitwise ------------------------------------------
    def _lower_const(self, op: Op) -> list[str]:
        return self.const_limbs(op.value, op.result.width)

    def _bitwise(self, op: Op, alu_op: str) -> list[str]:
        a = self._arg_limbs(op, 0)
        b = self._arg_limbs(op, 1)
        return [self.alu(alu_op, x, y) for x, y in zip(a, b)]

    def _lower_and(self, op: Op) -> list[str]:
        return self._bitwise(op, "AND")

    def _lower_or(self, op: Op) -> list[str]:
        return self._bitwise(op, "OR")

    def _lower_xor(self, op: Op) -> list[str]:
        return self._bitwise(op, "XOR")

    def _lower_not(self, op: Op) -> list[str]:
        a = self._arg_limbs(op, 0)
        w = op.result.width
        return [
            self.alu("XOR", limb, self.const(mask(limb_width(w, i))))
            for i, limb in enumerate(a)
        ]

    # -- arithmetic -------------------------------------------------------
    def _lower_add(self, op: Op) -> list[str]:
        out, _ = self.add_chain(self._arg_limbs(op, 0),
                                self._arg_limbs(op, 1), op.result.width)
        return out

    def _lower_sub(self, op: Op) -> list[str]:
        out, _ = self.add_chain(self._arg_limbs(op, 0),
                                self._arg_limbs(op, 1), op.result.width,
                                carry_in=1, invert_b=True)
        return out

    def _lower_mul(self, op: Op) -> list[str]:
        a = self._arg_limbs(op, 0)
        b = self._arg_limbs(op, 1)
        w = op.result.width
        n = nlimbs(w)
        if n == 1:
            return [self.mask_to(self.alu("MUL", a[0], b[0]),
                                 limb_width(w, 0))]
        # Schoolbook: partial products bucketed per destination limb, then
        # column sums with explicit carry propagation into the next column.
        addends: list[list[str]] = [[] for _ in range(n)]
        for i, ai in enumerate(a):
            for j, bj in enumerate(b):
                k = i + j
                if k >= n:
                    continue
                addends[k].append(self.alu("MUL", ai, bj, "pp"))
                if k + 1 < n:
                    addends[k + 1].append(self.alu("MULH", ai, bj, "pp"))
        out: list[str] = []
        for k in range(n):
            column = addends[k]
            acc = column[0] if column else self.zero
            for extra in column[1:]:
                self.emit_carry(isa.SetCarry(0))
                rd = self.fresh("s")
                self.emit_carry(isa.AddCarry(rd, acc, extra))
                if k + 1 < n:
                    co = self.fresh("co")
                    self.emit_carry(isa.AddCarry(co, self.zero, self.zero))
                    addends[k + 1].append(co)
                acc = rd
            out.append(self.mask_to(acc, limb_width(w, k)))
        return out

    # -- comparisons ------------------------------------------------------
    def _lower_eq(self, op: Op) -> list[str]:
        a = self._arg_limbs(op, 0)
        b = self._arg_limbs(op, 1)
        if len(a) == 1:
            return [self.alu("SEQ", a[0], b[0])]
        diffs = [self.alu("XOR", x, y) for x, y in zip(a, b)]
        return [self.alu("SEQ", self.or_tree(diffs), self.zero)]

    def _lower_ne(self, op: Op) -> list[str]:
        eq = self._lower_eq(op)[0]
        return [self.alu("XOR", eq, self.const(1))]

    def _lower_ltu(self, op: Op) -> list[str]:
        a = self._arg_limbs(op, 0)
        b = self._arg_limbs(op, 1)
        if len(a) == 1:
            return [self.alu("SLTU", a[0], b[0])]
        return [self._wide_ltu(a, b, op.args[0].width)]

    def _wide_ltu(self, a: list[str], b: list[str], width: int) -> str:
        # a < b  <=>  no carry out of a + ~b + 1.
        _, carry = self.add_chain(a, b, width, carry_in=1, invert_b=True,
                                  want_carry_out=True)
        return self.alu("XOR", carry, self.const(1))

    def _lower_lts(self, op: Op) -> list[str]:
        a = list(self._arg_limbs(op, 0))
        b = list(self._arg_limbs(op, 1))
        width = op.args[0].width
        if len(a) == 1 and width == WORD:
            return [self.alu("SLTS", a[0], b[0])]
        if len(a) == 1:
            # Shift both into the top of the 16-bit container: order-preserving.
            amount = self.const(WORD - width)
            sa = self.alu("SLL", a[0], amount)
            sb = self.alu("SLL", b[0], amount)
            return [self.alu("SLTS", sa, sb)]
        # Flip the sign bit of the top limb and compare unsigned.
        pos = (width - 1) % WORD
        flip = self.const(1 << pos)
        a[-1] = self.alu("XOR", a[-1], flip)
        b[-1] = self.alu("XOR", b[-1], flip)
        return [self._wide_ltu(a, b, width)]

    # -- shifts -----------------------------------------------------------
    def _shift_const(self, a: list[str], width: int, amount: int,
                     kind: OpKind) -> list[str]:
        """Shift by a compile-time constant: pure limb shuffling."""
        n = nlimbs(width)
        sign = None
        if kind is OpKind.ASHR:
            top_bits = limb_width(width, n - 1)
            sign_bit = self.alu(
                "SRL", a[-1], self.const(top_bits - 1)) if top_bits > 1 \
                else a[-1]
            # sign-fill word: 0x0000 or 0xFFFF
            sign = self.alu("MUL", sign_bit, self.const(0xFFFF))
        out: list[str] = []
        word_shift, bit_shift = divmod(amount, WORD)
        for k in range(n):
            if kind is OpKind.SHL:
                src = k - word_shift
                lo = a[src] if 0 <= src < n else self.zero
                hi = a[src - 1] if 0 <= src - 1 < n else self.zero
                if bit_shift == 0:
                    limb = lo
                else:
                    p1 = self.alu("SLL", lo, self.const(bit_shift))
                    p2 = self.alu("SRL", hi, self.const(WORD - bit_shift))
                    limb = self.alu("OR", p1, p2)
            else:  # LSHR / ASHR
                src = k + word_shift
                fill = sign if kind is OpKind.ASHR else self.zero
                lo = a[src] if src < n else fill
                hi = a[src + 1] if src + 1 < n else fill
                if kind is OpKind.ASHR and src == n - 1:
                    # Top limb of a non-multiple-of-16 value must be
                    # sign-extended into its unused bits before shifting.
                    lo = self._sign_extend_top(lo, width)
                if kind is OpKind.ASHR and src < n - 1 and src + 1 == n - 1:
                    hi = self._sign_extend_top(hi, width)
                if bit_shift == 0:
                    limb = lo
                else:
                    p1 = self.alu("SRL", lo, self.const(bit_shift))
                    p2 = self.alu("SLL", hi, self.const(WORD - bit_shift))
                    limb = self.alu("OR", p1, p2)
            out.append(limb)
        out = [self.mask_to(limb, limb_width(width, k))
               for k, limb in enumerate(out)]
        return out

    def _sign_extend_top(self, limb: str, width: int) -> str:
        """Sign-extend the top limb into its full 16-bit container."""
        top_bits = limb_width(width, nlimbs(width) - 1)
        if top_bits == WORD:
            return limb
        amount = self.const(WORD - top_bits)
        shifted = self.alu("SLL", limb, amount)
        return self.alu("SRA", shifted, amount)

    def _lower_shift(self, op: Op, kind: OpKind) -> list[str]:
        a = self._arg_limbs(op, 0)
        width = op.result.width
        amt_op = self._amount_const(op)
        if amt_op is not None:
            return self._shift_const(a, width, amt_op, kind)
        # Dynamic shift: barrel of constant-shift stages selected by the
        # amount's bits, then a clamp when the amount exceeds the width.
        amt = self._arg_limbs(op, 1)
        amt_width = op.args[1].width
        stages = max(1, (width - 1).bit_length())
        value = list(a)
        for bit in range(min(stages, amt_width)):
            sel = self.fresh("b")
            self.emit(isa.Slice(sel, amt[bit // WORD],
                                offset=bit % WORD, length=1))
            shifted = self._shift_const(value, width, 1 << bit, kind)
            value = [self.alu_mux(sel, keep, moved)
                     for keep, moved in zip(value, shifted)]
        # Clamp: any amount bit at or above `stages` zeroes the result
        # (or sign-fills for ASHR via a max-shift).
        high_bits = []
        for bit in range(stages, amt_width):
            hb = self.fresh("b")
            self.emit(isa.Slice(hb, amt[bit // WORD],
                                offset=bit % WORD, length=1))
            high_bits.append(hb)
        if high_bits:
            overflow = self.or_tree(high_bits)
            if kind is OpKind.ASHR:
                full = self._shift_const(a, width, width - 1, kind)
            else:
                full = [self.zero] * len(value)
            value = [self.alu_mux(overflow, keep, clamped)
                     for keep, clamped in zip(value, full)]
        return value

    def alu_mux(self, sel: str, if_false: str, if_true: str) -> str:
        rd = self.fresh("m")
        self.emit(isa.Mux(rd, sel, if_false, if_true))
        return rd

    def _amount_const(self, op: Op) -> int | None:
        """Constant shift amount if the producer is a CONST op."""
        producer = self._const_producers.get(op.args[1].name)
        return producer

    def _lower_shl(self, op: Op) -> list[str]:
        return self._lower_shift(op, OpKind.SHL)

    def _lower_lshr(self, op: Op) -> list[str]:
        return self._lower_shift(op, OpKind.LSHR)

    def _lower_ashr(self, op: Op) -> list[str]:
        return self._lower_shift(op, OpKind.ASHR)

    # -- selection / structure ---------------------------------------------
    def _lower_mux(self, op: Op) -> list[str]:
        sel = self._arg_limbs(op, 0)[0]
        f = self._arg_limbs(op, 1)
        t = self._arg_limbs(op, 2)
        return [self.alu_mux(sel, x, y) for x, y in zip(f, t)]

    def _lower_concat(self, op: Op) -> list[str]:
        w = op.result.width
        n = nlimbs(w)
        addends: list[list[str]] = [[] for _ in range(n)]
        offset = 0
        for arg in op.args:
            src = self._limbs[arg.name]
            self._place(addends, src, arg.width, offset)
            offset += arg.width
        return self._combine_placed(addends, w)

    def _place(self, addends: list[list[str]], src: list[str],
               src_width: int, offset: int) -> None:
        """OR ``src`` (a limb vector) into ``addends`` at bit ``offset``."""
        word_off, bit_off = divmod(offset, WORD)
        for i, limb in enumerate(src):
            dest = word_off + i
            if bit_off == 0:
                if dest < len(addends):
                    addends[dest].append(limb)
                continue
            if dest < len(addends):
                addends[dest].append(
                    self.alu("SLL", limb, self.const(bit_off)))
            bits = limb_width(src_width, i)
            if bit_off + bits > WORD and dest + 1 < len(addends):
                addends[dest + 1].append(
                    self.alu("SRL", limb, self.const(WORD - bit_off)))

    def _combine_placed(self, addends: list[list[str]], width: int,
                        ) -> list[str]:
        out = []
        for k, column in enumerate(addends):
            limb = self.or_tree(column) if column else self.zero
            out.append(self.mask_to(limb, limb_width(width, k)))
        return out

    def _lower_slice(self, op: Op) -> list[str]:
        a = self._limbs[op.args[0].name]
        offset = op.offset
        w = op.result.width
        n = nlimbs(w)
        word_off, bit_off = divmod(offset, WORD)
        if bit_off == 0:
            return [
                self.mask_to(a[word_off + k] if word_off + k < len(a)
                             else self.zero, limb_width(w, k))
                for k in range(n)
            ]
        if n == 1 and bit_off + w <= WORD:
            rd = self.fresh("sl")
            self.emit(isa.Slice(rd, a[word_off], offset=bit_off, length=w))
            return [rd]
        out = []
        for k in range(n):
            src = word_off + k
            lo = a[src] if src < len(a) else self.zero
            hi = a[src + 1] if src + 1 < len(a) else self.zero
            p1 = self.alu("SRL", lo, self.const(bit_off))
            p2 = self.alu("SLL", hi, self.const(WORD - bit_off))
            out.append(self.mask_to(self.alu("OR", p1, p2),
                                    limb_width(w, k)))
        return out

    # -- reductions ---------------------------------------------------------
    def _lower_redor(self, op: Op) -> list[str]:
        t = self.or_tree(self._arg_limbs(op, 0))
        return [self.alu("SLTU", self.zero, t)]

    def _lower_redand(self, op: Op) -> list[str]:
        a = list(self._arg_limbs(op, 0))
        w = op.args[0].width
        top_bits = limb_width(w, len(a) - 1)
        if top_bits < WORD:
            a[-1] = self.alu("OR", a[-1],
                             self.const(0xFFFF ^ mask(top_bits)))
        acc = a[0]
        for limb in a[1:]:
            acc = self.alu("AND", acc, limb)
        return [self.alu("SEQ", acc, self.const(0xFFFF))]

    def _lower_redxor(self, op: Op) -> list[str]:
        a = self._arg_limbs(op, 0)
        acc = a[0]
        for limb in a[1:]:
            acc = self.alu("XOR", acc, limb)
        for shift in (8, 4, 2, 1):
            acc = self.alu("XOR", acc,
                           self.alu("SRL", acc, self.const(shift)))
        return [self.alu("AND", acc, self.const(1))]

    # -- memory ---------------------------------------------------------------
    def _lower_memrd(self, op: Op) -> list[str]:
        layout = self.design.memories[op.memory]
        idx = self._memory_index(op.args[0], layout)
        out = []
        wide = self._limbs[op.args[0].name]
        if layout.is_global:
            for j in range(layout.limbs):
                addr = self._global_addr_regs(idx, layout, j, wide_idx=wide)
                rd = self.fresh("g")
                i = self.emit(isa.GlobalLoad(rd, addr))
                self.mark_privileged(i)
                self.mark_memory(op.memory, i)
                out.append(rd)
        else:
            for j in range(layout.limbs):
                rd = self.fresh("l")
                i = self.emit(isa.LocalLoad(rd, idx, layout.base + j))
                self.mark_memory(op.memory, i)
                out.append(rd)
        return out[:nlimbs(op.result.width)]

    def _memory_index(self, arg, layout: MemoryLayout) -> str:
        """Word offset of element ``arg`` within the memory (limb 0 for
        local memories; callers handle wide global indices separately)."""
        limbs = self._limbs[arg.name]
        idx = limbs[0]
        if not layout.is_global:
            depth = layout.depth
            if arg.width > (depth - 1).bit_length():
                if depth & (depth - 1):
                    raise CompilerError(
                        f"memory {layout.name!r}: index may exceed "
                        "non-power-of-two depth"
                    )
                idx = self.alu("AND", idx, self.const(depth - 1))
            if layout.limbs > 1:
                idx = self.alu("MUL", idx, self.const(layout.limbs))
        return idx

    def _global_addr_regs(self, idx: str, layout: MemoryLayout, j: int,
                          wide_idx: list[str] | None = None,
                          ) -> tuple[str, str, str]:
        """48-bit (hi, mid, lo) registers for ``base + idx*limbs + j``."""
        base = layout.base + j
        scale = layout.limbs
        # offset = idx * scale as two limbs
        if scale == 1:
            o0, o1 = idx, self.zero
        else:
            o0 = self.alu("MUL", idx, self.const(scale))
            o1 = self.alu("MULH", idx, self.const(scale))
        if wide_idx is not None and len(wide_idx) > 1:
            hi_part = self.alu("MUL", wide_idx[1], self.const(scale))
            o1 = self.alu("ADD", o1, hi_part)
        b0 = self.const(base & 0xFFFF)
        b1 = self.const((base >> 16) & 0xFFFF)
        b2 = self.const((base >> 32) & 0xFFFF)
        self.emit_carry(isa.SetCarry(0))
        lo = self.fresh("ga")
        self.emit_carry(isa.AddCarry(lo, b0, o0))
        mid = self.fresh("ga")
        self.emit_carry(isa.AddCarry(mid, b1, o1))
        hi = self.fresh("ga")
        self.emit_carry(isa.AddCarry(hi, b2, self.zero))
        return (hi, mid, lo)

    def _lower_memwrites(self) -> None:
        for name, memory in self.circuit.memories.items():
            layout = self.design.memories[name]
            for wr in memory.writes:
                data = self._limbs[wr.data.name]
                pred = self._limbs[wr.enable.name][0]
                if layout.is_global:
                    wide = self._limbs[wr.addr.name]
                    idx = wide[0]
                    for j in range(layout.limbs):
                        addr = self._global_addr_regs(idx, layout, j,
                                                      wide_idx=wide)
                        i = self.emit(PGlobalStore(data[j], addr, pred))
                        self.mark_privileged(i)
                        self.mark_memory(name, i)
                else:
                    idx = self._memory_index(wr.addr, layout)
                    for j in range(layout.limbs):
                        i = self.emit(PLocalStore(data[j], idx,
                                                  layout.base + j, pred))
                        self.mark_memory(name, i)

    # -- effects -----------------------------------------------------------
    def _lower_effects(self) -> None:
        self._lower_memwrites()
        for eff in self.circuit.effects:
            enable = self._limbs[eff.enable.name][0]
            if isinstance(eff, Display):
                arg_addrs = []
                for arg in eff.args:
                    limbs = self._limbs[arg.name]
                    addrs = []
                    for limb in limbs:
                        addr = self._mailbox_cursor
                        self._mailbox_cursor += 1
                        addrs.append(addr)
                        regs = (self.const((addr >> 32) & 0xFFFF),
                                self.const((addr >> 16) & 0xFFFF),
                                self.const(addr & 0xFFFF))
                        i = self.emit(PGlobalStore(limb, regs, enable))
                        self.mark_privileged(i)
                    arg_addrs.append(tuple(addrs))
                eid = self.design.exceptions.register(
                    DisplayAction(eff.fmt, tuple(arg_addrs)))
                i = self.emit(isa.Expect(enable, self.zero, eid))
                self.mark_privileged(i)
            elif isinstance(eff, AssertEffect):
                cond = self._limbs[eff.cond.name][0]
                notc = self.alu("XOR", cond, self.const(1))
                fail = self.alu("AND", enable, notc)
                eid = self.design.exceptions.register(
                    AssertAction(eff.message))
                i = self.emit(isa.Expect(fail, self.zero, eid))
                self.mark_privileged(i)
            elif isinstance(eff, Finish):
                eid = self.design.exceptions.register(FinishAction())
                i = self.emit(isa.Expect(enable, self.zero, eid))
                self.mark_privileged(i)

    # -- state commit --------------------------------------------------------
    def _lower_commits(self) -> None:
        for name, reg in self.circuit.registers.items():
            next_name = reg.next_value.name
            if next_name == name:  # hold
                continue
            cur = self._limbs[name]
            nxt = self._limbs[next_name]
            for c, x in zip(cur, nxt):
                if c != x:
                    self.design.commits.append((c, x))

    # -- ordering metadata ----------------------------------------------------
    def _serialize_memory_and_privileged_order(self) -> None:
        # Nothing to do eagerly: split/schedule recompute order edges from
        # the metadata (memory_users, privileged_indices, carry positions).
        self.design.finalize_metadata()

    # Populated lazily in lower(); maps CONST wire name -> value.
    @property
    def _const_producers(self) -> dict[str, int]:
        cache = getattr(self, "_const_cache", None)
        if cache is None:
            cache = {
                op.result.name: op.value
                for op in self.circuit.ops if op.kind is OpKind.CONST
            }
            self._const_cache = cache
        return cache


def lower_circuit(circuit: Circuit,
                  options: LowerOptions | None = None) -> LoweredDesign:
    """Lower a netlist circuit to a monolithic 16-bit program."""
    return Lowerer(circuit, options).lower()
