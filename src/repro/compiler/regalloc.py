"""Register allocation and binary emission (paper SS6.3).

A linear scan over each core's final schedule: *persistent* virtual
registers (constants, state currents - local and received copies - and
memory bases) get stable machine indices for the whole program; SSA temps
reuse a free pool, released at their last use.  The 2048-entry register
file makes spills practically impossible (paper: "a simple linear-scan
register allocator works well with practically no spills"); running out is
a hard :class:`CompilerError`.

Emission expands pseudo-instructions (``Mov`` -> ``ADD rd, rs, zero``;
predicated stores -> ``Predicate`` + store pair), materializes NOP gaps,
and rewrites ``Send.rd`` using the *target* core's persistent map.
"""

from __future__ import annotations

from ..isa import instructions as isa
from ..isa.program import CoreBinary, MachineProgram
from .lir import Mov, PGlobalStore, PLocalStore
from .lower import CompilerError
from .schedule import ScheduledProgram


ZERO_CONST = "$c0000"


def _persistent_regs(scheduled: ScheduledProgram, core_id: int) -> set:
    pid = scheduled.cores[core_id].pid
    proc = scheduled.image.processes[pid]
    return set(proc.reg_init) | set(
        scheduled.image.receive_regs.get(pid, ()))


def allocate(scheduled: ScheduledProgram) -> MachineProgram:
    """Allocate machine registers and emit the final binary."""
    image = scheduled.image
    config = scheduled.config

    # Phase 1: persistent register maps (needed across cores for Sends).
    persist_map: dict[int, dict[str, int]] = {}
    for core_id, core in scheduled.cores.items():
        regs = sorted(_persistent_regs(scheduled, core_id), key=str)
        needs_zero = any(isinstance(instr, Mov) for _, instr in core.items)
        if needs_zero and ZERO_CONST not in regs:
            regs.append(ZERO_CONST)
        persist_map[core_id] = {reg: i for i, reg in enumerate(regs)}

    core_of_pid = {core.pid: cid for cid, core in scheduled.cores.items()}

    cores: dict[int, CoreBinary] = {}
    for core_id, core in scheduled.cores.items():
        pid = core.pid
        proc = image.processes[pid]
        pmap = persist_map[core_id]
        nregs = config.num_registers
        free = list(range(nregs - 1, len(pmap) - 1, -1))  # stack of temps
        temp_map: dict[str, int] = {}

        def resolve(reg, persistent_only: bool = False) -> int:
            if reg in pmap:
                return pmap[reg]
            if persistent_only:
                raise CompilerError(
                    f"register {reg!r} is not persistent on core {core_id}"
                )
            if reg in temp_map:
                return temp_map[reg]
            if not free:
                raise CompilerError(
                    f"core {core_id} ran out of machine registers "
                    f"({nregs}); the design needs more cores"
                )
            idx = free.pop()
            temp_map[reg] = idx
            return idx

        # Last-use positions of temps (post-rename names).
        items = core.items
        rename = core.rename
        last_use: dict[str, int] = {}
        for pos, (_cycle, instr) in enumerate(items):
            for reg in instr.reads():
                reg = rename.get(reg, reg)
                if reg not in pmap:
                    last_use[reg] = pos

        body: list[isa.Instruction] = []
        cursor = 0

        def emit_at(cycle: int, instrs: list[isa.Instruction]) -> None:
            nonlocal cursor
            while cursor < cycle:
                body.append(isa.Nop())
                cursor += 1
            body.extend(instrs)
            cursor += len(instrs)

        for pos, (cycle, instr) in enumerate(items):
            instr = instr.rename(rename) if rename else instr
            # Map reads first (they may free registers), then the write.
            mapping: dict = {}
            for reg in instr.reads():
                mapping[reg] = resolve(reg)
            for reg in instr.reads():
                if reg in temp_map and last_use.get(reg) == pos:
                    free.append(temp_map.pop(reg))
            if isinstance(instr, isa.Send):
                # rd names a register on the *target* core.
                target_core = core_of_pid[instr.target]
                target_map = persist_map[target_core]
                if instr.rd not in target_map:
                    raise CompilerError(
                        f"Send target register {instr.rd!r} is not "
                        f"persistent on core {target_core}"
                    )
                machine = isa.Send(target_core, target_map[instr.rd],
                                   mapping[instr.rs])
                emit_at(cycle, [machine])
            else:
                for reg in instr.writes():
                    mapping[reg] = resolve(reg)
                machine = instr.rename(mapping)
                if isinstance(machine, Mov):
                    machine = isa.Alu("ADD", machine.rd, machine.rs,
                                      pmap[ZERO_CONST])
                    emit_at(cycle, [machine])
                elif isinstance(machine, (PLocalStore, PGlobalStore)):
                    emit_at(cycle, machine.expand())
                else:
                    emit_at(cycle, [machine])

        # Pad with NOPs up to the epilogue start.
        emit_at(core.epilogue_start, [])

        reg_init = {}
        for reg, value in proc.reg_init.items():
            if reg in pmap:
                reg_init[pmap[reg]] = value
        if ZERO_CONST in pmap:
            reg_init.setdefault(pmap[ZERO_CONST], 0)

        binary = CoreBinary(
            body=body,
            epilogue_length=core.epilogue_length,
            sleep_length=scheduled.vcpl - core.epilogue_start
            - core.epilogue_length,
            reg_init=reg_init,
            cfu=list(proc.cfu),
            scratch_init=dict(proc.scratch_init),
        )
        if binary.total_length > config.imem_words:
            raise CompilerError(
                f"core {core_id}: program ({binary.total_length} words) "
                f"exceeds instruction memory ({config.imem_words})"
            )
        cores[core_id] = binary

    return MachineProgram(
        name=image.name,
        grid=(config.grid_x, config.grid_y),
        cores=cores,
        vcpl=scheduled.vcpl,
        exceptions=image.exceptions,
        global_init=dict(image.global_init),
        privileged_core=core_of_pid.get(0, 0),
    )
