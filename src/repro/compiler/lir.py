"""Compiler-internal pseudo-instructions and the lowered-design container.

The lower assembly is mostly real Manticore ISA instructions over virtual
registers, plus three pseudo-instructions that survive until late phases:

* :class:`Mov` - register copy; candidate for current/next coalescing
  (paper SS6.3, the Wimmer-Franz trick).  Expanded to ``ADD rd, rs, zero``
  if it survives.
* :class:`PLocalStore` / :class:`PGlobalStore` - a store fused with its
  predicate source.  Expanded to ``Predicate`` + store at emission so the
  scheduler treats the pair as one two-cycle unit and the ISA's single
  predicate flag can never be clobbered between set and use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..isa import instructions as isa
from ..isa.program import ExceptionTable


@dataclass(frozen=True)
class Mov(isa.Instruction):
    """``rd = rs`` - pseudo; coalesced away or expanded late."""

    rd: isa.Reg
    rs: isa.Reg

    def reads(self):
        return (self.rs,)

    def writes(self):
        return (self.rd,)

    def rename(self, mapping):
        return Mov(mapping.get(self.rd, self.rd), mapping.get(self.rs, self.rs))

    def execute_on(self, ctx):
        ctx.write_reg(self.rd, ctx.read_reg(self.rs))


@dataclass(frozen=True)
class PLocalStore(isa.Instruction):
    """Predicated scratchpad store pseudo (Predicate + LST pair)."""

    rs: isa.Reg
    rbase: isa.Reg
    offset: int
    pred: isa.Reg

    def reads(self):
        return (self.rs, self.rbase, self.pred)

    def rename(self, mapping):
        g = mapping.get
        return PLocalStore(g(self.rs, self.rs), g(self.rbase, self.rbase),
                           self.offset, g(self.pred, self.pred))

    def expand(self) -> list[isa.Instruction]:
        return [isa.Predicate(self.pred),
                isa.LocalStore(self.rs, self.rbase, self.offset)]

    def execute_on(self, ctx):
        if ctx.read_reg(self.pred) & 1:
            addr = (ctx.read_reg(self.rbase) + self.offset) & 0xFFFF
            ctx.write_local(addr, ctx.read_reg(self.rs))


@dataclass(frozen=True)
class PGlobalStore(isa.Instruction):
    """Predicated global store pseudo (Predicate + GST pair). Privileged."""

    rs: isa.Reg
    addr: tuple[isa.Reg, ...]
    pred: isa.Reg

    def reads(self):
        return (self.rs, self.pred) + tuple(self.addr)

    def rename(self, mapping):
        g = mapping.get
        return PGlobalStore(g(self.rs, self.rs),
                            tuple(g(a, a) for a in self.addr),
                            g(self.pred, self.pred))

    def expand(self) -> list[isa.Instruction]:
        return [isa.Predicate(self.pred),
                isa.GlobalStore(self.rs, self.addr)]

    def execute_on(self, ctx):
        if ctx.read_reg(self.pred) & 1:
            hi, mid, lo = (ctx.read_reg(r) for r in self.addr)
            ctx.write_global((hi << 32) | (mid << 16) | lo,
                             ctx.read_reg(self.rs))


def is_pseudo(instr: isa.Instruction) -> bool:
    return isinstance(instr, (Mov, PLocalStore, PGlobalStore))


def duration_of(instr: isa.Instruction) -> int:
    """Machine cycles the instruction occupies once expanded."""
    return 2 if isinstance(instr, (PLocalStore, PGlobalStore)) else 1


def lir_is_privileged(instr: isa.Instruction) -> bool:
    return isa.is_privileged(instr) or isinstance(instr, PGlobalStore)


@dataclass
class MemoryLayout:
    """Placement of one RTL memory in the scratchpad or global DRAM."""

    name: str
    base: int            # word address (local) or 48-bit word addr (global)
    limbs: int           # 16-bit words per element
    depth: int
    is_global: bool

    @property
    def words(self) -> int:
        return self.limbs * self.depth


@dataclass
class LoweredDesign:
    """A monolithic lower-assembly program (paper SS6, pre-partitioning).

    ``body`` is a topologically valid but otherwise arbitrary ordering of
    SSA instructions over virtual registers.  ``commits`` records the
    state-element relation: at the end of every Vcycle the value of virtual
    register ``next`` becomes the new value of persistent register ``cur``.
    ``order_edges`` are non-SSA constraints (memory read-before-write,
    effect ordering) as (earlier_index, later_index) into ``body``.
    """

    name: str
    body: list[isa.Instruction] = field(default_factory=list)
    commits: list[tuple[str, str]] = field(default_factory=list)  # (cur, next)
    reg_init: dict[str, int] = field(default_factory=dict)
    const_regs: dict[int, str] = field(default_factory=dict)
    memories: dict[str, MemoryLayout] = field(default_factory=dict)
    scratch_init: dict[int, int] = field(default_factory=dict)
    global_init: dict[int, int] = field(default_factory=dict)
    exceptions: ExceptionTable = field(default_factory=ExceptionTable)
    #: non-SSA data edges (carry-flag chains) as (producer, consumer)
    #: body indices; fanin-cone closure must traverse these.
    extra_data_edges: list[tuple[int, int]] = field(default_factory=list)
    #: body indices that must stay in the privileged process
    privileged_indices: set[int] = field(default_factory=set)
    #: memory name -> body indices touching it (placement constraint)
    memory_users: dict[str, set[int]] = field(default_factory=dict)
    #: all SetCarry/AddCarry indices in emission order (chain atomicity)
    carry_indices: list[int] = field(default_factory=list)

    def finalize_metadata(self) -> None:
        """Precompute index lists later passes need."""
        self.carry_indices = [
            i for i, instr in enumerate(self.body)
            if isinstance(instr, (isa.SetCarry, isa.AddCarry))
        ]

    def instruction_count(self) -> int:
        return len(self.body)

    def stats(self) -> dict[str, int]:
        from collections import Counter
        kinds = Counter(type(i).__name__ for i in self.body)
        return {
            "instructions": len(self.body),
            "commits": len(self.commits),
            "constants": len(self.const_regs),
            "privileged": len(self.privileged_indices),
            **{f"n_{k}": v for k, v in sorted(kinds.items())},
        }
