"""The Manticore compiler: netlist optimizations, 16-bit lowering,
split/merge partitioning, custom-function synthesis, scheduling, and
register allocation (paper SS6)."""

from .cache import (
    CacheStats,
    CompileCache,
    compile_cache_key,
    default_cache_dir,
    options_fingerprint,
)
from .custom import CustomSynthesisResult, synthesize_custom_functions
from .driver import (
    CompileReport,
    CompileResult,
    CompilerOptions,
    PhaseTimes,
    compile_circuit,
)
from .parallel import compile_many, parallel_map, resolve_jobs
from .lower import CompilerError, LowerOptions, lower_circuit
from .merge import build_processes, merge_balanced, merge_lpt
from .schedule import ScheduledProgram, schedule
from .split import PartitionedProgram, split
from .verify import VerificationError, verify_program
from .transforms import (
    common_subexpression_elimination,
    constant_fold,
    dead_code_elimination,
    optimize,
)

__all__ = [
    "CacheStats", "CompileCache", "CompileReport", "CompileResult",
    "CompilerError", "CompilerOptions", "CustomSynthesisResult",
    "LowerOptions", "PartitionedProgram", "PhaseTimes",
    "ScheduledProgram", "build_processes", "compile_cache_key",
    "compile_circuit", "compile_many",
    "common_subexpression_elimination", "constant_fold",
    "dead_code_elimination", "default_cache_dir", "lower_circuit",
    "merge_balanced", "merge_lpt", "optimize", "options_fingerprint",
    "parallel_map", "resolve_jobs", "schedule", "split",
    "synthesize_custom_functions", "VerificationError", "verify_program",
]
