"""Process merging (paper SS6.1 step 2) and final process construction.

Two merge strategies, evaluated against each other in Fig. 9 / Table 4:

* :func:`merge_balanced` (**B**) - the paper's communication-aware
  heuristic: repeatedly take the cheapest process and merge it with a
  *communicating* partner that minimizes the merged execution-time
  estimate.  Merging is non-linear: duplicated instructions deduplicate
  and intra-process Sends disappear.
* :func:`merge_lpt` (**L**) - the communication-oblivious baseline:
  longest-processing-time-first bin packing onto the available cores.

:func:`build_processes` then materializes each partition into an
:class:`~repro.isa.program.Process`: body instructions in topological
order, ``Send`` instructions for every remote reader of an owned state
register, and commit ``Mov`` pseudo-instructions (coalesced later by the
scheduler when legal).
"""

from __future__ import annotations

from ..isa import instructions as isa
from ..isa.program import Process, ProgramImage
from .lir import Mov
from .split import Partition, PartitionedProgram, commit_ownership


def sequence_commit_movs(commits: list[tuple[str, str]]) -> list[Mov]:
    """Sequence the parallel state-commit copy into Mov instructions.

    Standard parallel-copy algorithm: emit copies whose destination is not
    a pending source; break cycles by saving one destination into a fresh
    temporary.
    """
    pending = [(cur, nxt) for cur, nxt in commits if cur != nxt]
    out: list[Mov] = []
    tmp_count = 0
    while pending:
        sources = {src for _, src in pending}
        progressed = False
        remaining = []
        for cur, nxt in pending:
            if cur not in sources:
                out.append(Mov(cur, nxt))
                progressed = True
            else:
                remaining.append((cur, nxt))
        pending = remaining
        if pending and not progressed:
            # Pure cycle: save one destination, redirect its readers.
            cur0, _ = pending[0]
            tmp = f"%swap{tmp_count}"
            tmp_count += 1
            out.append(Mov(tmp, cur0))
            pending = [(cur, tmp if nxt == cur0 else nxt)
                       for cur, nxt in pending]
    return out


class _MergeState:
    """Incremental bookkeeping for the merge loop."""

    def __init__(self, prog: PartitionedProgram) -> None:
        self.design = prog.design
        self.parts: dict[int, Partition] = dict(enumerate(prog.partitions))
        self.owners: dict[str, int] = {}
        self.readers: dict[str, set[int]] = {}
        owners, readers = commit_ownership(prog)
        self.owners = owners
        self.readers = {k: set(v) for k, v in readers.items()}
        self.commits_of: dict[int, list[tuple[str, str]]] = {
            pid: list(p.commits) for pid, p in self.parts.items()
        }

    # -- costs ----------------------------------------------------------
    def sends_from(self, pid: int) -> int:
        total = 0
        for cur, _ in self.commits_of[pid]:
            total += sum(1 for r in self.readers.get(cur, ())
                         if r != pid)
        return total

    def cost(self, pid: int) -> int:
        part = self.parts[pid]
        return len(part.indices) + len(part.commits) + self.sends_from(pid)

    def merged_cost(self, a: int, b: int) -> int:
        pa, pb = self.parts[a], self.parts[b]
        indices = len(pa.indices | pb.indices)
        commits = len(pa.commits) + len(pb.commits)
        sends = 0
        merged = {a, b}
        for pid in (a, b):
            for cur, _ in self.commits_of[pid]:
                sends += sum(1 for r in self.readers.get(cur, ())
                             if r not in merged)
        return indices + commits + sends

    def neighbors(self, pid: int) -> set[int]:
        result: set[int] = set()
        for cur, _ in self.commits_of[pid]:
            result |= {r for r in self.readers.get(cur, ()) if r != pid}
        part = self.parts[pid]
        seen_regs: set[str] = set()
        for i in part.indices:
            for reg in self.design.body[i].reads():
                if reg in self.owners:
                    seen_regs.add(reg)
        for _, nxt in part.commits:
            if nxt in self.owners:
                seen_regs.add(nxt)
        for reg in seen_regs:
            owner = self.owners[reg]
            if owner != pid:
                result.add(owner)
        return result

    # -- mutation ---------------------------------------------------------
    def merge(self, a: int, b: int) -> int:
        """Merge partition b into a; returns a."""
        pa, pb = self.parts[a], self.parts[b]
        pa.indices |= pb.indices
        pa.commits.extend(pb.commits)
        pa.privileged = pa.privileged or pb.privileged
        self.commits_of[a].extend(self.commits_of[b])
        del self.parts[b]
        del self.commits_of[b]
        for cur, owner in list(self.owners.items()):
            if owner == b:
                self.owners[cur] = a
        for cur, rs in self.readers.items():
            if b in rs:
                rs.discard(b)
                rs.add(a)
        return a

    def result(self) -> PartitionedProgram:
        return PartitionedProgram(self.design, list(self.parts.values()))


def merge_balanced(prog: PartitionedProgram, max_processes: int,
                   extra_passes: int = 2) -> PartitionedProgram:
    """The paper's communication-aware merge (**B**)."""
    state = _MergeState(prog)

    def best_partner(pid: int) -> int | None:
        """Partner minimizing the *increase* in merged execution time
        (paper SS6.1): score = cost(merged) - max(cost(a), cost(b)).
        This prefers absorbing a small communicating process into one of
        its readers (killing Sends and deduplicating shared cones) over
        gluing two unrelated small processes together."""
        candidates = set(state.neighbors(pid))
        # Fallback for processes with no (remaining) communication
        # partners: the cheapest other process.
        others = [q for q in state.parts if q != pid]
        if not others:
            return None
        if not candidates:
            candidates.add(min(others, key=lambda q: (state.cost(q), q)))
        my_cost = state.cost(pid)

        def score(q: int) -> tuple:
            merged = state.merged_cost(pid, q)
            return (merged - max(my_cost, state.cost(q)), merged, q)

        return min(candidates, key=score)

    while len(state.parts) > max_processes:
        pid = min(state.parts, key=lambda p: (state.cost(p), p))
        partner = best_partner(pid)
        if partner is None:
            break
        state.merge(pid, partner)

    # Opportunistic phase (paper: "merging can continue even after
    # reaching the number of available cores"): sweep processes cheapest
    # first, absorbing each into its best partner while that reduces
    # total work and does not push any process past the straggler as it
    # stood when the core-count target was met (prevents ratcheting).
    if state.parts:
        straggler_cap = max(state.cost(p) for p in state.parts)
        for _ in range(max(1, extra_passes)):
            merged_any = False
            for pid in sorted(state.parts,
                              key=lambda p: (state.cost(p), p)):
                if pid not in state.parts or len(state.parts) < 2:
                    continue
                partner = best_partner(pid)
                if partner is None:
                    continue
                merged = state.merged_cost(pid, partner)
                benefit = (state.cost(pid) + state.cost(partner)
                           - merged)
                # Only consolidate well below the straggler: the goal of
                # this phase is absorbing small communicating processes,
                # not building new near-stragglers.
                if benefit <= 0 or merged > straggler_cap // 2:
                    continue
                state.merge(pid, partner)
                merged_any = True
            if not merged_any:
                break
    return state.result()


def merge_lpt(prog: PartitionedProgram, max_processes: int,
              ) -> PartitionedProgram:
    """Longest-processing-time-first baseline (**L**): sort split
    processes by estimated time, place each in the least-loaded core,
    ignoring communication entirely (paper SS7.8.1)."""
    if len(prog.partitions) <= max_processes:
        return prog
    order = sorted(range(len(prog.partitions)),
                   key=lambda i: -prog.partitions[i].cost())
    bins: list[list[int]] = [[] for _ in range(max_processes)]
    loads = [0] * max_processes
    for idx in order:
        target = loads.index(min(loads))
        bins[target].append(idx)
        loads[target] += prog.partitions[idx].cost()
    state = _MergeState(prog)
    for group in bins:
        if not group:
            continue
        head = group[0]
        for other in group[1:]:
            state.merge(head, other)
    return state.result()


def build_processes(prog: PartitionedProgram) -> ProgramImage:
    """Materialize partitions into processes with Sends and commit Movs.

    The privileged partition always receives pid 0 (it will be placed on
    the privileged core).
    """
    design = prog.design
    owners, readers = commit_ownership(prog)

    # pid assignment: privileged first, then by descending size.
    order = sorted(
        range(len(prog.partitions)),
        key=lambda i: (not prog.partitions[i].privileged,
                       -prog.partitions[i].cost(), i),
    )
    pid_of = {part_index: pid for pid, part_index in enumerate(order)}

    processes: dict[int, Process] = {}
    receive_regs: dict[int, set] = {}

    for part_index, part in enumerate(prog.partitions):
        pid = pid_of[part_index]
        body: list[isa.Instruction] = [design.body[i]
                                       for i in sorted(part.indices)]
        # Sends: one per (owned commit, remote reader).
        for cur, nxt in part.commits:
            for reader in sorted(readers.get(cur, ())):
                if reader != part_index:
                    body.append(isa.Send(pid_of[reader], cur, nxt))
        # Commit Movs (candidates for current/next coalescing).  Commits
        # are a *parallel* copy (all currents take their next values
        # simultaneously); sequencing must respect read-before-overwrite,
        # including swap cycles (a.next = b, b.next = a).
        body.extend(sequence_commit_movs(part.commits))

        # Boot-time register image: every operand with a known initial
        # value (constants, state registers, memory bases).
        init: dict[isa.Reg, int] = {}
        for instr in body:
            # Send.rd names a *remote* register and Send.writes() is empty,
            # so reads()+writes() covers exactly the locally used registers.
            for reg in (*instr.reads(), *instr.writes()):
                if reg in design.reg_init:
                    init[reg] = design.reg_init[reg]
        # Scratchpad image for owned local memories.
        scratch: dict[int, int] = {}
        for mem_name, users in design.memory_users.items():
            layout = design.memories[mem_name]
            if layout.is_global or not (users & part.indices):
                continue
            for addr in range(layout.base, layout.base + layout.words):
                if addr in design.scratch_init:
                    scratch[addr] = design.scratch_init[addr]

        processes[pid] = Process(
            pid=pid, body=body, reg_init=init, cfu=[],
            scratch_init=scratch, privileged=part.privileged,
        )
        # Receive bindings: state registers we read but another partition
        # commits.
        received = set()
        for instr in body:
            for reg in instr.reads():
                owner = owners.get(reg)
                if owner is not None and owner != part_index:
                    received.add(reg)
        receive_regs[pid] = received

    # Rewrite Send targets from partition indices to pids happened above
    # (Sends were created with pids directly).
    image = ProgramImage(design.name, processes, design.exceptions,
                         dict(design.global_init), receive_regs)
    return image
