"""Compiler driver: the ``compile_circuit`` entry point (paper Fig. 4).

Pipeline::

    netlist --optimize--> netlist --lower--> monolithic lower assembly
      --split--> maximal processes --merge(B|L)--> <= cores processes
      --custom functions--> fused processes --schedule--> Vcycle schedule
      --register allocation--> MachineProgram (binary)

Every phase is timed; the :class:`CompileReport` feeds Table 8 / Fig. 14
(compile-time breakdown), Fig. 7 (VCPL scaling), Fig. 9/Table 4
(partitioning comparison), and Fig. 10 (custom-function savings).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..isa.program import MachineProgram, ProgramImage
from ..machine.config import MachineConfig, PROTOTYPE
from ..netlist.ir import Circuit
from ..obs.trace import span as _span
from . import transforms
from .custom import CustomSynthesisResult, synthesize_custom_functions
from .lower import CompilerError, LowerOptions, lower_circuit
from .mem2reg import memory_to_registers
from .merge import build_processes, merge_balanced, merge_lpt
from .regalloc import allocate
from .schedule import ScheduledProgram, schedule
from .split import split
from .verify import verify_program


@dataclass
class CompilerOptions:
    """User-facing compiler knobs."""

    config: MachineConfig = field(default_factory=lambda: PROTOTYPE)
    max_cores: int | None = None        # default: whole grid
    merge_strategy: str = "balanced"    # "balanced" (B) or "lpt" (L)
    enable_custom_functions: bool = True
    optimize_netlist: bool = True
    #: memories at most this many 16-bit words flatten to registers
    #: (0 disables the mem2reg pass)
    mem2reg_max_words: int = 512
    #: current/next register coalescing (paper SS6.3, [49]); ablation knob
    coalesce_state: bool = True
    #: custom-function cone selection: "milp" (exact) or "greedy"
    custom_selector: str = "milp"
    lower_options: LowerOptions = field(default_factory=LowerOptions)

    # ------------------------------------------------------------------
    # Non-semantic knobs (never change the produced binary; excluded
    # from the compile-cache key, see cache.NON_SEMANTIC_OPTIONS).
    # ------------------------------------------------------------------
    #: worker processes for the parallel phases (custom synthesis and
    #: per-core schedule construction) and for ``compile_many``.
    #: 1 = serial, -1 = one per CPU.  Any value is bit-identical to 1.
    jobs: int = 1
    #: directory of the content-addressed compile cache; ``None``
    #: disables caching (the library default - the CLI and benchmark
    #: harness opt in).
    cache_dir: str | None = None
    #: LRU size cap of the cache directory, in bytes.
    cache_max_bytes: int = 256 * 1024 * 1024


@dataclass
class PhaseTimes:
    """Seconds spent per compiler phase (Fig. 14 categories)."""

    opt: float = 0.0
    lower: float = 0.0
    parallelize: float = 0.0
    custom: float = 0.0
    schedule: float = 0.0
    regalloc: float = 0.0
    #: compile-cache overhead: key derivation + lookup (+ store on miss)
    cache: float = 0.0

    @property
    def total(self) -> float:
        return (self.opt + self.lower + self.parallelize + self.custom
                + self.schedule + self.regalloc + self.cache)

    def as_dict(self) -> dict[str, float]:
        return {
            "opt": self.opt, "lower": self.lower,
            "parallelize": self.parallelize, "custom": self.custom,
            "schedule": self.schedule, "regalloc": self.regalloc,
            "cache": self.cache, "total": self.total,
        }


@dataclass
class CompileReport:
    """Everything the evaluation section needs about one compilation."""

    name: str
    vcpl: int
    cores_used: int
    send_count: int
    split_processes: int        # |V| of the split graph (Table 8)
    split_edges: int            # |E| of the split graph (Table 8)
    netlist_ops: int
    lowered_instructions: int
    breakdown: dict[str, int]   # straggler Vcycle: compute/send/nop/custom
    custom: CustomSynthesisResult | None
    times: PhaseTimes
    max_imem: int
    #: compile-cache outcome for this compilation: status ("hit"/"miss"),
    #: key, and the cache instance's hit/miss/store/eviction counters.
    #: ``None`` when caching was disabled.
    cache: dict | None = None

    def simulated_rate_khz(self, frequency_mhz: float) -> float:
        """RTL cycles per second at the given machine frequency."""
        return frequency_mhz * 1e3 / self.vcpl

    def as_dict(self) -> dict:
        """JSON-serializable view (benchmarks, CLI ``--json``)."""
        custom = None
        if self.custom is not None:
            custom = {
                "instructions_before": self.custom.instructions_before,
                "instructions_after": self.custom.instructions_after,
                "reduction_percent": self.custom.reduction_percent,
            }
        return {
            "name": self.name,
            "vcpl": self.vcpl,
            "cores_used": self.cores_used,
            "send_count": self.send_count,
            "split_processes": self.split_processes,
            "split_edges": self.split_edges,
            "netlist_ops": self.netlist_ops,
            "lowered_instructions": self.lowered_instructions,
            "breakdown": dict(self.breakdown),
            "custom": custom,
            "times": self.times.as_dict(),
            "max_imem": self.max_imem,
            "cache": self.cache,
        }


@dataclass
class CompileResult:
    program: MachineProgram
    image: ProgramImage
    scheduled: ScheduledProgram
    report: CompileReport


def compile_circuit(circuit: Circuit,
                    options: CompilerOptions | None = None) -> CompileResult:
    """Compile a netlist circuit into a Manticore binary.

    When ``options.cache_dir`` is set, the content-addressed compile
    cache (:mod:`repro.compiler.cache`) is consulted first: a hit
    returns the stored artifact (bit-identical ``MachineProgram``)
    without running any phase; a miss compiles and stores.  When
    ``options.jobs > 1``, custom-function synthesis and per-core
    schedule construction fan out over a process pool - the output is
    bit-identical to ``jobs=1`` either way.
    """
    from .cache import cache_from_options

    options = options or CompilerOptions()
    with _span("compile", design=circuit.name):
        return _compile_traced(circuit, options, cache_from_options(options))


def _compile_traced(circuit: Circuit, options: CompilerOptions,
                    cache) -> CompileResult:
    if cache is None:
        return _compile_uncached(circuit, options)

    t0 = time.perf_counter()
    with _span("compile.cache.lookup"):
        key = cache.key(circuit, options)
        cached = cache.get(key)
    if cached is not None:
        cached.report.times.cache = time.perf_counter() - t0
        cached.report.cache = cache.describe("hit", key)
        return cached
    lookup = time.perf_counter() - t0

    result = _compile_uncached(circuit, options)

    t0 = time.perf_counter()
    with _span("compile.cache.store"):
        cache.put(key, result)
    result.report.times.cache = lookup + (time.perf_counter() - t0)
    result.report.cache = cache.describe("miss", key)
    return result


def _compile_uncached(circuit: Circuit,
                      options: CompilerOptions) -> CompileResult:
    """The full pipeline, no cache consultation."""
    config = options.config
    max_cores = options.max_cores or config.num_cores
    if max_cores > config.num_cores:
        raise CompilerError(
            f"max_cores={max_cores} exceeds grid ({config.num_cores})"
        )
    times = PhaseTimes()

    t0 = time.perf_counter()
    with _span("compile.opt"):
        if options.mem2reg_max_words:
            circuit = memory_to_registers(circuit,
                                          options.mem2reg_max_words)
        if options.optimize_netlist:
            circuit = transforms.optimize(circuit)
    times.opt = time.perf_counter() - t0

    t0 = time.perf_counter()
    with _span("compile.lower"):
        design = lower_circuit(circuit, options.lower_options)
    times.lower = time.perf_counter() - t0

    t0 = time.perf_counter()
    with _span("compile.parallelize"):
        prog = split(design)
        split_count = len(prog.partitions)
        split_edges = sum(len(v) for v in
                          prog.communication_graph().values()) // 2
        if options.merge_strategy == "balanced":
            merged = merge_balanced(prog, max_cores)
        elif options.merge_strategy == "lpt":
            merged = merge_lpt(prog, max_cores)
        else:
            raise CompilerError(
                f"unknown merge strategy {options.merge_strategy!r}"
            )
        image = build_processes(merged)
    times.parallelize = time.perf_counter() - t0

    t0 = time.perf_counter()
    with _span("compile.custom"):
        custom_result = None
        if options.enable_custom_functions:
            custom_result = synthesize_custom_functions(
                image, use_milp=(options.custom_selector == "milp"),
                jobs=options.jobs)
    times.custom = time.perf_counter() - t0

    t0 = time.perf_counter()
    with _span("compile.schedule"):
        scheduled = schedule(image, config,
                             coalesce_state=options.coalesce_state,
                             jobs=options.jobs)
    times.schedule = time.perf_counter() - t0

    t0 = time.perf_counter()
    with _span("compile.regalloc"):
        program = allocate(scheduled)
        verify_program(program, config)
    times.regalloc = time.perf_counter() - t0

    report = CompileReport(
        name=circuit.name,
        vcpl=scheduled.vcpl,
        cores_used=len(scheduled.cores),
        send_count=scheduled.send_count,
        split_processes=split_count,
        split_edges=split_edges,
        netlist_ops=len(circuit.ops),
        lowered_instructions=len(design.body),
        breakdown=scheduled.breakdown(),
        custom=custom_result,
        times=times,
        max_imem=program.max_instruction_footprint(),
    )
    return CompileResult(program, image, scheduled, report)
