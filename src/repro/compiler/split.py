"""Process splitting: the monolithic lower program -> a maximal set of
tiny processes (paper SS6.1 step 1).

Each *sink* (a state-element commit, a memory store, or an ``Expect``)
pulls its transitive fanin cone into an independent process, duplicating
shared instructions (paper: "Partitioning can duplicate DAG nodes across
multiple cores, maximizing parallelism at the expense of increased
computation").  Two constraints force sinks together:

* every instruction touching one memory region must live in one process
  (data cannot move mid-Vcycle under BSP), and
* all privileged instructions must live in one process (single privileged
  core).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import instructions as isa
from .lir import LoweredDesign, PGlobalStore, PLocalStore


class UnionFind:
    """Plain disjoint-set with path compression."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


@dataclass
class Partition:
    """One process-to-be: a set of monolithic body indices plus the state
    commits it owns."""

    indices: set[int] = field(default_factory=set)
    commits: list[tuple[str, str]] = field(default_factory=list)
    privileged: bool = False

    def cost(self) -> int:
        """Instruction-count estimate excluding Sends (added by merge)."""
        return len(self.indices) + len(self.commits)


@dataclass
class PartitionedProgram:
    """Output of split/merge: partitions over a shared lowered design."""

    design: LoweredDesign
    partitions: list[Partition]

    def max_cost(self) -> int:
        return max((p.cost() for p in self.partitions), default=0)

    def total_instructions(self) -> int:
        return sum(p.cost() for p in self.partitions)

    def communication_graph(self) -> dict[int, set[int]]:
        """Partition index -> set of partner partition indices."""
        owners, readers = commit_ownership(self)
        graph: dict[int, set[int]] = {i: set() for i in
                                      range(len(self.partitions))}
        for cur, owner in owners.items():
            for reader in readers.get(cur, ()):
                if reader != owner:
                    graph[owner].add(reader)
                    graph[reader].add(owner)
        return graph

    def send_count(self) -> int:
        """Total Send instructions the current partitioning implies."""
        owners, readers = commit_ownership(self)
        total = 0
        for cur, owner in owners.items():
            total += sum(1 for r in readers.get(cur, ()) if r != owner)
        return total


def def_map(design: LoweredDesign) -> dict[str, int]:
    """SSA definition map: virtual register -> defining body index."""
    defs: dict[str, int] = {}
    for i, instr in enumerate(design.body):
        for reg in instr.writes():
            defs[reg] = i
    return defs


def data_predecessors(design: LoweredDesign) -> list[list[int]]:
    """Per body index, the indices it data-depends on (incl. carry)."""
    defs = def_map(design)
    preds: list[list[int]] = [[] for _ in design.body]
    for i, instr in enumerate(design.body):
        for reg in instr.reads():
            j = defs.get(reg)
            if j is not None and j != i:
                preds[i].append(j)
    for producer, consumer in design.extra_data_edges:
        preds[consumer].append(producer)
    # Carry chains: an AddCarry also depends on the SetCarry that opened
    # its chain - reconstruct by scanning carry ops in order.
    chain_start: int | None = None
    for idx in design.carry_indices:
        instr = design.body[idx]
        if isinstance(instr, isa.SetCarry):
            chain_start = idx
        elif chain_start is not None:
            preds[idx].append(chain_start)
    return preds


def fanin_cone(preds: list[list[int]], roots: list[int]) -> set[int]:
    cone: set[int] = set()
    stack = list(roots)
    while stack:
        i = stack.pop()
        if i in cone:
            continue
        cone.add(i)
        stack.extend(p for p in preds[i] if p not in cone)
    return cone


def split(design: LoweredDesign) -> PartitionedProgram:
    """Create the maximal set of independent processes (paper SS6.1)."""
    preds = data_predecessors(design)
    defs = def_map(design)

    # Enumerate sinks: (kind, payload).
    sinks: list[tuple[str, object]] = []
    for k, (cur, nxt) in enumerate(design.commits):
        sinks.append(("commit", k))
    for i, instr in enumerate(design.body):
        if isinstance(instr, (PLocalStore, PGlobalStore, isa.Expect)):
            sinks.append(("instr", i))

    # Compute each sink's cone.
    cones: list[set[int]] = []
    for kind, payload in sinks:
        if kind == "commit":
            cur, nxt = design.commits[payload]  # type: ignore[index]
            root = defs.get(nxt)
            cones.append(fanin_cone(preds, [root]) if root is not None
                         else set())
        else:
            cones.append(fanin_cone(preds, [payload]))  # type: ignore[list-item]

    uf = UnionFind(len(sinks))

    # Memory constraint: sinks touching the same memory unite.
    for memory, users in design.memory_users.items():
        first = None
        for s, cone in enumerate(cones):
            if cone & users:
                if first is None:
                    first = s
                else:
                    uf.union(first, s)

    # Privileged constraint: one privileged process.
    first_priv = None
    for s, cone in enumerate(cones):
        if any(i in design.privileged_indices for i in cone):
            if first_priv is None:
                first_priv = s
            else:
                uf.union(first_priv, s)

    # Build partitions per union-find group.
    groups: dict[int, Partition] = {}
    for s, (kind, payload) in enumerate(sinks):
        root = uf.find(s)
        part = groups.setdefault(root, Partition())
        part.indices |= cones[s]
        if kind == "commit":
            part.commits.append(design.commits[payload])  # type: ignore[index]
        if any(i in design.privileged_indices for i in cones[s]):
            part.privileged = True

    partitions = list(groups.values())
    # Ensure exactly one privileged partition exists even if the design
    # has no privileged sinks at all (rare; e.g. pure-state designs).
    if not any(p.privileged for p in partitions) and partitions:
        partitions[0].privileged = True
    return PartitionedProgram(design, partitions)


def commit_ownership(prog: PartitionedProgram,
                     ) -> tuple[dict[str, int], dict[str, set[int]]]:
    """(owners, readers): which partition commits each state register and
    which partitions read its current value."""
    owners: dict[str, int] = {}
    for pi, part in enumerate(prog.partitions):
        for cur, _nxt in part.commits:
            owners[cur] = pi

    state_regs = set(owners)
    readers: dict[str, set[int]] = {}
    for pi, part in enumerate(prog.partitions):
        used: set[str] = set()
        for i in part.indices:
            for reg in prog.design.body[i].reads():
                if reg in state_regs:
                    used.add(reg)
        # Commit sources that are themselves state registers (``Mov`` from
        # another register's current value) also count as reads.
        for _cur, nxt in part.commits:
            if nxt in state_regs:
                used.add(nxt)
        for reg in used:
            readers.setdefault(reg, set()).add(pi)
    return owners, readers
