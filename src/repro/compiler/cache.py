"""Content-addressed on-disk compile cache.

PR 1 made execution several times faster, which left *compilation* as the
dominant cost of every ``simulate_on_manticore`` call and benchmark sweep
(the paper itself reports compile time as a first-class metric, Table 8 /
Fig. 14).  This module removes repeated compiles entirely: a
:class:`CompileCache` keys pickled :class:`~repro.compiler.driver.
CompileResult` artifacts by

* the **circuit fingerprint** (:meth:`repro.netlist.ir.Circuit.
  fingerprint`) - a structural sha256 stable across process restarts and
  op-insertion order;
* the **options fingerprint** (:func:`options_fingerprint`) - every
  semantic :class:`~repro.compiler.driver.CompilerOptions` field
  (non-semantic knobs like ``jobs`` and ``cache_dir`` are excluded
  because they never change the produced binary);
* a **compiler-version salt** (:data:`CACHE_SCHEMA_VERSION`) so stale
  artifacts from an older compiler are never replayed.

Durability rules:

* writes are atomic (temp file in the cache directory + ``os.replace``),
  so concurrent writers never expose a torn entry;
* *any* failure reading or unpickling an entry is a miss, never a crash
  (the offending file is deleted best-effort);
* the cache is LRU size-capped: after every store, oldest-read entries
  are evicted until the directory is back under ``max_bytes``;
* hit/miss/eviction counts are surfaced on
  :class:`~repro.compiler.driver.CompileReport` for benchmarks and the
  CLI ``--json`` output.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..netlist.ir import Circuit
from ..obs.trace import span as _span

#: Compiler-version salt mixed into every cache key.  Bump whenever the
#: compiler's output format or semantics change so old artifacts miss.
CACHE_SCHEMA_VERSION = "repro-compiler/2"

#: Default size cap for a cache directory (LRU-evicted beyond this).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: ``CompilerOptions`` fields that never change the compiled binary and
#: therefore must not contribute to the cache key.
NON_SEMANTIC_OPTIONS = frozenset({"jobs", "cache_dir", "cache_max_bytes"})


def default_cache_dir() -> Path:
    """``$REPRO_COMPILE_CACHE`` or ``~/.cache/repro-compile``."""
    env = os.environ.get("REPRO_COMPILE_CACHE")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro-compile").expanduser()


def options_fingerprint(options) -> str:
    """Deterministic digest of the semantic compiler options.

    Walks the full dataclass tree (``config``, ``lower_options``, ...) so
    *any* knob that can change the binary - grid shape, merge strategy,
    latencies, mem2reg threshold - invalidates the key, while
    :data:`NON_SEMANTIC_OPTIONS` are stripped first.
    """
    tree = dataclasses.asdict(options)
    for key in NON_SEMANTIC_OPTIONS:
        tree.pop(key, None)
    return hashlib.sha256(repr(tree).encode()).hexdigest()


def compile_cache_key(circuit: Circuit, options,
                      salt: str | None = None) -> str:
    """The content address of one (circuit, options) compilation."""
    salt = CACHE_SCHEMA_VERSION if salt is None else salt
    payload = "\0".join(
        (salt, circuit.fingerprint(), options_fingerprint(options)))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CacheStats:
    """Counters for one :class:`CompileCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions,
                "corrupt": self.corrupt}


class CompileCache:
    """A directory of pickled ``CompileResult`` artifacts, keyed by
    content address (``<key>.pkl``)."""

    def __init__(self, cache_dir: str | os.PathLike | None = None,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.dir = (default_cache_dir() if cache_dir is None
                    else Path(cache_dir).expanduser())
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self.dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def key(self, circuit: Circuit, options) -> str:
        return compile_cache_key(circuit, options)

    def path(self, key: str) -> Path:
        return self.dir / f"{key}.pkl"

    def get(self, key: str):
        """Cached ``CompileResult`` or ``None``.  Corrupt entries (torn
        writes, stale pickle protocols, truncation) count as misses and
        are removed."""
        path = self.path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            result = pickle.loads(blob)
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._remove(path)
            return None
        # LRU recency: a read refreshes the entry's eviction clock.
        try:
            os.utime(path)
        except OSError:
            pass
        self.stats.hits += 1
        return result

    def put(self, key: str, result) -> bool:
        """Atomically store ``result``; returns False when the artifact
        cannot be persisted (never raises)."""
        try:
            blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        try:
            fd, tmp = tempfile.mkstemp(dir=self.dir, prefix=".wip-",
                                       suffix=".pkl")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(blob)
                # Atomic publish: concurrent writers of the same key both
                # land a complete artifact; last rename wins.
                os.replace(tmp, self.path(key))
            except BaseException:
                self._remove(Path(tmp))
                raise
        except OSError:
            return False
        self.stats.stores += 1
        self._evict()
        return True

    # ------------------------------------------------------------------
    def entries(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) per artifact; racing deletions tolerated."""
        out = []
        for path in self.dir.glob("*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((st.st_mtime, st.st_size, path))
        return out

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self.entries())

    def _evict(self) -> None:
        with _span("compile.cache.evict", max_bytes=self.max_bytes):
            entries = sorted(self.entries())  # oldest mtime first
            total = sum(size for _, size, _ in entries)
            while entries and total > self.max_bytes:
                _, size, path = entries.pop(0)
                self._remove(path)
                total -= size
                self.stats.evictions += 1

    @staticmethod
    def _remove(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def describe(self, status: str, key: str) -> dict:
        """The ``CompileReport.cache`` stats payload for one lookup."""
        return {"status": status, "key": key, "dir": str(self.dir),
                **self.stats.as_dict()}


def cache_from_options(options) -> CompileCache | None:
    """Build the cache an options object asks for; ``None`` when caching
    is disabled or the directory cannot be created (degrade, not crash)."""
    if options.cache_dir is None:
        return None
    try:
        return CompileCache(options.cache_dir,
                            max_bytes=options.cache_max_bytes)
    except OSError:
        return None
