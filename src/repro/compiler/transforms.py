"""Netlist-level optimizations: constant folding, common-subexpression
elimination, and dead-code elimination (paper SS6: "the backend ... applies
simple optimizations").

All passes are pure: they return a new :class:`Circuit` and leave the input
untouched, which keeps differential testing against the golden interpreter
trivial.
"""

from __future__ import annotations

from ..netlist.ir import (
    AssertEffect,
    Circuit,
    Display,
    Finish,
    Memory,
    MemWrite,
    Op,
    OpKind,
    Register,
    Wire,
    evaluate_op,
    topological_order,
)


def _remap_wire(wire: Wire, remap: dict[str, str]) -> Wire:
    name = remap.get(wire.name, wire.name)
    return wire if name == wire.name else Wire(name, wire.width)


def _rebuild(circuit: Circuit, ops: list[Op], remap: dict[str, str],
             ) -> Circuit:
    """Clone the circuit with new ops and wire substitutions applied to all
    sink references (registers, memories, effects, outputs)."""
    new = Circuit(circuit.name)
    new.ops = [
        Op(op.result, op.kind,
           tuple(_remap_wire(a, remap) for a in op.args), dict(op.attrs))
        for op in ops
    ]
    for name, reg in circuit.registers.items():
        nxt = _remap_wire(reg.next_value, remap) if reg.next_value else None
        new.registers[name] = Register(reg.name, reg.width, reg.init, nxt)
    for name, memory in circuit.memories.items():
        new.memories[name] = Memory(
            memory.name, memory.width, memory.depth, memory.init,
            [MemWrite(_remap_wire(w.addr, remap),
                      _remap_wire(w.data, remap),
                      _remap_wire(w.enable, remap))
             for w in memory.writes],
            memory.global_hint,
            memory.sram_hint,
        )
    new.inputs = dict(circuit.inputs)
    new.outputs = {k: _remap_wire(w, remap)
                   for k, w in circuit.outputs.items()}
    for eff in circuit.effects:
        if isinstance(eff, Display):
            new.effects.append(Display(
                _remap_wire(eff.enable, remap), eff.fmt,
                tuple(_remap_wire(a, remap) for a in eff.args)))
        elif isinstance(eff, Finish):
            new.effects.append(Finish(_remap_wire(eff.enable, remap)))
        elif isinstance(eff, AssertEffect):
            new.effects.append(AssertEffect(
                _remap_wire(eff.enable, remap),
                _remap_wire(eff.cond, remap), eff.message))
    return new


def constant_fold(circuit: Circuit) -> Circuit:
    """Evaluate ops whose arguments are all constants.

    ``MEMRD`` and ops reading registers/inputs are never folded.  Folded
    ops become ``CONST`` ops (later CSE/DCE merges and prunes them).
    """
    const_values: dict[str, int] = {}
    new_ops: list[Op] = []
    for op in topological_order(circuit):
        foldable = (
            op.kind not in (OpKind.MEMRD, OpKind.CONST)
            and all(a.name in const_values for a in op.args)
        )
        if op.kind is OpKind.CONST:
            const_values[op.result.name] = op.value
            new_ops.append(op)
        elif foldable:
            value = evaluate_op(op, const_values)
            const_values[op.result.name] = value
            new_ops.append(Op(op.result, OpKind.CONST, (),
                              {"value": value}))
        else:
            new_ops.append(op)
    return _rebuild(circuit, new_ops, {})


def _op_key(op: Op, remap: dict[str, str]) -> tuple:
    args = tuple(remap.get(a.name, a.name) for a in op.args)
    attrs = tuple(sorted(op.attrs.items()))
    if op.kind in (OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.ADD,
                   OpKind.MUL, OpKind.EQ, OpKind.NE):
        args = tuple(sorted(args))  # commutative
    return (op.kind, op.result.width, args, attrs)


def common_subexpression_elimination(circuit: Circuit) -> Circuit:
    """Merge structurally identical ops (value numbering, one pass)."""
    seen: dict[tuple, str] = {}
    remap: dict[str, str] = {}
    new_ops: list[Op] = []
    for op in topological_order(circuit):
        key = _op_key(op, remap)
        existing = seen.get(key)
        if existing is not None and op.kind is not OpKind.MEMRD:
            remap[op.result.name] = existing
            continue
        seen[key] = op.result.name
        new_ops.append(op)
    return _rebuild(circuit, new_ops, remap)


def dead_code_elimination(circuit: Circuit) -> Circuit:
    """Remove ops not reachable backwards from any sink.

    Registers whose value is never observed (not read by any live op,
    effect, memory, or output - directly or transitively) are removed
    along with their next-value cones.
    """
    producers = circuit.producers()

    # Iteratively shrink the live register set: a register is live if its
    # current value feeds a non-register sink, or feeds a live register.
    def cone(roots: list[str]) -> set[str]:
        seen: set[str] = set()
        stack = [r for r in roots if r in producers]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(a.name for a in producers[name].args
                         if a.name in producers and a.name not in seen)
        return seen

    hard_roots = [w.name for w in circuit.effect_wires()]
    hard_roots += [w.name for w in circuit.outputs.values()]
    for memory in circuit.memories.values():
        for wr in memory.writes:
            hard_roots += [wr.addr.name, wr.data.name, wr.enable.name]
    hard_cone = cone(hard_roots)

    def reads_of_cone(names: set[str], roots: list[str]) -> set[str]:
        regs = set()
        for name in names:
            for arg in producers[name].args:
                if arg.name in circuit.registers:
                    regs.add(arg.name)
        for root in roots:
            if root in circuit.registers:
                regs.add(root)
        return regs

    live_regs = reads_of_cone(hard_cone, hard_roots)
    while True:
        roots = list(hard_roots)
        for reg_name in live_regs:
            reg = circuit.registers[reg_name]
            if reg.next_value is not None:
                roots.append(reg.next_value.name)
        live = cone(roots)
        new_live_regs = reads_of_cone(live, roots)
        if new_live_regs <= live_regs:
            break
        live_regs |= new_live_regs

    new_ops = [op for op in circuit.ops if op.result.name in live]
    new = _rebuild(circuit, new_ops, {})
    new.registers = {
        name: reg for name, reg in new.registers.items()
        if name in live_regs
    }
    return new


def optimize(circuit: Circuit, fold: bool = True, cse: bool = True,
             dce: bool = True) -> Circuit:
    """Standard pipeline: fold -> CSE -> DCE (paper SS6 backend opts)."""
    result = circuit
    if fold:
        result = constant_fold(result)
    if cse:
        result = common_subexpression_elimination(result)
    if dce:
        result = dead_code_elimination(result)
    result.validate()
    return result
