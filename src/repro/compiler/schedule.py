"""Instruction scheduling: hazards, Send routing, and Vcycle assembly
(paper SS6.3).

The scheduler performs "an abstract cycle-accurate simulation of one
Vcycle using a model of a core's pipeline and the NoC": a global
cycle-by-cycle list schedule across all cores at once.

Timing contract (shared with :mod:`repro.machine`):

* an instruction issued at cycle ``t`` makes its register result readable
  by instructions issued at ``t + result_latency`` or later;
* ``AddCarry``/``SetCarry`` forward the carry bit with ``carry_latency``
  (the DSP cascade), and all carry ops of one core execute in program
  order so chains never interleave;
* persistent registers (state currents, constants, received values) read
  their Vcycle-start value: writers of those registers are ordered after
  every reader (WAR edges);
* a ``Send`` issued at ``t`` occupies route link ``j`` at
  ``t + inject + j`` and the target's ejection port at arrival; bufferless
  switching means a (link, cycle) may be reserved once (paper SS5.2);
* messages become receive-slot ``Set``s: the k-th message (by arrival) of
  a core executes at ``epilogue_start + k``, so arrival must precede that
  slot.

Current/next coalescing (paper SS6.3, [49]): a commit ``Mov(cur, next)``
whose next value is computed locally is dissolved - the defining
instruction writes ``cur`` directly and WAR edges keep old-value readers
ahead of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import instructions as isa
from ..isa.program import ProgramImage
from ..machine.config import MachineConfig
from .lir import Mov, PLocalStore, duration_of, lir_is_privileged
from .lower import CompilerError


@dataclass
class ScheduledCore:
    """One core's schedule, pre register allocation."""

    core_id: int
    pid: int
    items: list[tuple[int, isa.Instruction]] = field(default_factory=list)
    epilogue_start: int = 0
    epilogue_length: int = 0
    #: coalescing substitution applied at emission: old vreg -> new vreg
    rename: dict[str, str] = field(default_factory=dict)

    def counts(self) -> dict[str, int]:
        compute = sends = 0
        custom = 0
        slots = 0
        for _, instr in self.items:
            slots += duration_of(instr)
            if isinstance(instr, isa.Send):
                sends += 1
            elif isinstance(instr, isa.Custom):
                custom += 1
                compute += 1
            else:
                compute += duration_of(instr)
        return {
            "compute": compute,
            "send": sends,
            "custom": custom,
            "nop": self.epilogue_start - slots,
        }


@dataclass
class ScheduledProgram:
    """All cores scheduled; input to register allocation / emission."""

    image: ProgramImage
    config: MachineConfig
    cores: dict[int, ScheduledCore]
    placement: dict[int, int]   # pid -> core id
    vcpl: int
    send_count: int

    def straggler(self) -> ScheduledCore:
        return max(self.cores.values(),
                   key=lambda c: c.epilogue_start + c.epilogue_length)

    def breakdown(self) -> dict[str, int]:
        """Straggler Vcycle breakdown (Fig 9/10): compute/send/nop/custom."""
        core = self.straggler()
        counts = core.counts()
        counts["nop"] += self.vcpl - (core.epilogue_start
                                      + core.epilogue_length)
        counts["vcpl"] = self.vcpl
        return counts


class _CoreState:
    """Per-core scheduling state."""

    def __init__(self, core_id: int, pid: int, body: list[isa.Instruction],
                 persistent: set, config: MachineConfig,
                 allow_coalesce: bool = True) -> None:
        self.core_id = core_id
        self.pid = pid
        self.body = body
        self.config = config
        self.persistent = persistent
        self.rename: dict[str, str] = {}
        self.allow_coalesce = allow_coalesce
        self._build_dependences()
        if not self._compute_topo_and_height():
            if not allow_coalesce:
                raise CompilerError(
                    f"cyclic scheduling constraints on core {core_id}"
                )
            # Current/next coalescing created a WAR/RAW cycle (an
            # instruction consumes both the old and the new value of a
            # state register); retry with plain commit Movs.
            self.rename = {}
            self.allow_coalesce = False
            self._build_dependences()
            if not self._compute_topo_and_height():
                raise CompilerError(
                    f"cyclic scheduling constraints on core {core_id}"
                )
        self.issue_time: dict[int, int] = {}
        self.busy_until = 0
        self.last_slot_end = 0
        self.last_write_issue = -1

    # ------------------------------------------------------------------
    def _build_dependences(self) -> None:
        body = self.body
        cfg = self.config
        defs: dict[str, int] = {}
        for i, instr in enumerate(body):
            for reg in instr.writes():
                defs[reg] = i

        # Coalescing: dissolve Mov(cur, nxt) where nxt is a locally
        # computed temp defined by a non-Mov instruction.
        drop: set[int] = set()
        renamed_next: set[str] = set()
        if self.allow_coalesce:
            for i, instr in enumerate(body):
                if not isinstance(instr, Mov):
                    continue
                cur, nxt = instr.rd, instr.rs
                d = defs.get(nxt)
                if (d is None or isinstance(body[d], Mov)
                        or nxt in renamed_next or nxt in self.persistent):
                    continue
                drop.add(i)
                renamed_next.add(nxt)
                self.rename[nxt] = cur
                defs[cur] = d  # the defining instruction now writes cur

        self.drop = drop
        self.order = [i for i in range(len(body)) if i not in drop]

        # Edges: consumer-index -> list of (producer-index, min delay).
        preds: dict[int, list[tuple[int, int]]] = {i: [] for i in self.order}
        L = cfg.result_latency

        # Writers of persistent registers (for WAR edges).
        persistent_writer: dict[str, int] = {}
        for i in self.order:
            instr = body[i]
            target = None
            if isinstance(instr, Mov) and instr.rd in self.persistent:
                target = instr.rd
            else:
                for reg in instr.writes():
                    mapped = self.rename.get(reg, reg)
                    if mapped in self.persistent:
                        target = mapped
            if target is not None:
                persistent_writer[target] = i

        for i in self.order:
            instr = body[i]
            for reg in instr.reads():
                if reg in self.persistent:
                    continue  # Vcycle-start value; WAR handled below
                d = defs.get(reg)
                if d is not None and d != i and d not in self.drop:
                    preds[i].append((d, L))
                elif d is not None and d in self.drop:
                    # read of a Mov result that was dissolved: depend on
                    # the renamed defining instruction
                    src = self.rename.get(reg)
                    dd = defs.get(src) if src else None
                    if dd is not None and dd != i:
                        preds[i].append((dd, L))

        # Reads of renamed temps now target the real definer: handled
        # above because defs[cur] was updated; reads of `nxt` still map
        # through defs[nxt] which points at the definer too.

        # WAR: every reader of a persistent register precedes its writer.
        for i in self.order:
            instr = body[i]
            for reg in instr.reads():
                mapped = self.rename.get(reg, reg)
                w = persistent_writer.get(mapped if mapped in
                                          self.persistent else reg)
                if w is not None and w != i:
                    # Reader wants the old value only if it is not a RAW
                    # consumer of the writer (renamed reads are RAW).
                    if reg in self.persistent:
                        preds[w].append((i, duration_of(body[i])))

        # Carry serialization.
        carry_ops = [i for i in self.order
                     if isinstance(body[i], (isa.SetCarry, isa.AddCarry))]
        for a, b in zip(carry_ops, carry_ops[1:]):
            preds[b].append((a, cfg.carry_latency))

        # Local memory: loads before stores, stores in order.
        loads = [i for i in self.order
                 if isinstance(body[i], isa.LocalLoad)]
        stores = [i for i in self.order if isinstance(body[i], PLocalStore)]
        if stores:
            first_store = stores[0]
            for ld in loads:
                preds[first_store].append((ld, duration_of(body[ld])))
            for a, b in zip(stores, stores[1:]):
                preds[b].append((a, duration_of(body[a])))

        # Privileged chain: strict program order (globally stalling ops
        # must retain effect order; also covers global-memory ordering).
        priv = [i for i in self.order if lir_is_privileged(body[i])]
        for a, b in zip(priv, priv[1:]):
            preds[b].append((a, duration_of(body[a])))

        # Movs in program order (the parallel-copy sequence is order
        # sensitive).
        movs = [i for i in self.order if isinstance(body[i], Mov)]
        for a, b in zip(movs, movs[1:]):
            preds[b].append((a, duration_of(body[a])))

        self.preds = preds
        succs: dict[int, list[tuple[int, int]]] = {i: [] for i in self.order}
        for i, plist in preds.items():
            for p, delay in plist:
                succs[p].append((i, delay))
        self.succs = succs

    def _compute_topo_and_height(self) -> bool:
        """Kahn topological sort; False if the constraint graph is cyclic.
        On success sets ``self.height`` (delay-weighted critical path to
        any terminal - the list-scheduling priority)."""
        indeg = {i: len(self.preds[i]) for i in self.order}
        ready = [i for i in self.order if indeg[i] == 0]
        topo: list[int] = []
        while ready:
            i = ready.pop()
            topo.append(i)
            for j, _ in self.succs[i]:
                indeg[j] -= 1
                if indeg[j] == 0:
                    ready.append(j)
        if len(topo) != len(self.order):
            return False
        height: dict[int, int] = {}
        for i in reversed(topo):
            height[i] = max((height[j] + delay for j, delay in self.succs[i]),
                            default=0)
        self.height = height
        return True

    # ------------------------------------------------------------------
    def ready_at(self, i: int, now: int) -> bool:
        for p, delay in self.preds[i]:
            t = self.issue_time.get(p)
            if t is None or t + delay > now:
                return False
        return True


def _place(image: ProgramImage, pids: list[int],
           config: MachineConfig) -> dict[int, int]:
    """Process placement: privileged process (pid 0) on core 0, the rest
    row-major - except on heterogeneous grids (paper SSA.7), where
    processes that touch a scratchpad must land on the first
    ``config.scratchpad_cores`` cores."""
    limit = config.scratchpad_cores
    if limit is None or limit >= config.num_cores:
        return {pid: i for i, pid in enumerate(pids)}
    if limit < 1:
        raise CompilerError("at least one scratchpad core is required "
                            "(the privileged core)")

    def needs_scratchpad(pid: int) -> bool:
        proc = image.processes[pid]
        if proc.scratch_init:
            return True
        return any(isinstance(i, (isa.LocalLoad, isa.LocalStore,
                                  PLocalStore))
                   for i in proc.body)

    memory_pids = [pid for pid in pids if needs_scratchpad(pid) or pid == 0]
    plain_pids = [pid for pid in pids if pid not in memory_pids]
    if len(memory_pids) > limit:
        raise CompilerError(
            f"{len(memory_pids)} scratchpad-using processes exceed the "
            f"{limit} scratchpad-equipped cores of this heterogeneous grid"
        )
    placement: dict[int, int] = {}
    for i, pid in enumerate(memory_pids):
        placement[pid] = i
    free = [c for c in range(config.num_cores)
            if c not in set(placement.values())]
    for pid, core in zip(plain_pids, free):
        placement[pid] = core
    return placement


def _build_core_state(payload) -> _CoreState:
    """Construct one core's scheduling state (dependence graph, coalesce
    analysis, topo order, critical-path heights).  Module-level and pure
    so ``jobs=N`` can fan it out over a process pool - this front half of
    the scheduler is embarrassingly parallel per core, while the global
    cycle-by-cycle NoC simulation below stays serial (links are shared)."""
    core_id, pid, body, persistent, config, allow_coalesce = payload
    return _CoreState(core_id, pid, body, persistent, config,
                      allow_coalesce=allow_coalesce)


def schedule(image: ProgramImage, config: MachineConfig,
             coalesce_state: bool = True,
             jobs: int | None = None) -> ScheduledProgram:
    """Schedule every process of ``image`` onto the grid.

    ``jobs > 1`` parallelizes the per-core dependence/priority
    construction; the resulting schedule is identical to ``jobs=1``
    (states are rebuilt in pid order and the global list-scheduling loop
    is unchanged).
    """
    from .parallel import parallel_map

    pids = sorted(image.processes)
    if len(pids) > config.num_cores:
        raise CompilerError(
            f"{len(pids)} processes exceed the {config.num_cores}-core grid"
        )
    placement = _place(image, pids, config)

    payloads = []
    for pid in pids:
        proc = image.processes[pid]
        persistent = set(proc.reg_init) | set(
            image.receive_regs.get(pid, ()))
        payloads.append((placement[pid], pid, proc.body, persistent,
                         config, coalesce_state))
    cores: dict[int, _CoreState] = {
        st.core_id: st
        for st in parallel_map(_build_core_state, payloads, jobs)
    }

    import heapq

    link_busy: set[tuple] = set()          # ((kind, x, y) | ("EJ", core), cycle)
    arrivals: dict[int, list[int]] = {c: [] for c in cores}

    # Incremental readiness: per core, a heap of items whose dependences
    # are all issued, keyed by (earliest issue cycle, -height); plus an
    # "available now" heap keyed by -height.  Route results are cached.
    route_cache: dict[tuple[int, int], list] = {}

    def cached_route(src: int, dst: int):
        key = (src, dst)
        route = route_cache.get(key)
        if route is None:
            route = config.route(src, dst)
            route_cache[key] = route
        return route

    for cid, st in cores.items():
        st.indeg = {i: len(st.preds[i]) for i in st.order}
        st.earliest = {i: 0 for i in st.order}
        st.waiting = [(0, -st.height[i], i) for i in st.order
                      if st.indeg[i] == 0]
        heapq.heapify(st.waiting)
        st.avail = []  # heap of (-height, i)

    now = 0
    total_instrs = sum(len(st.order) for st in cores.values())
    scheduled = 0
    max_cycles = (total_instrs * (config.result_latency
                                  + config.grid_x + config.grid_y + 8)
                  + 4096)
    send_count = 0
    active = list(cores.items())

    while scheduled < total_instrs:
        if now > max_cycles:
            raise CompilerError("scheduler failed to converge (deadlock?)")
        for cid, st in active:
            waiting = st.waiting
            avail = st.avail
            while waiting and waiting[0][0] <= now:
                t, negh, i = heapq.heappop(waiting)
                heapq.heappush(avail, (negh, i))
            if st.busy_until > now or not avail:
                continue
            # Pick the highest-priority issueable item; Sends may be
            # NoC-blocked, in which case try the next candidates.
            chosen = None
            deferred = []
            while avail:
                negh, i = heapq.heappop(avail)
                instr = st.body[i]
                if isinstance(instr, isa.Send):
                    target_core = placement[instr.target]
                    route = cached_route(cid, target_core)
                    t0 = now + config.noc_inject_latency
                    slots = [(link, t0 + j)
                             for j, link in enumerate(route)]
                    arrival = t0 + len(route) + config.noc_eject_latency
                    slots.append((("EJ", target_core), arrival))
                    if any(s in link_busy for s in slots):
                        deferred.append((negh, i))
                        continue
                    link_busy.update(slots)
                    arrivals[target_core].append(arrival)
                    send_count += 1
                chosen = i
                break
            for item in deferred:
                heapq.heappush(avail, item)
            if chosen is None:
                continue
            i = chosen
            st.issue_time[i] = now
            st.busy_until = now + duration_of(st.body[i])
            st.last_slot_end = max(st.last_slot_end, st.busy_until)
            if st.body[i].writes() or isinstance(st.body[i], Mov):
                st.last_write_issue = now
            scheduled += 1
            # Release successors.
            for j, delay in st.succs[i]:
                st.earliest[j] = max(st.earliest[j], now + delay)
                st.indeg[j] -= 1
                if st.indeg[j] == 0:
                    heapq.heappush(waiting,
                                   (st.earliest[j], -st.height[j], j))
        now += 1

    # Assemble per-core Vcycle layout.
    out: dict[int, ScheduledCore] = {}
    vcpl = 0
    for cid, st in cores.items():
        arr = sorted(arrivals[cid])
        epi_start = st.last_slot_end
        for k, t in enumerate(arr):
            # Slot k executes at epi_start + k and must not outrun arrival.
            epi_start = max(epi_start, t - k)
        core = ScheduledCore(
            core_id=cid, pid=st.pid,
            items=sorted(((t, st.body[i]) for i, t in st.issue_time.items()),
                         key=lambda x: x[0]),
            epilogue_start=epi_start,
            epilogue_length=len(arr),
            rename=dict(st.rename),
        )
        out[cid] = core
        vcpl = max(vcpl, epi_start + len(arr))
        # Pipeline drain: every delayed register write must land before
        # the Vcycle wraps, or cycle-0 readers of the next Vcycle would
        # observe stale state.
        vcpl = max(vcpl, st.last_write_issue + config.result_latency)

    vcpl = max(vcpl, 1)
    return ScheduledProgram(image, config, out, placement, vcpl, send_count)
