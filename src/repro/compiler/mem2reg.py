"""Memory-to-register conversion (the Yosys ``memory -nomap`` behaviour
our frontend inherits).

RTL designs keep small unpacked arrays - register files, weight buffers,
accumulators - that synthesis tools map to flip-flops rather than SRAM
macros.  This matters enormously for Manticore: every instruction touching
one memory region must live in a single process (paper SS6.1), so a design
whose dataflow runs through one big buffer would serialize onto one core.
Converting small memories to per-element registers lets the splitter pull
each element's cone into its own process.

* memories with at most ``max_words`` 16-bit words convert;
* read ports become mux trees over the element registers (selected by
  address bits), which constant folding collapses for constant addresses;
* write ports become per-element enabled updates, later writes winning;
* never-written memories (ROMs) convert to constants, so ROM lookups
  with constant addresses fold away entirely.
"""

from __future__ import annotations

from ..netlist.ir import (
    Circuit,
    Memory,
    Op,
    OpKind,
    Register,
    Wire,
    mask,
)

DEFAULT_MAX_WORDS = 512


class _Emitter:
    """Fresh-wire op emission into a plain op list."""

    def __init__(self, prefix: str) -> None:
        self.ops: list[Op] = []
        self.prefix = prefix
        self.count = 0
        self._consts: dict[tuple[int, int], Wire] = {}

    def fresh(self, width: int) -> Wire:
        self.count += 1
        return Wire(f"{self.prefix}{self.count}", width)

    def emit(self, kind: OpKind, args: tuple[Wire, ...], width: int,
             attrs: dict | None = None) -> Wire:
        wire = self.fresh(width)
        self.ops.append(Op(wire, kind, args, attrs or {}))
        return wire

    def const(self, value: int, width: int) -> Wire:
        key = (value & mask(width), width)
        if key not in self._consts:
            self._consts[key] = self.emit(
                OpKind.CONST, (), width, {"value": key[0]})
        return self._consts[key]

    def bit(self, wire: Wire, index: int) -> Wire:
        return self.emit(OpKind.SLICE, (wire,), 1, {"offset": index})

    def mux(self, sel: Wire, if_false: Wire, if_true: Wire) -> Wire:
        return self.emit(OpKind.MUX, (sel, if_false, if_true),
                         if_false.width)

    def select(self, addr: Wire, leaves: list[Wire]) -> Wire:
        """Mux tree over ``leaves`` indexed by ``addr`` (wrapping)."""
        items = list(leaves)
        bit_index = 0
        while len(items) > 1:
            sel = self.bit(addr, bit_index) if bit_index < addr.width \
                else self.const(0, 1)
            items = [
                self.mux(sel, items[i],
                         items[i + 1] if i + 1 < len(items) else items[i])
                for i in range(0, len(items), 2)
            ]
            bit_index += 1
        return items[0]

    def eq_const(self, wire: Wire, value: int) -> Wire:
        return self.emit(OpKind.EQ, (wire, self.const(value, wire.width)),
                         1)

    def and_(self, a: Wire, b: Wire) -> Wire:
        return self.emit(OpKind.AND, (a, b), 1)


def _convertible(memory: Memory, max_words: int) -> bool:
    limbs = (memory.width + 15) // 16
    return (memory.depth * limbs <= max_words
            and not memory.global_hint and not memory.sram_hint)


def memory_to_registers(circuit: Circuit,
                        max_words: int = DEFAULT_MAX_WORDS) -> Circuit:
    """Return a circuit with small memories flattened to registers."""
    targets = {name: memory for name, memory in circuit.memories.items()
               if _convertible(memory, max_words)}
    if not targets:
        return circuit

    new = Circuit(circuit.name)
    new.inputs = dict(circuit.inputs)
    new.outputs = dict(circuit.outputs)
    new.effects = list(circuit.effects)
    new.registers = {
        name: Register(reg.name, reg.width, reg.init, reg.next_value)
        for name, reg in circuit.registers.items()
    }
    new.memories = {
        name: Memory(memory.name, memory.width, memory.depth, memory.init,
                     list(memory.writes), memory.global_hint,
                     memory.sram_hint)
        for name, memory in circuit.memories.items() if name not in targets
    }

    emit = _Emitter("%m2r")

    # Element wires per converted memory: ROMs become constants,
    # writable memories become registers.
    elements: dict[str, list[Wire]] = {}
    for name, memory in targets.items():
        init = list(memory.init) + [0] * (memory.depth - len(memory.init))
        if not memory.writes:
            elements[name] = [
                emit.const(init[e], memory.width)
                for e in range(memory.depth)
            ]
            continue
        leaves = []
        for e in range(memory.depth):
            reg_name = f"{name}%{e}"
            new.registers[reg_name] = Register(reg_name, memory.width,
                                               init[e] & mask(memory.width))
            leaves.append(Wire(reg_name, memory.width))
        elements[name] = leaves

    # Rewrite reads.
    for op in circuit.ops:
        if op.kind is OpKind.MEMRD and op.memory in targets:
            value = emit.select(op.args[0], elements[op.memory])
            # Preserve the original result wire name via a width-exact
            # aliasing op (AND with all-ones keeps SSA simple).
            ones = emit.const(mask(op.result.width), op.result.width)
            emit.ops.append(Op(op.result, OpKind.AND, (value, ones), {}))
        else:
            emit.ops.append(op)

    # Rewrite writes: per element, fold the write ports in order.
    for name, memory in targets.items():
        if not memory.writes:
            continue
        for e, cur in enumerate(elements[name]):
            value = cur
            for wr in memory.writes:
                hit = emit.and_(emit.eq_const(wr.addr, e), wr.enable)
                data = wr.data
                value = emit.mux(hit, value, data)
            reg_name = f"{name}%{e}"
            new.registers[reg_name].next_value = value

    new.ops = emit.ops
    new.validate()
    return new
