"""Deterministic parallel fan-out for the compiler pipeline.

Two compiler phases are embarrassingly parallel across partitions:
per-process custom-function synthesis (:mod:`repro.compiler.custom`) and
per-core dependence/priority construction inside the list scheduler
(:mod:`repro.compiler.schedule`).  Both fan out over a
``concurrent.futures`` process pool through :func:`parallel_map`, which
preserves input order so a ``jobs=N`` compile produces a **bit-identical**
``MachineProgram`` to ``jobs=1`` (enforced by
``tests/test_parallel_compile.py`` and the CI determinism check).

:func:`compile_many` is the batch entry point the benchmark harness uses
so figure sweeps compile their whole design set concurrently, with the
content-addressed cache (:mod:`repro.compiler.cache`) consulted in the
parent before any worker is spawned.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Callable, Iterable, Sequence, TypeVar

from ..netlist.ir import Circuit
from ..obs.trace import span as _span

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items a pool is never worth its spawn cost.
MIN_ITEMS_FOR_POOL = 2


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` knob: ``None``/``0`` mean serial, negative
    values mean one worker per CPU."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 jobs: int | None, chunksize: int = 1) -> list[R]:
    """``[fn(x) for x in items]``, fanned over a process pool.

    Results come back in input order regardless of completion order, so
    callers that apply them index-aligned stay deterministic.  Worker
    exceptions propagate to the caller; pool-infrastructure failures
    (unpicklable payloads, a broken pool) silently fall back to the
    serial path, which either succeeds or reproduces the real error.
    """
    items = list(items)
    workers = min(resolve_jobs(jobs), len(items))
    if workers <= 1 or len(items) < MIN_ITEMS_FOR_POOL:
        return [fn(x) for x in items]
    with _span("compile.parallel_map", items=len(items), workers=workers):
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, items, chunksize=chunksize))
        except (pickle.PicklingError, BrokenProcessPool, OSError):
            return [fn(x) for x in items]


# ----------------------------------------------------------------------
# Batch compilation.
# ----------------------------------------------------------------------

def _compile_worker(payload):
    """Module-level so it pickles into pool workers."""
    circuit, options = payload
    from .driver import compile_circuit
    return compile_circuit(circuit, options)


def compile_many(circuits: Sequence[Circuit], options=None,
                 jobs: int | None = None):
    """Compile a batch of circuits concurrently; results in input order.

    The cache (when ``options.cache_dir`` is set) is probed in the parent
    so hits never cost a worker; misses compile in a process pool (one
    whole pipeline per worker, ``jobs=1`` inside to avoid nested pools)
    and are stored by the parent.  ``jobs=None`` defaults to
    ``options.jobs``.
    """
    from .cache import cache_from_options
    from .driver import CompilerOptions

    options = options or CompilerOptions()
    jobs = resolve_jobs(options.jobs if jobs is None else jobs)
    cache = cache_from_options(options)

    results: list = [None] * len(circuits)
    keys: dict[int, str] = {}
    miss_idx: list[int] = []
    for i, circuit in enumerate(circuits):
        if cache is not None:
            key = cache.key(circuit, options)
            keys[i] = key
            hit = cache.get(key)
            if hit is not None:
                hit.report.cache = cache.describe("hit", key)
                results[i] = hit
                continue
        miss_idx.append(i)

    # Workers run the plain pipeline: no nested pools, no cache I/O.
    worker_options = replace(options, jobs=1, cache_dir=None)
    compiled = parallel_map(
        _compile_worker,
        [(circuits[i], worker_options) for i in miss_idx],
        jobs,
    )
    for i, result in zip(miss_idx, compiled):
        if cache is not None:
            cache.put(keys[i], result)
            result.report.cache = cache.describe("miss", keys[i])
        results[i] = result
    return results
