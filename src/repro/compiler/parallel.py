"""Deterministic parallel fan-out for the compiler pipeline.

Two compiler phases are embarrassingly parallel across partitions:
per-process custom-function synthesis (:mod:`repro.compiler.custom`) and
per-core dependence/priority construction inside the list scheduler
(:mod:`repro.compiler.schedule`).  Both fan out over the **persistent**
worker pool (:mod:`repro.pool`) through :func:`parallel_map`, which
preserves input order so a ``jobs=N`` compile produces a
**bit-identical** ``MachineProgram`` to ``jobs=1`` (enforced by
``tests/test_parallel_compile.py`` and the CI determinism check).

The PR-2 incarnation forked a fresh ``ProcessPoolExecutor`` per phase
and was measurably *slower* than serial; the pool here spawns its
workers once per session and keeps their module state warm, so only
the argument chunks cross the pipes.

:func:`compile_many` is the batch entry point the benchmark harness
uses so figure sweeps compile their whole design set concurrently.
When the content-addressed cache (:mod:`repro.compiler.cache`) is
enabled, circuits are **spooled to disk** and workers return only the
cache *key* of the artifact they compiled and stored — the parent
rehydrates results from the cache, so no ``CompileResult`` is ever
pickled over a pipe.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import replace
from pathlib import Path
from typing import Callable, Iterable, Sequence, TypeVar

from ..netlist.ir import Circuit
from ..obs.trace import span as _span
from ..pool import PoolWorkerLost, get_pool

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items a pool is never worth its dispatch cost.
MIN_ITEMS_FOR_POOL = 2


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` knob: ``None``/``0`` mean serial, negative
    values mean one worker per CPU."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 jobs: int | None, chunksize: int = 1) -> list[R]:
    """``[fn(x) for x in items]``, fanned over the persistent pool.

    Results come back in input order regardless of completion order, so
    callers that apply them index-aligned stay deterministic.  Worker
    exceptions propagate to the caller with their original type;
    pool-infrastructure failures (a function the pool cannot dispatch
    by name, a worker that dies twice) silently fall back to the serial
    path, which either succeeds or reproduces the real error.
    """
    items = list(items)
    workers = min(resolve_jobs(jobs), len(items))
    if workers <= 1 or len(items) < MIN_ITEMS_FOR_POOL:
        return [fn(x) for x in items]
    with _span("compile.parallel_map", items=len(items), workers=workers):
        try:
            return get_pool(workers).map(fn, items)
        except (pickle.PicklingError, PoolWorkerLost, OSError):
            return [fn(x) for x in items]


# ----------------------------------------------------------------------
# Batch compilation.
# ----------------------------------------------------------------------

def _compile_worker(payload):
    """Module-level so the pool can dispatch it by name."""
    circuit, options = payload
    from .driver import compile_circuit
    return compile_circuit(circuit, options)


def _compile_spooled(spool_path: str) -> str:
    """Compile a spooled ``(circuit, options)`` file; the options carry
    ``cache_dir``, so the artifact lands in the content-addressed cache
    and only its **key** returns over the pipe."""
    with open(spool_path, "rb") as f:
        circuit, options = pickle.load(f)
    from .driver import compile_circuit
    result = compile_circuit(circuit, options)
    cache_info = result.report.cache
    if not cache_info:
        raise RuntimeError("spooled compile ran without a cache")
    return cache_info["key"]


def compile_many(circuits: Sequence[Circuit], options=None,
                 jobs: int | None = None):
    """Compile a batch of circuits concurrently; results in input order.

    The cache (when ``options.cache_dir`` is set) is probed in the
    parent so hits never cost a worker.  Misses are spooled to temp
    files; pool workers compile **and store** them (``jobs=1`` inside
    to avoid nested fan-out) and return cache keys, which the parent
    rehydrates — artifacts travel through the content-addressed store,
    not the pipes.  Without a cache the circuits are shipped pickled,
    as before.  ``jobs=None`` defaults to ``options.jobs``.
    """
    from .cache import cache_from_options
    from .driver import CompilerOptions

    options = options or CompilerOptions()
    jobs = resolve_jobs(options.jobs if jobs is None else jobs)
    cache = cache_from_options(options)

    results: list = [None] * len(circuits)
    keys: dict[int, str] = {}
    miss_idx: list[int] = []
    for i, circuit in enumerate(circuits):
        if cache is not None:
            key = cache.key(circuit, options)
            keys[i] = key
            hit = cache.get(key)
            if hit is not None:
                hit.report.cache = cache.describe("hit", key)
                results[i] = hit
                continue
        miss_idx.append(i)

    # Workers run the plain pipeline: no nested fan-out.
    worker_options = replace(options, jobs=1)
    if cache is None or len(miss_idx) < MIN_ITEMS_FOR_POOL or jobs <= 1:
        compiled = parallel_map(
            _compile_worker,
            [(circuits[i], replace(worker_options, cache_dir=None))
             for i in miss_idx],
            jobs,
        )
        for i, result in zip(miss_idx, compiled):
            if cache is not None:
                cache.put(keys[i], result)
                result.report.cache = cache.describe("miss", keys[i])
            results[i] = result
        return results

    with tempfile.TemporaryDirectory(prefix="repro-spool-") as spool:
        paths = []
        for i in miss_idx:
            path = Path(spool) / f"{i}.pkl"
            with open(path, "wb") as f:
                pickle.dump((circuits[i], worker_options), f,
                            protocol=pickle.HIGHEST_PROTOCOL)
            paths.append(str(path))
        with _span("compile.compile_many", misses=len(miss_idx),
                   workers=jobs):
            worker_keys = parallel_map(_compile_spooled, paths, jobs)
    for i, key in zip(miss_idx, worker_keys):
        result = None
        if isinstance(key, str):
            result = cache.get(key)
        if result is None:
            # Worker artifact vanished (eviction race, put failure):
            # recompile here rather than surface an infra error.
            result = _compile_worker(
                (circuits[i], replace(worker_options, cache_dir=None)))
            cache.put(keys[i], result)
        result.report.cache = cache.describe("miss", keys[i])
        results[i] = result
    return results
