"""Capture a running :class:`~repro.machine.grid.Machine` into a
snapshot payload, and reconstruct one that continues bit-identically.

The payload is self-contained: alongside the machine's dynamic state
(``Machine.checkpoint_state``) it embeds the bootloader binary of the
program and the full :class:`~repro.machine.config.MachineConfig`, both
of which define the *semantics* the state was captured under.  Restore
therefore needs nothing but the snapshot - and when the caller supplies
a freshly compiled program (the usual ``--resume`` path), its bootloader
fingerprint must match the snapshot's or the restore is refused: resuming
state under a different schedule would be silently wrong.

Bit-identity contract (enforced by ``tests/test_checkpoint_equivalence``
over all nine designs x three engines): an interrupted run restored from
its snapshot produces the same :class:`~repro.machine.grid.MachineResult`
- Vcycles, displays, every counter, cache statistics - and the same
per-core registers/scratchpads as the uninterrupted run, including runs
snapshotted *mid-Vcycle* with messages in flight.  A restored
``engine="fast"`` machine rebuilds its verified closures immediately
from the compiled program (no strict re-verification Vcycles) when the
snapshot recorded the fast path as trusted.
"""

from __future__ import annotations

import base64
import dataclasses

from ..machine.boot import deserialize, serialize
from ..machine.config import MachineConfig
from ..machine.grid import COMPILED_ENGINES, Machine
from ..netlist.serialize import blob_sha256
from .format import Snapshot, SnapshotError


def program_fingerprint(program) -> str:
    """Content fingerprint of a compiled program: sha256 of its
    bootloader stream (the canonical wire format)."""
    return blob_sha256(serialize(program))


def capture(machine: Machine) -> dict:
    """Snapshot payload for ``machine`` as it stands right now.

    Captures are legal at any Vcycle boundary on every engine, and
    additionally mid-Vcycle (``Machine.step_events``) on the checking
    engines - in-flight NoC messages, pending writebacks, and the
    half-populated link-reservation set are all part of the payload.

    The program's bootloader stream is immutable for the machine's
    lifetime, so its (relatively expensive) serialization and base64
    form are computed once per machine and reused by every subsequent
    capture - the periodic-checkpoint steady state pays only for the
    dynamic state.
    """
    cached = getattr(machine, "_ckpt_program_cache", None)
    if cached is None:
        stream = serialize(machine.program)
        cached = (base64.b64encode(stream).decode("ascii"),
                  blob_sha256(stream))
        machine._ckpt_program_cache = cached
    encoded, sha = cached
    return {
        "design": machine.program.name,
        "vcycle": machine.counters.vcycles,
        "engine": machine.engine,
        "program_sha256": sha,
        "program": encoded,
        "config": dataclasses.asdict(machine.config),
        "state": machine.checkpoint_state(),
    }


def restore(snapshot: Snapshot, program=None, config=None,
            engine: str | None = None, profiler=None,
            shards: int = 0, transport: str = "process") -> Machine:
    """Reconstruct a machine that continues the snapshotted run.

    ``program``/``config`` default to the embedded copies; passing
    either cross-checks it against the snapshot (bootloader fingerprint
    for the program, field equality for the config) and refuses on
    mismatch.  ``engine`` defaults to the engine the run used;
    overriding it is allowed - machine state is engine-independent - but
    mid-Vcycle snapshots can only continue on the checking engines.
    ``profiler`` (optional) is loaded with the snapshot's profiler
    counters when present, so a profile of the resumed run equals the
    single-run profile.

    ``shards=K`` resumes into a K-way
    :class:`~repro.machine.shard.ShardedMachine` instead - snapshots are
    standard single-process images either way, so a solo run's snapshot
    can continue sharded and vice versa.  Sharded resume requires a
    Vcycle-boundary snapshot.
    """
    payload = snapshot.payload
    if program is None:
        program = deserialize(base64.b64decode(payload["program"]))
    else:
        got = program_fingerprint(program)
        if got != payload["program_sha256"]:
            raise SnapshotError(
                f"snapshot was taken under program "
                f"{payload['program_sha256'][:12]} but the supplied "
                f"program is {got[:12]} (recompiled differently, or the "
                "wrong design)")
    saved_config = MachineConfig(**payload["config"])
    if config is None:
        config = saved_config
    elif dataclasses.asdict(config) != payload["config"]:
        raise SnapshotError(
            "snapshot was taken under a different MachineConfig "
            f"({saved_config} != {config})")
    engine = engine or payload["engine"]
    state = payload["state"]
    if state["event_pos"] and engine in COMPILED_ENGINES \
            and state["fastpath"]["trusted"]:
        raise SnapshotError(
            "snapshot is mid-Vcycle with a trusted compiled engine - "
            "impossible state (corrupt snapshot?)")
    if shards:
        if state["event_pos"]:
            raise SnapshotError(
                "snapshot is mid-Vcycle; sharded execution resumes only "
                "from Vcycle-boundary snapshots")
        from ..machine.shard import ShardedMachine
        machine = ShardedMachine(
            program, config, shards=shards, engine=engine,
            exception_stall=int(state["exception_stall"]),
            profiler=profiler, transport=transport)
    else:
        machine = Machine(program, config, engine=engine,
                          exception_stall=int(state["exception_stall"]),
                          profiler=profiler)
    machine.load_checkpoint_state(state)
    return machine
