"""The long-run driver: execute in chunks, snapshot, survive kills.

:func:`run_with_checkpoints` is what ``repro run`` (and the CI
kill-and-resume smoke job) sits on: it optionally resumes from the
newest valid snapshot in a :class:`~repro.checkpoint.store.CheckpointStore`,
steps the machine to completion or the Vcycle budget, and publishes a
snapshot every ``checkpoint_every`` completed Vcycles.  Because every
publish is atomic and every restore is fingerprint-checked, the driver
can be SIGKILLed at any instant and the next invocation continues from
the last published generation - producing results bit-identical to a
run that was never interrupted (``tests/test_checkpoint.py``).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..machine.grid import Machine, MachineResult
from .format import SnapshotError, encode_snapshot
from .state import capture, program_fingerprint, restore
from .store import CheckpointStore, RejectedSnapshot


class _AsyncPublisher:
    """Publishes captured payloads on a worker thread.

    ``capture`` must run synchronously (it reads live machine state),
    but its payload is detached plain data - so the expensive half of a
    save (canonical JSON, sha256, zlib, write, double fsync) overlaps
    the simulation instead of stalling it.  Ordering and durability are
    unchanged from synchronous publishing: snapshots go out in capture
    order, at most one is in flight (``submit`` applies backpressure),
    and a crash loses only work past the last *durable* snapshot -
    exactly as if the process had died just before a synchronous
    publish.  ``close`` drains the queue and re-raises any publish
    failure in the caller's thread.
    """

    def __init__(self, store: CheckpointStore) -> None:
        self._store = store
        self._queue: queue.Queue = queue.Queue(maxsize=1)
        self._published: list[Path] = []
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._loop, name="ckpt-publish", daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while True:
            payload = self._queue.get()
            if payload is None:
                return
            if self._error is not None:
                continue  # drain without publishing after a failure
            try:
                self._published.append(
                    self._store.publish(encode_snapshot(payload)))
            except BaseException as exc:  # re-raised from close()
                self._error = exc

    def submit(self, payload: dict) -> None:
        self._queue.put(payload)

    def close(self) -> list[Path]:
        self._queue.put(None)
        self._thread.join()
        if self._error is not None:
            raise self._error
        return self._published


@dataclass
class CheckpointedRun:
    """Everything one driver invocation did."""

    result: MachineResult
    machine: Machine
    #: Vcycle of the snapshot this run resumed from (None = fresh start).
    resumed_from: int | None = None
    resumed_path: Path | None = None
    #: snapshot files published by this invocation, in order.
    published: list[Path] = field(default_factory=list)
    #: snapshot files recovery refused, with reasons (torn, corrupt,
    #: wrong program, wrong config).
    rejected: list[RejectedSnapshot] = field(default_factory=list)
    #: True when the run stopped because ``preempt`` fired; the final
    #: published snapshot is the handoff point for the next invocation.
    preempted: bool = False


def run_with_checkpoints(
        program, max_vcycles: int, *,
        config=None, engine: str | None = None,
        exception_stall: int = 500, profiler=None,
        store: CheckpointStore | None = None,
        checkpoint_every: int = 0, resume: bool = False,
        shards: int = 0, transport: str = "process",
        on_start: Callable[[Machine, bool], None] | None = None,
        on_vcycle: Callable[[Machine], None] | None = None,
        preempt: Callable[[], bool] | None = None,
        preempt_grain: int = 0,
) -> CheckpointedRun:
    """Run ``program`` for up to ``max_vcycles``, checkpointing as it goes.

    With ``resume=True`` the driver first scans ``store`` for the newest
    snapshot that decodes cleanly and fingerprint-matches ``program``
    (and ``config``, if given); anything it refuses is reported in
    ``CheckpointedRun.rejected``.  ``checkpoint_every=K`` captures a
    snapshot after every K-th completed Vcycle; encoding and the
    fsync'd publish happen on a worker thread (:class:`_AsyncPublisher`)
    so the simulation only ever pays for capture.  All snapshots are
    durable by the time this function returns.  ``on_start`` fires once
    with ``(machine, resumed)`` before the first step - where waveform
    collectors bind to the machine; ``on_vcycle`` after every completed
    Vcycle - the hook tests and the CLI throttle use to make runs
    interruptible at known points.

    ``shards=K`` runs (and resumes) on a K-way
    :class:`~repro.machine.shard.ShardedMachine` over ``transport``
    instead of a single-process :class:`Machine`; the published
    snapshots stay standard single-process images, so sharded and solo
    invocations can resume each other's checkpoints.

    ``preempt`` (the :mod:`repro.serve` preemption hook) is polled while
    the run advances; when it returns True the driver stops, publishes a
    final handoff snapshot synchronously (so it is durable before the
    job is handed to another worker), and returns with ``preempted=True``.
    With ``preempt_grain=G > 0`` a machine on a *checking* engine is
    advanced ``G`` events at a time and the hook is polled between
    chunks, so a preemption can land mid-Vcycle - messages in flight,
    pending writebacks and all - and still resume bit-identically
    (mid-Vcycle snapshots are a PR-5 capability).  Trusted compiled
    engines execute Vcycles atomically, so they are polled at Vcycle
    boundaries regardless of the grain.
    """
    rejected: list[RejectedSnapshot] = []
    machine: Machine | None = None
    resumed_from: int | None = None
    resumed_path: Path | None = None

    if resume and store is not None:
        valid, rejected = store.scan(program_fingerprint(program))
        for path, snapshot in valid:
            try:
                machine = restore(snapshot, program=program,
                                  config=config, engine=engine,
                                  profiler=profiler, shards=shards,
                                  transport=transport)
            except SnapshotError as exc:
                rejected.append(RejectedSnapshot(path, str(exc)))
                continue
            resumed_from = snapshot.vcycle
            resumed_path = path
            break

    if machine is None:
        if shards:
            from ..machine.shard import ShardedMachine
            machine = ShardedMachine(
                program, config, shards=shards, engine=engine,
                exception_stall=exception_stall, profiler=profiler,
                transport=transport)
        else:
            machine = Machine(program, config, engine=engine,
                              exception_stall=exception_stall,
                              profiler=profiler)

    if on_start is not None:
        on_start(machine, resumed_from is not None)

    publisher: _AsyncPublisher | None = None
    preempted = False
    try:
        while not machine.finished \
                and machine.counters.vcycles < max_vcycles:
            if preempt is not None and preempt_grain > 0 \
                    and not getattr(machine, "_trusted", True):
                # Checking engine: advance event-by-event so the hook
                # can fire (and the snapshot land) mid-Vcycle.
                completed = machine.step_events(preempt_grain)
                while not completed:
                    if preempt():
                        preempted = True
                        break
                    completed = machine.step_events(preempt_grain)
                if not completed:
                    break
            else:
                if preempt is not None and preempt():
                    preempted = True
                    break
                machine.step_vcycle()
            if on_vcycle is not None:
                on_vcycle(machine)
            if store is not None and checkpoint_every > 0 \
                    and not machine.finished \
                    and machine.counters.vcycles % checkpoint_every == 0:
                if publisher is None:
                    publisher = _AsyncPublisher(store)
                publisher.submit(capture(machine))
    finally:
        published = publisher.close() if publisher is not None else []

    if preempted and store is not None:
        # Handoff snapshot: published synchronously - the caller may
        # hand the job to another worker the moment we return.
        published.append(store.publish(encode_snapshot(capture(machine))))

    return CheckpointedRun(
        result=machine.run(0),  # package a MachineResult, no stepping
        machine=machine,
        resumed_from=resumed_from,
        resumed_path=resumed_path,
        published=published,
        rejected=rejected,
        preempted=preempted,
    )
