"""Checkpoint/restore: deterministic snapshots and crash-safe resume.

The subsystem in three layers:

* :mod:`repro.checkpoint.format` - the versioned, fingerprint-checked
  snapshot wire format plus atomic (rename + fsync) publishing.
* :mod:`repro.checkpoint.state` - :func:`capture` a running
  :class:`~repro.machine.grid.Machine` (mid-Vcycle included, messages in
  flight and all) and :func:`restore` one that continues bit-identically
  on any engine.
* :mod:`repro.checkpoint.store` / :mod:`repro.checkpoint.driver` - a
  pruned directory of snapshot generations, and the long-run driver
  behind ``repro run --checkpoint-every K --resume``.

See ARCHITECTURE.md SS8 and ``docs/checkpoint.schema.json``.
"""

from .driver import CheckpointedRun, run_with_checkpoints
from .format import (
    FORMAT,
    MAGIC,
    Snapshot,
    SnapshotError,
    decode_snapshot,
    encode_snapshot,
    load_snapshot,
    read_header,
    write_atomic,
)
from .state import capture, program_fingerprint, restore
from .store import CheckpointStore, RejectedSnapshot

__all__ = [
    "FORMAT",
    "MAGIC",
    "CheckpointedRun",
    "CheckpointStore",
    "RejectedSnapshot",
    "Snapshot",
    "SnapshotError",
    "capture",
    "decode_snapshot",
    "encode_snapshot",
    "load_snapshot",
    "program_fingerprint",
    "read_header",
    "restore",
    "run_with_checkpoints",
    "write_atomic",
]
