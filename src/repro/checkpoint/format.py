"""The snapshot wire format: versioned, fingerprint-checked, atomic.

A snapshot file is::

    MAGIC (8 bytes)  b"RPROCKPT"
    header length    u32 little-endian
    header           canonical JSON (format version, Vcycle, engine,
                     design name, program/payload fingerprints, sizes)
    payload          canonical JSON (the machine state + embedded
                     program binary + MachineConfig)

Design rules, in order of importance:

* **Torn files are detectable, always.**  The payload's sha256 is in the
  header; a partially written, truncated, or bit-flipped file fails
  :func:`decode_snapshot` with a :class:`SnapshotError` instead of
  restoring silently-wrong state.  (Publishing is also atomic - see
  :func:`write_atomic` - so torn files only appear when something went
  *very* wrong; the format refuses them anyway.)
* **Snapshots are deterministic.**  Equal machine states encode to
  byte-identical files (canonical JSON, sorted collections, no
  timestamps), so "same run, same snapshot" is checkable with ``cmp``.
* **Snapshots are self-contained.**  The payload embeds the bootloader
  binary and the :class:`~repro.machine.config.MachineConfig`, so
  ``restore()`` needs no source files; a caller that *does* recompile
  gets a fingerprint cross-check for free.
* **Versioned.**  ``FORMAT`` participates in the header; decoding a
  snapshot from a different format version fails loudly.

``docs/checkpoint.schema.json`` documents the header and payload
structure; ``tests/test_checkpoint.py`` validates real snapshots
against it.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path

from ..netlist.serialize import blob_sha256, canonical_json

MAGIC = b"RPROCKPT"
FORMAT = "repro-checkpoint/v1"

#: Upper bound on a sane header, to reject garbage length fields fast.
_MAX_HEADER_BYTES = 1 << 20


class SnapshotError(ValueError):
    """A snapshot file is torn, corrupt, or from an unknown format."""


@dataclass(frozen=True)
class Snapshot:
    """A decoded, fingerprint-verified snapshot."""

    header: dict
    payload: dict

    @property
    def vcycle(self) -> int:
        return self.header["vcycle"]

    @property
    def engine(self) -> str:
        return self.header["engine"]

    @property
    def design(self) -> str:
        return self.header["design"]

    @property
    def program_sha256(self) -> str:
        return self.header["program_sha256"]


def encode_snapshot(payload: dict) -> bytes:
    """Encode a checkpoint payload (from ``checkpoint.state.capture``)
    into the snapshot wire format."""
    body = canonical_json(payload)
    header = {
        "format": FORMAT,
        "vcycle": payload["vcycle"],
        "engine": payload["engine"],
        "design": payload["design"],
        "program_sha256": payload["program_sha256"],
        "payload_sha256": blob_sha256(body),
        "payload_bytes": len(body),
    }
    head = canonical_json(header)
    return MAGIC + struct.pack("<I", len(head)) + head + body


def read_header(blob: bytes) -> dict:
    """Decode and sanity-check only the header (cheap scan path)."""
    if len(blob) < len(MAGIC) + 4 or blob[:len(MAGIC)] != MAGIC:
        raise SnapshotError("not a repro checkpoint (bad magic)")
    (head_len,) = struct.unpack_from("<I", blob, len(MAGIC))
    start = len(MAGIC) + 4
    if head_len > _MAX_HEADER_BYTES or len(blob) < start + head_len:
        raise SnapshotError("truncated checkpoint header")
    try:
        header = json.loads(blob[start:start + head_len])
    except ValueError as exc:
        raise SnapshotError(f"unreadable checkpoint header: {exc}") \
            from exc
    if header.get("format") != FORMAT:
        raise SnapshotError(
            f"unsupported checkpoint format {header.get('format')!r} "
            f"(expected {FORMAT!r})")
    return header


def decode_snapshot(blob: bytes) -> Snapshot:
    """Decode a snapshot, verifying the payload fingerprint."""
    header = read_header(blob)
    start = len(MAGIC) + 4 + struct.unpack_from("<I", blob, len(MAGIC))[0]
    body = blob[start:]
    if len(body) != header.get("payload_bytes"):
        raise SnapshotError(
            f"torn checkpoint: payload is {len(body)} bytes, header "
            f"promised {header.get('payload_bytes')}")
    digest = blob_sha256(body)
    if digest != header.get("payload_sha256"):
        raise SnapshotError(
            f"checkpoint fingerprint mismatch: payload hashes to "
            f"{digest[:12]}, header says "
            f"{str(header.get('payload_sha256'))[:12]}")
    try:
        payload = json.loads(body)
    except ValueError as exc:  # pragma: no cover - sha pinned the bytes
        raise SnapshotError(f"unreadable checkpoint payload: {exc}") \
            from exc
    return Snapshot(header=header, payload=payload)


def load_snapshot(path: str | os.PathLike) -> Snapshot:
    """Read + decode one snapshot file."""
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read {path}: {exc}") from exc
    return decode_snapshot(blob)


def write_atomic(path: str | os.PathLike, blob: bytes) -> None:
    """Crash-safe publish: write to a temp file in the target directory,
    fsync it, ``os.replace`` over the final name, then fsync the
    directory so the rename itself is durable.  A reader (or a process
    killed mid-write) only ever sees either the old file or the complete
    new one - never a torn snapshot."""
    path = Path(path)
    tmp = path.with_name(f".wip-{path.name}-{os.getpid()}")
    try:
        with open(tmp, "wb") as f:
            f.write(blob)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync (not supported on every platform)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
