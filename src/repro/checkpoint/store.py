"""On-disk snapshot directory: generation naming, pruning, recovery.

A :class:`CheckpointStore` owns one directory of ``ckpt-<vcycle>.ckpt``
files.  Publishing goes through :func:`~repro.checkpoint.format.write_atomic`
(rename + fsync), so a reader never observes a half-written generation;
recovery (:meth:`CheckpointStore.scan`) nevertheless re-verifies every
candidate file - magic, format version, payload fingerprint, and
optionally the program fingerprint - and reports what it discarded
instead of silently skipping, because the whole point of resume is
trusting the state you load.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from .format import Snapshot, SnapshotError, load_snapshot, read_header, \
    write_atomic

#: ``ckpt-<vcycle>.ckpt``, zero-padded so lexicographic == numeric order.
_NAME = "ckpt-{vcycle:012d}.ckpt"
_GLOB = "ckpt-*.ckpt"


@dataclass(frozen=True)
class RejectedSnapshot:
    """One snapshot file recovery refused, and the reason why."""

    path: Path
    reason: str

    def __str__(self) -> str:
        return f"{self.path.name}: {self.reason}"


class CheckpointStore:
    """A directory of snapshot generations with bounded retention.

    ``keep`` bounds how many generations survive a :meth:`prune`
    (newest first); 0 disables pruning.  Stale ``.wip-*`` temp files
    from a crashed writer are removed on prune as well.
    """

    def __init__(self, directory: str | os.PathLike,
                 keep: int = 3) -> None:
        self.directory = Path(directory)
        self.keep = int(keep)

    def path_for(self, vcycle: int) -> Path:
        return self.directory / _NAME.format(vcycle=int(vcycle))

    def snapshot_paths(self) -> list[Path]:
        """All snapshot files, oldest first (by filename = by Vcycle)."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob(_GLOB))

    # ------------------------------------------------------------------
    def publish(self, blob: bytes) -> Path:
        """Atomically publish one encoded snapshot under its generation
        name (taken from the header), then prune old generations."""
        header = read_header(blob)
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(header["vcycle"])
        write_atomic(path, blob)
        self.prune()
        return path

    def prune(self) -> list[Path]:
        """Drop generations beyond ``keep`` (oldest first) and stale
        temp files; returns what was removed."""
        removed: list[Path] = []
        if self.directory.is_dir():
            for tmp in self.directory.glob(".wip-ckpt-*"):
                try:
                    tmp.unlink()
                    removed.append(tmp)
                except OSError:
                    pass
        if self.keep <= 0:
            return removed
        paths = self.snapshot_paths()
        for path in paths[:max(0, len(paths) - self.keep)]:
            try:
                path.unlink()
                removed.append(path)
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    def scan(self, program_sha256: str | None = None) \
            -> tuple[list[tuple[Path, Snapshot]], list[RejectedSnapshot]]:
        """Decode every snapshot in the store, newest first.

        Returns ``(valid, rejected)``: torn, corrupt, wrong-format, and
        (when ``program_sha256`` is given) wrong-program files land in
        ``rejected`` with a human-readable reason rather than being
        silently ignored or - worse - restored.
        """
        valid: list[tuple[Path, Snapshot]] = []
        rejected: list[RejectedSnapshot] = []
        for path in reversed(self.snapshot_paths()):
            try:
                snapshot = load_snapshot(path)
            except SnapshotError as exc:
                rejected.append(RejectedSnapshot(path, str(exc)))
                continue
            if program_sha256 is not None \
                    and snapshot.program_sha256 != program_sha256:
                rejected.append(RejectedSnapshot(
                    path,
                    f"program fingerprint {snapshot.program_sha256[:12]} "
                    f"does not match the current program "
                    f"{program_sha256[:12]}"))
                continue
            valid.append((path, snapshot))
        return valid, rejected

    def latest(self, program_sha256: str | None = None) \
            -> tuple[Path, Snapshot] | None:
        """Newest snapshot that decodes and fingerprint-matches, or
        ``None`` when the store holds nothing usable."""
        valid, _ = self.scan(program_sha256)
        return valid[0] if valid else None
