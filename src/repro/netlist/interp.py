"""Reference cycle-accurate netlist interpreter (the golden model).

This is the semantic ground truth for the whole reproduction: the Manticore
compiler + machine model and the Verilator-like baseline are both validated
against it.  Evaluation follows full-cycle semantics (paper SS2.1):

1. evaluate every combinational op in topological order from register
   *current* values, inputs, and memory contents,
2. fire effects (``$display`` text is collected, assertions checked,
   ``$finish`` latches termination),
3. commit register next values and memory writes simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .ir import (
    AssertEffect,
    Circuit,
    CircuitError,
    Display,
    Finish,
    Op,
    evaluate_op,
    mask,
    topological_order,
)


class SimulationAssertionError(AssertionError):
    """An :class:`AssertEffect` fired with a false condition."""


def format_display(fmt: str, values: Sequence[int]) -> str:
    """Render a Verilog-style format string (%d, %x, %b, %0d, %%)."""
    out: list[str] = []
    it = iter(values)
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        spec = ""
        while i < len(fmt) and fmt[i] in "0123456789":
            spec += fmt[i]
            i += 1
        if i >= len(fmt):
            raise CircuitError(f"dangling % in format {fmt!r}")
        conv = fmt[i]
        i += 1
        if conv == "%":
            out.append("%")
            continue
        value = next(it)
        if conv == "d":
            out.append(str(value))
        elif conv == "x":
            out.append(format(value, "x"))
        elif conv == "b":
            out.append(format(value, "b"))
        elif conv == "c":
            out.append(chr(value & 0xFF))
        else:
            raise CircuitError(f"unsupported format %{conv} in {fmt!r}")
    return "".join(out)


@dataclass
class SimulationResult:
    """Outcome of :meth:`NetlistInterpreter.run`."""

    cycles: int
    finished: bool
    displays: list[str] = field(default_factory=list)


InputProvider = Callable[[int], Mapping[str, int]]


class NetlistInterpreter:
    """Executes a :class:`Circuit` cycle by cycle.

    ``inputs`` maps cycle number -> {input name: value}; a callable can be
    supplied for stimulus generators.  Missing inputs default to 0.
    """

    def __init__(self, circuit: Circuit,
                 inputs: InputProvider | None = None) -> None:
        circuit.validate()
        self.circuit = circuit
        self.inputs = inputs or (lambda _cycle: {})
        self.order: list[Op] = topological_order(circuit)
        self.registers: dict[str, int] = {
            name: reg.init for name, reg in circuit.registers.items()
        }
        self.memories: dict[str, list[int]] = {}
        for name, memory in circuit.memories.items():
            contents = [0] * memory.depth
            for i, v in enumerate(memory.init):
                contents[i] = v & mask(memory.width)
            self.memories[name] = contents
        self.cycle = 0
        self.finished = False
        self.displays: list[str] = []
        #: Wire values from the most recent cycle (for probing in tests).
        self.trace: dict[str, int] = {}

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Simulate one clock cycle."""
        if self.finished:
            return
        circuit = self.circuit
        values: dict[str, int] = dict(self.registers)
        provided = self.inputs(self.cycle)
        for name, wire in circuit.inputs.items():
            values[name] = provided.get(name, 0) & mask(wire.width)

        for op in self.order:
            values[op.result.name] = evaluate_op(op, values, self.memories)

        # Effects observe pre-commit (current-cycle) values.
        for eff in circuit.effects:
            if not values[eff.enable.name]:
                continue
            if isinstance(eff, Display):
                self.displays.append(format_display(
                    eff.fmt, [values[a.name] for a in eff.args]
                ))
            elif isinstance(eff, AssertEffect):
                if not values[eff.cond.name]:
                    raise SimulationAssertionError(
                        f"cycle {self.cycle}: {eff.message}"
                    )
            elif isinstance(eff, Finish):
                self.finished = True

        # Commit state: registers first read their next wires, then
        # memories apply writes (all from pre-commit values).
        next_regs = {
            name: values[reg.next_value.name] & mask(reg.width)
            for name, reg in circuit.registers.items()
        }
        for name, memory in circuit.memories.items():
            contents = self.memories[name]
            for wr in memory.writes:
                if values[wr.enable.name]:
                    addr = values[wr.addr.name] % memory.depth
                    contents[addr] = values[wr.data.name] & mask(memory.width)
        self.registers = next_regs
        self.trace = values
        self.cycle += 1

    def run(self, max_cycles: int) -> SimulationResult:
        """Run until ``$finish`` or ``max_cycles``."""
        while not self.finished and self.cycle < max_cycles:
            self.step()
        return SimulationResult(self.cycle, self.finished,
                                list(self.displays))

    # ------------------------------------------------------------------
    def peek_register(self, name: str) -> int:
        return self.registers[name]

    def peek_memory(self, name: str, addr: int) -> int:
        return self.memories[name][addr]

    def peek_output(self, name: str) -> int:
        """Value of a named output on the most recent cycle."""
        wire = self.circuit.outputs[name]
        return self.trace[wire.name]


def run_circuit(circuit: Circuit, max_cycles: int,
                inputs: InputProvider | None = None) -> SimulationResult:
    """One-shot helper: build an interpreter and run it."""
    return NetlistInterpreter(circuit, inputs).run(max_cycles)
