"""Reference cycle-accurate netlist interpreter (the golden model).

This is the semantic ground truth for the whole reproduction: the Manticore
compiler + machine model and the Verilator-like baseline are both validated
against it.  Evaluation follows full-cycle semantics (paper SS2.1):

1. evaluate every combinational op in topological order from register
   *current* values, inputs, and memory contents,
2. fire effects (``$display`` text is collected, assertions checked,
   ``$finish`` latches termination),
3. commit register next values and memory writes simultaneously.

Two engines share these semantics (mirroring the machine model's
strict/fast split): ``engine="strict"`` dispatches through
:func:`~repro.netlist.ir.evaluate_op` on every op, every cycle - the
reference; ``engine="fast"`` precompiles the topological order into
per-op closures (kind dispatch, argument names, masks, and memory
backings resolved once), used by the Verilator-like baseline for honest
wall-clock numbers.  Results are identical by construction and enforced
by ``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .ir import (
    AssertEffect,
    Circuit,
    CircuitError,
    Display,
    Finish,
    Op,
    OpKind,
    evaluate_op,
    mask,
    to_signed,
    topological_order,
)


class SimulationAssertionError(AssertionError):
    """An :class:`AssertEffect` fired with a false condition."""


def format_display(fmt: str, values: Sequence[int]) -> str:
    """Render a Verilog-style format string (%d, %x, %b, %0d, %%)."""
    out: list[str] = []
    it = iter(values)
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        spec = ""
        while i < len(fmt) and fmt[i] in "0123456789":
            spec += fmt[i]
            i += 1
        if i >= len(fmt):
            raise CircuitError(f"dangling % in format {fmt!r}")
        conv = fmt[i]
        i += 1
        if conv == "%":
            out.append("%")
            continue
        value = next(it)
        if conv == "d":
            out.append(str(value))
        elif conv == "x":
            out.append(format(value, "x"))
        elif conv == "b":
            out.append(format(value, "b"))
        elif conv == "c":
            out.append(chr(value & 0xFF))
        else:
            raise CircuitError(f"unsupported format %{conv} in {fmt!r}")
    return "".join(out)


@dataclass
class SimulationResult:
    """Outcome of :meth:`NetlistInterpreter.run`."""

    cycles: int
    finished: bool
    displays: list[str] = field(default_factory=list)


InputProvider = Callable[[int], Mapping[str, int]]


def compile_op(op: Op, values: dict, memories: Mapping[str, list[int]]):
    """Specialize one op into a zero-argument thunk over ``values``.

    The returned closure has the kind dispatch, argument wire names,
    result mask, and (for ``MEMRD``) the backing memory list resolved
    once; running it is exactly ``values[op.result.name] =
    evaluate_op(op, values, memories)``.
    """
    kind = op.kind
    out = op.result.name
    m = mask(op.result.width)
    if kind is OpKind.CONST:
        v = op.value & m
        return lambda: values.__setitem__(out, v)
    a = op.args[0].name if op.args else None
    if kind is OpKind.NOT:
        return lambda: values.__setitem__(out, ~values[a] & m)
    if kind is OpKind.SLICE:
        off = op.offset
        return lambda: values.__setitem__(out, (values[a] >> off) & m)
    if kind is OpKind.MEMRD:
        contents = memories[op.memory]
        n = len(contents)
        return lambda: values.__setitem__(out, contents[values[a] % n])
    if kind is OpKind.REDOR:
        return lambda: values.__setitem__(out, 1 if values[a] != 0 else 0)
    if kind is OpKind.REDAND:
        am = mask(op.args[0].width)
        return lambda: values.__setitem__(out, 1 if values[a] == am else 0)
    if kind is OpKind.REDXOR:
        return lambda: values.__setitem__(out, bin(values[a]).count("1") & 1)
    if kind is OpKind.CONCAT:
        parts = []
        shift = 0
        for arg in op.args:  # args listed LSB-first
            parts.append((arg.name, mask(arg.width), shift))
            shift += arg.width

        def _concat():
            acc = 0
            for name, pm, sh in parts:
                acc |= (values[name] & pm) << sh
            values[out] = acc & m

        return _concat
    b = op.args[1].name
    if kind is OpKind.AND:
        return lambda: values.__setitem__(out, (values[a] & values[b]) & m)
    if kind is OpKind.OR:
        return lambda: values.__setitem__(out, (values[a] | values[b]) & m)
    if kind is OpKind.XOR:
        return lambda: values.__setitem__(out, (values[a] ^ values[b]) & m)
    if kind is OpKind.ADD:
        return lambda: values.__setitem__(out, (values[a] + values[b]) & m)
    if kind is OpKind.SUB:
        return lambda: values.__setitem__(out, (values[a] - values[b]) & m)
    if kind is OpKind.MUL:
        return lambda: values.__setitem__(out, (values[a] * values[b]) & m)
    if kind is OpKind.EQ:
        return lambda: values.__setitem__(
            out, 1 if values[a] == values[b] else 0)
    if kind is OpKind.NE:
        return lambda: values.__setitem__(
            out, 1 if values[a] != values[b] else 0)
    if kind is OpKind.LTU:
        return lambda: values.__setitem__(
            out, 1 if values[a] < values[b] else 0)
    if kind is OpKind.LTS:
        wa, wb = op.args[0].width, op.args[1].width
        return lambda: values.__setitem__(
            out, 1 if to_signed(values[a], wa) < to_signed(values[b], wb)
            else 0)
    if kind is OpKind.SHL:
        w = op.result.width
        return lambda: values.__setitem__(
            out, (values[a] << min(values[b], w)) & m)
    if kind is OpKind.LSHR:
        wa = op.args[0].width
        return lambda: values.__setitem__(
            out, values[a] >> min(values[b], wa))
    if kind is OpKind.ASHR:
        wa = op.args[0].width
        return lambda: values.__setitem__(
            out, (to_signed(values[a], wa) >> min(values[b], wa)) & m)
    if kind is OpKind.MUX:
        c = op.args[2].name
        return lambda: values.__setitem__(
            out, (values[c] if values[a] else values[b]) & m)
    # Unknown kinds keep reference semantics (and reference errors).
    return lambda: values.__setitem__(out, evaluate_op(op, values, memories))


class NetlistInterpreter:
    """Executes a :class:`Circuit` cycle by cycle.

    ``inputs`` maps cycle number -> {input name: value}; a callable can be
    supplied for stimulus generators.  Missing inputs default to 0.
    ``engine="fast"`` swaps the per-op ``evaluate_op`` dispatch for
    precompiled thunks (identical results, several times faster).
    """

    def __init__(self, circuit: Circuit,
                 inputs: InputProvider | None = None,
                 engine: str = "strict") -> None:
        circuit.validate()
        if engine not in ("strict", "fast"):
            raise ValueError(f"unknown engine {engine!r}")
        self.circuit = circuit
        self.inputs = inputs or (lambda _cycle: {})
        self.engine = engine
        self.order: list[Op] = topological_order(circuit)
        self.registers: dict[str, int] = {
            name: reg.init for name, reg in circuit.registers.items()
        }
        self.memories: dict[str, list[int]] = {}
        for name, memory in circuit.memories.items():
            contents = [0] * memory.depth
            for i, v in enumerate(memory.init):
                contents[i] = v & mask(memory.width)
            self.memories[name] = contents
        self.cycle = 0
        self.finished = False
        self.displays: list[str] = []
        #: Wire values from the most recent cycle (for probing in tests).
        self.trace: dict[str, int] = {}
        if engine == "fast":
            # Persistent value dict shared by every thunk; fully
            # overwritten each cycle (registers + inputs + every op).
            self._values: dict[str, int] = {}
            self._thunks = [
                compile_op(op, self._values, self.memories)
                for op in self.order
            ]
        else:
            self._thunks = None

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Simulate one clock cycle."""
        if self.finished:
            return
        circuit = self.circuit
        provided = self.inputs(self.cycle)
        if self._thunks is None:
            values: dict[str, int] = dict(self.registers)
            for name, wire in circuit.inputs.items():
                values[name] = provided.get(name, 0) & mask(wire.width)
            for op in self.order:
                values[op.result.name] = evaluate_op(op, values,
                                                     self.memories)
        else:
            values = self._values
            values.update(self.registers)
            for name, wire in circuit.inputs.items():
                values[name] = provided.get(name, 0) & mask(wire.width)
            for fn in self._thunks:
                fn()

        # Effects observe pre-commit (current-cycle) values.
        for eff in circuit.effects:
            if not values[eff.enable.name]:
                continue
            if isinstance(eff, Display):
                self.displays.append(format_display(
                    eff.fmt, [values[a.name] for a in eff.args]
                ))
            elif isinstance(eff, AssertEffect):
                if not values[eff.cond.name]:
                    raise SimulationAssertionError(
                        f"cycle {self.cycle}: {eff.message}"
                    )
            elif isinstance(eff, Finish):
                self.finished = True

        # Commit state: registers first read their next wires, then
        # memories apply writes (all from pre-commit values).
        next_regs = {
            name: values[reg.next_value.name] & mask(reg.width)
            for name, reg in circuit.registers.items()
        }
        for name, memory in circuit.memories.items():
            contents = self.memories[name]
            for wr in memory.writes:
                if values[wr.enable.name]:
                    addr = values[wr.addr.name] % memory.depth
                    contents[addr] = values[wr.data.name] & mask(memory.width)
        self.registers = next_regs
        self.trace = values
        self.cycle += 1

    def run(self, max_cycles: int) -> SimulationResult:
        """Run until ``$finish`` or ``max_cycles``."""
        while not self.finished and self.cycle < max_cycles:
            self.step()
        return SimulationResult(self.cycle, self.finished,
                                list(self.displays))

    # ------------------------------------------------------------------
    def peek_register(self, name: str) -> int:
        return self.registers[name]

    def peek_memory(self, name: str, addr: int) -> int:
        return self.memories[name][addr]

    def peek_output(self, name: str) -> int:
        """Value of a named output on the most recent cycle."""
        wire = self.circuit.outputs[name]
        return self.trace[wire.name]


def run_circuit(circuit: Circuit, max_cycles: int,
                inputs: InputProvider | None = None) -> SimulationResult:
    """One-shot helper: build an interpreter and run it."""
    return NetlistInterpreter(circuit, inputs).run(max_cycles)
