"""Word-level netlist intermediate representation ("netlist assembly").

This is the abstraction the Manticore paper's Yosys-derived frontend emits:
an *unordered*, static-single-assignment, word-level instruction list over
arbitrary-width values (paper SS6).  A :class:`Circuit` holds:

* combinational operations (:class:`Op`), each defining exactly one wire,
* state elements (:class:`Register`, :class:`Memory`),
* side effects (:class:`Display`, :class:`Finish`, :class:`AssertEffect`)
  guarded by enable wires.

Every wire carries an explicit bit width and evaluates to a non-negative
Python integer masked to that width.  Signedness is a property of the
*operation* (``LTS``, ``ASHR``), not the wire, mirroring netlist semantics
after type elaboration.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence


class OpKind(str, Enum):
    """Word-level operation kinds available in netlist assembly."""

    CONST = "CONST"
    AND = "AND"
    OR = "OR"
    XOR = "XOR"
    NOT = "NOT"
    ADD = "ADD"
    SUB = "SUB"
    MUL = "MUL"
    EQ = "EQ"
    NE = "NE"
    LTU = "LTU"
    LTS = "LTS"
    SHL = "SHL"
    LSHR = "LSHR"
    ASHR = "ASHR"
    MUX = "MUX"
    CONCAT = "CONCAT"
    SLICE = "SLICE"
    MEMRD = "MEMRD"
    REDOR = "REDOR"
    REDAND = "REDAND"
    REDXOR = "REDXOR"


#: Operation kinds whose lowering is pure bitwise logic; these are the
#: candidates for Manticore custom-function fusion (paper SS6.2).
BITWISE_KINDS = frozenset({OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT})

#: Operation kinds with two's-complement signed interpretation.
SIGNED_KINDS = frozenset({OpKind.LTS, OpKind.ASHR})


def mask(width: int) -> int:
    """All-ones mask for ``width`` bits."""
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    """Interpret ``value`` (masked to ``width``) as two's complement."""
    value &= mask(width)
    if value >> (width - 1):
        return value - (1 << width)
    return value


@dataclass(frozen=True)
class Wire:
    """An SSA value: a named bundle of ``width`` bits."""

    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"wire {self.name!r} must have positive width")

    def __repr__(self) -> str:  # compact for dumps
        return f"{self.name}:{self.width}"


@dataclass(frozen=True)
class Op:
    """A single netlist-assembly instruction defining ``result``.

    ``attrs`` carries kind-specific immediates:

    * ``CONST``: ``value`` (int)
    * ``SLICE``: ``offset`` (int) - result width gives the length
    * ``MEMRD``: ``memory`` (str) - combinational read of current contents
    """

    result: Wire
    kind: OpKind
    args: tuple[Wire, ...] = ()
    attrs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_op_shape(self)

    @property
    def value(self) -> int:
        """Immediate of a CONST op."""
        return int(self.attrs["value"])  # type: ignore[arg-type]

    @property
    def offset(self) -> int:
        """Bit offset of a SLICE op."""
        return int(self.attrs["offset"])  # type: ignore[arg-type]

    @property
    def memory(self) -> str:
        """Memory name of a MEMRD op."""
        return str(self.attrs["memory"])

    def __repr__(self) -> str:
        extra = f" {dict(self.attrs)}" if self.attrs else ""
        args = ", ".join(a.name for a in self.args)
        return f"{self.result!r} = {self.kind.value}({args}){extra}"


_ARITY = {
    OpKind.CONST: 0,
    OpKind.NOT: 1,
    OpKind.SLICE: 1,
    OpKind.MEMRD: 1,
    OpKind.REDOR: 1,
    OpKind.REDAND: 1,
    OpKind.REDXOR: 1,
    OpKind.MUX: 3,
}


def _check_op_shape(op: Op) -> None:
    expected = _ARITY.get(op.kind, 2)
    if op.kind is OpKind.CONCAT:
        if len(op.args) < 1:
            raise ValueError("CONCAT needs at least one argument")
        if sum(a.width for a in op.args) != op.result.width:
            raise ValueError(
                f"CONCAT width mismatch: {op.result!r} vs args {op.args}"
            )
        return
    if len(op.args) != expected:
        raise ValueError(
            f"{op.kind.value} expects {expected} args, got {len(op.args)}"
        )
    if op.kind is OpKind.CONST and op.value < 0:
        raise ValueError("CONST value must be non-negative (pre-masked)")
    if op.kind is OpKind.SLICE:
        lo = op.offset
        if lo < 0 or lo + op.result.width > op.args[0].width:
            raise ValueError(
                f"SLICE [{lo}+:{op.result.width}] out of range of "
                f"{op.args[0]!r}"
            )
    if op.kind in (OpKind.EQ, OpKind.NE, OpKind.LTU, OpKind.LTS,
                   OpKind.REDOR, OpKind.REDAND, OpKind.REDXOR):
        if op.result.width != 1:
            raise ValueError(f"{op.kind.value} result must be 1 bit wide")
    if op.kind is OpKind.MUX:
        if op.args[0].width != 1:
            raise ValueError("MUX select must be 1 bit wide")
        if op.args[1].width != op.args[2].width != op.result.width:
            raise ValueError("MUX operand widths must match result")


@dataclass
class Register:
    """A state element: ``current`` is readable, ``next_value`` drives it.

    At the end of every simulated cycle, ``current`` takes the value of the
    wire bound to ``next_value`` - the +/- split of Fig. 1 in the paper.
    """

    name: str
    width: int
    init: int = 0
    next_value: Wire | None = None

    @property
    def current(self) -> Wire:
        return Wire(self.name, self.width)


@dataclass
class MemWrite:
    """A predicated synchronous write port commit (end of cycle)."""

    addr: Wire
    data: Wire
    enable: Wire


@dataclass
class Memory:
    """An unpacked array (RTL memory) with combinational reads and
    end-of-cycle writes.  ``global_hint`` forces placement in off-chip DRAM
    behind the privileged core (paper SS7.7 microbenchmarks)."""

    name: str
    width: int
    depth: int
    init: Sequence[int] = ()
    writes: list[MemWrite] = field(default_factory=list)
    global_hint: bool = False
    #: pin to SRAM (scratchpad): exempt from memory-to-register
    #: conversion, like a (* ram_style = "block" *) attribute.
    sram_hint: bool = False

    @property
    def bits(self) -> int:
        return self.width * self.depth


@dataclass
class Display:
    """``$display(fmt, *args)`` guarded by ``enable`` - serviced by host."""

    enable: Wire
    fmt: str
    args: tuple[Wire, ...] = ()


@dataclass
class Finish:
    """``$finish`` guarded by ``enable`` - terminates the simulation."""

    enable: Wire


@dataclass
class AssertEffect:
    """Raises a simulation failure when ``enable`` is high and ``cond`` is
    low - the assertion-based test drivers wrapping each benchmark."""

    enable: Wire
    cond: Wire
    message: str = "assertion failed"


Effect = Display | Finish | AssertEffect


class CircuitError(Exception):
    """Raised for malformed circuits (unknown wires, multiple drivers...)."""


@dataclass
class Circuit:
    """A complete single-clock netlist in SSA netlist-assembly form."""

    name: str
    ops: list[Op] = field(default_factory=list)
    registers: dict[str, Register] = field(default_factory=dict)
    memories: dict[str, Memory] = field(default_factory=dict)
    inputs: dict[str, Wire] = field(default_factory=dict)
    outputs: dict[str, Wire] = field(default_factory=dict)
    effects: list[Effect] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Introspection helpers used throughout the compiler.
    # ------------------------------------------------------------------
    def producers(self) -> dict[str, Op]:
        """Map wire name -> defining op (SSA invariant: exactly one)."""
        out: dict[str, Op] = {}
        for op in self.ops:
            if op.result.name in out:
                raise CircuitError(f"multiple drivers for {op.result.name}")
            out[op.result.name] = op
        return out

    def wire_widths(self) -> dict[str, int]:
        widths = {op.result.name: op.result.width for op in self.ops}
        for reg in self.registers.values():
            widths[reg.name] = reg.width
        for name, wire in self.inputs.items():
            widths[name] = wire.width
        return widths

    def effect_wires(self) -> list[Wire]:
        wires: list[Wire] = []
        for eff in self.effects:
            wires.append(eff.enable)
            if isinstance(eff, Display):
                wires.extend(eff.args)
            elif isinstance(eff, AssertEffect):
                wires.append(eff.cond)
        return wires

    def sink_wires(self) -> list[Wire]:
        """All wires that must be computed every cycle: register next
        values, memory write operands, effect operands, outputs."""
        sinks: list[Wire] = []
        for reg in self.registers.values():
            if reg.next_value is not None:
                sinks.append(reg.next_value)
        for memory in self.memories.values():
            for wr in memory.writes:
                sinks.extend((wr.addr, wr.data, wr.enable))
        sinks.extend(self.effect_wires())
        sinks.extend(self.outputs.values())
        return sinks

    def validate(self) -> None:
        """Check SSA form, driver existence, and width consistency."""
        produced = set(self.producers())
        known = produced | set(self.inputs) | set(self.registers)
        widths = self.wire_widths()
        for op in self.ops:
            for arg in op.args:
                if arg.name not in known:
                    raise CircuitError(
                        f"op {op!r} reads undriven wire {arg.name!r}"
                    )
                if widths[arg.name] != arg.width:
                    raise CircuitError(
                        f"width mismatch on {arg.name!r}: declared "
                        f"{widths[arg.name]}, used as {arg.width}"
                    )
            if op.kind is OpKind.MEMRD and op.memory not in self.memories:
                raise CircuitError(f"MEMRD of unknown memory {op.memory!r}")
        for sink in self.sink_wires():
            if sink.name not in known:
                raise CircuitError(f"sink reads undriven wire {sink.name!r}")
        for reg in self.registers.values():
            if reg.next_value is not None and reg.next_value.width != reg.width:
                raise CircuitError(
                    f"register {reg.name!r} next width mismatch"
                )
        for memory in self.memories.values():
            for wr in memory.writes:
                if wr.data.width != memory.width:
                    raise CircuitError(
                        f"memory {memory.name!r} write data width mismatch"
                    )
                if wr.enable.width != 1:
                    raise CircuitError(
                        f"memory {memory.name!r} write enable must be 1 bit"
                    )

    def fingerprint(self) -> str:
        """Deterministic structural digest of the circuit (hex sha256).

        Two circuits with the same name, state elements, effects, and op
        *set* fingerprint identically regardless of the order ops were
        inserted (ops are an unordered SSA set); the digest is stable
        across process restarts (no reliance on Python ``hash``).  It is
        the circuit half of the compile-cache key
        (:mod:`repro.compiler.cache`).

        The fingerprint is sensitive to wire names: alpha-renamed but
        structurally identical circuits hash differently.  Effect order
        is significant (it fixes ``$display`` interleaving), as is memory
        write-port order (later ports win write conflicts).
        """
        h = hashlib.sha256()
        h.update(b"circuit/v1\0")
        h.update(self.name.encode())
        h.update(b"\0ops\0")
        for digest in sorted(_op_digest(op) for op in self.ops):
            h.update(digest)
        h.update(b"\0regs\0")
        for name in sorted(self.registers):
            reg = self.registers[name]
            nxt = ("" if reg.next_value is None
                   else f"{reg.next_value.name}:{reg.next_value.width}")
            h.update(f"{name}|{reg.width}|{reg.init}|{nxt}\0".encode())
        h.update(b"\0mems\0")
        for name in sorted(self.memories):
            mem = self.memories[name]
            h.update(f"{name}|{mem.width}|{mem.depth}|"
                     f"{mem.global_hint:d}{mem.sram_hint:d}\0".encode())
            h.update(repr(tuple(mem.init)).encode())
            for wr in mem.writes:  # port order is semantic
                h.update(f"|{wr.addr!r},{wr.data!r},{wr.enable!r}".encode())
            h.update(b"\0")
        h.update(b"\0io\0")
        for name in sorted(self.inputs):
            h.update(f"i{name}:{self.inputs[name].width}\0".encode())
        for name in sorted(self.outputs):
            h.update(f"o{name}:{self.outputs[name].width}\0".encode())
        h.update(b"\0effects\0")
        for eff in self.effects:  # order fixes host-service interleaving
            if isinstance(eff, Display):
                h.update(f"D|{eff.enable!r}|{eff.fmt}|"
                         f"{','.join(map(repr, eff.args))}\0".encode())
            elif isinstance(eff, Finish):
                h.update(f"F|{eff.enable!r}\0".encode())
            else:
                h.update(f"A|{eff.enable!r}|{eff.cond!r}|"
                         f"{eff.message}\0".encode())
        return h.hexdigest()

    def stats(self) -> dict[str, int]:
        """Cheap size statistics used by reports and benchmarks."""
        return {
            "ops": len(self.ops),
            "registers": len(self.registers),
            "state_bits": sum(r.width for r in self.registers.values()),
            "memories": len(self.memories),
            "memory_bits": sum(m.bits for m in self.memories.values()),
            "effects": len(self.effects),
        }


def _op_digest(op: Op) -> bytes:
    """Canonical byte string of one op for :meth:`Circuit.fingerprint`."""
    attrs = ",".join(f"{k}={op.attrs[k]!r}" for k in sorted(op.attrs))
    args = ",".join(f"{a.name}:{a.width}" for a in op.args)
    text = (f"{op.result.name}:{op.result.width}={op.kind.value}"
            f"({args})[{attrs}]")
    return hashlib.sha256(text.encode()).digest()


def topological_order(circuit: Circuit) -> list[Op]:
    """Order combinational ops so every op follows its producers.

    Register *current* values and inputs are graph sources.  Raises
    :class:`CircuitError` on combinational cycles.
    """
    producers = circuit.producers()
    order: list[Op] = []
    state: dict[str, int] = {}  # 0 visiting, 1 done

    for root in [op.result.name for op in circuit.ops]:
        stack = [(root, False)]
        while stack:
            name, expanded = stack.pop()
            if state.get(name) == 1:
                continue
            if expanded:
                state[name] = 1
                order.append(producers[name])
                continue
            if state.get(name) == 0:
                raise CircuitError(f"combinational cycle through {name!r}")
            if name not in producers:  # input or register current value
                state[name] = 1
                continue
            state[name] = 0
            stack.append((name, True))
            for arg in producers[name].args:
                if state.get(arg.name) != 1:
                    stack.append((arg.name, False))
    return order


def evaluate_op(op: Op, values: Mapping[str, int],
                memories: Mapping[str, Sequence[int]] | None = None) -> int:
    """Evaluate one op given argument ``values`` (reference semantics)."""
    kind = op.kind
    w = op.result.width
    if kind is OpKind.CONST:
        return op.value & mask(w)
    a = values[op.args[0].name] if op.args else 0
    if kind is OpKind.NOT:
        return (~a) & mask(w)
    if kind is OpKind.SLICE:
        return (a >> op.offset) & mask(w)
    if kind is OpKind.MEMRD:
        if memories is None:
            raise CircuitError("MEMRD evaluated without memory context")
        contents = memories[op.memory]
        return contents[a % len(contents)]
    if kind is OpKind.REDOR:
        return 1 if a != 0 else 0
    if kind is OpKind.REDAND:
        return 1 if a == mask(op.args[0].width) else 0
    if kind is OpKind.REDXOR:
        return bin(a).count("1") & 1
    if kind is OpKind.CONCAT:
        acc = 0
        shift = 0
        for arg in op.args:  # args listed LSB-first
            acc |= (values[arg.name] & mask(arg.width)) << shift
            shift += arg.width
        return acc & mask(w)
    b = values[op.args[1].name]
    if kind is OpKind.AND:
        return (a & b) & mask(w)
    if kind is OpKind.OR:
        return (a | b) & mask(w)
    if kind is OpKind.XOR:
        return (a ^ b) & mask(w)
    if kind is OpKind.ADD:
        return (a + b) & mask(w)
    if kind is OpKind.SUB:
        return (a - b) & mask(w)
    if kind is OpKind.MUL:
        return (a * b) & mask(w)
    if kind is OpKind.EQ:
        return 1 if a == b else 0
    if kind is OpKind.NE:
        return 1 if a != b else 0
    if kind is OpKind.LTU:
        return 1 if a < b else 0
    if kind is OpKind.LTS:
        wa, wb = op.args[0].width, op.args[1].width
        return 1 if to_signed(a, wa) < to_signed(b, wb) else 0
    if kind is OpKind.SHL:
        return (a << min(b, w)) & mask(w)
    if kind is OpKind.LSHR:
        return (a >> min(b, op.args[0].width)) & mask(w)
    if kind is OpKind.ASHR:
        wa = op.args[0].width
        return (to_signed(a, wa) >> min(b, wa)) & mask(w)
    if kind is OpKind.MUX:
        sel = values[op.args[0].name]
        c = values[op.args[2].name]
        return (c if sel else b) & mask(w)
    raise CircuitError(f"cannot evaluate {kind}")
