"""JSON-friendly (de)serialization of netlist circuits.

The fuzzing subsystem (:mod:`repro.fuzz`) persists minimized failing
circuits into corpus files that must replay bit-identically years later,
on machines that never saw the generator that produced them.  A corpus
entry therefore stores the *reduced IR itself*, not a seed recipe; this
module is the stable wire format for that IR.

``circuit_to_dict`` emits plain dicts/lists/ints/strings only, so the
result round-trips through ``json`` without custom encoders.
``circuit_from_dict`` validates the rebuilt circuit before returning it.
The format is versioned (``"format": "repro-circuit/v1"``) so later
schema changes stay detectable.

This module also hosts the shared JSON/binary helpers every persisted
artifact in the repo builds on (fuzz corpus, checkpoint snapshots):
:func:`canonical_json` (byte-stable encoding, so equal states produce
equal files), :func:`blob_sha256` (the fingerprint those files carry),
and :func:`pack_words`/:func:`unpack_words` (compact, deterministic
encoding of 16-bit word arrays - register files, scratchpads, cache
lines).
"""

from __future__ import annotations

import base64
import hashlib
import json
import struct
import zlib
from typing import Iterable, Sequence

from .ir import (
    AssertEffect,
    Circuit,
    CircuitError,
    Display,
    Finish,
    MemWrite,
    Memory,
    Op,
    OpKind,
    Register,
    Wire,
)

FORMAT = "repro-circuit/v1"


# ---------------------------------------------------------------------------
# Shared JSON/binary helpers (used by fuzz corpus + checkpoint snapshots).
# ---------------------------------------------------------------------------

def canonical_json(obj) -> bytes:
    """Byte-stable JSON encoding: sorted keys, no whitespace, UTF-8.

    Two equal Python structures always encode to the same bytes, which is
    what makes content fingerprints and "identical state => identical
    snapshot file" guarantees possible.
    """
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def blob_sha256(data: bytes) -> str:
    """Hex sha256 of a byte blob (the standard fingerprint everywhere)."""
    return hashlib.sha256(data).hexdigest()


_ZERO_BLOCK = [0] * 4096


def pack_words(values: Sequence[int],
               strip_zeros: bool = False) -> str:
    """Encode a sequence of 16-bit words as a compact, deterministic
    string: little-endian ``u16`` array, zlib-compressed when that is
    smaller, base64-wrapped, with a self-describing prefix.

    Large mostly-zero arrays (scratchpads, cache line images) compress by
    orders of magnitude; tiny arrays skip the zlib header overhead.
    Level 1 keeps per-snapshot capture cheap (the checkpoint driver
    packs every core's register file at every publish); decompression
    is level-agnostic, so the level is not part of the format.

    With ``strip_zeros`` the zero tail is dropped before encoding:
    register files and scratchpads are overwhelmingly zero-tailed
    (allocation packs live registers low; untouched memory reads 0), so
    callers that pad back to the architected length on load - the
    machine state hooks - pack typically 50-400x fewer words, which is
    what keeps periodic checkpoint capture cheap.  The strip stays at
    C speed: whole all-zero blocks fall off via slice comparison (no
    struct packing of a 16K-word zero tail), then one byte-level
    ``rstrip`` trims the remainder.
    """
    if strip_zeros:
        n = len(values)
        while n >= len(_ZERO_BLOCK) \
                and values[n - len(_ZERO_BLOCK):n] == _ZERO_BLOCK:
            n -= len(_ZERO_BLOCK)
        values = values[:n]
    raw = struct.pack(f"<{len(values)}H", *values)
    if strip_zeros:
        kept = len(raw.rstrip(b"\x00"))
        raw = raw[:kept + (kept & 1)]
    packed = zlib.compress(raw, 1)
    if len(packed) < len(raw):
        return "z16:" + base64.b64encode(packed).decode("ascii")
    return "u16:" + base64.b64encode(raw).decode("ascii")


def unpack_words(text: str) -> list[int]:
    """Decode :func:`pack_words` output back into a list of ints."""
    kind, _, body = text.partition(":")
    raw = base64.b64decode(body.encode("ascii"), validate=True)
    if kind == "z16":
        raw = zlib.decompress(raw)
    elif kind != "u16":
        raise CircuitError(f"unknown packed-word encoding {kind!r}")
    if len(raw) % 2:
        raise CircuitError("truncated packed-word payload")
    return list(struct.unpack(f"<{len(raw) // 2}H", raw))


def pack_pairs(pairs: Iterable[tuple[int, int]]) -> list[list[int]]:
    """Deterministic (sorted) list-of-pairs form for sparse int->int maps
    (DRAM images, scratch init) whose keys exceed 16 bits."""
    return [[int(k), int(v)] for k, v in sorted(pairs)]


def unpack_pairs(data: Iterable[Sequence[int]]) -> dict[int, int]:
    return {int(k): int(v) for k, v in data}


def _wire_to_list(wire: Wire) -> list:
    return [wire.name, wire.width]


def _wire_from_list(data) -> Wire:
    name, width = data
    return Wire(str(name), int(width))


def circuit_to_dict(circuit: Circuit) -> dict:
    """Serialize a :class:`Circuit` into JSON-compatible plain data."""
    ops = []
    for op in circuit.ops:
        entry: dict = {
            "result": _wire_to_list(op.result),
            "kind": op.kind.value,
        }
        if op.args:
            entry["args"] = [_wire_to_list(a) for a in op.args]
        if op.attrs:
            entry["attrs"] = {k: op.attrs[k] for k in op.attrs}
        ops.append(entry)

    registers = [
        {
            "name": reg.name,
            "width": reg.width,
            "init": reg.init,
            "next": (None if reg.next_value is None
                     else _wire_to_list(reg.next_value)),
        }
        for reg in circuit.registers.values()
    ]

    memories = [
        {
            "name": mem.name,
            "width": mem.width,
            "depth": mem.depth,
            "init": list(mem.init),
            "writes": [
                {
                    "addr": _wire_to_list(wr.addr),
                    "data": _wire_to_list(wr.data),
                    "enable": _wire_to_list(wr.enable),
                }
                for wr in mem.writes
            ],
            "global_hint": mem.global_hint,
            "sram_hint": mem.sram_hint,
        }
        for mem in circuit.memories.values()
    ]

    effects = []
    for eff in circuit.effects:
        if isinstance(eff, Display):
            effects.append({
                "type": "display",
                "enable": _wire_to_list(eff.enable),
                "fmt": eff.fmt,
                "args": [_wire_to_list(a) for a in eff.args],
            })
        elif isinstance(eff, Finish):
            effects.append({
                "type": "finish",
                "enable": _wire_to_list(eff.enable),
            })
        elif isinstance(eff, AssertEffect):
            effects.append({
                "type": "assert",
                "enable": _wire_to_list(eff.enable),
                "cond": _wire_to_list(eff.cond),
                "message": eff.message,
            })
        else:  # pragma: no cover - Effect union is closed today
            raise CircuitError(f"cannot serialize effect {eff!r}")

    return {
        "format": FORMAT,
        "name": circuit.name,
        "ops": ops,
        "registers": registers,
        "memories": memories,
        "inputs": [_wire_to_list(w) for w in circuit.inputs.values()],
        "outputs": {n: _wire_to_list(w)
                    for n, w in circuit.outputs.items()},
        "effects": effects,
    }


def circuit_from_dict(data: dict, validate: bool = True) -> Circuit:
    """Rebuild a :class:`Circuit` from :func:`circuit_to_dict` output."""
    if data.get("format") != FORMAT:
        raise CircuitError(
            f"unsupported circuit format {data.get('format')!r} "
            f"(expected {FORMAT!r})"
        )
    circuit = Circuit(str(data["name"]))
    for entry in data["ops"]:
        attrs = dict(entry.get("attrs", {}))
        circuit.ops.append(Op(
            result=_wire_from_list(entry["result"]),
            kind=OpKind(entry["kind"]),
            args=tuple(_wire_from_list(a) for a in entry.get("args", [])),
            attrs=attrs,
        ))
    for entry in data["registers"]:
        reg = Register(str(entry["name"]), int(entry["width"]),
                       int(entry["init"]))
        if entry.get("next") is not None:
            reg.next_value = _wire_from_list(entry["next"])
        circuit.registers[reg.name] = reg
    for entry in data["memories"]:
        mem = Memory(
            str(entry["name"]), int(entry["width"]), int(entry["depth"]),
            tuple(int(v) for v in entry.get("init", [])),
            global_hint=bool(entry.get("global_hint", False)),
            sram_hint=bool(entry.get("sram_hint", False)),
        )
        for wr in entry.get("writes", []):
            mem.writes.append(MemWrite(
                _wire_from_list(wr["addr"]),
                _wire_from_list(wr["data"]),
                _wire_from_list(wr["enable"]),
            ))
        circuit.memories[mem.name] = mem
    for wire_data in data.get("inputs", []):
        wire = _wire_from_list(wire_data)
        circuit.inputs[wire.name] = wire
    for name, wire_data in data.get("outputs", {}).items():
        circuit.outputs[str(name)] = _wire_from_list(wire_data)
    for entry in data["effects"]:
        etype = entry["type"]
        if etype == "display":
            circuit.effects.append(Display(
                _wire_from_list(entry["enable"]), str(entry["fmt"]),
                tuple(_wire_from_list(a) for a in entry.get("args", [])),
            ))
        elif etype == "finish":
            circuit.effects.append(Finish(_wire_from_list(entry["enable"])))
        elif etype == "assert":
            circuit.effects.append(AssertEffect(
                _wire_from_list(entry["enable"]),
                _wire_from_list(entry["cond"]),
                str(entry.get("message", "assertion failed")),
            ))
        else:
            raise CircuitError(f"unknown effect type {etype!r}")
    if validate:
        circuit.validate()
    return circuit


def copy_circuit(circuit: Circuit) -> Circuit:
    """Deep, independent copy of a circuit (via the wire format).

    The shrinker mutates candidate circuits destructively; copying through
    the serializer guarantees no structure is shared with the original.
    """
    return circuit_from_dict(circuit_to_dict(circuit), validate=False)
