"""Circuit -> Verilog-subset text emitter (the frontend's inverse).

Every IR op maps onto an expression form the frontend in
:mod:`repro.netlist.verilog` parses back to a value-identical op, using
the builder's width rules (binop args are pre-zext'd to equal widths,
so ``assign`` plus the declared result width reproduces each wire
exactly):

* ``LTS`` has no source form (the frontend's ``<`` is unsigned), so it
  is desugared by the sign-bit trick ``(a ^ S) < (b ^ S)`` with
  ``S = 1 << (w-1)``;
* ``MUX(sel, if_false, if_true)`` prints as ``sel ? if_true : if_false``;
* ``CONCAT`` args are LSB-first in the IR and MSB-first in source;
* register initializers print as declaration initializers, memory
  initializers as an ``initial`` block (frontend PR-10 forms).

The emitter is the generative half of the fuzz round-trip oracle
(``machine-verilog-roundtrip``): ``parse_verilog(emit_verilog(c))``
must behave bit-identically to ``c``, and a second emit/parse cycle
must reproduce the same :meth:`Circuit.fingerprint` (idempotence).
Open circuits (inputs/outputs) and assertions have no closed-design
source form and raise :class:`VerilogEmitError`.
"""

from __future__ import annotations

import re

from .ir import AssertEffect, Circuit, Display, Finish, OpKind

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")

_KEYWORDS = frozenset("""
module endmodule input output inout wire reg parameter localparam
assign always initial begin end if else case casez casex endcase
default for integer genvar posedge negedge
""".split())


class VerilogEmitError(Exception):
    """The circuit uses a feature with no Verilog-subset source form."""


def _check_name(name: str) -> str:
    if not _IDENT_RE.match(name) or name in _KEYWORDS:
        raise VerilogEmitError(f"unprintable identifier {name!r}")
    return name


def _lit(value: int, width: int) -> str:
    return f"{width}'h{value:x}"


def _fmt_string(fmt: str) -> str:
    if any(c in fmt for c in '"\\\n'):
        raise VerilogEmitError(
            f"format string needs escaping the frontend lacks: {fmt!r}")
    return f'"{fmt}"'


def emit_verilog(circuit: Circuit, name: str | None = None) -> str:
    """Emit a closed circuit as frontend-parseable Verilog text."""
    if circuit.inputs or circuit.outputs:
        raise VerilogEmitError(
            "open circuits (inputs/outputs) have no closed source form")
    mod = name or circuit.name or "emitted"
    _check_name(mod)
    lines = [f"// emitted from circuit {circuit.name!r}",
             f"module {mod};"]

    for reg in circuit.registers.values():
        _check_name(reg.name)
        init = f" = {_lit(reg.init, reg.width)}" if reg.init else ""
        lines.append(f"  reg [{reg.width - 1}:0] {reg.name}{init};")
    mem_inits: list[str] = []
    for mem in circuit.memories.values():
        _check_name(mem.name)
        lines.append(f"  reg [{mem.width - 1}:0] {mem.name} "
                     f"[0:{mem.depth - 1}];")
        for idx, word in enumerate(mem.init):
            if word:
                mem_inits.append(f"    {mem.name}[{idx}] = "
                                 f"{_lit(word, mem.width)};")
    if mem_inits:
        lines.append("  initial begin")
        lines.extend(mem_inits)
        lines.append("  end")

    for op in circuit.ops:
        _check_name(op.result.name)
        lines.append(
            f"  wire [{op.result.width - 1}:0] {op.result.name};")
    for op in circuit.ops:
        lines.append(f"  assign {op.result.name} = {_op_expr(op)};")

    lines.append("  always @(posedge clk) begin")
    for reg in circuit.registers.values():
        nxt = reg.name if reg.next_value is None else reg.next_value.name
        lines.append(f"    {reg.name} <= {nxt};")
    for mem in circuit.memories.values():
        for wr in mem.writes:
            lines.append(f"    if ({wr.enable.name}) "
                         f"{mem.name}[{wr.addr.name}] <= {wr.data.name};")
    for eff in circuit.effects:
        if isinstance(eff, Display):
            args = "".join(f", {a.name}" for a in eff.args)
            lines.append(f"    if ({eff.enable.name}) "
                         f"$display({_fmt_string(eff.fmt)}{args});")
        elif isinstance(eff, Finish):
            lines.append(f"    if ({eff.enable.name}) $finish;")
        elif isinstance(eff, AssertEffect):
            raise VerilogEmitError(
                "assertions have no source form in the subset")
        else:
            raise VerilogEmitError(
                f"unknown effect {type(eff).__name__}")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_BINOP = {
    OpKind.AND: "&", OpKind.OR: "|", OpKind.XOR: "^",
    OpKind.ADD: "+", OpKind.SUB: "-", OpKind.MUL: "*",
    OpKind.EQ: "==", OpKind.NE: "!=", OpKind.LTU: "<",
    OpKind.SHL: "<<", OpKind.LSHR: ">>", OpKind.ASHR: ">>>",
}

_REDUCE = {OpKind.REDOR: "|", OpKind.REDAND: "&", OpKind.REDXOR: "^"}


def _op_expr(op) -> str:
    kind = op.kind
    if kind is OpKind.CONST:
        return _lit(op.value, op.result.width)
    if kind in _BINOP:
        a, b = op.args
        return f"{a.name} {_BINOP[kind]} {b.name}"
    if kind is OpKind.LTS:
        # The frontend's < is unsigned; flip the sign bits first.
        a, b = op.args
        sign = _lit(1 << (a.width - 1), a.width)
        return f"({a.name} ^ {sign}) < ({b.name} ^ {sign})"
    if kind is OpKind.NOT:
        return f"~{op.args[0].name}"
    if kind in _REDUCE:
        return f"{_REDUCE[kind]}{op.args[0].name}"
    if kind is OpKind.MUX:
        sel, if_false, if_true = op.args
        return f"{sel.name} ? {if_true.name} : {if_false.name}"
    if kind is OpKind.CONCAT:
        # IR args are LSB-first; source concatenation is MSB-first.
        return "{" + ", ".join(a.name
                               for a in reversed(op.args)) + "}"
    if kind is OpKind.SLICE:
        a = op.args[0]
        hi = op.offset + op.result.width - 1
        return f"{a.name}[{hi}:{op.offset}]"
    if kind is OpKind.MEMRD:
        return f"{op.memory}[{op.args[0].name}]"
    raise VerilogEmitError(f"cannot emit op kind {kind.value}")
