"""Dependence-DAG utilities over circuits (paper Fig. 1 and SS3.2).

The netlist DAG has combinational ops as internal nodes; register *current*
values, inputs, and memory reads are sources; register *next* values, memory
writes, and effects are sinks.  These helpers back both the Manticore
compiler's split step and the Verilator-like baseline's macro-task
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .ir import Circuit, Op


@dataclass
class CircuitDag:
    """Explicit dependence graph over a circuit's ops.

    Nodes are op result names; edges point producer -> consumer.
    """

    circuit: Circuit
    producers: dict[str, Op]
    consumers: dict[str, list[str]]
    sinks: list[str]

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "CircuitDag":
        producers = circuit.producers()
        consumers: dict[str, list[str]] = {name: [] for name in producers}
        for op in circuit.ops:
            for arg in op.args:
                if arg.name in producers:
                    consumers[arg.name].append(op.result.name)
        sink_names: list[str] = []
        seen: set[str] = set()
        for wire in circuit.sink_wires():
            if wire.name in producers and wire.name not in seen:
                seen.add(wire.name)
                sink_names.append(wire.name)
        return cls(circuit, producers, consumers, sink_names)

    # ------------------------------------------------------------------
    def transitive_fanin(self, roots: Iterable[str]) -> set[str]:
        """All op names reachable backwards from ``roots`` (inclusive)."""
        result: set[str] = set()
        stack = [r for r in roots if r in self.producers]
        while stack:
            name = stack.pop()
            if name in result:
                continue
            result.add(name)
            for arg in self.producers[name].args:
                if arg.name in self.producers and arg.name not in result:
                    stack.append(arg.name)
        return result

    def levels(self) -> dict[str, int]:
        """ASAP level of each op (sources at level 0)."""
        level: dict[str, int] = {}
        for op in _topo_ops(self):
            deps = [level[a.name] + 1 for a in op.args
                    if a.name in self.producers]
            level[op.result.name] = max(deps, default=0)
        return level

    def critical_path_length(self) -> int:
        """Number of ops on the longest dependence chain."""
        levels = self.levels()
        return max(levels.values(), default=-1) + 1

    def height(self) -> dict[str, int]:
        """Longest path (in ops) from each op down to any sink."""
        heights: dict[str, int] = {}
        for op in reversed(_topo_ops(self)):
            succ = [heights[c] + 1 for c in self.consumers[op.result.name]]
            heights[op.result.name] = max(succ, default=0)
        return heights


def _topo_ops(dag: CircuitDag) -> list[Op]:
    """Ops of the DAG in topological order (producers first)."""
    indeg = {
        name: sum(1 for a in op.args if a.name in dag.producers)
        for name, op in dag.producers.items()
    }
    ready = [name for name, d in indeg.items() if d == 0]
    order: list[Op] = []
    while ready:
        name = ready.pop()
        order.append(dag.producers[name])
        for consumer in dag.consumers[name]:
            indeg[consumer] -= 1
            if indeg[consumer] == 0:
                ready.append(consumer)
    if len(order) != len(dag.producers):
        raise ValueError("combinational cycle in circuit DAG")
    return order


def sink_cones(dag: CircuitDag) -> dict[str, set[str]]:
    """Per-sink transitive fanin cones - the paper's per-sink DAG split.

    Memory-order coupling (loads and stores of one memory must share a
    process) and effect coupling are handled later by the compiler's split
    pass; this returns the raw cones.
    """
    return {sink: dag.transitive_fanin([sink]) for sink in dag.sinks}
