"""Ergonomic circuit construction API over the netlist IR.

The nine paper benchmarks (:mod:`repro.designs`) and the Verilog frontend's
elaborator both target this builder.  A :class:`CircuitBuilder` hands out
:class:`Signal` handles with operator overloading::

    m = CircuitBuilder("counter")
    count = m.register("count", 8)
    count.next = (count + 1).trunc(8)
    m.display(count == 20, "done %d", count)
    m.finish(count == 20)
    circuit = m.build()

All arithmetic follows the IR's explicit-width rules: binary arithmetic and
bitwise ops zero-extend the narrower operand to the wider width; use
``.trunc``/``.zext``/``.sext`` to resize explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .ir import (
    AssertEffect,
    Circuit,
    CircuitError,
    Display,
    Finish,
    MemWrite,
    Memory,
    Op,
    OpKind,
    Register,
    Wire,
    mask,
)


@dataclass(frozen=True)
class Signal:
    """A handle to a wire inside a :class:`CircuitBuilder`.

    Signals are immutable; every operator emits a fresh SSA op into the
    owning builder and returns a new Signal.
    """

    builder: "CircuitBuilder"
    wire: Wire

    # -- shape ---------------------------------------------------------
    @property
    def width(self) -> int:
        return self.wire.width

    def _coerce(self, other: "Signal | int", width_hint: int | None = None,
                ) -> "Signal":
        if isinstance(other, Signal):
            if other.builder is not self.builder:
                raise CircuitError("signals belong to different builders")
            return other
        return self.builder.const(other, width_hint or self.width)

    def _binop(self, kind: OpKind, other: "Signal | int",
               result_width: int | None = None) -> "Signal":
        rhs = self._coerce(other)
        a, b = self, rhs
        w = max(a.width, b.width)
        a, b = a.zext(w), b.zext(w)
        return self.builder._emit(kind, (a.wire, b.wire),
                                  result_width if result_width else w)

    def _cmp(self, kind: OpKind, other: "Signal | int") -> "Signal":
        rhs = self._coerce(other)
        a, b = self, rhs
        if kind is not OpKind.LTS:
            w = max(a.width, b.width)
            a, b = a.zext(w), b.zext(w)
        elif a.width != b.width:
            w = max(a.width, b.width)
            a, b = a.sext(w), b.sext(w)
        return self.builder._emit(kind, (a.wire, b.wire), 1)

    # -- bitwise -------------------------------------------------------
    def __and__(self, other: "Signal | int") -> "Signal":
        return self._binop(OpKind.AND, other)

    def __or__(self, other: "Signal | int") -> "Signal":
        return self._binop(OpKind.OR, other)

    def __xor__(self, other: "Signal | int") -> "Signal":
        return self._binop(OpKind.XOR, other)

    def __invert__(self) -> "Signal":
        return self.builder._emit(OpKind.NOT, (self.wire,), self.width)

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "Signal | int") -> "Signal":
        return self._binop(OpKind.ADD, other)

    def __sub__(self, other: "Signal | int") -> "Signal":
        return self._binop(OpKind.SUB, other)

    def __mul__(self, other: "Signal | int") -> "Signal":
        return self._binop(OpKind.MUL, other)

    def add_wide(self, other: "Signal | int") -> "Signal":
        """Addition with one extra result bit to keep the carry."""
        rhs = self._coerce(other)
        w = max(self.width, rhs.width) + 1
        return self.zext(w)._binop(OpKind.ADD, rhs.zext(w))

    def mul_wide(self, other: "Signal | int") -> "Signal":
        """Full-width multiplication (sum of operand widths)."""
        rhs = self._coerce(other)
        w = self.width + rhs.width
        return self.zext(w)._binop(OpKind.MUL, rhs.zext(w))

    # -- comparisons ---------------------------------------------------
    def __eq__(self, other: object):  # type: ignore[override]
        return self._cmp(OpKind.EQ, other)  # type: ignore[arg-type]

    def __ne__(self, other: object):  # type: ignore[override]
        return self._cmp(OpKind.NE, other)  # type: ignore[arg-type]

    def __hash__(self) -> int:
        return hash((id(self.builder), self.wire))

    def ltu(self, other: "Signal | int") -> "Signal":
        return self._cmp(OpKind.LTU, other)

    def lts(self, other: "Signal | int") -> "Signal":
        return self._cmp(OpKind.LTS, other)

    def geu(self, other: "Signal | int") -> "Signal":
        return ~self.ltu(other)

    def gtu(self, other: "Signal | int") -> "Signal":
        rhs = self._coerce(other)
        return rhs.ltu(self)

    # -- shifts --------------------------------------------------------
    def __lshift__(self, amount: "Signal | int") -> "Signal":
        if isinstance(amount, int):
            if amount == 0:
                return self
            zeros = self.builder.const(0, amount)
            return self.builder.cat(zeros, self).trunc(self.width)
        return self._binop(OpKind.SHL, amount)

    def __rshift__(self, amount: "Signal | int") -> "Signal":
        if isinstance(amount, int):
            if amount == 0:
                return self
            if amount >= self.width:
                return self.builder.const(0, self.width)
            return self.bits(amount, self.width - amount).zext(self.width)
        return self._binop(OpKind.LSHR, amount)

    def ashr(self, amount: "Signal | int") -> "Signal":
        if isinstance(amount, int):
            amount = self.builder.const(amount, max(1, amount.bit_length()))
        if amount.width < self.width:
            amount = amount.zext(self.width)
        return self.builder._emit(
            OpKind.ASHR, (self.wire, amount.trunc(self.width).wire),
            self.width,
        )

    # -- slicing / resizing --------------------------------------------
    def bits(self, offset: int, count: int) -> "Signal":
        """Extract ``count`` bits starting at ``offset`` (Verilog
        ``x[offset +: count]``)."""
        if offset == 0 and count == self.width:
            return self
        return self.builder._emit(
            OpKind.SLICE, (self.wire,), count, attrs={"offset": offset}
        )

    def __getitem__(self, index: int | slice) -> "Signal":
        if isinstance(index, int):
            if index < 0:
                index += self.width
            return self.bits(index, 1)
        # Verilog-style x[hi:lo] via Python slice as s[hi:lo] is awkward;
        # support s[lo:hi_exclusive] Python-style on bit indices.
        lo = index.start or 0
        hi = self.width if index.stop is None else index.stop
        return self.bits(lo, hi - lo)

    def trunc(self, width: int) -> "Signal":
        if width == self.width:
            return self
        if width > self.width:
            raise CircuitError("trunc cannot widen; use zext/sext")
        return self.bits(0, width)

    def zext(self, width: int) -> "Signal":
        if width == self.width:
            return self
        if width < self.width:
            raise CircuitError("zext cannot narrow; use trunc")
        zeros = self.builder.const(0, width - self.width)
        return self.builder.cat(self, zeros)

    def sext(self, width: int) -> "Signal":
        if width == self.width:
            return self
        if width < self.width:
            raise CircuitError("sext cannot narrow; use trunc")
        sign = self[self.width - 1]
        ext = self.builder.mux(
            sign,
            self.builder.const(0, width - self.width),
            self.builder.const(mask(width - self.width), width - self.width),
        )
        return self.builder.cat(self, ext)

    # -- reductions ----------------------------------------------------
    def any(self) -> "Signal":
        return self.builder._emit(OpKind.REDOR, (self.wire,), 1)

    def all(self) -> "Signal":
        return self.builder._emit(OpKind.REDAND, (self.wire,), 1)

    def parity(self) -> "Signal":
        return self.builder._emit(OpKind.REDXOR, (self.wire,), 1)

    def __bool__(self) -> bool:
        raise CircuitError(
            "signals have no Python truth value; use mux()/any() instead"
        )


class RegisterSignal(Signal):
    """Signal reading a register's *current* value; assign ``.next``."""

    @property
    def next(self) -> Signal:
        raise CircuitError("register .next is write-only")

    @next.setter
    def next(self, value: "Signal | int") -> None:
        sig = self._coerce(value, self.width)
        if sig.width != self.width:
            raise CircuitError(
                f"register {self.wire.name!r} is {self.width} bits but "
                f"next value is {sig.width} bits; resize explicitly"
            )
        self.builder._set_register_next(self.wire.name, sig)

    def update(self, enable: "Signal", value: "Signal | int") -> None:
        """``if (enable) reg <= value;`` - enabled register update."""
        sig = self._coerce(value, self.width)
        self.next = self.builder.mux(enable, self, sig)


class MemoryHandle:
    """Handle to an RTL memory: combinational reads, end-of-cycle writes."""

    def __init__(self, builder: "CircuitBuilder", memory: Memory) -> None:
        self._builder = builder
        self._memory = memory

    @property
    def name(self) -> str:
        return self._memory.name

    @property
    def width(self) -> int:
        return self._memory.width

    @property
    def depth(self) -> int:
        return self._memory.depth

    def read(self, addr: Signal) -> Signal:
        return self._builder._emit(
            OpKind.MEMRD, (addr.wire,), self._memory.width,
            attrs={"memory": self._memory.name},
        )

    def write(self, addr: Signal, data: "Signal | int",
              enable: "Signal | int" = 1) -> None:
        data_sig = addr._coerce(data, self._memory.width)
        if data_sig.width < self._memory.width:
            data_sig = data_sig.zext(self._memory.width)
        elif data_sig.width > self._memory.width:
            raise CircuitError(
                f"write data wider than memory {self._memory.name!r}"
            )
        en_sig = addr._coerce(enable, 1)
        if en_sig.width != 1:
            en_sig = en_sig.any()
        self._memory.writes.append(
            MemWrite(addr.wire, data_sig.wire, en_sig.wire)
        )


class CircuitBuilder:
    """Builds a :class:`Circuit` one SSA op at a time."""

    def __init__(self, name: str) -> None:
        self._circuit = Circuit(name)
        self._counter = 0
        self._const_cache: dict[tuple[int, int], Signal] = {}

    # -- internals -----------------------------------------------------
    def _fresh(self, prefix: str = "w") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _emit(self, kind: OpKind, args: tuple[Wire, ...], width: int,
              attrs: dict | None = None, name: str | None = None) -> Signal:
        wire = Wire(name or self._fresh(), width)
        self._circuit.ops.append(Op(wire, kind, args, attrs or {}))
        return Signal(self, wire)

    def _set_register_next(self, name: str, value: Signal) -> None:
        reg = self._circuit.registers[name]
        reg.next_value = value.wire

    # -- declarations ---------------------------------------------------
    def const(self, value: int, width: int) -> Signal:
        value &= mask(width)
        key = (value, width)
        cached = self._const_cache.get(key)
        if cached is not None:
            return cached
        sig = self._emit(OpKind.CONST, (), width, attrs={"value": value},
                         name=self._fresh("c"))
        self._const_cache[key] = sig
        return sig

    def input(self, name: str, width: int) -> Signal:
        if name in self._circuit.inputs:
            raise CircuitError(f"duplicate input {name!r}")
        wire = Wire(name, width)
        self._circuit.inputs[name] = wire
        return Signal(self, wire)

    def output(self, name: str, value: Signal) -> None:
        if name in self._circuit.outputs:
            raise CircuitError(f"duplicate output {name!r}")
        self._circuit.outputs[name] = value.wire

    def register(self, name: str, width: int, init: int = 0,
                 ) -> RegisterSignal:
        if name in self._circuit.registers:
            raise CircuitError(f"duplicate register {name!r}")
        reg = Register(name, width, init & mask(width))
        self._circuit.registers[name] = reg
        return RegisterSignal(self, reg.current)

    def memory(self, name: str, width: int, depth: int,
               init: Sequence[int] = (), global_hint: bool = False,
               sram_hint: bool = False) -> MemoryHandle:
        if name in self._circuit.memories:
            raise CircuitError(f"duplicate memory {name!r}")
        mem = Memory(name, width, depth, tuple(init),
                     global_hint=global_hint, sram_hint=sram_hint)
        self._circuit.memories[name] = mem
        return MemoryHandle(self, mem)

    # -- structural helpers ---------------------------------------------
    def cat(self, *parts: Signal) -> Signal:
        """Concatenate; *first argument is the least significant part*."""
        if len(parts) == 1:
            return parts[0]
        width = sum(p.width for p in parts)
        return self._emit(OpKind.CONCAT, tuple(p.wire for p in parts), width)

    def mux(self, sel: Signal, if_false: "Signal | int",
            if_true: "Signal | int") -> Signal:
        if sel.width != 1:
            sel = sel.any()
        if isinstance(if_false, Signal):
            f = if_false
            t = f._coerce(if_true, f.width)
        elif isinstance(if_true, Signal):
            t = if_true
            f = t._coerce(if_false, t.width)
        else:
            raise CircuitError("mux needs at least one Signal branch")
        w = max(f.width, t.width)
        f, t = f.zext(w), t.zext(w)
        return self._emit(OpKind.MUX, (sel.wire, f.wire, t.wire), w)

    def select(self, index: Signal, choices: Sequence["Signal | int"],
               ) -> Signal:
        """Mux tree indexed by ``index`` (out-of-range wraps)."""
        sigs = [c if isinstance(c, Signal) else None for c in choices]
        width = max(s.width for s in sigs if s is not None)
        items: list[Signal] = [
            (c if isinstance(c, Signal) else self.const(c, width)).zext(width)
            for c in choices
        ]
        bit = 0
        while len(items) > 1:
            sel = index[bit]
            items = [
                self.mux(sel, items[i],
                         items[i + 1] if i + 1 < len(items) else items[i])
                for i in range(0, len(items), 2)
            ]
            bit += 1
        return items[0]

    # -- effects ----------------------------------------------------------
    def display(self, enable: Signal, fmt: str, *args: Signal) -> None:
        if enable.width != 1:
            enable = enable.any()
        self._circuit.effects.append(
            Display(enable.wire, fmt, tuple(a.wire for a in args))
        )

    def finish(self, enable: Signal) -> None:
        if enable.width != 1:
            enable = enable.any()
        self._circuit.effects.append(Finish(enable.wire))

    def check(self, enable: Signal, cond: Signal, message: str) -> None:
        """Assertion: when ``enable`` is high, ``cond`` must be high."""
        if enable.width != 1:
            enable = enable.any()
        if cond.width != 1:
            cond = cond.any()
        self._circuit.effects.append(
            AssertEffect(enable.wire, cond.wire, message)
        )

    def check_sticky(self, enable: Signal, cond: Signal,
                     message: str) -> None:
        """Assertion via a sticky failure register.

        Unlike :meth:`check`, the condition logic feeds an ordinary
        register, so on Manticore it compiles into a regular (parallel)
        process.  All sticky failures are OR-reduced through a register
        tree at :meth:`build` time, so the privileged core watches a
        single bit no matter how many assertions the driver plants.
        Failures surface a few cycles after the violating cycle.
        """
        if enable.width != 1:
            enable = enable.any()
        if cond.width != 1:
            cond = cond.any()
        self._sticky_count = getattr(self, "_sticky_count", 0) + 1
        fail = self.register(f"_fail{self._sticky_count}", 1)
        fail.next = fail | (enable & ~cond)
        if not hasattr(self, "_sticky_fails"):
            self._sticky_fails: list[tuple[Signal, str]] = []
        self._sticky_fails.append((fail, message))

    def registered_reduce(self, name: str, signals: list[Signal],
                          combine, arity: int = 4,
                          ) -> tuple[Signal, int]:
        """Reduce ``signals`` through a tree of *register* stages.

        ``combine`` folds a list of same-width signals into one.  Returns
        (result signal, tree depth in cycles).  Because every tree node is
        a register commit, the Manticore compiler distributes the
        reduction across cores instead of serializing it into whichever
        process consumes the result - the idiom for global counters,
        checksums, and assertion roll-ups in our test drivers.
        """
        level = list(signals)
        depth = 0
        while len(level) > 1:
            nxt: list[Signal] = []
            for i in range(0, len(level), arity):
                group = level[i:i + arity]
                value = combine(group) if len(group) > 1 else group[0]
                reg = self.register(f"{name}_t{depth}_{i // arity}",
                                    value.width)
                reg.next = value
                nxt.append(reg)
            level = nxt
            depth += 1
        return level[0], depth

    def _flush_sticky(self) -> None:
        fails = getattr(self, "_sticky_fails", None)
        if not fails:
            return
        self._sticky_fails = []
        if len(fails) <= 4:
            for fail, message in fails:
                self.check(self.const(1, 1), ~fail, message)
            return
        def any_of(group):
            acc = group[0]
            for s in group[1:]:
                acc = acc | s
            return acc
        reduced, _depth = self.registered_reduce(
            "_failtree", [f for f, _ in fails], any_of)
        summary = "; ".join(msg for _, msg in fails[:4])
        self.check(self.const(1, 1), ~reduced,
                   f"sticky assertion failed (one of {len(fails)}: "
                   f"{summary}, ...)")

    def display_staged(self, enable: Signal, fmt: str,
                       *args: Signal) -> Signal:
        """``$display`` through a register stage.

        Arguments and the enable are latched into registers first, so the
        (privileged) display logic only reads register currents - keeping
        the privileged process small on Manticore.  Fires one cycle after
        ``enable``; returns the staged enable for chaining (e.g. into
        :meth:`finish`).
        """
        if enable.width != 1:
            enable = enable.any()
        self._stage_count = getattr(self, "_stage_count", 0) + 1
        tag = self._stage_count
        en_r = self.register(f"_dispen{tag}", 1)
        en_r.next = enable
        staged = []
        for i, arg in enumerate(args):
            reg = self.register(f"_disparg{tag}_{i}", arg.width)
            reg.next = arg
            staged.append(reg)
        self.display(en_r, fmt, *staged)
        return en_r

    # -- finalization ------------------------------------------------------
    def build(self, validate: bool = True) -> Circuit:
        self._flush_sticky()
        circuit = self._circuit
        for reg in circuit.registers.values():
            if reg.next_value is None:
                reg.next_value = reg.current  # hold value by default
        if validate:
            circuit.validate()
        return circuit
