"""A frontend for a synthesizable Verilog subset (paper SS6: "we derived
our Verilog frontend from Yosys's ... extended to support basic system
calls such as $display and $stop").

Supported subset - enough for single-clock hierarchical designs plus a
generated closed test driver:

* ``module`` with ports (ANSI or non-ANSI declarations) and hierarchical
  instantiation with named connections, flattened by inlining,
* ``wire``/``reg`` declarations with ranges, initializers, and memories
  (``reg [15:0] mem [0:255];``),
* ``parameter``/``localparam`` compile-time constants,
* ``assign`` continuous assignments,
* any number of ``always @(posedge <clk>)`` blocks per module (one
  clock; blocks merge in source order, later assignments win) with
  non-blocking assignments, ``if``/``else``, ``begin``/``end``,
  constant-bound ``for`` (unrolled), ``case``/``casez``/``casex``
  (wildcard ``?``/``z`` bits become masked compares), memory writes,
  ``$display``/``$write``, ``$finish``/``$stop``,
* ``always @(*)`` combinational blocks with blocking assignments
  (full-path coverage required; latches are rejected),
* ``initial begin ... end`` blocks of constant register/memory stores
  (folded into power-on initializers, ``for`` loops unrolled),
* expressions: sized/unsized literals, identifiers, bit/part selects,
  memory reads, concatenation ``{a, b}`` and replication ``{4{x}}``,
  unary ``~ ! - & | ^``, binary arithmetic/logic/shift/compare, ternary.

Open (ported) top modules can be closed automatically with a generated
LFSR-stimulus test driver: ``parse_verilog(src, wrap=N)`` instantiates
the top, drives every non-clock input from a per-port LFSR, folds the
outputs into a rotating checksum, and ``$display``s + ``$finish``es
after N cycles (see :func:`driver_wrapper_source`).

Semantics deviations from full IEEE 1800 are the builder's rules: widths
extend to the widest operand (zero-extension; all arithmetic unsigned),
``>>>`` is arithmetic shift right.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .builder import CircuitBuilder, MemoryHandle, Signal
from .ir import Circuit, CircuitError


class VerilogError(CircuitError):
    """Raised on parse or elaboration errors, with line info."""


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------
_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
  | (?P<sized>\d+'[bodh][0-9a-fA-F_xzXZ?]+)
  | (?P<number>\d[\d_]*)
  | (?P<ident>[A-Za-z_$][A-Za-z0-9_$]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<op><<<|>>>|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>=?:;,.#(){}\[\]@])
""", re.VERBOSE | re.DOTALL)


@dataclass
class Token:
    kind: str
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if not m:
            raise VerilogError(f"line {line}: cannot tokenize "
                               f"{source[pos:pos + 20]!r}")
        text = m.group(0)
        kind = m.lastgroup or "op"
        if kind != "ws":
            tokens.append(Token(kind, text, line))
        line += text.count("\n")
        pos = m.end()
    tokens.append(Token("eof", "", line))
    return tokens


def parse_literal(text: str) -> tuple[int, int | None]:
    """Parse a Verilog literal -> (value, width or None if unsized)."""
    if "'" not in text:
        return int(text.replace("_", "")), None
    width_str, rest = text.split("'", 1)
    base_char = rest[0].lower()
    digits = rest[1:].replace("_", "")
    base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_char]
    digits = digits.replace("x", "0").replace("z", "0").replace("?", "0")
    value = int(digits, base) if digits else 0
    return value, int(width_str)


def parse_wildcard_literal(text: str, wild: str) -> tuple[int, int, int]:
    """Parse a casez/casex label literal -> (value, care_mask, width).

    ``wild`` is the set of digit characters treated as don't-care
    (``"z?"`` for casez, ``"xz?"`` for casex); each wildcard digit
    clears the corresponding bits of the care mask.  Only binary, octal
    and hex bases can carry wildcard digits.
    """
    width_str, rest = text.split("'", 1)
    base_char = rest[0].lower()
    digits = rest[1:].replace("_", "")
    width = int(width_str)
    bits_per = {"b": 1, "o": 3, "h": 4}.get(base_char)
    if bits_per is None:
        raise VerilogError(
            f"wildcard bits need a binary/octal/hex literal: {text!r}")
    value = 0
    mask = 0
    digit_ones = (1 << bits_per) - 1
    for ch in digits:
        value <<= bits_per
        mask <<= bits_per
        cl = ch.lower()
        if cl in wild:
            continue
        if cl in "xz?":
            raise VerilogError(
                f"{ch!r} digit is not a wildcard in this case kind: "
                f"{text!r}")
        value |= int(ch, 16)
        mask |= digit_ones
    clip = (1 << width) - 1
    mask &= clip
    return value & mask, mask, width


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------
@dataclass
class Decl:
    kind: str                 # "wire" | "reg"
    name: str
    width: int
    init: int = 0
    depth: int | None = None  # memories
    direction: str | None = None  # "input" | "output" | None


@dataclass
class Assign:
    target: str
    expr: "Expr"


@dataclass
class NonBlocking:
    target: str
    index: "Expr | None"      # memory write or bit-select target
    expr: "Expr"
    line: int


@dataclass
class SysCall:
    name: str                 # display/write/finish/stop
    fmt: str | None
    args: list["Expr"]
    line: int


@dataclass
class If:
    cond: "Expr"
    then: list
    other: list


@dataclass
class For:
    """A constant-bound loop, unrolled at elaboration time."""

    var: str
    start: "Expr"
    bound: "Expr"
    body: list
    line: int


Stmt = NonBlocking | SysCall | If | For


@dataclass
class Expr:
    kind: str                 # lit/ident/index/slice/unary/binary/ternary/concat/repl/memrd
    line: int = 0
    value: int = 0
    width: int | None = None
    name: str = ""
    op: str = ""
    args: list["Expr"] = field(default_factory=list)
    lo: int = 0
    hi: int = 0


@dataclass
class Instance:
    """A submodule instantiation with named port connections."""

    module: str
    name: str
    conns: dict[str, "Expr"]
    line: int


@dataclass
class Module:
    name: str
    params: dict[str, int]
    decls: dict[str, Decl]
    assigns: list[Assign]
    always: list[Stmt]
    clock: str | None = None
    ports: list[str] = field(default_factory=list)
    instances: list[Instance] = field(default_factory=list)
    #: combinational ``always @(*)`` blocks (blocking assignments)
    comb: list[list[Stmt]] = field(default_factory=list)
    #: constant power-on stores from ``initial`` blocks:
    #: (target, memory index or None, value, line)
    inits: list[tuple[str, int | None, int, int]] = \
        field(default_factory=list)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self.params: dict[str, int] = {}

    # -- token helpers ---------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise VerilogError(
                f"line {tok.line}: expected {text!r}, found {tok.text!r}"
            )
        return tok

    def accept(self, text: str) -> bool:
        if self.peek().text == text:
            self.pos += 1
            return True
        return False

    # -- module ------------------------------------------------------------
    def parse_module(self) -> Module:
        self.params = {}
        self.expect("module")
        name = self.next().text
        ports: list[str] = []
        decls: dict[str, Decl] = {}
        comb: list[list[Stmt]] = []
        inits: list[tuple[str, int | None, int, int]] = []
        if self.accept("("):
            while not self.accept(")"):
                tok = self.peek()
                if tok.text in ("input", "output"):
                    # ANSI-style port declaration.
                    direction = self.next().text
                    self.accept("wire") or self.accept("reg")
                    width = self._parse_range()
                    pname = self.next().text
                    decls[pname] = Decl("wire", pname, width,
                                        direction=direction)
                    ports.append(pname)
                else:
                    ports.append(self.next().text)
                self.accept(",")
        self.expect(";")
        assigns: list[Assign] = []
        always: list[Stmt] = []
        instances: list[Instance] = []
        clock = None
        while self.peek().text != "endmodule":
            tok = self.peek()
            if tok.text == "parameter" or tok.text == "localparam":
                self.next()
                pname = self.next().text
                self.expect("=")
                self.params[pname] = self._const_expr()
                self.expect(";")
            elif tok.text in ("wire", "reg"):
                for decl in self._parse_decl():
                    decls[decl.name] = decl
            elif tok.text in ("integer", "genvar"):
                self.next()
                while True:
                    self.next()  # loop-variable name; value bound by for
                    if not self.accept(","):
                        break
                self.expect(";")
            elif tok.text in ("input", "output"):
                direction = self.next().text
                self.accept("wire") or self.accept("reg")
                width = self._parse_range()
                while True:
                    pname = self.next().text
                    kind = "reg" if direction == "output" and \
                        pname in decls and decls[pname].kind == "reg" \
                        else "wire"
                    decls[pname] = Decl(kind, pname, width,
                                        direction=direction)
                    if pname not in ports:
                        ports.append(pname)
                    if not self.accept(","):
                        break
                self.expect(";")
            elif tok.text == "assign":
                self.next()
                target = self.next().text
                self.expect("=")
                assigns.append(Assign(target, self.parse_expr()))
                self.expect(";")
            elif tok.text == "always":
                kind, got_clock, stmts = self._parse_always()
                if kind == "comb":
                    comb.append(stmts)
                else:
                    # Any number of clocked blocks, one clock domain.
                    # Blocks merge in source order: statements behave as
                    # one block, so a later block's assignment to the
                    # same register wins (deterministic, unlike the IEEE
                    # race).
                    if clock is not None and got_clock != clock:
                        raise VerilogError(
                            f"line {tok.line}: always @(posedge "
                            f"{got_clock}) conflicts with earlier "
                            f"@(posedge {clock}); single-clock designs "
                            "only"
                        )
                    clock = got_clock
                    always.extend(stmts)
            elif tok.text == "initial":
                inits.extend(self._parse_initial())
            elif tok.kind == "ident":
                instances.append(self._parse_instance())
            else:
                raise VerilogError(
                    f"line {tok.line}: unexpected {tok.text!r}"
                )
        self.expect("endmodule")
        return Module(name, dict(self.params), decls, assigns, always,
                      clock, ports, instances, comb, inits)

    def _parse_initial(self) -> list[tuple[str, int | None, int, int]]:
        """``initial begin ... end`` of constant stores.

        Only compile-time-constant register/memory stores (and
        constant-bound ``for`` loops of them) are supported; they fold
        into power-on initializers, so ``initial`` here is metadata, not
        a process.
        """
        self.expect("initial")
        stmts = self._parse_stmt_block(comb=True)
        out: list[tuple[str, int | None, int, int]] = []
        self._fold_initial(stmts, dict(self.params), out)
        return out

    def _fold_initial(self, stmts, env: dict[str, int], out: list) -> None:
        for stmt in stmts:
            if isinstance(stmt, NonBlocking):
                index = None if stmt.index is None else \
                    _eval_const(stmt.index, env)
                value = _eval_const(stmt.expr, env)
                out.append((stmt.target, index, value, stmt.line))
            elif isinstance(stmt, For):
                start = _eval_const(stmt.start, env)
                bound = _eval_const(stmt.bound, env)
                if bound - start > 65536:
                    raise VerilogError(
                        f"line {stmt.line}: initial for-loop unrolls to "
                        f"{bound - start} stores; that cannot be intended"
                    )
                for v in range(start, bound):
                    self._fold_initial(stmt.body, {**env, stmt.var: v},
                                       out)
            else:
                raise VerilogError(
                    f"line {getattr(stmt, 'line', 0)}: initial blocks "
                    "support only constant stores and for loops of them"
                )

    def _parse_instance(self) -> Instance:
        tok = self.next()
        module_name = tok.text
        if self.accept("#"):
            raise VerilogError(
                f"line {tok.line}: instance parameter overrides are not "
                "supported; specialize the module with its own parameters"
            )
        inst_name = self.next().text
        self.expect("(")
        conns: dict[str, Expr] = {}
        while not self.accept(")"):
            self.expect(".")
            port = self.next().text
            self.expect("(")
            conns[port] = self.parse_expr()
            self.expect(")")
            self.accept(",")
        self.expect(";")
        return Instance(module_name, inst_name, conns, tok.line)

    def _const_expr(self) -> int:
        expr = self.parse_expr()
        return _eval_const(expr, self.params)

    def _parse_range(self) -> int:
        """Parse optional [msb:lsb]; returns bit width."""
        if not self.accept("["):
            return 1
        msb = self._const_expr()
        self.expect(":")
        lsb = self._const_expr()
        self.expect("]")
        if lsb != 0:
            raise VerilogError("only [msb:0] ranges are supported")
        return msb - lsb + 1

    def _parse_decl(self) -> list[Decl]:
        kind = self.next().text
        width = self._parse_range()
        out = []
        while True:
            name = self.next().text
            depth = None
            init = 0
            if self.accept("["):
                lo = self._const_expr()
                self.expect(":")
                hi = self._const_expr()
                self.expect("]")
                depth = abs(hi - lo) + 1
            if self.accept("="):
                init = self._const_expr()
            out.append(Decl(kind, name, width, init, depth))
            if not self.accept(","):
                break
        self.expect(";")
        return out

    def _parse_always(self) -> tuple[str, str | None, list[Stmt]]:
        """Returns ("clocked", clk, stmts) or ("comb", None, stmts)."""
        self.expect("always")
        self.expect("@")
        if self.accept("*"):
            return "comb", None, self._parse_stmt_block(comb=True)
        self.expect("(")
        if self.accept("*"):
            self.expect(")")
            return "comb", None, self._parse_stmt_block(comb=True)
        self.expect("posedge")
        clock = self.next().text
        self.expect(")")
        return "clocked", clock, self._parse_stmt_block()

    def _parse_stmt_block(self, comb: bool = False) -> list[Stmt]:
        if self.accept("begin"):
            stmts = []
            while not self.accept("end"):
                stmts.extend(self._parse_stmt(comb))
            return stmts
        return self._parse_stmt(comb)

    def _parse_stmt(self, comb: bool = False) -> list[Stmt]:
        tok = self.peek()
        if tok.text in ("case", "casez", "casex"):
            return [self._parse_case(comb)]
        if tok.text == "if":
            self.next()
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then = self._parse_stmt_block(comb)
            other: list[Stmt] = []
            if self.accept("else"):
                other = self._parse_stmt_block(comb)
            return [If(cond, then, other)]
        if tok.text == "for":
            return [self._parse_for(comb)]
        if tok.text in ("$display", "$write"):
            self.next()
            self.expect("(")
            fmt_tok = self.next()
            if fmt_tok.kind != "string":
                raise VerilogError(
                    f"line {fmt_tok.line}: $display needs a format string"
                )
            fmt = fmt_tok.text[1:-1]
            args = []
            while self.accept(","):
                args.append(self.parse_expr())
            self.expect(")")
            self.expect(";")
            return [SysCall(tok.text[1:], fmt, args, tok.line)]
        if tok.text in ("$finish", "$stop"):
            self.next()
            if self.accept("("):
                self.expect(")")
            self.expect(";")
            return [SysCall(tok.text[1:], None, [], tok.line)]
        # Assignment: name [ [index] ] (<=|=) expr ;
        name = self.next().text
        index: Expr | None = None
        if self.accept("["):
            index = self.parse_expr()
            self.expect("]")
        self.expect("=" if comb else "<=")
        expr = self.parse_expr()
        self.expect(";")
        return [NonBlocking(name, index, expr, tok.line)]

    def _parse_for(self, comb: bool = False) -> Stmt:
        """``for (i = a; i < b; i = i + 1) ...`` with constant bounds,
        unrolled during elaboration."""
        tok = self.expect("for")
        self.expect("(")
        var = self.next().text
        self.expect("=")
        start = self.parse_expr()
        self.expect(";")
        cond_var = self.next().text
        if cond_var != var:
            raise VerilogError(
                f"line {tok.line}: for-loop condition must test {var!r}"
            )
        self.expect("<")
        bound = self.parse_expr()
        self.expect(";")
        step_var = self.next().text
        self.expect("=")
        step_lhs = self.next().text
        self.expect("+")
        step_amt = self.next().text
        if step_var != var or step_lhs != var or step_amt != "1":
            raise VerilogError(
                f"line {tok.line}: only `{var} = {var} + 1` steps are "
                "supported"
            )
        self.expect(")")
        body = self._parse_stmt_block(comb)
        return For(var, start, bound, body, tok.line)

    def _parse_case(self, comb: bool = False) -> Stmt:
        """Parse ``case``/``casez``/``casex`` and desugar into a priority
        if/else chain (full-case, no overlap semantics - matching
        synthesis of a unique case without a parallel pragma).

        ``casez`` labels may carry ``?``/``z`` wildcard bits, ``casex``
        additionally ``x``; a wildcard label lowers to a masked compare
        ``(subject & mask) == (pattern & mask)``.
        """
        tok = self.next()  # case | casez | casex
        wild = {"case": "", "casez": "z?", "casex": "xz?"}[tok.text]
        self.expect("(")
        subject = self.parse_expr()
        self.expect(")")
        arms: list[tuple[list[Expr] | None, list[Stmt]]] = []
        while not self.accept("endcase"):
            if self.accept("default"):
                self.expect(":")
                arms.append((None, self._parse_stmt_block(comb)))
                continue
            conds = [self._parse_case_label(subject, wild)]
            while self.accept(","):
                conds.append(self._parse_case_label(subject, wild))
            self.expect(":")
            arms.append((conds, self._parse_stmt_block(comb)))

        # Desugar, last arm first.
        chain: list[Stmt] = []
        for conds, stmts in reversed(arms):
            if conds is None:
                chain = list(stmts)
                continue
            cond: Expr | None = None
            for eq in conds:
                cond = eq if cond is None else Expr(
                    "binary", tok.line, op="||", args=[cond, eq])
            chain = [If(cond, list(stmts), chain)]
        if not chain:
            raise VerilogError(f"line {tok.line}: empty case statement")
        return chain[0]

    def _parse_case_label(self, subject: Expr, wild: str) -> Expr:
        """One case label -> a match condition against ``subject``."""
        tok = self.peek()
        if wild and tok.kind == "sized":
            digits = tok.text.split("'", 1)[1][1:]
            if any(c in "xzXZ?" for c in digits):
                self.next()
                value, mask, width = parse_wildcard_literal(
                    tok.text, wild)
                masked = Expr("binary", tok.line, op="&", args=[
                    subject,
                    Expr("lit", tok.line, value=mask, width=width)])
                return Expr("binary", tok.line, op="==", args=[
                    masked,
                    Expr("lit", tok.line, value=value, width=width)])
        label = self.parse_expr()
        return Expr("binary", label.line, op="==", args=[subject, label])

    # -- expressions ---------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self._ternary()

    def _ternary(self) -> Expr:
        cond = self._binary(0)
        if self.accept("?"):
            then = self._ternary()
            self.expect(":")
            other = self._ternary()
            return Expr("ternary", cond.line, args=[cond, then, other])
        return cond

    _PRECEDENCE = [
        ["||"], ["&&"], ["|"], ["^"], ["&"],
        ["==", "!="], ["<", "<=", ">", ">="],
        ["<<", ">>", ">>>", "<<<"],
        ["+", "-"], ["*", "/", "%"],
    ]

    def _binary(self, level: int) -> Expr:
        if level >= len(self._PRECEDENCE):
            return self._unary()
        lhs = self._binary(level + 1)
        while self.peek().text in self._PRECEDENCE[level]:
            op = self.next().text
            rhs = self._binary(level + 1)
            lhs = Expr("binary", lhs.line, op=op, args=[lhs, rhs])
        return lhs

    def _unary(self) -> Expr:
        tok = self.peek()
        if tok.text in ("~", "!", "-", "&", "|", "^"):
            self.next()
            operand = self._unary()
            return Expr("unary", tok.line, op=tok.text, args=[operand])
        return self._primary()

    def _primary(self) -> Expr:
        tok = self.next()
        if tok.text == "(":
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if tok.text == "{":
            first = self.parse_expr()
            if self.accept("{"):  # replication {N{expr}}
                count = _eval_const(first, self.params)
                inner = self.parse_expr()
                self.expect("}")
                self.expect("}")
                return Expr("repl", tok.line, value=count, args=[inner])
            parts = [first]
            while self.accept(","):
                parts.append(self.parse_expr())
            self.expect("}")
            return Expr("concat", tok.line, args=parts)
        if tok.kind == "sized":
            value, width = parse_literal(tok.text)
            return Expr("lit", tok.line, value=value, width=width)
        if tok.kind == "number":
            value, _ = parse_literal(tok.text)
            return Expr("lit", tok.line, value=value, width=None)
        if tok.kind == "ident":
            name = tok.text
            if name in self.params:
                return Expr("lit", tok.line, value=self.params[name],
                            width=None)
            expr = Expr("ident", tok.line, name=name)
            while self.accept("["):
                first = self.parse_expr()
                if self.accept(":"):
                    hi = _eval_const(first, self.params)
                    lo = self._const_expr()
                    self.expect("]")
                    expr = Expr("slice", tok.line, args=[expr],
                                lo=lo, hi=hi)
                else:
                    self.expect("]")
                    expr = Expr("index", tok.line, args=[expr, first])
            return expr
        raise VerilogError(f"line {tok.line}: unexpected {tok.text!r}")


def _assigned_names(stmts) -> dict[str, None]:
    """All assignment targets in a statement tree.

    Returned as insertion-ordered dict keys (first-assignment order)
    rather than a set: callers iterate the result while elaborating ops,
    and elaboration order must not depend on PYTHONHASHSEED or
    ``Circuit.fingerprint`` would differ across processes.
    """
    out: dict[str, None] = {}
    for stmt in stmts:
        if isinstance(stmt, NonBlocking):
            out[stmt.target] = None
        elif isinstance(stmt, If):
            out.update(_assigned_names(stmt.then))
            out.update(_assigned_names(stmt.other))
        elif isinstance(stmt, For):
            out.update(_assigned_names(stmt.body))
    return out


def _eval_const(expr: Expr, params: dict[str, int]) -> int:
    if expr.kind == "lit":
        return expr.value
    if expr.kind == "ident" and expr.name in params:
        return params[expr.name]
    if expr.kind == "unary" and expr.op == "-":
        return -_eval_const(expr.args[0], params)
    if expr.kind == "binary":
        a = _eval_const(expr.args[0], params)
        b = _eval_const(expr.args[1], params)
        ops = {"+": a + b, "-": a - b, "*": a * b,
               "<<": a << b, ">>": a >> b}
        if expr.op in ops:
            return ops[expr.op]
    raise VerilogError(
        f"line {expr.line}: expected a compile-time constant"
    )


# ---------------------------------------------------------------------------
# Elaborator
# ---------------------------------------------------------------------------
class Elaborator:
    """Turns a parsed module into a :class:`Circuit` via the builder."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.builder = CircuitBuilder(module.name)
        self.regs: dict[str, Signal] = {}
        self.memories: dict[str, MemoryHandle] = {}
        self.assign_exprs: dict[str, Expr] = {}
        self.cache: dict[str, Signal] = {}
        self._resolving: set[str] = set()
        self._bindings: dict[str, int] = {}  # unrolled for-loop variables
        #: the root path-enable; ``_guard`` folds it away so guarded
        #: statements don't accrete ``AND(1, en)`` ops (this keeps
        #: emit/parse round trips structurally idempotent).
        self._true = self.builder.const(1, 1)

    def _guard(self, enable: Signal, cond: Signal) -> Signal:
        """``enable & cond`` with the constant-true root folded."""
        if enable is self._true:
            return cond
        return enable & cond

    def elaborate(self) -> Circuit:
        m = self.builder
        module = self.module
        for assign in module.assigns:
            if assign.target in self.assign_exprs:
                raise VerilogError(
                    f"multiple drivers for wire {assign.target!r}"
                )
            self.assign_exprs[assign.target] = assign.expr
        # Targets of combinational always blocks are wires, not state,
        # however they were declared.
        self._comb_block_of: dict[str, int] = {}
        for index, block in enumerate(module.comb):
            for target in _assigned_names(block):
                if target in self._comb_block_of or \
                        target in self.assign_exprs:
                    raise VerilogError(
                        f"multiple drivers for {target!r}"
                    )
                self._comb_block_of[target] = index
        reg_inits, mem_inits = self._collect_inits()
        for decl in module.decls.values():
            if decl.depth is not None:
                words = mem_inits.get(decl.name, {})
                init: tuple[int, ...] = ()
                if words:
                    top_idx = max(words)
                    init = tuple(words.get(i, 0)
                                 for i in range(top_idx + 1))
                self.memories[decl.name] = m.memory(
                    decl.name, decl.width, decl.depth, init)
            elif decl.kind == "reg" and \
                    decl.name not in self._comb_block_of:
                self.regs[decl.name] = m.register(
                    decl.name, decl.width,
                    reg_inits.get(decl.name, decl.init))
        pending: dict[str, Signal] = {}
        self._walk(module.always, self._true, pending)
        for name, value in pending.items():
            self.regs[name].next = value
        # Force-elaborate every continuous assignment and comb block so
        # undriven identifiers, combinational cycles, and latches are
        # diagnosed even when the outputs are otherwise unused (dead
        # logic is removed later by DCE).
        for name in self.assign_exprs:
            self.signal(name)
        for index in range(len(module.comb)):
            targets = _assigned_names(module.comb[index])
            if not any(t in self.cache for t in targets):
                self._elaborate_comb_block(index)
        return m.build()

    def _collect_inits(self) -> tuple[dict[str, int],
                                      dict[str, dict[int, int]]]:
        """Fold ``initial`` stores into per-register / per-memory-word
        initializer maps (last store wins, like procedural order)."""
        reg_inits: dict[str, int] = {}
        mem_inits: dict[str, dict[int, int]] = {}
        for name, index, value, line in self.module.inits:
            decl = self.module.decls.get(name)
            if decl is None:
                raise VerilogError(
                    f"line {line}: initial store to unknown {name!r}")
            clip = (1 << decl.width) - 1
            if decl.depth is not None:
                if index is None:
                    raise VerilogError(
                        f"line {line}: initial store to memory "
                        f"{name!r} needs an index")
                if not 0 <= index < decl.depth:
                    raise VerilogError(
                        f"line {line}: initial index {index} out of "
                        f"range for {name!r} (depth {decl.depth})")
                mem_inits.setdefault(name, {})[index] = value & clip
            else:
                if index is not None:
                    raise VerilogError(
                        f"line {line}: bit-indexed initial store to "
                        f"{name!r} is not supported")
                if decl.kind != "reg":
                    raise VerilogError(
                        f"line {line}: initial store to non-register "
                        f"{name!r}")
                reg_inits[name] = value & clip
        return reg_inits, mem_inits

    # -- name resolution ------------------------------------------------------
    def signal(self, name: str, line: int = 0) -> Signal:
        if name in self.regs:
            return self.regs[name]
        if name in self.cache:
            return self.cache[name]
        if name in self.assign_exprs:
            if name in self._resolving:
                raise VerilogError(
                    f"combinational cycle through wire {name!r}"
                )
            self._resolving.add(name)
            sig = self.expr(self.assign_exprs[name])
            decl = self.module.decls.get(name)
            if decl is not None:
                sig = self._fit(sig, decl.width)
            self._resolving.discard(name)
            self.cache[name] = sig
            return sig
        if name in getattr(self, "_comb_block_of", {}):
            self._elaborate_comb_block(self._comb_block_of[name])
            return self.cache[name]
        raise VerilogError(f"line {line}: unknown identifier {name!r}")

    def _elaborate_comb_block(self, index: int) -> None:
        """Elaborate one ``always @(*)`` block: blocking assignments with
        last-wins priority; every target must be covered on every path
        (no latches)."""
        key = f"%comb{index}"
        if key in self._resolving:
            raise VerilogError(
                f"combinational cycle through always @(*) block {index}"
            )
        self._resolving.add(key)
        block = self.module.comb[index]
        pending: dict[str, Signal] = {}
        self._walk_comb(block, self.builder.const(1, 1), pending)
        targets = _assigned_names(block)
        for target in targets:
            if target not in pending:
                raise VerilogError(
                    f"always @(*) target {target!r} is not assigned on "
                    "every path (latch inferred)"
                )
            decl = self.module.decls.get(target)
            sig = pending[target]
            if decl is not None:
                sig = self._fit(sig, decl.width)
            self.cache[target] = sig
        self._resolving.discard(key)

    def _walk_comb(self, stmts, enable, pending: dict) -> None:
        """Like _walk, but targets are wires: an If branch that assigns a
        target not yet assigned at this point has no base value - that is
        only an error if it survives to the end (checked by the caller),
        so branches must fully cover or the merge drops the name."""
        outer_scope = getattr(self, "_comb_scope", None)
        self._comb_scope = pending
        for stmt in stmts:
            if isinstance(stmt, NonBlocking):
                if stmt.index is not None:
                    raise VerilogError(
                        f"line {stmt.line}: memory writes are not allowed "
                        "in always @(*)"
                    )
                value = self.expr(stmt.expr)
                pending[stmt.target] = value
            elif isinstance(stmt, SysCall):
                self._syscall(stmt, enable)
            elif isinstance(stmt, For):
                self._unroll(stmt, enable, pending, self._walk_comb)
            elif isinstance(stmt, If):
                cond = self.expr(stmt.cond)
                cond = cond.any() if cond.width > 1 else cond
                then_env = dict(pending)
                if stmt.then:
                    self._walk_comb(stmt.then, self._guard(enable, cond),
                                    then_env)
                else_env = dict(pending)
                if stmt.other:
                    self._walk_comb(stmt.other,
                                    self._guard(enable, ~cond), else_env)
                self._comb_scope = pending
                # dict.fromkeys, not set union: mux/gensym creation
                # order must be hash-seed independent.
                for name in dict.fromkeys([*then_env, *else_env]):
                    if name in then_env and name in else_env:
                        t, f = then_env[name], else_env[name]
                        decl = self.module.decls.get(name)
                        width = decl.width if decl else max(t.width,
                                                            f.width)
                        t = self._fit(t, width)
                        f = self._fit(f, width)
                        pending[name] = t if t is f else \
                            self.builder.mux(cond, f, t)
                    # one-sided assignment without a prior base: drop -
                    # caller reports the latch if never completed.
                    elif name in pending:
                        pass  # keeps the pre-if value already in pending
        self._comb_scope = outer_scope

    def _fit(self, sig: Signal, width: int) -> Signal:
        if sig.width > width:
            return sig.trunc(width)
        if sig.width < width:
            return sig.zext(width)
        return sig

    # -- expressions -------------------------------------------------------
    def expr(self, e: Expr) -> Signal:
        m = self.builder
        if e.kind == "lit":
            # Unsized literals are 32 bits, as in IEEE 1800.
            width = e.width if e.width else max(32, e.value.bit_length())
            return m.const(e.value, width)
        if e.kind == "ident":
            if e.name in self._bindings:
                return m.const(self._bindings[e.name], 32)
            # Blocking-assignment semantics: inside an always @(*) walk,
            # a target assigned earlier in the block reads its pending
            # procedural value.
            pending = getattr(self, "_comb_scope", None)
            if pending is not None and e.name in pending:
                return pending[e.name]
            return self.signal(e.name, e.line)
        if e.kind == "index":
            base = e.args[0]
            if base.kind == "ident" and base.name in self.memories:
                return self.memories[base.name].read(self.expr(e.args[1]))
            sig = self.expr(base)
            idx = e.args[1]
            try:
                const = _eval_const(idx, self.module.params)
            except VerilogError:
                shifted = sig >> self.expr(idx)
                return shifted[0]
            return sig[const]
        if e.kind == "slice":
            sig = self.expr(e.args[0])
            return sig.bits(e.lo, e.hi - e.lo + 1)
        if e.kind == "concat":
            # Verilog lists MSB first; the builder wants LSB first.
            parts = [self.expr(p) for p in reversed(e.args)]
            return m.cat(*parts)
        if e.kind == "repl":
            inner = self.expr(e.args[0])
            return m.cat(*([inner] * e.value))
        if e.kind == "unary":
            a = self.expr(e.args[0])
            if e.op == "~":
                return ~a
            if e.op == "!":
                return ~a.any()
            if e.op == "-":
                return m.const(0, a.width) - a
            if e.op == "&":
                return a.all()
            if e.op == "|":
                return a.any()
            if e.op == "^":
                return a.parity()
        if e.kind == "binary":
            a = self.expr(e.args[0])
            b = self.expr(e.args[1])
            op = e.op
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op in ("/", "%"):
                raise VerilogError(
                    f"line {e.line}: division is not synthesizable here"
                )
            if op == "&":
                return a & b
            if op == "|":
                return a | b
            if op == "^":
                return a ^ b
            if op == "&&":
                return a.any() & b.any()
            if op == "||":
                return a.any() | b.any()
            if op == "==":
                return a == b
            if op == "!=":
                return a != b
            if op == "<":
                return a.ltu(b)
            if op == ">":
                return b.ltu(a)
            if op == "<=":
                return ~b.ltu(a)
            if op == ">=":
                return ~a.ltu(b)
            if op in ("<<", "<<<"):
                return self._shift(a, e.args[1], left=True)
            if op == ">>":
                return self._shift(a, e.args[1], left=False)
            if op == ">>>":
                return self._shift(a, e.args[1], left=False, arith=True)
        if e.kind == "ternary":
            cond = self.expr(e.args[0])
            then = self.expr(e.args[1])
            other = self.expr(e.args[2])
            return m.mux(cond.any() if cond.width > 1 else cond,
                         other, then)
        raise VerilogError(f"line {e.line}: cannot elaborate {e.kind}")

    def _shift(self, a: Signal, amount: Expr, left: bool,
               arith: bool = False) -> Signal:
        try:
            const = _eval_const(amount, self.module.params)
        except VerilogError:
            amt = self.expr(amount)
            if arith:
                return a.ashr(amt)
            return (a << amt) if left else (a >> amt)
        if arith:
            return a.ashr(const)
        return (a << const) if left else (a >> const)

    # -- always block ------------------------------------------------------
    def _walk(self, stmts: list[Stmt], enable: Signal,
              pending: dict[str, Signal]) -> None:
        """Walk statements; ``pending`` maps register name -> next value
        accumulated so far (registers hold by default).  The caller
        commits the final pending map to register next values."""
        for stmt in stmts:
            if isinstance(stmt, NonBlocking):
                self._non_blocking(stmt, enable, pending)
            elif isinstance(stmt, SysCall):
                self._syscall(stmt, enable)
            elif isinstance(stmt, For):
                self._unroll(stmt, enable, pending, self._walk)
            elif isinstance(stmt, If):
                cond = self.expr(stmt.cond)
                cond = cond.any() if cond.width > 1 else cond
                then_env = dict(pending)
                if stmt.then:
                    self._walk(stmt.then, self._guard(enable, cond),
                               then_env)
                else_env = dict(pending)
                if stmt.other:
                    self._walk(stmt.other, self._guard(enable, ~cond),
                               else_env)
                names = dict.fromkeys([*then_env, *else_env])
                for name in names:
                    reg = self.regs[name]
                    base = pending.get(name, reg)
                    t = then_env.get(name, base)
                    f = else_env.get(name, base)
                    if t is f:
                        pending[name] = t
                    else:
                        pending[name] = self.builder.mux(cond, f, t)

    def _unroll(self, stmt: For, enable: Signal, pending: dict,
                walker) -> None:
        """Unroll a constant-bound for loop, binding the loop variable as
        a compile-time constant per iteration."""
        env = {**self.module.params, **self._bindings}
        start = _eval_const(stmt.start, env)
        bound = _eval_const(stmt.bound, env)
        if bound - start > 4096:
            raise VerilogError(
                f"line {stmt.line}: for-loop unrolls to {bound - start} "
                "iterations; that cannot be intended"
            )
        saved = self._bindings.get(stmt.var)
        for value in range(start, bound):
            self._bindings[stmt.var] = value
            walker(stmt.body, enable, pending)
        if saved is None:
            self._bindings.pop(stmt.var, None)
        else:
            self._bindings[stmt.var] = saved

    def _non_blocking(self, stmt: NonBlocking, enable: Signal,
                      pending: dict[str, Signal]) -> None:
        value = self.expr(stmt.expr)
        if stmt.target in self.memories:
            mem = self.memories[stmt.target]
            if stmt.index is None:
                raise VerilogError(
                    f"line {stmt.line}: memory write needs an index"
                )
            addr = self.expr(stmt.index)
            mem.write(addr, self._fit(value, mem.width), enable)
            return
        if stmt.target not in self.regs:
            raise VerilogError(
                f"line {stmt.line}: non-blocking assignment to "
                f"non-register {stmt.target!r}"
            )
        if stmt.index is not None:
            raise VerilogError(
                f"line {stmt.line}: bit-select register writes are not "
                "supported; assign the whole register"
            )
        reg = self.regs[stmt.target]
        pending[stmt.target] = self._fit(value, reg.width)

    def _syscall(self, stmt: SysCall, enable: Signal) -> None:
        m = self.builder
        if stmt.name in ("display", "write"):
            args = [self.expr(a) for a in stmt.args]
            m.display(enable, stmt.fmt or "", *args)
        elif stmt.name in ("finish", "stop"):
            m.finish(enable)


# ---------------------------------------------------------------------------
# Hierarchy flattening
# ---------------------------------------------------------------------------
def _rename_expr(e: Expr, mapping: dict[str, str]) -> Expr:
    out = Expr(e.kind, e.line, value=e.value, width=e.width,
               name=mapping.get(e.name, e.name), op=e.op,
               args=[_rename_expr(a, mapping) for a in e.args],
               lo=e.lo, hi=e.hi)
    return out


def _rename_stmt(stmt: Stmt, mapping: dict[str, str]) -> Stmt:
    if isinstance(stmt, NonBlocking):
        return NonBlocking(
            mapping.get(stmt.target, stmt.target),
            _rename_expr(stmt.index, mapping) if stmt.index else None,
            _rename_expr(stmt.expr, mapping), stmt.line)
    if isinstance(stmt, SysCall):
        return SysCall(stmt.name, stmt.fmt,
                       [_rename_expr(a, mapping) for a in stmt.args],
                       stmt.line)
    if isinstance(stmt, If):
        return If(_rename_expr(stmt.cond, mapping),
                  [_rename_stmt(x, mapping) for x in stmt.then],
                  [_rename_stmt(x, mapping) for x in stmt.other])
    if isinstance(stmt, For):
        return For(stmt.var, _rename_expr(stmt.start, mapping),
                   _rename_expr(stmt.bound, mapping),
                   [_rename_stmt(x, mapping) for x in stmt.body],
                   stmt.line)
    raise VerilogError(f"cannot rename {type(stmt).__name__}")


def flatten(modules: dict[str, Module], top: str) -> Module:
    """Inline every instantiation below ``top`` into one flat module.

    Input ports become prefixed wires driven by the connection
    expression; output ports keep their (prefixed) internal drivers and
    the parent wire named in the connection is assigned from them.
    Identifiers gain an ``<instance>__`` prefix per hierarchy level.
    """
    if top not in modules:
        raise VerilogError(f"no module named {top!r}")

    flat = Module(top, dict(modules[top].params), {}, [], [],
                  modules[top].clock)

    def inline(module: Module, prefix: str) -> None:
        mapping = {name: prefix + name for name in module.decls}
        clock = module.clock
        if clock:
            mapping.setdefault(clock, clock)  # clocks stay global
        for decl in module.decls.values():
            if decl.direction == "input" and decl.name == module.clock:
                continue  # clocks are implicit in cycle-level semantics
            flat.decls[prefix + decl.name] = Decl(
                decl.kind, prefix + decl.name, decl.width, decl.init,
                decl.depth, None)
        for assign in module.assigns:
            flat.assigns.append(Assign(
                mapping.get(assign.target, assign.target),
                _rename_expr(assign.expr, mapping)))
        for stmt in module.always:
            flat.always.append(_rename_stmt(stmt, mapping))
        for block in module.comb:
            flat.comb.append([_rename_stmt(s, mapping) for s in block])
        for name, index, value, line in module.inits:
            flat.inits.append((mapping.get(name, name), index, value,
                               line))
        for inst in module.instances:
            child = modules.get(inst.module)
            if child is None:
                raise VerilogError(
                    f"line {inst.line}: unknown module {inst.module!r}"
                )
            child_prefix = f"{prefix}{inst.name}__"
            inline(child, child_prefix)
            for port, expr in inst.conns.items():
                if port == child.clock:
                    continue  # implicit clock
                decl = child.decls.get(port)
                if decl is None or decl.direction is None:
                    raise VerilogError(
                        f"line {inst.line}: {inst.module}.{port} is not "
                        "a port"
                    )
                bound = _rename_expr(expr, mapping)
                if decl.direction == "input":
                    flat.assigns.append(
                        Assign(child_prefix + port, bound))
                else:
                    if bound.kind != "ident":
                        raise VerilogError(
                            f"line {inst.line}: output port {port!r} "
                            "must connect to a plain wire"
                        )
                    flat.assigns.append(Assign(
                        bound.name,
                        Expr("ident", inst.line,
                             name=child_prefix + port)))
            # unconnected inputs default to zero
            for decl in child.decls.values():
                if decl.direction == "input" and \
                        decl.name != child.clock and \
                        decl.name not in inst.conns:
                    flat.assigns.append(Assign(
                        child_prefix + decl.name,
                        Expr("lit", inst.line, value=0,
                             width=decl.width)))

    inline(modules[top], "")
    return flat


# ---------------------------------------------------------------------------
# Generated test driver
# ---------------------------------------------------------------------------
def _lfsr_seed(name: str) -> int:
    """Deterministic nonzero 32-bit LFSR seed derived from a port name."""
    import zlib
    return (zlib.crc32(name.encode()) & 0xFFFFFFFF) | 1


def driver_wrapper_source(module: Module, cycles: int = 512) -> str:
    """Generate a closed test-driver module around a ported ``module``.

    Every non-clock input is driven from a free-running 32-bit maximal
    LFSR (taps 32,22,2,1; seed derived from the port name), replicated /
    truncated to the port width.  Every output is folded into a rotating
    32-bit XOR checksum register.  After ``cycles`` cycles the driver
    ``$display``s the cycle count and checksum and ``$finish``es - so an
    open design becomes a closed, self-reporting workload.
    """
    clock = module.clock
    inputs = [d for d in module.decls.values()
              if d.direction == "input" and d.name != clock]
    outputs = [d for d in module.decls.values()
               if d.direction == "output"]
    cyc_w = max(16, cycles.bit_length() + 1)
    name = f"{module.name}_driver"
    clk = clock or "clk"
    lines = [f"module {name};"]
    lines.append(f"  reg [{cyc_w - 1}:0] _drv_cyc = 0;")
    lines.append("  reg [31:0] _drv_check = 0;")
    for d in inputs:
        lines.append(f"  reg [31:0] _drv_lfsr_{d.name} = "
                     f"32'h{_lfsr_seed(d.name):08x};")
        lines.append(f"  wire [{d.width - 1}:0] _drv_in_{d.name};")
        repl = (d.width + 31) // 32
        src = f"_drv_lfsr_{d.name}" if repl == 1 else \
            f"{{{repl}{{_drv_lfsr_{d.name}}}}}"
        lines.append(f"  assign _drv_in_{d.name} = {src};")
    for d in outputs:
        lines.append(f"  wire [{d.width - 1}:0] _drv_out_{d.name};")
        lines.append(f"  wire [31:0] _drv_fold_{d.name};")
        lines.append(f"  assign _drv_fold_{d.name} = _drv_out_{d.name};")
    conns = [f".{d.name}(_drv_in_{d.name})" for d in inputs]
    conns += [f".{d.name}(_drv_out_{d.name})" for d in outputs]
    lines.append(f"  {module.name} _drv_dut ({', '.join(conns)});")
    lines.append(f"  always @(posedge {clk}) begin")
    lines.append("    _drv_cyc <= _drv_cyc + 1;")
    for d in inputs:
        r = f"_drv_lfsr_{d.name}"
        lines.append(
            f"    {r} <= {{{r}[30:0], "
            f"{r}[31] ^ {r}[21] ^ {r}[1] ^ {r}[0]}};")
    fold = " ^ ".join(f"_drv_fold_{d.name}" for d in outputs) or "32'h0"
    lines.append("    _drv_check <= {_drv_check[30:0], _drv_check[31]}"
                 f" ^ ({fold});")
    lines.append(f"    if (_drv_cyc == {cycles}) begin")
    lines.append('      $display("driver: %0d cycles, checksum %x", '
                 "_drv_cyc, _drv_check);")
    lines.append("      $finish;")
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def parse_modules(source: str) -> dict[str, Module]:
    """Parse every module in a source file."""
    parser = Parser(source)
    modules: dict[str, Module] = {}
    while parser.peek().kind != "eof":
        module = parser.parse_module()
        modules[module.name] = module
    if not modules:
        raise VerilogError("no modules found")
    return modules


def parse_verilog(source: str, top: str | None = None, *,
                  wrap: int | None = None) -> Circuit:
    """Parse and elaborate a Verilog-subset design into a circuit.

    Multiple modules are supported; the hierarchy below ``top`` (default:
    the unique module never instantiated by another) is flattened by
    inlining.  If the top module has ports, ``wrap=N`` closes it with a
    generated LFSR test driver that runs for N cycles (see
    :func:`driver_wrapper_source`); without ``wrap`` a ported top is an
    error, because Manticore compiles closed designs.
    """
    modules = parse_modules(source)
    if top is None:
        instantiated = {inst.module for m in modules.values()
                        for inst in m.instances}
        roots = [name for name in modules if name not in instantiated]
        if len(roots) != 1:
            raise VerilogError(
                f"cannot infer the top module (candidates: {roots}); "
                "pass top= explicitly"
            )
        top = roots[0]
    if top not in modules:
        raise VerilogError(f"no module named {top!r}")
    has_ports = any(d.direction is not None
                    for d in modules[top].decls.values())
    if has_ports and wrap is not None:
        wrapper_src = driver_wrapper_source(modules[top], wrap)
        wrapper = Parser(wrapper_src).parse_module()
        modules[wrapper.name] = wrapper
        top = wrapper.name
    module = flatten(modules, top) if (len(modules) > 1
                                       or modules[top].instances) \
        else modules[top]
    if any(d.direction is not None for d in module.decls.values()):
        raise VerilogError(
            f"top module {top!r} has ports; Manticore compiles closed "
            "designs - wrap it in a test driver (or pass wrap=N to "
            "generate one)"
        )
    return Elaborator(module).elaborate()
